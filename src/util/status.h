// Expected-failure plumbing.
//
// Protocol-level failures — tampered checkpoints, failed attestations, a
// malicious peer closing a channel — are *outcomes the system is designed to
// produce*, not bugs, so they travel as values. Status carries an error code
// and a human-readable message; Result<T> is Status-or-value.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace mig {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,    // SGX access-control violations observed by software
  kFailedPrecondition,  // wrong lifecycle state (e.g. EENTER on busy TCS)
  kResourceExhausted,   // EPC full, no VA slots, ...
  kIntegrityViolation,  // MAC/hash/measurement mismatch
  kAuthFailure,         // attestation or channel authentication failed
  kAborted,             // operation refused by policy (self-destroy, ...)
  kUnavailable,         // peer/network unavailable
  kDeadlineExceeded,    // a virtual-time deadline expired (link timeout, ...)
  kInternal,
};

const char* error_code_name(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status Error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    MIG_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). MIG_CHECK enforces it.
  T& value() & {
    MIG_CHECK_MSG(ok(), "Result::value() on error: " << status_.to_string());
    return *value_;
  }
  const T& value() const& {
    MIG_CHECK_MSG(ok(), "Result::value() on error: " << status_.to_string());
    return *value_;
  }
  T&& value() && {
    MIG_CHECK_MSG(ok(), "Result::value() on error: " << status_.to_string());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates an error Status out of the current function.
#define MIG_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::mig::Status status__ = (expr);              \
    if (!status__.ok()) return status__;          \
  } while (0)

// Evaluates a Result expression; on error returns its Status, otherwise
// assigns the value to `lhs` (which must be declarable here).
#define MIG_CONCAT_INNER(a, b) a##b
#define MIG_CONCAT(a, b) MIG_CONCAT_INNER(a, b)
#define MIG_ASSIGN_OR_RETURN(lhs, expr)                       \
  MIG_ASSIGN_OR_RETURN_IMPL(MIG_CONCAT(result__, __LINE__), lhs, expr)
#define MIG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)             \
  auto tmp = (expr);                                          \
  if (!tmp.ok()) return tmp.status();                         \
  lhs = std::move(tmp).value()

}  // namespace mig
