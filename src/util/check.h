// Internal invariant checks.
//
// MIG_CHECK is for programmer errors (broken invariants) and always fires,
// independent of NDEBUG: a simulator whose invariants silently corrupt is
// worse than one that stops. Expected runtime failures (tampered checkpoint,
// failed attestation, ...) use mig::Status instead — never these macros.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mig {

// Thrown by MIG_CHECK failures so tests can assert on invariant violations.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace internal

}  // namespace mig

#define MIG_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::mig::internal::check_failed(#cond, __FILE__, __LINE__, "");       \
    }                                                                     \
  } while (0)

#define MIG_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream oss__;                                           \
      oss__ << msg;                                                       \
      ::mig::internal::check_failed(#cond, __FILE__, __LINE__,            \
                                    oss__.str());                         \
    }                                                                     \
  } while (0)
