#include "util/status.h"

namespace mig {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kIntegrityViolation: return "INTEGRITY_VIOLATION";
    case ErrorCode::kAuthFailure: return "AUTH_FAILURE";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mig
