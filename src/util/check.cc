#include "util/check.h"

namespace mig::internal {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "MIG_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckFailure(oss.str());
}

}  // namespace mig::internal
