// Basic byte-buffer vocabulary types used across the whole project.
//
// We deliberately use std::vector<uint8_t> for owned buffers and
// std::span<const uint8_t> for read-only views (C++ Core Guidelines I.13/F.24:
// pass spans, not pointer+length pairs).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mig {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutByteSpan = std::span<uint8_t>;

// Builds a byte buffer from a string literal / std::string payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Interprets a byte buffer as text (for tests and log messages).
inline std::string to_string(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// Lowercase hex encoding, mainly for digests in logs and golden tests.
std::string hex_encode(ByteSpan data);

// Strict decoder: returns empty vector if `hex` has odd length or non-hex
// characters. Test vectors are the only intended user.
Bytes hex_decode(std::string_view hex);

// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

// XORs `src` into `dst` (sizes must match). Used by cipher code.
void xor_into(MutByteSpan dst, ByteSpan src);

}  // namespace mig
