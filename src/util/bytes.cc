#include "util/bytes.h"

namespace mig {

std::string hex_encode(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void xor_into(MutByteSpan dst, ByteSpan src) {
  for (size_t i = 0; i < dst.size() && i < src.size(); ++i) dst[i] ^= src[i];
}

}  // namespace mig
