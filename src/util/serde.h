// Wire format used by checkpoints, attestation messages and the secure
// channel: little-endian fixed-width integers, length-prefixed byte strings.
// A checkpoint produced on the "source machine" must parse bit-identically on
// the "target machine", so everything that crosses a machine boundary goes
// through these two classes.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace mig {

class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { put_le(v, 2); }
  void u32(uint32_t v) { put_le(v, 4); }
  void u64(uint64_t v) { put_le(v, 8); }

  // Length-prefixed (u32) byte string.
  void bytes(ByteSpan b) {
    u32(static_cast<uint32_t>(b.size()));
    append(buf_, b);
  }
  void str(std::string_view s) {
    bytes(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }
  // Raw bytes with no length prefix (fixed-size fields like digests).
  void raw(ByteSpan b) { append(buf_, b); }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  void put_le(uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  Bytes buf_;
};

// Reader never throws on malformed input: a truncated or hostile message sets
// a sticky failure flag and all subsequent reads return zeros/empties. Callers
// check ok() once at the end (mirrors how robust protocol parsers behave).
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}
  // A Reader only *views* its input; constructing one from a temporary
  // buffer would leave it dangling after this full-expression.
  explicit Reader(Bytes&&) = delete;

  uint8_t u8() { return static_cast<uint8_t>(get_le(1)); }
  uint16_t u16() { return static_cast<uint16_t>(get_le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(get_le(4)); }
  uint64_t u64() { return get_le(8); }

  Bytes bytes() {
    uint32_t n = u32();
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }
  Bytes raw(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  // Convenience: OK iff the whole buffer parsed with no trailing garbage.
  Status finish() const {
    if (!ok_) return Error(ErrorCode::kInvalidArgument, "malformed message");
    if (pos_ != data_.size())
      return Error(ErrorCode::kInvalidArgument, "trailing bytes in message");
    return OkStatus();
  }

 private:
  uint64_t get_le(int n) {
    if (!ok_ || data_.size() - pos_ < static_cast<size_t>(n)) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += n;
    return v;
  }

  ByteSpan data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mig
