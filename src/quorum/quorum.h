// Quorum-replicated monotonic-counter service (§V-C rollback defense without
// a single trusted box).
//
// The single-signer store/CounterService is both a trust and an availability
// single point of failure: whoever runs it can roll the counter back by
// restoring the box from its own backup, and when it is down every snapshot
// restore and post-migration ADVANCE fails closed. This module replaces the
// box with 2f+1 replicas:
//
//   * Attested membership. Each CounterReplica carries a measurement and a
//     Schnorr key pair. The enclave owner pins the full membership set
//     (sdk/chunk_wire.h QMB1 blob) into the enclave image at provision time
//     (config blob 4); from then on a grant needs f+1 matching signatures
//     from *pinned* replicas — nothing the cloud operator substitutes later
//     counts.
//
//   * Two-phase serve. The (untrusted) QuorumCounterService coordinator fans
//     a request out as PREPARE to every replica; each replica independently
//     attests the requester, validates the verb against its CounterCore
//     (peek — no mutation), and answers with the counter value it would
//     grant. Only when f+1 replicas agree does the coordinator send COMMIT;
//     replicas apply, append to their audit log, and return a Schnorr-signed
//     grant record. No quorum of PREPARE acks ⇒ abort: nothing was applied
//     anywhere, no reply is sent, and the enclave's channel timeout makes
//     the operation fail closed — "quorum lost" can never half-advance a
//     counter.
//
//   * Merkle audit log. Every replica appends each granted op (serialized
//     CounterAuditEntry) to an append-only log and maintains an RFC 6962
//     Merkle tree over it. Each grant record carries the log size, the root,
//     the newest leaf, and an inclusion proof — all under the replica's
//     signature — so every reply commits the replica to one linear history.
//     tools/counter_audit replays exported logs offline and proves the
//     advance history is linear (no forks, no rollback), including across
//     crash recovery; the coordinator cross-checks roots online and excludes
//     (and flight-records) any replica caught signing two different roots
//     for the same log size.
//
// Byzantine fault knobs on CounterReplica (set_equivocate, set_stale,
// set_crash_at_commit, set_available) plus sim::FaultPlan on the per-replica
// links let tests drive up to f replicas arbitrarily wrong: migrations still
// complete, and f+1 failures fail closed without a counter advance.
//
// Trust note: replicas share the sealing-key root (a replicated HSM secret
// distributed during membership provisioning) — they must, or no two
// replicas could grant the same sealing key and no quorum would ever match
// on the key commitment. Signing keys and nonces are per-replica.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "sdk/chunk_wire.h"
#include "sgx/attestation.h"
#include "sim/network.h"
#include "store/counter_service.h"

namespace mig::quorum {

// Canonical audit-log leaf encoding (what the Merkle tree hashes, what the
// wire carries, and what tools/counter_audit parses back).
Bytes encode_audit_leaf(const store::CounterAuditEntry& e);
Result<store::CounterAuditEntry> parse_audit_leaf(ByteSpan leaf);

// One replica: verb state machine + Merkle-logged grant signing. Passive —
// the coordinator owns the channels and spawns the threads that drive it.
class CounterReplica {
 public:
  // `kroot` is the replicated sealing-key root shared by the membership;
  // `rng` seeds this replica's signing key and nonces.
  CounterReplica(uint64_t id, Bytes kroot, sgx::AttestationService& ias,
                 crypto::Drbg rng);

  uint64_t id() const { return id_; }
  // The attested membership record the enclave owner pins at build time.
  sdk::QuorumMember member() const;

  // ---- fault knobs (tests / trace scenarios) ----
  // Crashed / partitioned from the coordinator's side of the world: every
  // incoming message is swallowed, no reply ever leaves.
  void set_available(bool v) { available_ = v; }
  // Crash at the next COMMIT: the op is NOT applied, no grant leaves, and
  // the replica goes unavailable — the torn moment a power cut hits a real
  // box between the prepare ack and the log append.
  void set_crash_at_commit(bool v) { crash_at_commit_ = v; }
  // Byzantine: applies ops (so counters and keys stay plausible) but stops
  // appending to the log and signs a *different* root for the same log size
  // on every op — a fork presented as one history. The coordinator's root
  // cross-check catches this on the first conflicting reply.
  void set_equivocate(bool v) { equivocate_ = v; }
  // Byzantine: acks PREPARE normally but never applies at COMMIT — it signs
  // its genuine (now stale) counter and tree. The signature verifies, but
  // the record can never join the honest replicas' matching set.
  void set_stale(bool v) { stale_ = v; }
  // Export knob: export_log() truncates the last entry mid-bytes, modeling
  // a torn write caught by a crash. tools/counter_audit must detect the torn
  // tail, drop it, and still verify the prefix.
  void set_torn_log_tail(bool v) { torn_log_tail_ = v; }

  // ---- inspection ----
  uint64_t counter(const crypto::Digest& mrenclave) const {
    return core_.counter(ByteSpan(mrenclave));
  }
  const std::vector<store::CounterAuditEntry>& audit_log() const {
    return audit_;
  }
  uint64_t log_size() const { return tree_.size(); }
  crypto::Digest log_root() const { return tree_.root(); }

  // Serialized log for offline audit: every leaf in order (subject to
  // set_torn_log_tail) plus the root this replica last signed. The root is
  // the replica's *claim* (what went out under its signature), not a
  // recomputation — tools/counter_audit recomputes from the leaves and a
  // mismatch is exactly how an equivocator's fork shows up offline.
  struct ExportedLog {
    uint64_t replica_id = 0;
    std::vector<Bytes> leaves;
    crypto::Digest signed_root{};  // root as published, NOT recomputed
  };
  ExportedLog export_log() const;

 private:
  friend class QuorumCounterService;

  // Message handlers, called on coordinator-spawned sim threads. `end` is
  // this replica's end of its link to the coordinator.
  void handle_prepare(sim::ThreadCtx& ctx, sim::Channel::End& end,
                      uint64_t op, Bytes request);
  void handle_commit(sim::ThreadCtx& ctx, sim::Channel::End& end, uint64_t op);
  void handle_abort(uint64_t op) { staged_.erase(op); }

  uint64_t id_;
  sgx::AttestationService* ias_;
  crypto::Drbg rng_;
  crypto::SigKeyPair sig_;
  Bytes measurement_;  // 32 B attestation measurement stand-in
  store::CounterCore core_;
  std::vector<store::CounterAuditEntry> audit_;
  std::vector<Bytes> leaves_;  // serialized audit_, the log payload
  crypto::MerkleTree tree_;

  struct StagedOp {
    std::string verb;
    uint64_t counter_arg = 0;
    Bytes dh_pub_e;
    crypto::Digest mrenclave{};
  };
  std::map<uint64_t, StagedOp> staged_;

  bool available_ = true;
  bool crash_at_commit_ = false;
  bool equivocate_ = false;
  bool stale_ = false;
  bool torn_log_tail_ = false;
  uint64_t equivocation_salt_ = 0;  // varies the forged root per reply
  bool ever_signed_ = false;
  crypto::Digest published_root_{};  // root in the latest signed record
};

// The coordinator: an untrusted process (it holds no key material an
// attacker would want) that owns one duplex link per replica, fans requests
// out, assembles the f+1-matching reply envelope, and forwards it to the
// enclave. It implements store::CounterBackend, so every call site that
// holds a CounterBackend* — migration sessions, the fleet scheduler — can
// swap the single signer for the quorum without changing shape.
class QuorumCounterService final : public store::CounterBackend {
 public:
  // Builds `n` replicas (n odd, 3 <= n <= sdk::kMaxQuorumReplicas) sharing
  // one sealing-key root, wires a channel to each, and spawns one daemon
  // dispatcher thread per replica plus one daemon router thread per replica
  // reply stream. Daemons never keep the executor's run() alive.
  QuorumCounterService(sim::Executor& exec, sgx::AttestationService& ias,
                       crypto::Drbg rng, uint64_t n);

  // The pinned membership enclaves are built with (config blob 4).
  sdk::QuorumMembership membership() const;
  Bytes membership_blob() const {
    return sdk::encode_quorum_membership(membership());
  }

  void serve_one(sim::ThreadCtx& ctx, sim::Channel::End end) override;

  CounterReplica& replica(size_t i) { return *replicas_[i]; }
  size_t num_replicas() const { return replicas_.size(); }

  // Fault-injection seams: the coordinator->replica and replica->coordinator
  // pipes of replica i, for sim::FaultPlan / sever().
  sim::Pipe& pipe_to_replica(size_t i) { return links_[i]->a_to_b(); }
  sim::Pipe& pipe_from_replica(size_t i) { return links_[i]->b_to_a(); }

  // Replicas the online root cross-check caught equivocating (excluded from
  // every later envelope).
  const std::set<uint64_t>& excluded() const { return excluded_; }

  // Per-phase reply deadline. Two phases fit inside the enclave's 5 s
  // channel timeout with slack.
  static constexpr uint64_t kPhaseTimeoutNs = 2'000'000'000;  // 2 s

 private:
  struct Pending {
    std::unique_ptr<sim::Event> wake;
    std::map<uint64_t, uint64_t> acks;       // replica id -> proposed counter
    std::map<uint64_t, std::string> refusals;  // replica id -> why
    // Grant records parsed from commit replies (single-record envelopes).
    std::map<uint64_t, sdk::QuorumReplyEnvelope> grants;
  };

  void router_loop(sim::ThreadCtx& ctx, size_t replica_index);
  void dispatcher_loop(sim::ThreadCtx& ctx, size_t replica_index);

  // True iff the record is consistent with every root this replica already
  // signed for the same log size; records the root otherwise. On conflict
  // the replica joins excluded_ and the event is flight-recorded.
  bool root_consistent(sim::ThreadCtx& ctx, const sdk::QuorumReplyRecord& rec);

  std::vector<std::unique_ptr<CounterReplica>> replicas_;
  std::vector<std::unique_ptr<sim::Channel>> links_;
  uint64_t next_op_ = 1;
  std::map<uint64_t, Pending> pending_;

  // COMMIT phases serialize globally so every replica applies mutating ops
  // in the same order — without this, two concurrent OPENGRANTs could apply
  // in different orders on different replicas and fork the counter state.
  // PREPAREs (attestation, WAN round trips — the expensive part) overlap
  // freely, which is what removes the single-signer choke point.
  bool commit_busy_ = false;
  std::unique_ptr<sim::Event> commit_idle_;

  // Online equivocation check: every (log size -> root) each replica ever
  // signed. One replica, one size, two roots => Byzantine, excluded.
  std::map<uint64_t, std::map<uint64_t, crypto::Digest>> seen_roots_;
  std::set<uint64_t> excluded_;
};

}  // namespace mig::quorum
