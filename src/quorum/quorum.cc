#include "quorum/quorum.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::quorum {

QuorumCounterService::QuorumCounterService(sim::Executor& exec,
                                           sgx::AttestationService& ias,
                                           crypto::Drbg rng, uint64_t n) {
  MIG_CHECK_MSG(n >= 3 && n % 2 == 1 && n <= sdk::kMaxQuorumReplicas,
                "quorum needs an odd replica count in [3, 16]");
  // One sealing-key root for the whole membership (see the header's trust
  // note); everything else — signing keys, nonces — forks per replica.
  Bytes kroot = rng.fork(to_bytes("qrm-root")).generate(32);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = i + 1;
    replicas_.push_back(std::make_unique<CounterReplica>(
        id, kroot, ias, rng.fork(to_bytes("qrm-replica-" + std::to_string(id)))));
    links_.push_back(
        std::make_unique<sim::Channel>(exec, sim::default_cost_model()));
  }
  obs::metrics().set_gauge("quorum.replicas", n);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    std::string id = std::to_string(replicas_[i]->id());
    exec.spawn("quorum-dispatch-" + id,
               [this, i](sim::ThreadCtx& ctx) { dispatcher_loop(ctx, i); },
               /*daemon=*/true);
    exec.spawn("quorum-router-" + id,
               [this, i](sim::ThreadCtx& ctx) { router_loop(ctx, i); },
               /*daemon=*/true);
  }
}

sdk::QuorumMembership QuorumCounterService::membership() const {
  sdk::QuorumMembership m;
  for (const auto& r : replicas_) m.members.push_back(r->member());
  return m;
}

// Replica-side message pump: one per replica, modeling the replica process'
// accept loop. PREPAREs spawn a handler thread each (their WAN + IAS round
// trips overlap across concurrent ops); COMMITs run inline so each replica
// applies mutating ops strictly in arrival order.
void QuorumCounterService::dispatcher_loop(sim::ThreadCtx& ctx,
                                           size_t replica_index) {
  CounterReplica& rep = *replicas_[replica_index];
  sim::Channel::End end = links_[replica_index]->b();
  for (;;) {
    Bytes msg = end.recv(ctx);
    if (!rep.available_) continue;  // crashed / partitioned: swallow
    Reader r(msg);
    std::string tag = r.str();
    uint64_t op = r.u64();
    if (!r.ok()) continue;  // corrupted in flight: drop
    if (tag == "QPRP") {
      Bytes request = r.bytes();
      if (!r.finish().ok()) continue;
      ctx.executor().spawn(
          "quorum-r" + std::to_string(rep.id()) + "-op" + std::to_string(op),
          [this, replica_index, op,
           request = std::move(request)](sim::ThreadCtx& tctx) mutable {
            sim::Channel::End reply_end = links_[replica_index]->b();
            replicas_[replica_index]->handle_prepare(tctx, reply_end, op,
                                                     std::move(request));
          },
          /*daemon=*/true);
    } else if (tag == "QCMT") {
      if (!r.finish().ok()) continue;
      rep.handle_commit(ctx, end, op);
    } else if (tag == "QABT") {
      if (!r.finish().ok()) continue;
      rep.handle_abort(op);
    }
    // Unknown tags: drop (defensive against scripted corruption).
  }
}

// Coordinator-side reply pump: parses replica replies defensively and files
// them into the matching pending op's slot. Replies to finished ops (late
// acks after an abort, grants after a timeout) are dropped here.
void QuorumCounterService::router_loop(sim::ThreadCtx& ctx,
                                       size_t replica_index) {
  sim::Channel::End end = links_[replica_index]->a();
  const uint64_t rid = replicas_[replica_index]->id();
  for (;;) {
    Bytes msg = end.recv(ctx);
    Reader r(msg);
    std::string tag = r.str();
    uint64_t op = r.u64();
    if (!r.ok()) continue;
    auto it = pending_.find(op);
    if (it == pending_.end()) continue;
    Pending& p = it->second;
    if (tag == "QACK") {
      uint64_t proposed = r.u64();
      if (!r.finish().ok() || proposed == 0) continue;
      p.acks[rid] = proposed;
    } else if (tag == "QREF") {
      std::string why = r.str();
      if (!r.finish().ok()) continue;
      p.refusals[rid] = std::move(why);
    } else if (tag == "QGRT") {
      Bytes blob = r.bytes();
      if (!r.finish().ok()) continue;
      auto env = sdk::parse_quorum_reply(blob);
      if (!env.ok() || env->records.size() != 1 ||
          env->records[0].replica_id != rid) {
        obs::metrics().add("quorum.dropped_records");
        obs::instant(ctx, "quorum.replica_dropped", "quorum",
                     {{"replica", rid}});
        obs::flight(ctx, "quorum", "dropped_record",
                    "replica " + std::to_string(rid) +
                        " sent a malformed grant record; dropped");
        continue;
      }
      p.grants[rid] = std::move(*env);
    } else {
      continue;
    }
    p.wake->set(ctx);
  }
}

bool QuorumCounterService::root_consistent(sim::ThreadCtx& ctx,
                                           const sdk::QuorumReplyRecord& rec) {
  crypto::Digest root{};
  std::copy(rec.root.begin(), rec.root.end(), root.begin());
  auto& by_size = seen_roots_[rec.replica_id];
  auto [it, inserted] = by_size.try_emplace(rec.tree_size, root);
  if (inserted || it->second == root) return true;
  excluded_.insert(rec.replica_id);
  obs::metrics().add("quorum.equivocations");
  obs::instant(ctx, "quorum.equivocation", "quorum",
               {{"replica", rec.replica_id}, {"size", rec.tree_size}});
  obs::flight(ctx, "quorum", "equivocation",
              "replica " + std::to_string(rec.replica_id) +
                  " signed two different roots for log size " +
                  std::to_string(rec.tree_size) + "; excluded from the quorum");
  return false;
}

void QuorumCounterService::serve_one(sim::ThreadCtx& ctx,
                                     sim::Channel::End end) {
  // Same retire-on-silence contract as the single signer: helper threads
  // whose enclave refused the store command in-enclave never see a request.
  std::optional<Bytes> request_in = end.recv_timeout(ctx, kServeTimeoutNs);
  if (!request_in.has_value()) return;
  Bytes request = std::move(*request_in);
  obs::Span<sim::ThreadCtx> span(ctx, "quorum.serve", "quorum");
  obs::metrics().add("quorum.requests");
  // Peek the verb for observability only — replicas parse (and, being the
  // trusted side, judge) the request themselves.
  std::string verb = "?";
  {
    Reader r(request);
    std::string v = r.str();
    if (r.ok()) verb = std::move(v);
  }

  const uint64_t op = next_op_++;
  const uint64_t quorum = membership().quorum();
  Pending& p = pending_[op];
  p.wake = std::make_unique<sim::Event>(ctx.executor());

  // ---- phase 1: PREPARE fan-out --------------------------------------------
  std::vector<uint64_t> fanned;  // replica ids we asked
  for (size_t i = 0; i < replicas_.size(); ++i) {
    uint64_t rid = replicas_[i]->id();
    if (excluded_.count(rid)) continue;
    Writer w;
    w.str("QPRP");
    w.u64(op);
    w.bytes(request);
    links_[i]->a().send(ctx, w.take());
    fanned.push_back(rid);
  }

  uint64_t winning_counter = 0;
  std::string quorum_refusal;
  bool refused = false;
  uint64_t deadline = ctx.now() + kPhaseTimeoutNs;
  for (;;) {
    std::map<uint64_t, uint64_t> votes;  // proposed counter -> #replicas
    for (const auto& [rid, proposed] : p.acks) votes[proposed]++;
    for (const auto& [proposed, count] : votes)
      if (count >= quorum) winning_counter = proposed;
    if (winning_counter != 0) break;
    std::map<std::string, uint64_t> ref_votes;
    for (const auto& [rid, why] : p.refusals) ref_votes[why]++;
    for (const auto& [why, count] : ref_votes)
      if (count >= quorum) {
        quorum_refusal = why;
        refused = true;
      }
    if (refused) break;
    if (p.acks.size() + p.refusals.size() >= fanned.size()) break;
    p.wake->reset();
    if (!p.wake->wait_until(ctx, deadline)) break;
  }

  auto abort_all = [&]() {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      Writer w;
      w.str("QABT");
      w.u64(op);
      links_[i]->a().send(ctx, w.take());
    }
  };

  if (refused) {
    // f+1 replicas refused for the same reason: forward it in the legacy
    // reply format, which the enclave maps to kPermissionDenied — exactly
    // what the rollback/fork defenses in store_test expect.
    abort_all();
    obs::metrics().add("quorum.refusals");
    obs::instant(ctx, "quorum.refused", "quorum",
                 {{"verb", verb}, {"why", quorum_refusal}});
    obs::flight(ctx, "quorum", "refused", verb + ": " + quorum_refusal);
    Writer w;
    w.str("REFUSED:" + quorum_refusal);
    w.u64(0);
    w.bytes({});
    w.bytes({});
    w.bytes({});
    pending_.erase(op);
    end.send(ctx, w.take());
    return;
  }
  if (winning_counter == 0) {
    // No f+1 agreement within the deadline: quorum unreachable. Abort so no
    // replica ever applies — the enclave's channel timeout fails the op
    // closed with every counter exactly where it was.
    std::string silent;
    for (uint64_t rid : fanned) {
      if (p.acks.count(rid) || p.refusals.count(rid)) continue;
      silent += (silent.empty() ? "" : ", ") + ("replica " + std::to_string(rid));
    }
    if (silent.empty()) silent = "replies split below quorum";
    abort_all();
    obs::metrics().add("quorum.aborts");
    obs::instant(ctx, "quorum.unreachable", "quorum", {{"verb", verb}});
    obs::flight(ctx, "quorum", "fail_closed",
                "quorum unreachable for " + verb + " (op " +
                    std::to_string(op) + "): no answer from " + silent);
    pending_.erase(op);
    return;
  }

  // ---- phase 2: COMMIT, globally serialized --------------------------------
  // Commits are cheap (no WAN), but their order must match across replicas
  // or concurrent mutating ops could interleave differently on different
  // logs. One commit in flight at a time guarantees that.
  if (!commit_idle_) commit_idle_ = std::make_unique<sim::Event>(ctx.executor());
  while (commit_busy_) {
    commit_idle_->reset();
    commit_idle_->wait(ctx);
  }
  commit_busy_ = true;
  struct CommitRelease {
    QuorumCounterService* s;
    sim::ThreadCtx* ctx;
    ~CommitRelease() {
      s->commit_busy_ = false;
      s->commit_idle_->set(*ctx);
    }
  } release{this, &ctx};

  std::vector<uint64_t> committed;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    uint64_t rid = replicas_[i]->id();
    auto it = p.acks.find(rid);
    bool matched = it != p.acks.end() && it->second == winning_counter;
    Writer w;
    w.str(matched ? "QCMT" : "QABT");
    w.u64(op);
    links_[i]->a().send(ctx, w.take());
    if (matched) committed.push_back(rid);
  }

  std::vector<const sdk::QuorumReplyEnvelope*> matching;
  deadline = ctx.now() + kPhaseTimeoutNs;
  for (;;) {
    matching.clear();
    // Re-derive the matching set each wake-up: grants whose record survives
    // the online root cross-check and agrees on (counter, key_commit) with
    // the winning proposal.
    std::map<Bytes, std::vector<const sdk::QuorumReplyEnvelope*>> by_commit;
    for (const auto& [rid, env] : p.grants) {
      if (excluded_.count(rid)) continue;
      const sdk::QuorumReplyRecord& rec = env.records[0];
      if (rec.counter != winning_counter) continue;
      if (!root_consistent(ctx, rec)) continue;
      by_commit[rec.key_commit].push_back(&env);
    }
    for (auto& [commit, envs] : by_commit)
      if (envs.size() >= quorum) matching = envs;
    if (!matching.empty()) break;
    size_t answered = 0;
    for (uint64_t rid : committed)
      if (p.grants.count(rid) || p.refusals.count(rid)) answered++;
    if (answered >= committed.size())
      break;  // every committed replica answered; no quorum will form
    p.wake->reset();
    if (!p.wake->wait_until(ctx, deadline)) break;
  }

  if (matching.empty()) {
    // Commit-phase refusals (a concurrent op won the race at every replica)
    // also land here when they clear f+1 — forward them; otherwise this is
    // a commit-phase loss (crash mid-commit, Byzantine split) and the op
    // fails closed without a reply.
    std::map<std::string, uint64_t> ref_votes;
    for (const auto& [rid, why] : p.refusals) ref_votes[why]++;
    std::string why;
    for (const auto& [w_, count] : ref_votes)
      if (count >= quorum) why = w_;
    if (!why.empty()) {
      obs::metrics().add("quorum.refusals");
      obs::instant(ctx, "quorum.refused", "quorum",
                   {{"verb", verb}, {"why", why}});
      obs::flight(ctx, "quorum", "refused", verb + ": " + why);
      Writer w;
      w.str("REFUSED:" + why);
      w.u64(0);
      w.bytes({});
      w.bytes({});
      w.bytes({});
      pending_.erase(op);
      end.send(ctx, w.take());
      return;
    }
    std::string missing;
    for (uint64_t rid : committed) {
      if (p.grants.count(rid)) continue;
      missing +=
          (missing.empty() ? "" : ", ") + ("replica " + std::to_string(rid));
    }
    if (missing.empty()) missing = "grants split below quorum";
    obs::metrics().add("quorum.aborts");
    obs::instant(ctx, "quorum.unreachable", "quorum", {{"verb", verb}});
    obs::flight(ctx, "quorum", "fail_closed",
                "quorum lost at commit for " + verb + " (op " +
                    std::to_string(op) + "): no grant from " + missing);
    pending_.erase(op);
    return;
  }

  // Assemble the f+1-matching envelope and forward it. Only matching
  // records ship — a stale replica's (validly signed) minority record never
  // reaches the enclave.
  sdk::QuorumReplyEnvelope out;
  for (const sdk::QuorumReplyEnvelope* env : matching) {
    out.records.push_back(env->records[0]);
    out.sigs.push_back(env->sigs[0]);
  }
  obs::metrics().add("quorum.grants");
  obs::instant(ctx, "quorum.granted", "quorum",
               {{"verb", verb},
                {"counter", winning_counter},
                {"replies", static_cast<uint64_t>(out.records.size())}});
  pending_.erase(op);
  end.send(ctx, sdk::encode_quorum_reply(out));
}

}  // namespace mig::quorum
