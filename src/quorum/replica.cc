#include "quorum/quorum.h"

#include "crypto/aead.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serde.h"

namespace mig::quorum {

Bytes encode_audit_leaf(const store::CounterAuditEntry& e) {
  Writer w;
  w.str(e.verb);
  w.raw(ByteSpan(e.mrenclave));
  w.u64(e.counter);
  w.u64(e.at_ns);
  return w.take();
}

Result<store::CounterAuditEntry> parse_audit_leaf(ByteSpan leaf) {
  Reader r(leaf);
  store::CounterAuditEntry e;
  e.verb = r.str();
  Bytes mre = r.raw(32);
  e.counter = r.u64();
  e.at_ns = r.u64();
  MIG_RETURN_IF_ERROR(r.finish());
  if (e.verb != "SEALGRANT" && e.verb != "OPENGRANT" && e.verb != "ADVANCE")
    return Error(ErrorCode::kInvalidArgument, "audit leaf: unknown verb");
  if (e.counter == 0)
    return Error(ErrorCode::kInvalidArgument, "audit leaf: counter 0");
  std::copy(mre.begin(), mre.end(), e.mrenclave.begin());
  return e;
}

CounterReplica::CounterReplica(uint64_t id, Bytes kroot,
                               sgx::AttestationService& ias, crypto::Drbg rng)
    : id_(id), ias_(&ias), rng_(std::move(rng)) {
  crypto::Drbg sig_rng = rng_.fork(to_bytes("qrm-sig"));
  sig_ = crypto::sig_keygen(sig_rng);
  core_ = store::CounterCore(std::move(kroot));
  // Measurement stand-in: in a real deployment this is the MRENCLAVE of the
  // replica enclave; here it deterministically names (role, id, key).
  Writer m;
  m.str("quorum-replica");
  m.u64(id_);
  m.bytes(sig_.pk.to_bytes_padded(160));
  measurement_ = crypto::digest_bytes(crypto::Sha256::hash(m.data()));
}

sdk::QuorumMember CounterReplica::member() const {
  sdk::QuorumMember out;
  out.id = id_;
  out.measurement = measurement_;
  out.pk = sig_.pk.to_bytes_padded(160);
  return out;
}

CounterReplica::ExportedLog CounterReplica::export_log() const {
  ExportedLog out;
  out.replica_id = id_;
  out.leaves = leaves_;
  out.signed_root = ever_signed_ ? published_root_ : tree_.root();
  if (torn_log_tail_ && !out.leaves.empty()) {
    // A torn write: the crash hit mid-append, so the tail entry's bytes are
    // cut short on disk. The published root still covers the *complete*
    // entry (it was signed before the crash) — the auditor must drop the
    // torn tail and verify the surviving prefix.
    Bytes& tail = out.leaves.back();
    tail.resize(tail.size() / 2);
  }
  return out;
}

// PREPARE: attest the requester, validate the verb without mutating, stage
// the op, and ack with the counter value a commit would grant. Runs on its
// own daemon thread per op, so the WAN + IAS round trips of concurrent
// requests overlap — the quorum's answer to the single-signer choke point.
void CounterReplica::handle_prepare(sim::ThreadCtx& ctx,
                                    sim::Channel::End& end, uint64_t op,
                                    Bytes request) {
  obs::Span<sim::ThreadCtx> span(ctx, "quorum.prepare", "quorum");
  auto refuse = [&](std::string why) {
    Writer w;
    w.str("QREF");
    w.u64(op);
    w.str(why);
    end.send(ctx, w.take());
  };
  Reader r(request);
  std::string verb = r.str();
  uint64_t counter_arg = r.u64();
  Bytes dh_pub_e = r.bytes();
  Bytes quote_wire = r.bytes();
  if (!r.finish().ok()) return refuse("malformed");

  auto quote = sgx::Quote::deserialize(quote_wire);
  if (!quote.ok()) return refuse("bad quote");
  ctx.sleep(2 * sim::default_cost_model().wan_latency_ns);
  sgx::AttestationVerdict verdict =
      ias_->verify(ctx, *quote, rng_.generate(16));
  if (!verdict.ok) return refuse("attestation failed");
  crypto::Digest bind = crypto::Sha256::hash(dh_pub_e);
  if (!crypto::ct_equal(ByteSpan(verdict.report_data), ByteSpan(bind)))
    return refuse("quote does not bind DH value");

  store::CounterCore::Outcome out =
      core_.peek(verb, counter_arg, ByteSpan(verdict.mrenclave));
  if (!out.granted) return refuse(out.refusal);

  staged_[op] = StagedOp{verb, counter_arg, std::move(dh_pub_e),
                         verdict.mrenclave};
  obs::metrics().add("quorum.prepare_acks");
  Writer w;
  w.str("QACK");
  w.u64(op);
  w.u64(out.counter);
  end.send(ctx, w.take());
}

// COMMIT: re-validate against the (possibly moved) core, apply, append the
// audit leaf, and return the signed grant record as a single-record MGQ1
// envelope. Runs inline on the replica's dispatcher thread, so commits
// serialize per replica — cheap (~1 ms of signing), and it keeps each
// replica's log append order identical to the coordinator's commit order.
void CounterReplica::handle_commit(sim::ThreadCtx& ctx,
                                   sim::Channel::End& end, uint64_t op) {
  auto it = staged_.find(op);
  if (it == staged_.end()) return;  // aborted or never prepared: ignore
  StagedOp staged = std::move(it->second);
  staged_.erase(it);

  if (crash_at_commit_) {
    // Power cut between the prepare ack and the log append: nothing is
    // applied, nothing replies, and the replica is gone until repaired.
    available_ = false;
    obs::flight(ctx, "quorum.replica", "crash",
                "replica " + std::to_string(id_) + " crashed mid-" +
                    staged.verb + " (op " + std::to_string(op) + ")");
    return;
  }

  obs::Span<sim::ThreadCtx> span(ctx, "quorum.commit", "quorum");
  store::CounterCore::Outcome out;
  if (stale_) {
    // Byzantine: never applies. Sign the genuine-but-stale state; the
    // signature verifies everywhere, yet the record cannot match the f+1
    // honest replicas that did advance.
    out = core_.peek("SEALGRANT", 0, ByteSpan(staged.mrenclave));
    out.key = core_.key_for(ByteSpan(staged.mrenclave), out.counter);
    if (staged.verb == "ADVANCE") out.key.clear();
  } else {
    out = core_.apply(staged.verb, staged.counter_arg,
                      ByteSpan(staged.mrenclave));
    if (!out.granted) {
      // The core moved between prepare and commit (a concurrent op won the
      // race). Commit-time refusals flow back so the coordinator can still
      // assemble a refusal quorum.
      Writer w;
      w.str("QREF");
      w.u64(op);
      w.str(out.refusal);
      end.send(ctx, w.take());
      return;
    }
  }

  crypto::Digest root;
  uint64_t tree_size = 0;
  Bytes leaf;
  std::vector<crypto::Digest> proof;
  if (!stale_ && !equivocate_) {
    store::CounterAuditEntry entry{staged.verb, staged.mrenclave, out.counter,
                                   ctx.now()};
    leaf = encode_audit_leaf(entry);
    audit_.push_back(entry);
    leaves_.push_back(leaf);
    tree_.append(leaf);
  }
  // (equivocate_: the op applied above, but the log is frozen — every reply
  // will present a fresh root for the frozen size, two signed histories for
  // one log position.)
  if (tree_.size() == 0) return;  // nothing signable yet (empty log)
  tree_size = tree_.size();
  leaf = leaves_.back();
  root = tree_.root();
  proof = tree_.prove(tree_size - 1);
  if (equivocate_) {
    Writer salt;
    salt.raw(ByteSpan(root));
    salt.u64(++equivocation_salt_);
    root = crypto::Sha256::hash(salt.data());
  }
  published_root_ = root;
  ever_signed_ = true;

  // Key exchange + signature, mirroring the single signer: the key is
  // sealed to the requester's fresh DH value, and the signed transcript
  // includes that DH value so the record can never be replayed.
  ctx.work(sim::default_cost_model().dh_keygen_ns +
           sim::default_cost_model().dh_shared_ns);
  crypto::DhKeyPair kp = crypto::dh_generate(rng_);
  auto shared =
      crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(staged.dh_pub_e));
  if (!shared.ok()) return;  // degenerate DH: drop (prepare already vetted)
  Bytes session =
      crypto::hkdf(to_bytes("qrm-channel"), *shared, staged.dh_pub_e, 32);

  sdk::QuorumReplyRecord rec;
  rec.replica_id = id_;
  rec.counter = out.counter;
  rec.key_commit = crypto::digest_bytes(crypto::Sha256::hash(out.key));
  rec.tree_size = tree_size;
  rec.root = crypto::digest_bytes(root);
  rec.leaf = leaf;
  for (const crypto::Digest& d : proof) rec.proof.push_back(crypto::digest_bytes(d));
  rec.dh_pub_s = kp.pub.to_bytes_padded(128);
  rec.enc_key = out.key.empty()
                    ? Bytes{}
                    : crypto::seal(crypto::CipherAlg::kChaCha20, session,
                                   out.key);

  ctx.work(sim::default_cost_model().sig_sign_ns);
  Bytes sig = crypto::sig_sign(
      sig_.sk,
      sdk::quorum_reply_transcript(staged.verb, staged.dh_pub_e, rec), rng_);

  sdk::QuorumReplyEnvelope env;
  env.records.push_back(std::move(rec));
  env.sigs.push_back(std::move(sig));
  obs::metrics().add("quorum.commits");
  Writer w;
  w.str("QGRT");
  w.u64(op);
  w.bytes(sdk::encode_quorum_reply(env));
  end.send(ctx, w.take());
}

}  // namespace mig::quorum
