#include "fleet/fleet.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mig::fleet {

std::vector<std::string> EvacuationReport::quarantined_names() const {
  std::vector<std::string> names;
  for (const VmOutcome& v : vms) {
    if (v.state == VmOutcome::State::kQuarantined) names.push_back(v.name);
  }
  return names;
}

void EvacuationReport::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& m = obs::metrics();
  m.set_gauge("fleet.vms", vms.size());
  m.set_gauge("fleet.migrated", migrated);
  m.set_gauge("fleet.quarantined", quarantined);
  m.set_gauge("fleet.deadlines_missed", deadlines_missed);
  m.set_gauge("fleet.retries", retries);
  m.set_gauge("fleet.preemptions", preemptions);
  m.set_gauge("fleet.peak_concurrent", peak_concurrent);
  m.set_gauge("fleet.total_ns", total_ns);
  m.set_gauge("fleet.downtime_p50_ns", downtime_p50_ns);
  m.set_gauge("fleet.downtime_p99_ns", downtime_p99_ns);
  m.set_gauge("fleet.downtime_max_ns", downtime_max_ns);
}

struct FleetScheduler::Entry {
  VmPlan plan;
  hv::Vm* vm;
  guestos::GuestOs* guest;
  hv::Machine* source;
  hv::Machine* target;
  std::vector<sdk::EnclaveHost*> enclaves;
  std::function<void(sim::Channel&)> channel_hook;

  VmOutcome outcome;
  // Live only while an attempt's session.run() is on its thread; the pause/
  // resume calls from a preempting stop window go through this.
  migration::VmMigrationSession* session = nullptr;
  bool in_stop_window = false;
  // Entries whose pre-copies this VM paused for its stop window.
  std::vector<Entry*> preempted;
};

FleetScheduler::FleetScheduler(hv::World& world, EvacuationPlan plan)
    : world_(&world),
      plan_(std::move(plan)),
      slot_free_(std::make_unique<sim::Event>(world.executor())),
      stop_free_(std::make_unique<sim::Event>(world.executor())) {
  if (plan_.max_concurrent == 0) plan_.max_concurrent = 1;
  if (plan_.share_uplink) {
    uplink_ = std::make_unique<sim::SharedLink>(
        world.cost().net_ns_per_byte_x100);
  }
}

FleetScheduler::~FleetScheduler() = default;

void FleetScheduler::add_vm(const VmPlan& plan, hv::Vm& vm,
                            guestos::GuestOs& guest, hv::Machine& source,
                            hv::Machine& target,
                            std::vector<sdk::EnclaveHost*> enclaves,
                            std::function<void(sim::Channel&)> channel_hook) {
  auto e = std::make_unique<Entry>();
  e->plan = plan;
  e->vm = &vm;
  e->guest = &guest;
  e->source = &source;
  e->target = &target;
  e->enclaves = std::move(enclaves);
  e->channel_hook = std::move(channel_hook);
  e->outcome.name = plan.name;
  entries_.push_back(std::move(e));
}

void FleetScheduler::stop_begin(sim::ThreadCtx& ctx, Entry& e) {
  if (plan_.serialize_stop_windows) {
    // One downtime window at a time: concurrent migrations overlap their
    // pre-copies, never their stop-and-copies.
    while (stop_busy_) {
      stop_free_->reset();
      stop_free_->wait(ctx);
    }
    stop_busy_ = true;
  }
  e.in_stop_window = true;
  obs::instant(ctx, "fleet.stop_window", "fleet", {{"vm", e.plan.name}});
  if (e.plan.deadline_ns != 0) {
    // Deadline-critical: clear the shared link for this VM's final copy by
    // pausing every lower-priority pre-copy until the window resolves.
    for (auto& other : entries_) {
      Entry* o = other.get();
      if (o == &e || o->session == nullptr || o->in_stop_window) continue;
      if (o->plan.priority >= e.plan.priority) continue;
      o->session->pause();
      e.preempted.push_back(o);
      report_.preemptions += 1;
      obs::instant(ctx, "fleet.preempt", "fleet",
                   {{"vm", o->plan.name}, {"by", e.plan.name}});
    }
  }
}

void FleetScheduler::stop_end(sim::ThreadCtx& ctx, Entry& e) {
  for (Entry* o : e.preempted) {
    // The paused session may have finished (or been replaced by a retry)
    // meanwhile; resuming the current one is a no-op then.
    if (o->session != nullptr) o->session->resume(ctx);
  }
  e.preempted.clear();
  e.in_stop_window = false;
  if (plan_.serialize_stop_windows) {
    stop_busy_ = false;
    stop_free_->set(ctx);
  }
}

void FleetScheduler::run_vm(sim::ThreadCtx& ctx, Entry& e) {
  obs::Span<sim::ThreadCtx> vm_span(
      ctx, "fleet.vm", "fleet",
      {{"vm", e.plan.name}, {"priority", e.plan.priority}});
  uint64_t admit_time = ctx.now();
  Status last = OkStatus();
  for (uint64_t attempt = 1; attempt <= e.plan.max_attempts; ++attempt) {
    e.outcome.attempts = attempt;
    migration::VmMigrationSession::Options opts;
    opts.precopy = plan_.precopy;
    opts.cipher = plan_.cipher;
    opts.chunk_bytes = plan_.chunk_bytes;
    opts.seal_workers = plan_.seal_workers;
    opts.counter_service = plan_.counter_service;
    switch (e.plan.mode) {
      case Mode::kPreCopy:
        break;
      case Mode::kIncremental:
        opts.incremental = true;
        break;
      case Mode::kPostCopy:
        opts.post_copy = true;
        break;
      case Mode::kHybrid:
        opts.hybrid = true;
        break;
    }
    if (uplink_ != nullptr) {
      opts.uplink = uplink_.get();
      opts.uplink_weight = e.plan.weight;
    }
    opts.channel_hook = e.channel_hook;
    opts.precopy.stop_begin = [this, &e](sim::ThreadCtx& c) {
      stop_begin(c, e);
    };
    opts.precopy.stop_end = [this, &e](sim::ThreadCtx& c) { stop_end(c, e); };

    migration::VmMigrationSession session(*world_, *e.vm, *e.guest, *e.source,
                                          *e.target, opts);
    for (sdk::EnclaveHost* h : e.enclaves) session.manage(*h);
    e.session = &session;
    Result<hv::MigrationReport> r = session.run(ctx);
    e.session = nullptr;
    if (r.ok()) {
      e.outcome.state = VmOutcome::State::kMigrated;
      e.outcome.report = std::move(*r);
      e.outcome.downtime_ns = e.outcome.report.downtime_ns;
      break;
    }
    last = r.status();
    // A failed attempt may have left this entry holding the stop token (the
    // engine's stop_end hook releases it on every exit, so by construction
    // it does not) — but it may still be flagged paused by a concurrent
    // preemptor whose stop window resolved against the dead session. The
    // next attempt's session starts unpaused either way.
    if (attempt < e.plan.max_attempts) {
      obs::instant(ctx, "fleet.retry", "fleet",
                   {{"vm", e.plan.name}, {"attempt", attempt}});
      report_.retries += 1;
      ctx.sleep(e.plan.retry_backoff_ns << (attempt - 1));
    }
  }
  e.outcome.total_ns = ctx.now() - admit_time;
  if (e.outcome.state == VmOutcome::State::kQuarantined) {
    e.outcome.last_error = last.to_string();
    obs::instant(ctx, "fleet.quarantine", "fleet",
                 {{"vm", e.plan.name}, {"attempts", e.outcome.attempts}});
  }
  if (e.plan.deadline_ns != 0) {
    e.outcome.deadline_met = e.outcome.state == VmOutcome::State::kMigrated &&
                             ctx.now() <= e.plan.deadline_ns;
  }
  obs::instant(ctx, "fleet.vm_done", "fleet",
               {{"vm", e.plan.name},
                {"migrated", e.outcome.state == VmOutcome::State::kMigrated},
                {"attempts", e.outcome.attempts}});
  vm_span.finish({{"migrated",
                   e.outcome.state == VmOutcome::State::kMigrated},
                  {"attempts", e.outcome.attempts}});
}

Result<EvacuationReport> FleetScheduler::run(sim::ThreadCtx& ctx) {
  if (ran_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "one evacuation per scheduler");
  }
  ran_ = true;
  obs::Span<sim::ThreadCtx> span(
      ctx, "fleet.evacuation", "fleet",
      {{"vms", entries_.size()}, {"max_concurrent", plan_.max_concurrent}});
  uint64_t start = ctx.now();

  // Admission order: priority first, registration order among equals.
  std::vector<Entry*> order;
  order.reserve(entries_.size());
  for (auto& e : entries_) order.push_back(e.get());
  std::stable_sort(order.begin(), order.end(), [](Entry* a, Entry* b) {
    return a->plan.priority > b->plan.priority;
  });

  size_t next = 0;
  while (done_ < entries_.size()) {
    while (next < order.size() && active_ < plan_.max_concurrent) {
      Entry* e = order[next++];
      ++active_;
      report_.peak_concurrent = std::max(report_.peak_concurrent, active_);
      e->outcome.wait_ns = ctx.now() - start;
      obs::instant(ctx, "fleet.admit", "fleet",
                   {{"vm", e->plan.name}, {"active", active_}});
      world_->executor().spawn(
          "fleet-" + e->plan.name, [this, e](sim::ThreadCtx& c) {
            run_vm(c, *e);
            --active_;
            ++done_;
            slot_free_->set(c);
          });
    }
    if (done_ >= entries_.size()) break;
    slot_free_->reset();
    slot_free_->wait(ctx);
  }

  report_.total_ns = ctx.now() - start;
  std::vector<uint64_t> downtimes;
  for (auto& e : entries_) {
    if (e->outcome.state == VmOutcome::State::kMigrated) {
      report_.migrated += 1;
      downtimes.push_back(e->outcome.downtime_ns);
    } else {
      report_.quarantined += 1;
    }
    if (!e->outcome.deadline_met) report_.deadlines_missed += 1;
    report_.vms.push_back(e->outcome);
  }
  if (!downtimes.empty()) {
    std::sort(downtimes.begin(), downtimes.end());
    report_.downtime_p50_ns = downtimes[downtimes.size() / 2];
    report_.downtime_p99_ns =
        downtimes[std::min(downtimes.size() - 1, downtimes.size() * 99 / 100)];
    report_.downtime_max_ns = downtimes.back();
  }
  report_.publish_metrics();
  span.finish({{"migrated", report_.migrated},
               {"quarantined", report_.quarantined},
               {"peak_concurrent", report_.peak_concurrent}});
  return report_;
}

}  // namespace mig::fleet
