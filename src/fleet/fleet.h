// Fleet-scale host evacuation orchestrator.
//
// One VmMigrationSession moves one VM. A maintenance event drains a whole
// host: tens of VMs, each possibly carrying enclaves, migrating concurrently
// over one shared NIC. This layer turns a list of per-VM plans into that
// maintenance event:
//
//   - Admission control: at most EvacuationPlan::max_concurrent sessions run
//     at once, admitted in priority order (ties by registration order).
//   - Bandwidth arbitration: every admitted session's bulk direction is a
//     weighted flow on one sim::SharedLink, so a fat VM cannot starve the
//     rest (see sim/network.h).
//   - Stop-window serialization: at most one VM sits in its stop-and-copy
//     downtime window at a time — concurrent migrations overlap their
//     pre-copy (cheap, VM running) but not their downtime (expensive), which
//     keeps per-VM downtime near the single-session floor.
//   - Priority + preemption: a deadline-critical VM entering its stop window
//     pauses lower-priority pre-copies (VmMigrationSession::pause) until its
//     downtime resolves, clearing the link for the final copy.
//   - Retry + quarantine: a failed migration (fault-injected link, crashed
//     peer) is retried with per-VM exponential backoff up to max_attempts;
//     a VM that exhausts retries is quarantined — it stays on the source,
//     and because failed migrations never ADVANCE the enclave counter, its
//     pre-evacuation store snapshots remain the restorable head (fail
//     closed, never fail open).
//
// Everything runs on the shared sim::Executor, so an evacuation is exactly
// as deterministic as a single migration: same seed, same interleaving.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "migration/session.h"

namespace mig::fleet {

// How one VM's bytes should cross (see docs/migration-modes.md for the
// decision guide these map onto).
enum class Mode {
  kPreCopy,      // classic iterative pre-copy (wire v1/v2 checkpoints)
  kIncremental,  // pre-copy + enclave delta rounds (wire v3)
  kPostCopy,     // immediate flip + demand pull (wire v4)
  kHybrid,       // pre-copy until non-converging, then flip (wire v4)
};

// Per-VM evacuation policy.
struct VmPlan {
  std::string name;
  Mode mode = Mode::kPreCopy;
  // Higher runs earlier; a deadline-critical VM should also get the higher
  // priority so its stop window may preempt the rest.
  uint64_t priority = 0;
  // This VM's share of the shared uplink under contention.
  uint64_t weight = 1;
  // Absolute virtual time by which this VM should be off the host; 0 = none.
  // A VM with a deadline preempts lower-priority pre-copies for its stop
  // window. Missing the deadline is reported, not fatal.
  uint64_t deadline_ns = 0;
  // Fault handling: total migration attempts before quarantine, with
  // exponential backoff between them.
  uint64_t max_attempts = 3;
  uint64_t retry_backoff_ns = 500'000'000;  // doubles per attempt
};

// Host-level evacuation policy.
struct EvacuationPlan {
  // Admission control: concurrent sessions allowed. 1 = serial evacuation.
  uint64_t max_concurrent = 4;
  // Arbitrate one shared host NIC across the admitted sessions (weighted
  // fair). Off = each session gets its own private link, as in the
  // single-migration tests.
  bool share_uplink = true;
  // Allow at most one VM in its downtime window at a time.
  bool serialize_stop_windows = true;
  // Base engine parameters for every session (per-VM mode flags are layered
  // on top).
  hv::MigrationParams precopy;
  // Forwarded to every VM's VmMigrationSession.
  crypto::CipherAlg cipher = crypto::CipherAlg::kRc4;
  uint64_t chunk_bytes = 64 * 1024;
  uint64_t seal_workers = 2;
  store::CounterBackend* counter_service = nullptr;
};

// One VM's final outcome.
struct VmOutcome {
  std::string name;
  enum class State {
    kMigrated,     // on the target, enclaves restored
    kQuarantined,  // retries exhausted; still on the source, fail closed
  };
  State state = State::kQuarantined;
  uint64_t attempts = 0;
  uint64_t wait_ns = 0;      // evacuation start -> first admission
  uint64_t total_ns = 0;     // first admission -> final outcome (incl. retries)
  uint64_t downtime_ns = 0;  // from the successful attempt; 0 if quarantined
  bool deadline_met = true;  // false iff a deadline was set and missed
  // The successful attempt's engine report (attribution ledger attached when
  // tracing was on); the last failed attempt's report is not recoverable —
  // see `last_error` for why it died.
  hv::MigrationReport report;
  std::string last_error;
};

// The maintenance event's ledger.
struct EvacuationReport {
  std::vector<VmOutcome> vms;  // registration order
  uint64_t migrated = 0;
  uint64_t quarantined = 0;
  uint64_t deadlines_missed = 0;
  uint64_t retries = 0;      // failed attempts that were retried
  uint64_t preemptions = 0;  // pre-copies paused for a critical stop window
  uint64_t peak_concurrent = 0;
  uint64_t total_ns = 0;  // whole evacuation, first admission -> last outcome
  // Downtime distribution across migrated VMs (0s when none migrated).
  uint64_t downtime_p50_ns = 0;
  uint64_t downtime_p99_ns = 0;
  uint64_t downtime_max_ns = 0;

  // Names of the fail-closed quarantine list, registration order.
  std::vector<std::string> quarantined_names() const;

  // Folds the aggregate fields into the metrics registry as `fleet.*` gauges
  // (schema-registered in docs/trace-schema.md). No-op while metrics are
  // disabled.
  void publish_metrics() const;
};

// Drains a host: registered VMs migrate source -> target under the plan's
// admission/arbitration/preemption policies. One scheduler per maintenance
// event.
class FleetScheduler {
 public:
  FleetScheduler(hv::World& world, EvacuationPlan plan);
  ~FleetScheduler();

  // Registers one VM. All referenced objects must outlive run(). `enclaves`
  // lists the enclave hosts to migrate with the VM (empty for a plain VM);
  // `channel_hook` (optional) sees the migration channel of every attempt —
  // the per-VM fault-injection seam (install a sim::FaultPlan there).
  void add_vm(const VmPlan& plan, hv::Vm& vm, guestos::GuestOs& guest,
              hv::Machine& source, hv::Machine& target,
              std::vector<sdk::EnclaveHost*> enclaves = {},
              std::function<void(sim::Channel&)> channel_hook = nullptr);

  // Runs the evacuation on the calling sim thread; blocks (in virtual time)
  // until every VM is migrated or quarantined. Call once.
  Result<EvacuationReport> run(sim::ThreadCtx& ctx);

 private:
  struct Entry;

  void run_vm(sim::ThreadCtx& ctx, Entry& e);
  void stop_begin(sim::ThreadCtx& ctx, Entry& e);
  void stop_end(sim::ThreadCtx& ctx, Entry& e);

  hv::World* world_;
  EvacuationPlan plan_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unique_ptr<sim::SharedLink> uplink_;

  // Coordinator state (one writer at a time — cooperative scheduler).
  uint64_t active_ = 0;
  uint64_t done_ = 0;
  std::unique_ptr<sim::Event> slot_free_;

  // Stop-window token (serialize_stop_windows).
  bool stop_busy_ = false;
  std::unique_ptr<sim::Event> stop_free_;

  EvacuationReport report_;
  bool ran_ = false;
};

}  // namespace mig::fleet
