// Module anchor; real sources accompany it.
namespace mig { const char* k_attacks_module = "attacks"; }
