// Adversarial components for the paper's threat model (§II-D): the OS and
// hypervisor are controlled by the attacker. These classes implement the
// concrete attacks of §IV-A and §V-A; the tests in tests/attacks_test.cc run
// each against both the strawman and the paper's defense.
#pragma once

#include "guestos/guest_os.h"
#include "sdk/host.h"
#include "sim/fault.h"

namespace mig::attacks {

// §IV-A data-consistency attack: "the malicious OS returns OK but actually
// does not stop the worker thread."
class MaliciousGuestOs : public guestos::GuestOs {
 public:
  using guestos::GuestOs::GuestOs;

  Status stop_other_threads(sim::ThreadCtx& ctx, guestos::Process& process,
                            sim::ThreadId requester) override {
    ctx.work_atomic(cost().syscall_ns);
    (void)process;
    (void)requester;
    ++lies_told_;
    return OkStatus();  // "OK" — but nothing was stopped.
  }

  void resume_other_threads(sim::ThreadCtx&, guestos::Process&,
                            sim::ThreadId) override {}

  int lies_told() const { return lies_told_; }

 private:
  int lies_told_ = 0;
};

// Strawman checkpointing that trusts the OS (what the paper's two-phase
// protocol replaces): ask the OS to stop all other threads, then dump.
// Returns the sealed checkpoint. With an honest OS the result is consistent;
// with MaliciousGuestOs a racing worker corrupts it.
Result<Bytes> naive_checkpoint(sim::ThreadCtx& ctx, guestos::GuestOs& os,
                               guestos::Process& process,
                               sdk::EnclaveHost& host);

// A malicious network operator (§II-D: the cloud provider owns the wire).
// Wraps sim::FaultPlan as an attacker: cut the migration link at a chosen
// protocol moment, silently discard frames, or flip ciphertext bits. The
// paper's protocol must degrade to a clean abort — never to a hang, and
// never to two live enclaves.
class NetworkSaboteur {
 public:
  // Cuts one direction of `ch` permanently when the nth message crosses it.
  NetworkSaboteur& cut_after(sim::Channel& ch, bool a_to_b, uint64_t nth) {
    plan_.sever_at_message(nth);
    plan_.install(a_to_b ? ch.a_to_b() : ch.b_to_a());
    return *this;
  }

  // Flips a bit in the nth message of one direction (corruption attack).
  NetworkSaboteur& tamper(sim::Channel& ch, bool a_to_b, uint64_t nth,
                          size_t offset = 0) {
    plan_.corrupt_message(nth, offset);
    plan_.install(a_to_b ? ch.a_to_b() : ch.b_to_a());
    return *this;
  }

  const sim::FaultPlan& plan() const { return plan_; }

 private:
  sim::FaultPlan plan_;
};

// Records every message crossing a pipe (the untrusted network's view) so a
// replay attacker can resend it later.
class WireRecorder {
 public:
  void attach(sim::Pipe& pipe) {
    pipe.set_tap([this](Bytes& message) { recorded_.push_back(message); });
  }
  const std::vector<Bytes>& recorded() const { return recorded_; }

 private:
  std::vector<Bytes> recorded_;
};

}  // namespace mig::attacks
