#include "attacks/malicious_os.h"

namespace mig::attacks {

Result<Bytes> naive_checkpoint(sim::ThreadCtx& ctx, guestos::GuestOs& os,
                               guestos::Process& process,
                               sdk::EnclaveHost& host) {
  // The strawman's only safety step: ask the OS. A malicious OS says "OK"
  // and keeps the workers running.
  MIG_RETURN_IF_ERROR(os.stop_other_threads(ctx, process, ctx.id()));
  sdk::ControlCmd cmd;
  cmd.type = sdk::ControlCmd::Type::kNaiveDump;
  sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
  os.resume_other_threads(ctx, process, ctx.id());
  MIG_RETURN_IF_ERROR(reply.status);
  return std::move(reply.blob);
}

}  // namespace mig::attacks
