// Guest operating system model (§VI-B, §VI-D of the paper).
//
// Owns the processes running in the VM, the SGX driver, and the migration
// pipeline of Fig. 8: when the hypervisor injects the migration upcall, the
// guest refuses new enclave creation, sends the migration signal (SIGUSR1)
// to every enclave process, waits for each process's SGX library to report
// its enclaves ready, and tells the hypervisor to proceed. On the target it
// rebuilds enclaves one by one (which is why Fig. 10(a) is linear).
//
// The guest OS is UNTRUSTED: the enclave-side protocol never depends on it
// for anything but liveness. MaliciousGuestOs (attacks/malicious_os.h)
// overrides the scheduling services to mount the §IV-A data-consistency
// attack against naive checkpointing.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "guestos/sgx_driver.h"
#include "hv/machine.h"
#include "hv/vm.h"

namespace mig::guestos {

class GuestOs;

// A guest process. Host-side application threads are sim threads tracked
// here; the in-process SGX library registers migration handlers with it.
class Process {
 public:
  Process(GuestOs& os, uint64_t pid, std::string name)
      : os_(&os), pid_(pid), name_(std::move(name)) {}

  uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  GuestOs& os() { return *os_; }

  // Spawns an application thread (tracked for stop_other_threads()).
  sim::ThreadId spawn_thread(std::string name,
                             std::function<void(sim::ThreadCtx&)> fn,
                             bool daemon = false);
  const std::vector<sim::ThreadId>& threads() const { return threads_; }

  // Registered by the SGX library (sdk::EnclaveHost). The prepare handler
  // runs on the signal-delivery thread, drives the control threads, and
  // returns the total checkpoint bytes dumped; the resume handler rebuilds
  // and restores this process's enclaves on the target.
  using PrepareFn = std::function<Result<uint64_t>(sim::ThreadCtx&)>;
  using ResumeFn = std::function<Status(sim::ThreadCtx&)>;
  // The cancel handler undoes a prepare whose migration later aborted:
  // delete Kmigrate inside each enclave and unfreeze the parked workers.
  using CancelFn = std::function<Status(sim::ThreadCtx&)>;
  void register_migration_handlers(PrepareFn prepare, ResumeFn resume,
                                   CancelFn cancel = nullptr) {
    prepare_ = std::move(prepare);
    resume_ = std::move(resume);
    cancel_ = std::move(cancel);
  }
  bool has_enclaves() const { return static_cast<bool>(prepare_); }
  // Incremental checkpointing (wire format v3). Registered alongside the
  // migration handlers when the SGX library supports delta dumps: `begin`
  // runs kDumpBaseline in every enclave (workers keep running) and `round`
  // ships the re-dirtied pages after each pre-copy round. Both return the
  // wire bytes produced so the engine can account for them.
  using DeltaFn = std::function<Result<uint64_t>(sim::ThreadCtx&)>;
  void register_delta_handlers(DeltaFn begin, DeltaFn round) {
    delta_begin_ = std::move(begin);
    delta_round_ = std::move(round);
  }
  // Drops every registered handler. The registrar must call this when it is
  // torn down (handlers capture it): a retried migration re-registers on its
  // next attempt, and a process whose registrar died must read as having no
  // migratable enclaves rather than invoke a dangling callback.
  void clear_migration_handlers() {
    prepare_ = nullptr;
    resume_ = nullptr;
    cancel_ = nullptr;
    delta_begin_ = nullptr;
    delta_round_ = nullptr;
  }
  bool has_delta_handlers() const { return static_cast<bool>(delta_begin_); }
  size_t enclave_count = 0;  // maintained by the SGX library

 private:
  friend class GuestOs;
  GuestOs* os_;
  uint64_t pid_;
  std::string name_;
  std::vector<sim::ThreadId> threads_;
  PrepareFn prepare_;
  ResumeFn resume_;
  CancelFn cancel_;
  DeltaFn delta_begin_;
  DeltaFn delta_round_;
};

class GuestOs : public hv::GuestHooks {
 public:
  GuestOs(hv::Machine& machine, hv::Vm& vm);
  ~GuestOs() override;

  Process& create_process(std::string name);
  SgxDriver& driver() { return *driver_; }
  hv::Machine& machine() { return *machine_; }
  hv::Vm& vm() { return *vm_; }
  sim::Executor& executor() { return machine_->executor(); }
  const sim::CostModel& cost() const { return machine_->cost(); }

  // ioctl path used by the SGX library; refused during migration (§VI-D:
  // "it will refuse to create any new enclaves till the end of migration").
  Result<sgx::EnclaveId> create_enclave(sim::ThreadCtx& ctx,
                                        Process& process,
                                        const sgx::EnclaveImage& image);
  Status destroy_enclave(sim::ThreadCtx& ctx, Process& process,
                         sgx::EnclaveId eid);
  // Crash model: the enclave dies with the machine/VM (EPC wiped, no
  // EREMOVE ceremony, busy TCSs ignored). For crash-recovery tests.
  void crash_enclave(sim::ThreadCtx& ctx, Process& process, sgx::EnclaveId eid);

  // ---- scheduling services (used by *naive* checkpointing; the paper's
  // two-phase protocol deliberately does not trust these) ----
  // Suspends all threads of `process` except `requester`. The honest
  // implementation actually parks them; a malicious OS lies.
  virtual Status stop_other_threads(sim::ThreadCtx& ctx, Process& process,
                                    sim::ThreadId requester);
  virtual void resume_other_threads(sim::ThreadCtx& ctx, Process& process,
                                    sim::ThreadId requester);

  // ---- hv::GuestHooks (Fig. 8 pipeline) ----
  Result<uint64_t> prepare_enclaves_for_migration(sim::ThreadCtx& ctx) override;
  Result<uint64_t> resume_enclaves_after_migration(sim::ThreadCtx& ctx) override;
  Status cancel_enclave_migration(sim::ThreadCtx& ctx) override;
  uint64_t enclave_count() const override;
  bool ready_to_stop() override {
    return !stop_gate_ || stop_gate_();
  }
  // Incremental checkpointing: fan the engine's delta hooks out to every
  // process that registered delta handlers (serially — the control threads
  // share the untrusted channel budget anyway). Returns summed wire bytes;
  // 0 when no process does incremental dumps, which keeps the engine on the
  // classic path.
  Result<uint64_t> begin_enclave_delta(sim::ThreadCtx& ctx) override;
  Result<uint64_t> enclave_delta_round(sim::ThreadCtx& ctx) override;
  // Lets migration infrastructure delay stop-and-copy (e.g. until agent key
  // pre-delivery finished).
  void set_stop_gate(std::function<bool()> gate) {
    stop_gate_ = std::move(gate);
  }
  // Post-copy fail-closed teardown: the engine calls postcopy_abort() when
  // the source vanishes mid-pull. The migration session installs the actual
  // teardown (destroy half-restored enclaves) here; default is a no-op.
  void postcopy_abort(sim::ThreadCtx& ctx) override {
    if (postcopy_abort_) postcopy_abort_(ctx);
  }
  void set_postcopy_abort(std::function<void(sim::ThreadCtx&)> fn) {
    postcopy_abort_ = std::move(fn);
  }

  bool migration_in_progress() const { return migration_in_progress_; }

  // Arranges for the guest to re-attach to `target` when it resumes there
  // (the orchestrator calls this before starting the migration; the "device
  // re-probe" happens inside resume_enclaves_after_migration).
  void set_migration_target(hv::Machine& target) { pending_target_ = &target; }

 private:
  hv::Machine* machine_;
  hv::Vm* vm_;
  std::unique_ptr<SgxDriver> driver_;
  std::vector<std::unique_ptr<Process>> processes_;
  uint64_t next_pid_ = 1;
  bool migration_in_progress_ = false;
  hv::Machine* pending_target_ = nullptr;
  std::function<bool()> stop_gate_;
  std::function<void(sim::ThreadCtx&)> postcopy_abort_;
};

}  // namespace mig::guestos
