#include "guestos/sgx_driver.h"

#include "util/check.h"

namespace mig::guestos {

SgxDriver::SgxDriver(hv::Machine& machine, hv::Vm& vm)
    : machine_(&machine), vm_(&vm) {
  install_fault_handler();
}

SgxDriver::~SgxDriver() {
  // Leave the hardware hook dangling-free.
  machine_->hw().set_fault_handler(nullptr);
}

void SgxDriver::install_fault_handler() {
  machine_->hw().set_fault_handler(
      [this](sim::ThreadCtx& ctx, sgx::EnclaveId eid, uint64_t lin) {
        return handle_fault(ctx, eid, lin);
      });
}

void SgxDriver::rebind(hv::Machine& machine) {
  machine_->hw().set_fault_handler(nullptr);
  machine_ = &machine;
  // The old machine's EPC content is unreachable from here (by design — the
  // whole paper exists because this state cannot follow the VM). Drop all
  // bookkeeping; enclaves will be rebuilt through create_enclave.
  lru_.clear();
  lru_index_.clear();
  evicted_.clear();
  free_va_slots_.clear();
  enclave_pages_.clear();
  install_fault_handler();
}

Result<std::pair<uint64_t, int>> SgxDriver::alloc_va_slot(sim::ThreadCtx& ctx) {
  if (free_va_slots_.empty()) {
    // EPA needs a free EPC page. It must NOT evict to get one — eviction is
    // what needs the VA slot in the first place — so the driver keeps VA
    // capacity provisioned ahead of pressure (see ensure_va_headroom) and
    // this path only tries an opportunistic allocation.
    auto va = machine_->hw().epa(ctx);
    if (!va.ok())
      return Error(ErrorCode::kResourceExhausted,
                   "no VA capacity left (EPC fully pinned)");
    for (int s = sgx::kVaSlotsPerPage - 1; s >= 0; --s)
      free_va_slots_.emplace_back(*va, s);
  }
  auto slot = free_va_slots_.back();
  free_va_slots_.pop_back();
  return slot;
}

void SgxDriver::ensure_va_headroom(sim::ThreadCtx& ctx) {
  // Keep at least one VA page's worth of slots available while EPC is
  // getting tight, so eviction never deadlocks on its own bookkeeping.
  if (!free_va_slots_.empty()) return;
  auto va = machine_->hw().epa(ctx);
  if (!va.ok()) return;  // opportunistic; alloc_va_slot reports exhaustion
  for (int s = sgx::kVaSlotsPerPage - 1; s >= 0; --s)
    free_va_slots_.emplace_back(*va, s);
}

bool SgxDriver::evict_one(sim::ThreadCtx& ctx) {
  // Walk the LRU list until the hardware accepts an eviction (busy TCS pages
  // are skipped).
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    PageKey key = *it;
    auto va = alloc_va_slot(ctx);
    if (!va.ok()) return false;
    auto evicted = machine_->hw().ewb(ctx, key.eid, key.lin, va->first,
                                      va->second);
    if (!evicted.ok()) {
      free_va_slots_.push_back(*va);
      continue;
    }
    evicted_[key] = *evicted;
    lru_index_.erase(key);
    lru_.erase(it);
    ++evictions_;
    return true;
  }
  return false;
}

bool SgxDriver::handle_fault(sim::ThreadCtx& ctx, sgx::EnclaveId eid,
                             uint64_t lin) {
  PageKey key{eid, lin};
  auto it = evicted_.find(key);
  if (it == evicted_.end()) return false;  // not ours: genuine bug upstream
  // ELDB needs a free page; evict if the EPC is packed.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status st = machine_->hw().eldb(ctx, it->second);
    if (st.ok()) {
      free_va_slots_.emplace_back(it->second.va_page, it->second.va_slot);
      evicted_.erase(it);
      lru_.push_back(key);
      lru_index_[key] = std::prev(lru_.end());
      ++faults_served_;
      return true;
    }
    if (st.code() != ErrorCode::kResourceExhausted) return false;
    if (!evict_one(ctx)) return false;
  }
  return false;
}

Result<sgx::EnclaveId> SgxDriver::create_enclave(sim::ThreadCtx& ctx,
                                                 const sgx::EnclaveImage& image) {
  // Reserve address space, then ECREATE (retrying through evictions: every
  // build step may need a fresh EPC page).
  auto with_retry = [&](auto&& op) -> Status {
    for (int attempt = 0; attempt < 64; ++attempt) {
      Status st = op();
      if (st.code() != ErrorCode::kResourceExhausted) return st;
      if (!evict_one(ctx))
        return Error(ErrorCode::kResourceExhausted,
                     "EPC exhausted and nothing evictable");
    }
    return Error(ErrorCode::kResourceExhausted, "EPC thrash during build");
  };

  ensure_va_headroom(ctx);
  sgx::EnclaveId eid = sgx::kNoEnclave;
  MIG_RETURN_IF_ERROR(with_retry([&] {
    auto r = machine_->hw().ecreate(ctx, image.base, image.size,
                                    image.isv_prod_id, image.isv_svn);
    if (r.ok()) {
      eid = *r;
      return OkStatus();
    }
    return r.status();
  }));

  for (const sgx::ImagePage& page : image.pages) {
    uint64_t lin = image.base + page.offset;
    Status st = with_retry([&] {
      return machine_->hw().eadd(ctx, eid, lin, page.type, page.perms,
                                 page.content);
    });
    if (!st.ok()) {
      (void)machine_->hw().eremove_enclave(ctx, eid);
      return st;
    }
    st = machine_->hw().eextend(ctx, eid, lin);
    if (!st.ok()) {
      (void)machine_->hw().eremove_enclave(ctx, eid);
      return st;
    }
    PageKey key{eid, lin};
    lru_.push_back(key);
    lru_index_[key] = std::prev(lru_.end());
    enclave_pages_[eid].push_back(lin);
  }

  Status st = machine_->hw().einit(ctx, eid, image.sigstruct);
  if (!st.ok()) {
    (void)machine_->hw().eremove_enclave(ctx, eid);
    return st;
  }
  return eid;
}

Status SgxDriver::destroy_enclave(sim::ThreadCtx& ctx, sgx::EnclaveId eid) {
  MIG_RETURN_IF_ERROR(machine_->hw().eremove_enclave(ctx, eid));
  forget_enclave(eid);
  return OkStatus();
}

void SgxDriver::crash_enclave(sim::ThreadCtx& ctx, sgx::EnclaveId eid) {
  machine_->hw().force_reclaim_enclave(ctx, eid);
  forget_enclave(eid);
}

void SgxDriver::forget_enclave(sgx::EnclaveId eid) {
  auto pages = enclave_pages_.find(eid);
  if (pages != enclave_pages_.end()) {
    for (uint64_t lin : pages->second) {
      PageKey key{eid, lin};
      auto it = lru_index_.find(key);
      if (it != lru_index_.end()) {
        lru_.erase(it->second);
        lru_index_.erase(it);
      }
      auto ev = evicted_.find(key);
      if (ev != evicted_.end()) {
        // The VA slot still holds this page's version in hardware; it cannot
        // be reused for a fresh EWB, so it is leaked here (as a real driver
        // would reclaim it with EREMOVE on the VA page — omitted).
        evicted_.erase(ev);
      }
    }
    enclave_pages_.erase(pages);
  }
}

}  // namespace mig::guestos
