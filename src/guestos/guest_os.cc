#include "guestos/guest_os.h"

#include "util/check.h"

namespace mig::guestos {

sim::ThreadId Process::spawn_thread(std::string name,
                                    std::function<void(sim::ThreadCtx&)> fn,
                                    bool daemon) {
  sim::ThreadId id = os_->executor().spawn(
      name_ + "/" + std::move(name), std::move(fn), daemon);
  threads_.push_back(id);
  return id;
}

GuestOs::GuestOs(hv::Machine& machine, hv::Vm& vm)
    : machine_(&machine), vm_(&vm),
      driver_(std::make_unique<SgxDriver>(machine, vm)) {
  vm.set_hooks(this);
  machine.hypervisor().attach_vm(vm, machine.hw().total_epc_pages());
}

GuestOs::~GuestOs() {
  vm_->set_hooks(nullptr);
  machine_->hypervisor().detach_vm(*vm_);
}

Process& GuestOs::create_process(std::string name) {
  processes_.push_back(
      std::make_unique<Process>(*this, next_pid_++, std::move(name)));
  return *processes_.back();
}

Result<sgx::EnclaveId> GuestOs::create_enclave(sim::ThreadCtx& ctx,
                                               Process& process,
                                               const sgx::EnclaveImage& image) {
  ctx.work_atomic(cost().syscall_ns);
  if (migration_in_progress_)
    return Error(ErrorCode::kUnavailable,
                 "enclave creation refused: migration in progress");
  auto eid = driver_->create_enclave(ctx, image);
  if (eid.ok()) process.enclave_count += 1;
  return eid;
}

Status GuestOs::destroy_enclave(sim::ThreadCtx& ctx, Process& process,
                                sgx::EnclaveId eid) {
  ctx.work_atomic(cost().syscall_ns);
  MIG_RETURN_IF_ERROR(driver_->destroy_enclave(ctx, eid));
  if (process.enclave_count > 0) process.enclave_count -= 1;
  return OkStatus();
}

void GuestOs::crash_enclave(sim::ThreadCtx& ctx, Process& process,
                            sgx::EnclaveId eid) {
  driver_->crash_enclave(ctx, eid);
  if (process.enclave_count > 0) process.enclave_count -= 1;
}

Status GuestOs::stop_other_threads(sim::ThreadCtx& ctx, Process& process,
                                   sim::ThreadId requester) {
  ctx.work_atomic(cost().syscall_ns);
  for (sim::ThreadId id : process.threads()) {
    if (id == requester || executor().finished(id)) continue;
    ctx.work_atomic(cost().context_switch_ns);
    executor().suspend(id);
  }
  return OkStatus();
}

void GuestOs::resume_other_threads(sim::ThreadCtx& ctx, Process& process,
                                   sim::ThreadId requester) {
  ctx.work_atomic(cost().syscall_ns);
  for (sim::ThreadId id : process.threads()) {
    if (id == requester || executor().finished(id)) continue;
    ctx.work_atomic(cost().thread_wakeup_ns);
    executor().resume(id, ctx.now());
  }
}

Result<uint64_t> GuestOs::prepare_enclaves_for_migration(sim::ThreadCtx& ctx) {
  // Step 2: upcall received. Step 3: refuse new enclaves, signal each
  // enclave process; its SGX library's handler drives the control threads
  // (steps 4-5). Step 6 completes when every process reports ready.
  ctx.work_atomic(cost().upcall_interrupt_ns);
  migration_in_progress_ = true;

  struct Pending {
    sim::Event done;
    Result<uint64_t> bytes = Error(ErrorCode::kInternal, "unset");
    Pending(sim::Executor& e) : done(e) {}
  };
  std::vector<std::unique_ptr<Pending>> pending;
  for (auto& proc : processes_) {
    if (!proc->has_enclaves()) continue;
    auto p = std::make_unique<Pending>(executor());
    Pending* pp = p.get();
    Process* process = proc.get();
    ctx.work_atomic(cost().signal_deliver_ns);
    // The signal handler runs on a thread of the target process.
    process->spawn_thread("sigusr1", [this, pp, process](sim::ThreadCtx& c) {
      c.work_atomic(cost().context_switch_ns);
      pp->bytes = process->prepare_(c);
      pp->done.set(c);
    });
    pending.push_back(std::move(p));
  }
  uint64_t total_bytes = 0;
  for (auto& p : pending) {
    p->done.wait(ctx);
    if (!p->bytes.ok()) return p->bytes.status();
    total_bytes += *p->bytes;
  }
  // Step 6-7: tell the hypervisor we are ready (hypercall).
  ctx.work_atomic(cost().hypercall_ns);
  return total_bytes;
}

Result<uint64_t> GuestOs::resume_enclaves_after_migration(sim::ThreadCtx& ctx) {
  uint64_t start = ctx.now();
  // The VM just resumed on the target: re-probe the SGX "device".
  if (pending_target_ != nullptr) {
    machine_->hypervisor().detach_vm(*vm_);
    machine_ = pending_target_;
    pending_target_ = nullptr;
    machine_->hypervisor().attach_vm(*vm_, machine_->hw().total_epc_pages());
    driver_->rebind(*machine_);
  }
  // The memory move is complete: enclave creation is legal again (the
  // rebuild below depends on it).
  migration_in_progress_ = false;
  // Rebuild one process at a time, one enclave at a time (the paper notes
  // EADD/EEXTEND cannot run concurrently on one SECS, so restore is serial —
  // Fig. 10(a) grows linearly).
  for (auto& proc : processes_) {
    if (!proc->resume_) continue;
    MIG_RETURN_IF_ERROR(proc->resume_(ctx));
  }
  return ctx.now() - start;
}

Result<uint64_t> GuestOs::begin_enclave_delta(sim::ThreadCtx& ctx) {
  uint64_t total = 0;
  for (auto& proc : processes_) {
    if (!proc->delta_begin_) continue;
    auto bytes = proc->delta_begin_(ctx);
    if (!bytes.ok()) return bytes.status();
    total += *bytes;
  }
  return total;
}

Result<uint64_t> GuestOs::enclave_delta_round(sim::ThreadCtx& ctx) {
  uint64_t total = 0;
  for (auto& proc : processes_) {
    if (!proc->delta_round_) continue;
    auto bytes = proc->delta_round_(ctx);
    if (!bytes.ok()) return bytes.status();
    total += *bytes;
  }
  return total;
}

Status GuestOs::cancel_enclave_migration(sim::ThreadCtx& ctx) {
  ctx.work_atomic(cost().upcall_interrupt_ns);
  // Migration is off: allow enclave creation again and forget the pending
  // re-attach (the VM stays on this machine).
  migration_in_progress_ = false;
  pending_target_ = nullptr;
  // Undo every process's prepare. Keep going on failure so one wedged
  // process cannot keep the others frozen; the first error is reported.
  Status first = OkStatus();
  for (auto& proc : processes_) {
    if (!proc->cancel_) continue;
    Status st = proc->cancel_(ctx);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

uint64_t GuestOs::enclave_count() const {
  uint64_t n = 0;
  for (const auto& proc : processes_) n += proc->enclave_count;
  return n;
}

}  // namespace mig::guestos
