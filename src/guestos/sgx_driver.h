// Guest-OS SGX driver (§VI-B of the paper).
//
// Responsibilities, mirroring the paper's driver:
//  * enclave creation/destruction through ECREATE/EADD/EEXTEND/EINIT and
//    EREMOVE, with an enclave-ID handle table;
//  * virtual-EPC management: when the EPC is full, evict pages with a
//    simplified LRU via EWB into "normal memory" (the evicted-page store),
//    recording MAC/version/ciphertext for later ELDB;
//  * demand paging: the hardware's fault hook lands here and swaps the page
//    back in (evicting something else if needed);
//  * bookkeeping (which process owns which enclave) used to rebuild enclaves
//    on the target machine after migration.
//
// The driver is UNTRUSTED in the paper's threat model: nothing here may be
// relied on for confidentiality/integrity — it only provides availability.
#pragma once

#include <deque>
#include <list>
#include <map>
#include <vector>

#include "hv/machine.h"
#include "hv/hypervisor.h"
#include "sgx/hardware.h"
#include "sgx/image.h"

namespace mig::guestos {

class SgxDriver {
 public:
  SgxDriver(hv::Machine& machine, hv::Vm& vm);
  ~SgxDriver();

  SgxDriver(const SgxDriver&) = delete;
  SgxDriver& operator=(const SgxDriver&) = delete;

  // ioctl(CREATE): builds a runnable enclave from `image`. Evicts as needed.
  Result<sgx::EnclaveId> create_enclave(sim::ThreadCtx& ctx,
                                        const sgx::EnclaveImage& image);
  // ioctl(DESTROY).
  Status destroy_enclave(sim::ThreadCtx& ctx, sgx::EnclaveId eid);

  // Crash model: the enclave's EPC vanished (power loss / VM kill via
  // SgxHardware::force_reclaim_enclave); drop all driver bookkeeping for it
  // without issuing EREMOVE.
  void crash_enclave(sim::ThreadCtx& ctx, sgx::EnclaveId eid);

  // Rebinds the driver to a new machine after VM migration (the guest's
  // device state says "SGX device", the backing hardware changed).
  void rebind(hv::Machine& machine);

  sgx::SgxHardware& hw() { return machine_->hw(); }
  hv::Machine& machine() { return *machine_; }

  // Eviction statistics (tests + benches).
  uint64_t evictions() const { return evictions_; }
  uint64_t faults_served() const { return faults_served_; }

 private:
  // Makes at least one EPC page free, evicting the least-recently-loaded
  // page (simplified LRU, as in the paper). Returns false if nothing can be
  // evicted.
  bool evict_one(sim::ThreadCtx& ctx);
  Result<std::pair<uint64_t, int>> alloc_va_slot(sim::ThreadCtx& ctx);
  void ensure_va_headroom(sim::ThreadCtx& ctx);
  bool handle_fault(sim::ThreadCtx& ctx, sgx::EnclaveId eid, uint64_t lin);
  void install_fault_handler();
  void forget_enclave(sgx::EnclaveId eid);

  hv::Machine* machine_;
  hv::Vm* vm_;

  struct PageKey {
    sgx::EnclaveId eid;
    uint64_t lin;
    auto operator<=>(const PageKey&) const = default;
  };
  // Eviction candidates in load order (simplified LRU).
  std::list<PageKey> lru_;
  std::map<PageKey, std::list<PageKey>::iterator> lru_index_;
  // Evicted pages parked in normal memory.
  std::map<PageKey, sgx::EvictedPage> evicted_;
  // VA slot free list.
  std::vector<std::pair<uint64_t, int>> free_va_slots_;
  std::map<sgx::EnclaveId, std::vector<uint64_t>> enclave_pages_;
  uint64_t evictions_ = 0;
  uint64_t faults_served_ = 0;
};

}  // namespace mig::guestos
