// Module anchor; real sources accompany it.
namespace mig { const char* k_guestos_module = "guestos"; }
