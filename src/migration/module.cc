// Module anchor; real sources accompany it.
namespace mig { const char* k_migration_module = "migration"; }
