#include "migration/page_service.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdk/chunk_wire.h"
#include "util/status.h"

namespace mig::migration {

Result<uint64_t> serve_pages(sim::ThreadCtx& ctx,
                             sdk::ControlMailbox& source_mailbox,
                             sim::Channel::End end,
                             const PageServiceOptions& opts) {
  obs::Span<sim::ThreadCtx> span(ctx, "postcopy.service", "migration");
  uint64_t frames = 0;
  for (;;) {
    std::optional<Bytes> frame = end.recv_timeout(ctx, opts.idle_timeout_ns);
    if (!frame) break;  // quiet or severed link: the client is gone
    std::optional<sdk::PageFrameKind> kind = sdk::page_frame_kind(*frame);
    if (!kind) {
      obs::flight(ctx, "migration.page_service", "bad_frame",
                  "non-MGP4 frame");
      return Error(ErrorCode::kInvalidArgument,
                   "page service received a non-MGP4 frame");
    }
    if (*kind == sdk::PageFrameKind::kDone) break;
    if (*kind == sdk::PageFrameKind::kReply) {
      obs::flight(ctx, "migration.page_service", "bad_frame",
                  "reply frame on the request path (protocol confusion)");
      return Error(ErrorCode::kInvalidArgument,
                   "page service received a reply frame (protocol confusion)");
    }

    // A request wider than max_batch is split across several enclave posts so
    // one greedy client cannot monopolize the control mailbox; each slice
    // produces its own reply frame (the chain keeps them ordered).
    auto parsed = sdk::parse_page_request(*frame);
    if (!parsed.ok()) {
      // Forward the malformed frame anyway: the enclave's defensive parse is
      // the authoritative judge, and its error is what the test matrix pins.
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kServePages;
      cmd.blob = std::move(*frame);
      cmd.prefetch_pages = opts.prefetch_pages;
      sdk::ControlReply r = source_mailbox.post(ctx, std::move(cmd));
      MIG_RETURN_IF_ERROR(r.status);
      obs::flight(ctx, "migration.page_service", "bad_frame",
                  "enclave accepted a malformed frame");
      return Error(ErrorCode::kInternal, "enclave accepted a malformed frame");
    }
    const sdk::PageRequest& req = *parsed;
    for (size_t off = 0; off < req.pages.size();
         off += static_cast<size_t>(opts.max_batch)) {
      sdk::PageRequest slice;
      slice.epoch = req.epoch;
      size_t n = std::min<size_t>(opts.max_batch, req.pages.size() - off);
      slice.pages.assign(req.pages.begin() + off, req.pages.begin() + off + n);
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kServePages;
      cmd.blob = sdk::encode_page_request(slice);
      cmd.prefetch_pages = opts.prefetch_pages;
      sdk::ControlReply r = source_mailbox.post(ctx, std::move(cmd));
      MIG_RETURN_IF_ERROR(r.status);
      end.send(ctx, std::move(r.blob));
      ++frames;
    }
  }
  span.finish({{"frames", frames}});
  return frames;
}

Result<PagePullStats> pull_pages(sim::ThreadCtx& ctx,
                                 sdk::ControlMailbox& target_mailbox,
                                 sim::Channel::End end,
                                 std::vector<uint64_t> pending, uint64_t epoch,
                                 const PagePullOptions& opts) {
  obs::Span<sim::ThreadCtx> span(ctx, "postcopy.pull", "migration",
                                 {{"pages", pending.size()}});
  PagePullStats stats;
  while (!pending.empty()) {
    sdk::PageRequest req;
    req.epoch = epoch;
    size_t n = std::min<size_t>(opts.demand_batch, pending.size());
    req.pages.assign(pending.begin(), pending.begin() + n);
    end.send(ctx, sdk::encode_page_request(req));
    ++stats.requests;

    std::optional<Bytes> reply_frame =
        end.recv_timeout(ctx, opts.reply_timeout_ns);
    if (!reply_frame) {
      // FAIL CLOSED: the source went quiet mid-tail. The target must not run
      // on a partial image, so order it to self-destroy before reporting the
      // outage. The source's sealed pre-migration snapshot stays restorable
      // because the counter epoch was never advanced.
      sdk::ControlCmd abort_cmd;
      abort_cmd.type = sdk::ControlCmd::Type::kAbortPostcopy;
      (void)target_mailbox.post(ctx, abort_cmd);  // always reports kAborted
      span.finish({{"outcome", "fail_closed"}});
      obs::flight(ctx, "migration.page_service", "fail_closed",
                  "phase=postcopy_pull source quiet, " +
                      std::to_string(pending.size()) +
                      " page(s) outstanding; target destroyed");
      return Error(ErrorCode::kDeadlineExceeded,
                   "post-copy source went quiet with " +
                       std::to_string(pending.size()) +
                       " page(s) outstanding; target destroyed (fail closed)");
    }
    stats.bytes += reply_frame->size();

    sdk::ControlCmd apply;
    apply.type = sdk::ControlCmd::Type::kApplyPages;
    apply.blob = std::move(*reply_frame);
    sdk::ControlReply r = target_mailbox.post(ctx, std::move(apply));
    MIG_RETURN_IF_ERROR(r.status);
    stats.pages += pending.size() - r.postcopy_pending.size();
    pending = std::move(r.postcopy_pending);
  }
  end.send(ctx, sdk::encode_page_done());
  if (obs::metrics_enabled())
    obs::metrics().add("postcopy.pull_requests", stats.requests);
  span.finish({{"requests", stats.requests}, {"bytes", stats.bytes}});
  return stats;
}

}  // namespace mig::migration
