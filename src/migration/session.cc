#include "migration/session.h"

#include "migration/page_service.h"
#include "obs/attribution.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdk/chunk_wire.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::migration {

// ------------------------------------------------------------ EnclaveMigrator

Result<Bytes> EnclaveMigrator::prepare(sim::ThreadCtx& ctx,
                                       sdk::EnclaveHost& host,
                                       const EnclaveMigrateOptions& opts) {
  obs::Span<sim::ThreadCtx> span(ctx, "two_phase_checkpoint", "migration");
  host.begin_parking();
  sdk::ControlCmd cmd;
  cmd.type = sdk::ControlCmd::Type::kPrepareCheckpoint;
  cmd.cipher = opts.cipher;
  cmd.chunk_bytes = opts.chunk_bytes;
  cmd.seal_workers = opts.seal_workers;
  if (opts.chunk_stream != nullptr) cmd.chunk_stream = *opts.chunk_stream;
  sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
  MIG_RETURN_IF_ERROR(reply.status);
  if (obs::active()) {
    span.finish({{"checkpoint_bytes", reply.blob.size()}});
    obs::metrics().add("migration.checkpoints");
    obs::metrics().observe("migration.checkpoint_bytes", reply.blob.size());
  }
  return std::move(reply.blob);
}

Result<EnclaveMigrator::DeltaDump> EnclaveMigrator::dump_baseline(
    sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
    const EnclaveMigrateOptions& opts) {
  sdk::ControlCmd cmd;
  cmd.type = sdk::ControlCmd::Type::kDumpBaseline;
  cmd.cipher = opts.cipher;
  sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
  MIG_RETURN_IF_ERROR(reply.status);
  return DeltaDump{std::move(reply.blob), reply.delta};
}

Result<EnclaveMigrator::DeltaDump> EnclaveMigrator::dump_delta(
    sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
    const EnclaveMigrateOptions& opts, bool final_dump) {
  // The final dump reaches the quiescent point, so workers must park there
  // just as they do under prepare()'s two-phase checkpoint.
  if (final_dump) host.begin_parking();
  sdk::ControlCmd cmd;
  cmd.type = sdk::ControlCmd::Type::kDumpDelta;
  cmd.cipher = opts.cipher;
  cmd.final_dump = final_dump;
  // Post-copy: the residual dirty pages stay behind as kRemote manifest
  // records and the enclave arms its page service for the pull phase.
  cmd.postcopy_tail = final_dump && opts.post_copy;
  sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
  MIG_RETURN_IF_ERROR(reply.status);
  return DeltaDump{std::move(reply.blob), reply.delta};
}

Status EnclaveMigrator::deliver_key_to_agent(
    sim::ThreadCtx& ctx, sdk::EnclaveInstance& source_instance,
    sdk::ControlMailbox& agent_mailbox) {
  obs::Span<sim::ThreadCtx> span(ctx, "agent_key_delivery", "migration");
  auto channel = world_->make_channel();
  // Two concurrent parties: source control serves, agent control fetches.
  struct Outcome {
    sim::Event done;
    Status status = OkStatus();
    explicit Outcome(sim::Executor& e) : done(e) {}
  } serve_out(world_->executor());
  sdk::ControlMailbox* source_mailbox = source_instance.mailbox.get();
  sim::Channel* ch = channel.get();
  world_->executor().spawn("serve-key-agent", [&, source_mailbox,
                                               ch](sim::ThreadCtx& c) {
    sdk::ControlCmd serve;
    serve.type = sdk::ControlCmd::Type::kServeKey;
    serve.channel = ch->a();
    serve.allow_agent_recipient = true;
    serve_out.status = source_mailbox->post(c, serve).status;
    serve_out.done.set(c);
  });
  sdk::ControlCmd fetch;
  fetch.type = sdk::ControlCmd::Type::kAgentFetchKey;
  fetch.channel = channel->b();
  Status fetch_status = agent_mailbox.post(ctx, fetch).status;
  serve_out.done.wait(ctx);
  MIG_RETURN_IF_ERROR(serve_out.status);
  return fetch_status;
}

Status EnclaveMigrator::restore(
    sim::ThreadCtx& ctx, sdk::EnclaveHost& host, hv::Machine& source_machine,
    std::unique_ptr<sdk::EnclaveInstance>& source_instance, Bytes checkpoint,
    const EnclaveMigrateOptions& opts) {
  obs::Span<sim::ThreadCtx> span(
      ctx, "restore.enclave", "migration",
      {{"via_agent", opts.agent != nullptr}});
  // Without an agent the key can only come from the source enclave itself;
  // if a concurrent abort already disposed of it, there is nothing to do.
  if (opts.agent == nullptr && source_instance == nullptr)
    return Error(ErrorCode::kAborted, "source enclave is gone");
  // Step-1: virgin enclave from the same image, on the guest's current
  // (target) machine.
  {
    obs::Span<sim::ThreadCtx> create_span(ctx, "restore.create_enclave",
                                          "migration");
    MIG_RETURN_IF_ERROR(host.create(ctx));
  }
  // create() slept in the driver; re-check (a source-side cancel may have
  // raced us and taken the instance).
  if (opts.agent == nullptr && source_instance == nullptr)
    return Error(ErrorCode::kAborted, "source enclave is gone");

  sdk::ControlCmd restore_cmd;
  restore_cmd.type = sdk::ControlCmd::Type::kRestore;
  restore_cmd.cipher = opts.cipher;
  restore_cmd.blob = std::move(checkpoint);
  restore_cmd.allow_postcopy = opts.post_copy;

  std::unique_ptr<sim::Channel> channel;
  struct ServeOutcome {
    sim::Event done;
    Status status = OkStatus();
    explicit ServeOutcome(sim::Executor& e) : done(e) {}
  };
  std::unique_ptr<ServeOutcome> serve_out;

  if (opts.agent != nullptr) {
    // Key already parked in the agent (deliver_key_to_agent ran earlier):
    // local attestation only.
    restore_cmd.agent = opts.agent;
  } else {
    // Step-2: direct handshake with the source enclave's control thread.
    channel = world_->make_channel();
    serve_out = std::make_unique<ServeOutcome>(world_->executor());
    sdk::ControlMailbox* source_mailbox = source_instance->mailbox.get();
    sim::Channel* ch = channel.get();
    ServeOutcome* out = serve_out.get();
    world_->executor().spawn("serve-key", [source_mailbox, ch,
                                           out](sim::ThreadCtx& c) {
      sdk::ControlCmd serve;
      serve.type = sdk::ControlCmd::Type::kServeKey;
      serve.channel = ch->a();
      out->status = source_mailbox->post(c, serve).status;
      out->done.set(c);
    });
    restore_cmd.channel = channel->b();
  }

  // Step-3: decrypt + restore memory; get the pump plan.
  sdk::ControlReply restored = host.mailbox().post(ctx, restore_cmd);
  if (serve_out != nullptr) {
    serve_out->done.wait(ctx);
    MIG_RETURN_IF_ERROR(serve_out->status);
  }
  MIG_RETURN_IF_ERROR(restored.status);

  // Post-copy tail: the checkpoint promised some pages by hash only; pull
  // and verify-apply them from the retained source image before the CSSA
  // replay — kFinishRestore refuses while any are outstanding.
  if (!restored.postcopy_pending.empty()) {
    obs::Span<sim::ThreadCtx> tail_span(
        ctx, "restore.postcopy_tail", "migration",
        {{"pages", restored.postcopy_pending.size()}});
    PagePullOptions popts;
    popts.demand_batch = opts.postcopy_demand_batch;
    popts.prefetch_pages = opts.postcopy_prefetch;
    popts.reply_timeout_ns = opts.postcopy_reply_timeout_ns;

    std::unique_ptr<sim::Channel> page_ch;
    std::unique_ptr<ServeOutcome> page_serve_out;
    std::optional<sim::Channel::End> client_end;
    if (opts.page_channel != nullptr) {
      // The caller owns the link and the source-side serve loop (tests use
      // this to tamper with and sever the channel).
      client_end = *opts.page_channel;
    } else {
      if (source_instance == nullptr)
        return Error(ErrorCode::kFailedPrecondition,
                     "post-copy tail pending but the source enclave is gone");
      page_ch = world_->make_channel();
      client_end = page_ch->b();
      page_serve_out = std::make_unique<ServeOutcome>(world_->executor());
      sdk::ControlMailbox* smb = source_instance->mailbox.get();
      sim::Channel* pch = page_ch.get();
      ServeOutcome* pout = page_serve_out.get();
      uint64_t prefetch = opts.postcopy_prefetch;
      world_->executor().spawn(
          "page-service", [smb, pch, pout, prefetch](sim::ThreadCtx& c) {
            PageServiceOptions sopts;
            sopts.prefetch_pages = prefetch;
            pout->status = serve_pages(c, *smb, pch->a(), sopts).status();
            pout->done.set(c);
          });
    }
    Result<PagePullStats> pulled =
        pull_pages(ctx, host.mailbox(), *client_end, restored.postcopy_pending,
                   restored.postcopy_epoch, popts);
    if (page_serve_out != nullptr) {
      // Join the serve loop before the channel (and possibly the source
      // instance) can go away. On a failed pull it retires at its idle
      // timeout — virtual time only.
      page_serve_out->done.wait(ctx);
    }
    MIG_RETURN_IF_ERROR(pulled.status());
    if (page_serve_out != nullptr)
      MIG_RETURN_IF_ERROR(page_serve_out->status);
    tail_span.finish(
        {{"requests", pulled->requests}, {"bytes", pulled->bytes}});
  }

  // Step-3 (cont.): the untrusted library replays EENTER/AEX to pump CSSA.
  {
    obs::Span<sim::ThreadCtx> pump_span(ctx, "cssa_replay", "migration",
                                        {{"workers", restored.pumps.size()}});
    for (const sdk::PumpPlan& plan : restored.pumps) {
      MIG_RETURN_IF_ERROR(host.pump_cssa(ctx, plan.worker_idx, plan.pumps));
    }
  }
  // Step-4: in-enclave verification of the restored CSSA; SSA rebuild.
  sdk::ControlCmd finish;
  finish.type = sdk::ControlCmd::Type::kFinishRestore;
  MIG_RETURN_IF_ERROR(host.mailbox().post(ctx, finish).status);

  host.finish_migration(ctx, restored.pumps);
  obs::metrics().add("migration.restores");

  if (opts.counter_service != nullptr) {
    // Rollback defense: the migration is committed, so advance the monotonic
    // counter — every snapshot sealed before the migration becomes dead
    // ciphertext (its OPENGRANT will be refused). A failure here means the
    // restored enclave is NOT rollback-protected; the caller opted into that
    // protection, so surface it as a restore failure.
    counter_channels_.push_back(world_->make_channel());
    store::CounterBackend* ctr = opts.counter_service;
    sim::Channel* cch = counter_channels_.back().get();
    world_->executor().spawn("ctr-advance", [ctr, cch](sim::ThreadCtx& c) {
      ctr->serve_one(c, cch->a());
    });
    sdk::ControlCmd advance;
    advance.type = sdk::ControlCmd::Type::kAdvanceCounter;
    advance.channel = cch->b();
    MIG_RETURN_IF_ERROR(host.mailbox().post(ctx, advance).status);
  }

  if (opts.leave_source_alive) {
    // Fork-attack simulation: the malicious operator keeps the source
    // enclave around. Leak it deliberately; self-destroy already neutered it.
    source_instance.release();
    return OkStatus();
  }
  // The source enclave self-destroyed when it served the key; the source
  // host reclaims its EPC.
  return host.destroy_detached(ctx, source_machine,
                               std::move(source_instance));
}

Result<Bytes> EnclaveMigrator::snapshot_to_store(
    sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
    store::SealedSnapshotStore& snapshots, const EnclaveMigrateOptions& opts) {
  if (opts.counter_service == nullptr)
    return Error(ErrorCode::kInvalidArgument,
                 "snapshot_to_store needs a counter service");
  obs::Span<sim::ThreadCtx> span(ctx, "store.snapshot", "store");
  counter_channels_.push_back(world_->make_channel());
  store::CounterBackend* ctr = opts.counter_service;
  sim::Channel* ch = counter_channels_.back().get();
  world_->executor().spawn("ctr-sealgrant", [ctr, ch](sim::ThreadCtx& c) {
    ctr->serve_one(c, ch->a());
  });
  sdk::ControlCmd cmd;
  cmd.type = sdk::ControlCmd::Type::kStoreSnapshot;
  cmd.channel = ch->b();
  cmd.cipher = opts.cipher;
  cmd.chunk_bytes = opts.chunk_bytes;
  cmd.seal_workers = opts.seal_workers;
  sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
  MIG_RETURN_IF_ERROR(reply.status);
  // The envelope's outer identity field addresses the head pointer. The
  // store is untrusted bookkeeping; the binding that matters is sealed
  // inside (outer fields are checked against it at restore).
  MIG_ASSIGN_OR_RETURN(sdk::SnapshotEnvelope envelope,
                       sdk::parse_snapshot_envelope(reply.blob));
  MIG_ASSIGN_OR_RETURN(Bytes id, snapshots.put(ctx, reply.blob));
  MIG_RETURN_IF_ERROR(snapshots.set_head(ctx, envelope.mrenclave, id));
  if (obs::active()) {
    span.finish(
        {{"bytes", reply.blob.size()}, {"counter", envelope.counter}});
    obs::metrics().add("migration.store_snapshots");
    obs::metrics().observe("migration.store_snapshot_bytes",
                           reply.blob.size());
  }
  return id;
}

Status EnclaveMigrator::restore_from_store(sim::ThreadCtx& ctx,
                                           sdk::EnclaveHost& host,
                                           store::SealedSnapshotStore& snapshots,
                                           ByteSpan snapshot_id,
                                           const EnclaveMigrateOptions& opts) {
  if (opts.counter_service == nullptr)
    return Error(ErrorCode::kInvalidArgument,
                 "restore_from_store needs a counter service");
  obs::Span<sim::ThreadCtx> span(ctx, "store.cold_restore", "store");
  Bytes id(snapshot_id.begin(), snapshot_id.end());
  if (id.empty()) {
    // Crash recovery: only the identity survives the crash; follow the
    // store's head pointer for it.
    crypto::Digest mre = host.image().measure();
    MIG_ASSIGN_OR_RETURN(id,
                         snapshots.head(ctx, Bytes(mre.begin(), mre.end())));
  }
  MIG_ASSIGN_OR_RETURN(Bytes blob, snapshots.get(ctx, id));

  MIG_RETURN_IF_ERROR(host.create(ctx));
  Status st = [&]() -> Status {
    counter_channels_.push_back(world_->make_channel());
    store::CounterBackend* ctr = opts.counter_service;
    sim::Channel* ch = counter_channels_.back().get();
    world_->executor().spawn("ctr-opengrant", [ctr, ch](sim::ThreadCtx& c) {
      ctr->serve_one(c, ch->a());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kStoreRestore;
    cmd.channel = ch->b();
    cmd.cipher = opts.cipher;
    cmd.blob = std::move(blob);
    sdk::ControlReply restored = host.mailbox().post(ctx, cmd);
    MIG_RETURN_IF_ERROR(restored.status);
    for (const sdk::PumpPlan& plan : restored.pumps) {
      MIG_RETURN_IF_ERROR(host.pump_cssa(ctx, plan.worker_idx, plan.pumps));
    }
    sdk::ControlCmd finish;
    finish.type = sdk::ControlCmd::Type::kFinishRestore;
    MIG_RETURN_IF_ERROR(host.mailbox().post(ctx, finish).status);
    host.finish_migration(ctx, restored.pumps);
    obs::metrics().add("migration.store_restores");
    return OkStatus();
  }();
  if (!st.ok() && host.instance() != nullptr) {
    // The virgin instance holds no state worth keeping; don't leave a
    // half-restored enclave bound to the host.
    (void)host.destroy(ctx);
  }
  return st;
}

// --------------------------------------------------------------- AgentEnclave

Result<std::unique_ptr<AgentEnclave>> AgentEnclave::create(
    sim::ThreadCtx& ctx, hv::World& world, guestos::GuestOs& host_os,
    const crypto::SigKeyPair& dev_signer, const crypto::SigKeyPair& identity,
    crypto::Drbg rng) {
  sdk::BuildInput in;
  in.program = std::make_shared<sdk::EnclaveProgram>("migration-agent");
  in.layout.num_workers = 1;  // minimal; only the control thread matters
  in.identity_override = identity;
  sdk::BuildOutput built = sdk::build_enclave_image(
      in, dev_signer, world.ias().service_pk(), rng);
  crypto::Digest agent_mrenclave = built.image.measure();

  auto agent = std::unique_ptr<AgentEnclave>(new AgentEnclave());
  guestos::Process& proc = host_os.create_process("agent");
  agent->host_ = std::make_unique<sdk::EnclaveHost>(
      host_os, proc, std::move(built), world.ias(),
      rng.fork(to_bytes("agent-host")));
  MIG_RETURN_IF_ERROR(agent->host_->create(ctx));

  agent->port_.set_target_info(sgx::TargetInfo{agent_mrenclave});
  sdk::ControlMailbox* mailbox = &agent->host_->mailbox();
  agent->port_.set_handler(
      [mailbox](sim::ThreadCtx& c,
                const sdk::AgentPort::Request& req) -> sdk::AgentPort::Response {
        sdk::ControlCmd cmd;
        cmd.type = sdk::ControlCmd::Type::kAgentServeLocal;
        cmd.agent_request = req;
        sdk::ControlReply reply = mailbox->post(c, cmd);
        sdk::AgentPort::Response resp;
        resp.status = reply.status;
        if (reply.status.ok()) {
          Reader r(reply.blob);
          resp.dh_pub = r.bytes();
          resp.enc_kmigrate = r.bytes();
          if (!r.finish().ok())
            resp.status = Error(ErrorCode::kInternal, "bad agent reply");
        }
        return resp;
      });
  return agent;
}

// --------------------------------------------------------- VmMigrationSession

VmMigrationSession::VmMigrationSession(hv::World& world, hv::Vm& vm,
                                       guestos::GuestOs& guest,
                                       hv::Machine& source,
                                       hv::Machine& target, Options opts)
    : world_(&world),
      vm_(&vm),
      guest_(&guest),
      source_(&source),
      target_(&target),
      opts_(std::move(opts)),
      migrator_(world),
      pause_event_(world.executor()) {
  // The enclave-side post-copy manifest is carved out of the final delta
  // dump, so both post-copy modes ride the incremental machinery; mirror the
  // mode into the engine's params so the VM side flips too.
  if (opts_.post_copy || opts_.hybrid) {
    opts_.incremental = true;
    opts_.precopy.post_copy = opts_.post_copy;
    opts_.precopy.hybrid = opts_.hybrid;
  }
}

VmMigrationSession::~VmMigrationSession() {
  for (auto& [proc, enclaves] : managed_) proc->clear_migration_handlers();
}

void VmMigrationSession::manage(sdk::EnclaveHost& host) {
  guestos::Process* proc = &host.process();
  auto [it, inserted] = managed_.try_emplace(proc);
  it->second.push_back(ManagedEnclave{&host, {}, nullptr});
  if (inserted) {
    proc->register_migration_handlers(
        [this, proc](sim::ThreadCtx& c) { return prepare_process(c, proc); },
        [this, proc](sim::ThreadCtx& c) { return resume_process(c, proc); },
        [this, proc](sim::ThreadCtx& c) { return cancel_process(c, proc); });
    if (opts_.incremental) {
      proc->register_delta_handlers(
          [this, proc](sim::ThreadCtx& c) {
            return delta_begin_process(c, proc);
          },
          [this, proc](sim::ThreadCtx& c) {
            return delta_round_process(c, proc);
          });
    }
  }
}

EnclaveMigrateOptions VmMigrationSession::enclave_opts() const {
  EnclaveMigrateOptions opts;
  opts.cipher = opts_.cipher;
  opts.chunk_bytes = opts_.chunk_bytes;
  opts.seal_workers = opts_.seal_workers;
  opts.counter_service = opts_.counter_service;
  opts.post_copy = opts_.post_copy || opts_.hybrid;
  return opts;
}

namespace {
void accumulate(sdk::DeltaStats& into, const sdk::DeltaStats& d) {
  into.pages_scanned += d.pages_scanned;
  into.pages_sent += d.pages_sent;
  into.pages_zero += d.pages_zero;
  into.pages_deduped += d.pages_deduped;
  into.wire_bytes += d.wire_bytes;
  into.elided_bytes += d.elided_bytes;
  into.deduped_bytes += d.deduped_bytes;
}
}  // namespace

Result<uint64_t> VmMigrationSession::delta_begin_process(sim::ThreadCtx& ctx,
                                                         guestos::Process* p) {
  EnclaveMigrateOptions opts = enclave_opts();
  uint64_t total = 0;
  for (ManagedEnclave& m : managed_[p]) {
    MIG_ASSIGN_OR_RETURN(EnclaveMigrator::DeltaDump dump,
                         migrator_.dump_baseline(ctx, *m.host, opts));
    total += dump.segment.size();
    accumulate(m.delta_stats, dump.stats);
    m.delta_segments.push_back(std::move(dump.segment));
  }
  return total;
}

Result<uint64_t> VmMigrationSession::delta_round_process(sim::ThreadCtx& ctx,
                                                         guestos::Process* p) {
  EnclaveMigrateOptions opts = enclave_opts();
  uint64_t total = 0;
  for (ManagedEnclave& m : managed_[p]) {
    MIG_ASSIGN_OR_RETURN(
        EnclaveMigrator::DeltaDump dump,
        migrator_.dump_delta(ctx, *m.host, opts, /*final_dump=*/false));
    // A round where nothing was re-dirtied produces no segment at all.
    if (dump.segment.empty()) continue;
    total += dump.segment.size();
    accumulate(m.delta_stats, dump.stats);
    m.delta_segments.push_back(std::move(dump.segment));
  }
  return total;
}

// Host-side footprint every enclave application drags along in VM memory:
// the enclave image (the target rebuilds from it), the SDK runtime/libc, the
// driver's swap area for that enclave. This is why the enclave-carrying VM
// of Fig. 10(d) ships visibly more memory than its twin.
constexpr uint64_t kEnclaveAppFootprintBytes = 512ull * 1024;

Result<uint64_t> VmMigrationSession::prepare_process(sim::ThreadCtx& ctx,
                                                     guestos::Process* p) {
  uint64_t total = 0;
  EnclaveMigrateOptions opts = enclave_opts();
  for (ManagedEnclave& m : managed_[p]) {
    if (opts_.incremental) {
      // The baseline and delta rounds already shipped; capture only the
      // residual dirty set + thread contexts at the quiescent point and
      // assemble the MGV3 container the target-side restore consumes.
      MIG_ASSIGN_OR_RETURN(
          EnclaveMigrator::DeltaDump dump,
          migrator_.dump_delta(ctx, *m.host, opts, /*final_dump=*/true));
      m.delta_residual_pages = dump.stats.pages_sent;
      accumulate(m.delta_stats, dump.stats);
      m.delta_segments.push_back(std::move(dump.segment));
      m.checkpoint = sdk::encode_delta_container(m.delta_segments);
      m.delta_segments.clear();
      if (obs::active()) {
        obs::metrics().add("migration.checkpoints");
        obs::metrics().observe("migration.checkpoint_bytes",
                               m.checkpoint.size());
      }
      // Only the final segment still has to ride the stopped-VM round; the
      // earlier segments were counted against running-VM rounds by the
      // engine's delta hooks.
      total += dump.stats.wire_bytes + kEnclaveAppFootprintBytes;
    } else {
      MIG_ASSIGN_OR_RETURN(m.checkpoint, migrator_.prepare(ctx, *m.host, opts));
      total += m.checkpoint.size() + kEnclaveAppFootprintBytes;
    }
    // The enclave is quiescent; the instance stays alive on the source for
    // the key handshake.
    m.source_instance = m.host->detach_instance();
    // §VI-D: pre-deliver the key to the target-side agent concurrently with
    // the remaining pre-copy rounds — the WAN attestation latency is hidden
    // behind the memory transfer, never on the suspend or restore path.
    if (agent_ != nullptr) {
      m.key_delivered = std::make_unique<sim::Event>(world_->executor());
      ManagedEnclave* mp = &m;
      EnclaveMigrator* migrator = &migrator_;
      sdk::ControlMailbox* agent_mb = &agent_->mailbox();
      world_->executor().spawn("agent-delivery", [mp, migrator,
                                                  agent_mb](sim::ThreadCtx& c) {
        mp->delivery_status = migrator->deliver_key_to_agent(
            c, *mp->source_instance, *agent_mb);
        mp->key_delivered->set(c);
      });
    }
  }
  return total;
}

Status VmMigrationSession::resume_process(sim::ThreadCtx& ctx,
                                          guestos::Process* p) {
  EnclaveMigrateOptions opts = enclave_opts();
  if (agent_ != nullptr) opts.agent = &agent_->port();
  for (ManagedEnclave& m : managed_[p]) {
    if (m.key_delivered != nullptr) {
      m.key_delivered->wait(ctx);
      if (!m.delivery_status.ok()) {
        obs::flight(ctx, "migration.session", "agent_delivery_failed",
                    m.delivery_status.to_string());
        cleanup_failed_restore(ctx, m);
        return m.delivery_status;
      }
    }
    if (m.fate == ManagedEnclave::Fate::kCancelled) {
      // The source rolled back before we got here (the cancel path already
      // re-attached its instance); this restore must not run.
      return Error(ErrorCode::kAborted, "migration cancelled on the source");
    }
    if (m.fate == ManagedEnclave::Fate::kCommitted) {
      // The cancel path already saw the key served and disposed of this
      // side's instances; too late to restore.
      return Error(ErrorCode::kAborted,
                   "enclave disposed after source self-destroyed");
    }
    m.restore_started = true;
    Status st = migrator_.restore(ctx, *m.host, *source_, m.source_instance,
                                  std::move(m.checkpoint), opts);
    if (!st.ok()) {
      obs::flight(ctx, "migration.session", "restore_failed", st.to_string());
      cleanup_failed_restore(ctx, m);
      return st;
    }
    m.fate = ManagedEnclave::Fate::kCommitted;
  }
  return OkStatus();
}

void VmMigrationSession::cleanup_failed_restore(sim::ThreadCtx& ctx,
                                                ManagedEnclave& m) {
  sdk::EnclaveHost& host = *m.host;
  obs::flight(ctx, "migration.session", "cleanup_failed_restore",
              m.fate == ManagedEnclave::Fate::kCancelled
                  ? "fate=cancelled (source re-attached)"
                  : "fate=committed_or_lost (teardown)");
  if (m.fate == ManagedEnclave::Fate::kCancelled) {
    // The source cancelled before the key was served: its enclave is intact
    // (Kmigrate deleted, global flag cleared) — re-attach it so the parked
    // workers continue where they left off.
    if (m.source_instance != nullptr) {
      // Restore may have bound a virgin target instance; it holds no state.
      if (host.instance() != nullptr) (void)host.destroy(ctx);
      host.adopt_instance(std::move(m.source_instance));
    }
    // else the cancel path already re-attached the source instance.
    host.finish_migration(ctx, {});
    return;
  }
  // No rollback available: either the key was served (source self-destroyed)
  // or the VM has committed to the target and a headless source enclave is
  // useless. Tear down whatever this restore left behind; pending ecalls
  // fail with kAborted rather than waiting forever.
  if (host.instance() != nullptr) (void)host.destroy(ctx);
  if (m.source_instance != nullptr) {
    (void)host.destroy_detached(ctx, *source_, std::move(m.source_instance));
  }
  host.mark_instance_lost();
  host.finish_migration(ctx, {});
}

Status VmMigrationSession::cancel_process(sim::ThreadCtx& ctx,
                                          guestos::Process* p) {
  obs::Span<sim::ThreadCtx> span(ctx, "cancel_migration", "migration");
  Status first = OkStatus();
  for (ManagedEnclave& m : managed_[p]) {
    if (m.fate != ManagedEnclave::Fate::kPending) continue;
    // An agent delivery in flight holds the source mailbox and channel; let
    // it settle before deciding this enclave's fate.
    if (m.key_delivered != nullptr) m.key_delivered->wait(ctx);
    sdk::EnclaveHost& host = *m.host;
    bool detached = m.source_instance != nullptr;
    sdk::ControlMailbox* mailbox = nullptr;
    if (detached) {
      mailbox = m.source_instance->mailbox.get();
    } else if (host.instance() != nullptr) {
      // Prepare failed before this enclave was detached (or never ran).
      mailbox = &host.mailbox();
    }
    if (mailbox == nullptr) {
      host.finish_migration(ctx, {});
      continue;
    }
    // The mailbox serializes this against a concurrent kServeKey — whichever
    // gets in first decides whether the source or the target survives.
    sdk::ControlCmd cancel;
    cancel.type = sdk::ControlCmd::Type::kCancelMigration;
    Status st = mailbox->post(ctx, cancel).status;
    if (st.ok()) {
      // Kmigrate deleted before it was served: the source enclave survives
      // and any checkpoint already shipped is ciphertext without a key.
      obs::instant(ctx, "fate.cancelled", "migration");
      obs::flight(ctx, "migration.session", "fate_cancelled",
                  "Kmigrate deleted before serve; source enclave survives");
      m.fate = ManagedEnclave::Fate::kCancelled;
      m.checkpoint.clear();
      // The delta session died with the cancel (kCancelMigration disarms
      // tracking in-enclave); shipped segments are ciphertext without a key.
      m.delta_segments.clear();
      if (detached && host.instance() == nullptr && !m.restore_started) {
        host.adopt_instance(std::move(m.source_instance));
        host.finish_migration(ctx, {});
      } else if (!detached) {
        // Never detached (the fault struck before or during prepare): the
        // instance is still attached, but workers may already be parked.
        host.finish_migration(ctx, {});
      }
      // else: a restore is mid-flight; its key handshake will be refused
      // (the key is gone) and its failure path re-attaches the source
      // (cleanup_failed_restore).
      continue;
    }
    if (st.code() == ErrorCode::kAborted) {
      // Kmigrate already served: the source self-destroyed and the target
      // owns the enclave now (or will, if its restore is still running).
      obs::instant(ctx, "fate.committed", "migration");
      obs::flight(ctx, "migration.session", "fate_committed",
                  "Kmigrate already served; source self-destroyed");
      m.fate = ManagedEnclave::Fate::kCommitted;
      if (host.instance() == nullptr && !m.restore_started) {
        // No target instance bound and no restore in flight — nothing usable
        // remains on this side. Reclaim the dead source EPC and fail pending
        // ecalls. (A restore in flight owns this cleanup instead.)
        if (m.source_instance != nullptr) {
          (void)host.destroy_detached(ctx, *source_,
                                      std::move(m.source_instance));
        }
        host.mark_instance_lost();
        host.finish_migration(ctx, {});
      }
      continue;
    }
    if (first.ok()) first = st;
  }
  return first;
}

Result<hv::MigrationReport> VmMigrationSession::run(sim::ThreadCtx& ctx) {
  obs::Span<sim::ThreadCtx> span(ctx, "vm_migration_session", "migration",
                                 {{"use_agent", opts_.use_agent}});
  if (opts_.use_agent) {
    MIG_CHECK_MSG(opts_.target_host_os != nullptr,
                  "use_agent requires a target host environment");
    // One agent serves all managed enclaves; they share the developer
    // identity by construction.
    MIG_CHECK_MSG(!managed_.empty(), "no enclaves managed");
    const sdk::OwnerCredentials& creds =
        managed_.begin()->second.front().host->owner_credentials();
    MIG_ASSIGN_OR_RETURN(
        agent_, AgentEnclave::create(ctx, *world_, *opts_.target_host_os,
                                     opts_.dev_signer, creds.identity,
                                     world_->fork_rng("agent")));
  }

  guest_->set_migration_target(*target_);
  // Do not let stop-and-copy happen while agent key pre-deliveries are still
  // in flight — the VM keeps running (and pre-copying) until then.
  guest_->set_stop_gate([this] {
    for (auto& [proc, enclaves] : managed_) {
      for (ManagedEnclave& m : enclaves) {
        if (m.key_delivered != nullptr && !m.key_delivered->is_set())
          return false;
      }
    }
    return true;
  });
  if (opts_.post_copy || opts_.hybrid) {
    // VM-level fail-closed: the engine calls this when the source vanishes
    // mid-pull. No enclave restore has started at that point (resume runs
    // after the VM tail drains), but any target instance a racing restore
    // bound must not survive on a partial image.
    guest_->set_postcopy_abort([this](sim::ThreadCtx& c) {
      obs::instant(c, "postcopy.session_abort", "migration");
      obs::flight(c, "migration.session", "fail_closed",
                  "phase=postcopy_pull; tearing down managed enclaves");
      for (auto& [proc, enclaves] : managed_) {
        (void)proc;
        for (ManagedEnclave& m : enclaves) {
          if (m.host->instance() == nullptr) continue;
          sdk::ControlCmd abort_cmd;
          abort_cmd.type = sdk::ControlCmd::Type::kAbortPostcopy;
          (void)m.host->mailbox().post(c, abort_cmd);
        }
      }
    });
  }
  auto channel = world_->make_channel();
  if (opts_.channel_hook) opts_.channel_hook(*channel);
  int uplink_flow = -1;
  if (opts_.uplink != nullptr) {
    // Contend for the host's shared NIC: only the bulk direction is shaped;
    // acks and restore reports return on the unshaped reverse path.
    uplink_flow = opts_.uplink->add_flow(opts_.uplink_weight);
    channel->a_to_b().attach_shared_link(opts_.uplink, uplink_flow);
  }
  // Chain the session's cooperative pause gate in front of any caller-
  // provided fleet hook, so a scheduler can both pause rounds (pause()/
  // resume()) and observe them (Options::precopy.before_round).
  hv::MigrationParams params = opts_.precopy;
  auto user_hook = params.before_round;
  params.before_round = [this, user_hook](sim::ThreadCtx& c) {
    while (paused_) {
      pause_event_.reset();
      pause_event_.wait(c);
    }
    if (user_hook) user_hook(c);
  };
  if (opts_.uplink != nullptr) {
    // The blackout's bytes ride the shared NIC's priority lane: queued
    // behind peers' pre-copy bulk, the stop-and-copy residual would inflate
    // downtime by the whole backlog. Raised after the caller's stop_begin
    // (which may block on the fleet's stop token) and cleared before the
    // caller's stop_end, so exactly the window between them is prioritized.
    sim::Pipe* bulk = &channel->a_to_b();
    auto user_stop_begin = params.stop_begin;
    params.stop_begin = [bulk, user_stop_begin](sim::ThreadCtx& c) {
      if (user_stop_begin) user_stop_begin(c);
      bulk->set_urgent(true);
    };
    auto user_stop_end = params.stop_end;
    params.stop_end = [bulk, user_stop_end](sim::ThreadCtx& c) {
      bulk->set_urgent(false);
      if (user_stop_end) user_stop_end(c);
    };
  }
  hv::LiveMigrationEngine engine(world_->cost(), params);

  struct TargetOutcome {
    sim::Event done;
    Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
    explicit TargetOutcome(sim::Executor& e) : done(e) {}
  } target_out(world_->executor());
  hv::Vm* vm = vm_;
  sim::Channel* ch = channel.get();
  world_->executor().spawn("qemu-dst", [&engine, vm, ch,
                                        &target_out](sim::ThreadCtx& c) {
    target_out.report = engine.migrate_target(c, *vm, ch->b());
    target_out.done.set(c);
  });

  Result<hv::MigrationReport> report =
      engine.migrate_source(ctx, *vm_, channel->a());
  target_out.done.wait(ctx);
  if (opts_.uplink != nullptr) {
    // Wire phase over (success or not): hand the flow's share back to the
    // still-migrating peers instead of letting the pacing heuristics age it
    // out.
    opts_.uplink->release(uplink_flow);
  }
  target_report_ = target_out.report;
  Status agent_teardown = OkStatus();
  if (agent_ != nullptr) {
    // Agents "can be destroyed after the VM resuming" — and after a failed
    // run they must not outlive the session either.
    agent_teardown = agent_->destroy(ctx);
    agent_.reset();
  }
  // The source-side error is the root cause; the target's abort is derived.
  if (!report.ok()) {
    obs::flight(ctx, "migration.session", "run_failed",
                report.status().to_string());
  } else if (!target_out.report.ok()) {
    obs::flight(ctx, "migration.session", "run_failed",
                "target: " + target_out.report.status().to_string());
  }
  MIG_RETURN_IF_ERROR(report.status());
  MIG_RETURN_IF_ERROR(target_out.report.status());
  MIG_RETURN_IF_ERROR(agent_teardown);
  if (opts_.incremental) {
    // Merge what only the control-thread replies know (the engine filled
    // delta_rounds / delta_wire_bytes) and re-publish — gauges are
    // last-write-wins, so this just completes the picture.
    for (auto& [proc, enclaves] : managed_) {
      (void)proc;
      for (const ManagedEnclave& m : enclaves) {
        report->delta_residual_pages += m.delta_residual_pages;
        report->delta_elided_bytes += m.delta_stats.elided_bytes;
        report->delta_deduped_bytes += m.delta_stats.deduped_bytes;
      }
    }
    report->publish_metrics("migration");
  }
  if (obs::tracing_enabled()) {
    // Fold the capture into the per-phase ledger and attach it, so the
    // trace-derived budget publishes alongside the engine's own numbers
    // (attr.downtime_ns must reproduce migration.downtime_ns exactly).
    Result<obs::AttributionLedger> ledger =
        obs::attribute_migration(obs::trace());
    if (ledger.ok()) {
      report->attribution = std::move(*ledger);
      report->attribution.publish();
    }
  }
  return report;
}

}  // namespace mig::migration
