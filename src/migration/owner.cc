#include "migration/owner.h"

#include "crypto/aead.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serde.h"

namespace mig::migration {

void EnclaveOwner::enroll(const crypto::Digest& mrenclave,
                          sdk::OwnerCredentials creds) {
  Enrolled e;
  e.creds = std::move(creds);
  e.kencrypt = rng_.fork(to_bytes("kencrypt")).generate(32);
  enrolled_[Bytes(mrenclave.begin(), mrenclave.end())] = std::move(e);
}

Bytes EnclaveOwner::kencrypt_for(const crypto::Digest& mrenclave) {
  auto it = enrolled_.find(Bytes(mrenclave.begin(), mrenclave.end()));
  return it == enrolled_.end() ? Bytes{} : it->second.kencrypt;
}

void EnclaveOwner::serve_one(sim::ThreadCtx& ctx, sim::Channel::End end) {
  Bytes request = end.recv(ctx);
  obs::Span<sim::ThreadCtx> span(ctx, "owner.serve", "migration");
  obs::metrics().add("migration.owner_requests");
  Reader r(request);
  std::string verb = r.str();
  Bytes dh_pub_e = r.bytes();
  Bytes quote_wire = r.bytes();
  auto refuse = [&](std::string why) {
    obs::instant(ctx, "owner.refused", "migration", {{"why", why}});
    obs::metrics().add("migration.owner_refusals");
    Writer w;
    w.str("REFUSED:" + why);
    w.bytes({});
    w.bytes({});
    end.send(ctx, w.take());
  };
  if (!r.finish().ok()) return refuse("malformed");

  // Verify the quote through the attestation service (the owner's own WAN
  // round trip to IAS).
  auto quote = sgx::Quote::deserialize(quote_wire);
  if (!quote.ok()) return refuse("bad quote");
  ctx.sleep(2 * sim::default_cost_model().wan_latency_ns);
  sgx::AttestationVerdict verdict =
      ias_->verify(ctx, *quote, rng_.generate(16));
  if (!verdict.ok) return refuse("attestation failed");
  crypto::Digest bind = crypto::Sha256::hash(dh_pub_e);
  if (!crypto::ct_equal(ByteSpan(verdict.report_data), ByteSpan(bind)))
    return refuse("quote does not bind DH value");

  auto it = enrolled_.find(Bytes(verdict.mrenclave.begin(),
                                 verdict.mrenclave.end()));
  if (it == enrolled_.end()) return refuse("unknown enclave");

  Bytes payload;
  if (verb == "PROVISION") {
    payload = it->second.creds.provisioning_key;
  } else if (verb == "CKPT") {
    payload = it->second.kencrypt;
  } else if (verb == "RESTORE") {
    if (!allow_restore_) return refuse("restore refused by owner policy");
    payload = it->second.kencrypt;
  } else {
    return refuse("unknown verb");
  }
  audit_.push_back(AuditEntry{verb, verdict.mrenclave, ctx.now()});
  obs::instant(ctx, "owner.granted", "migration", {{"verb", verb}});

  ctx.work(sim::default_cost_model().dh_keygen_ns +
           sim::default_cost_model().dh_shared_ns);
  crypto::DhKeyPair kp = crypto::dh_generate(rng_);
  auto shared = crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_e));
  if (!shared.ok()) return refuse("degenerate DH value");
  Bytes session = crypto::hkdf(to_bytes("owner-channel"), *shared, dh_pub_e, 32);
  Writer w;
  w.str("OWNERKEY");
  w.bytes(kp.pub.to_bytes_padded(128));
  w.bytes(crypto::seal(crypto::CipherAlg::kChaCha20, session, payload));
  end.send(ctx, w.take());
}

}  // namespace mig::migration
