// End-to-end migration orchestration (the untrusted infrastructure side).
//
// EnclaveMigrator moves one enclave between two machines: the Fig. 2 / §III
// pipeline at enclave granularity (used directly by tests and by the
// checkpoint-time benches). VmMigrationSession composes it with the
// hypervisor's pre-copy engine for the full Fig. 8 + Fig. 10 flow: it
// registers the per-process migration handlers that the guest OS invokes on
// SIGUSR1, runs the QEMU source/target threads, and wires the key handoff —
// either direct source->target (two WAN round trips for attestation) or
// through a pre-provisioned agent enclave on the target (§VI-D, local
// attestation only on the critical path).
//
// Everything in this module is UNTRUSTED infrastructure: it relays blobs and
// drives mailboxes. If it misbehaves, enclaves detect it (integrity checks,
// CSSA verification) or refuse (self-destroy, single-channel rule) — that is
// the point of the paper, and the attack tests drive these code paths with
// malicious variants.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "hv/live_migration.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "sdk/host.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"

namespace mig::migration {

struct EnclaveMigrateOptions {
  crypto::CipherAlg cipher = crypto::CipherAlg::kRc4;
  sdk::AgentPort* agent = nullptr;  // when set, key flows via the agent
  // Attack-simulation knob: a malicious operator keeps the source enclave's
  // EPC alive after migration (fork attempts). Self-destroy makes the
  // instance useless anyway; tests verify exactly that.
  bool leave_source_alive = false;
  // Chunked checkpoint pipeline (wire format v2): prepare splits the state
  // dump into chunks of this many bytes, sealed by `seal_workers` parallel
  // in-enclave workers; restore auto-detects the format. The pipeline is the
  // default; chunk_bytes = 0 selects the legacy single-blob v1 path.
  uint64_t chunk_bytes = 64 * 1024;
  uint64_t seal_workers = 2;
  // When set, prepare streams sealed chunks over this channel end as they
  // are produced (the blob is still returned; tests/benches receive with
  // sdk::receive_chunked_checkpoint on the peer end).
  sim::Channel::End* chunk_stream = nullptr;
  // When set, restore() advances the enclave's monotonic counter after the
  // live migration commits, so every snapshot sealed before the migration is
  // dead (rollback defense — see store/counter_service.h). Also required by
  // the snapshot_to_store / restore_from_store paths.
  store::CounterBackend* counter_service = nullptr;

  // ---- post-copy (wire format v4) ----
  // dump_delta(final): leave the residual dirty pages behind as kRemote
  // manifest records and arm the source page service. restore(): accept the
  // manifest and pull the tail over the remote-page protocol before
  // kFinishRestore (which refuses while pages are outstanding).
  bool post_copy = false;
  // Client end of the page link for restore()'s pull. When null, restore
  // creates an internal channel and spawns the source-side serve loop
  // itself; tests pass their own end to control (and sever) the link.
  sim::Channel::End* page_channel = nullptr;
  uint64_t postcopy_demand_batch = 8;   // faults bundled per request frame
  uint64_t postcopy_prefetch = 8;       // fault-adjacent pages served along
  uint64_t postcopy_reply_timeout_ns = 5'000'000'000;  // then fail closed
};

// Moves one enclave of `host` from its current instance to the guest's
// *current* machine (call after the guest has re-bound to the target).
// Returns the sealed checkpoint size.
class EnclaveMigrator {
 public:
  explicit EnclaveMigrator(hv::World& world) : world_(&world) {}

  // Source half, runs while the VM is still up: two-phase checkpoint.
  // Leaves the enclave's workers parked/spinning and the blob in untrusted
  // memory.
  Result<Bytes> prepare(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                        const EnclaveMigrateOptions& opts);

  // Target half: create the virgin enclave on the guest's current machine,
  // run the key handshake against `source_instance`'s control thread (or the
  // agent), restore, pump CSSA, verify, release workers, and tear down the
  // source instance (after its self-destroy). `source_instance` is an in-out
  // reference: it is only consumed on success — on failure it stays with the
  // caller, whose abort path decides whether to re-adopt or destroy it.
  Status restore(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                 hv::Machine& source_machine,
                 std::unique_ptr<sdk::EnclaveInstance>& source_instance,
                 Bytes checkpoint, const EnclaveMigrateOptions& opts);

  // Pre-delivers Kmigrate from the (already prepared) source enclave to an
  // agent enclave — the §VI-D optimization, run before/during pre-copy.
  Status deliver_key_to_agent(sim::ThreadCtx& ctx,
                              sdk::EnclaveInstance& source_instance,
                              sdk::ControlMailbox& agent_mailbox);

  // ---- incremental checkpointing (wire format v3) ----
  // One dump's product: an encoded MGD3 segment (empty for a non-final delta
  // with nothing re-dirtied) plus the control thread's accounting for it.
  struct DeltaDump {
    Bytes segment;
    sdk::DeltaStats stats;
  };
  // Arms per-page write tracking and dumps every checkpointable page while
  // the workers keep running (kDumpBaseline).
  Result<DeltaDump> dump_baseline(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                                  const EnclaveMigrateOptions& opts);
  // Dumps only the pages re-dirtied since they were last shipped
  // (kDumpDelta). With `final_dump`, parks the workers, reaches the
  // quiescent point, captures the residual dirty set + thread contexts and
  // disarms tracking — the delta analogue of prepare().
  Result<DeltaDump> dump_delta(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                               const EnclaveMigrateOptions& opts,
                               bool final_dump);

  // ---- cold migration / crash recovery (store/) ----
  // Seals the enclave's state into an MGS1 snapshot envelope bound to the
  // counter service's current value, publishes it in `snapshots` (content
  // id + per-identity head pointer) and returns the content id. The enclave
  // keeps running; opts.counter_service must be set.
  Result<Bytes> snapshot_to_store(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                                  store::SealedSnapshotStore& snapshots,
                                  const EnclaveMigrateOptions& opts);

  // Restores `host` (which must have no bound instance — after a crash or on
  // a cold-migration target) from the snapshot object `snapshot_id`, or from
  // the identity's head pointer when `snapshot_id` is empty. The OPENGRANT
  // consumes the snapshot's counter epoch: a second restore of the same
  // envelope, or of any older one, is refused by the service.
  Status restore_from_store(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                            store::SealedSnapshotStore& snapshots,
                            ByteSpan snapshot_id,
                            const EnclaveMigrateOptions& opts);

 private:
  // Channels to counter-service helper threads. Retained for the migrator's
  // lifetime: a helper whose enclave refused the command in-enclave only
  // retires at its serve timeout, long after the store call returned — the
  // channel must still exist then.
  std::vector<std::unique_ptr<sim::Channel>> counter_channels_;

  hv::World* world_;
};

// The developer's agent enclave on a target machine: a normal SDK enclave
// whose control thread implements the agent commands. Lives in a host-level
// process of the target machine (outside the migrating VM).
class AgentEnclave {
 public:
  // Builds + creates the agent. `identity` must be the developer identity of
  // the enclaves it will serve; `dev_signer` must be the same signing key
  // (MRSIGNER policy).
  static Result<std::unique_ptr<AgentEnclave>> create(
      sim::ThreadCtx& ctx, hv::World& world, guestos::GuestOs& host_os,
      const crypto::SigKeyPair& dev_signer,
      const crypto::SigKeyPair& identity, crypto::Drbg rng);

  sdk::AgentPort& port() { return port_; }
  sdk::ControlMailbox& mailbox() { return host_->mailbox(); }
  Status destroy(sim::ThreadCtx& ctx) { return host_->destroy(ctx); }

 private:
  AgentEnclave() = default;
  std::unique_ptr<sdk::EnclaveHost> host_;
  sdk::AgentPort port_;
};

// Full VM migration with enclaves: Fig. 8 pipeline + pre-copy + per-enclave
// restore. One session per migration.
class VmMigrationSession {
 public:
  struct Options {
    hv::MigrationParams precopy;
    crypto::CipherAlg cipher = crypto::CipherAlg::kRc4;
    bool use_agent = false;  // §VI-D optimization
    // Agent host environment on the target (required when use_agent).
    guestos::GuestOs* target_host_os = nullptr;
    crypto::SigKeyPair dev_signer;        // for building the agent
    // Chunked checkpoint pipeline knobs, forwarded to every enclave's
    // EnclaveMigrateOptions (0 chunk_bytes = legacy v1 sealing).
    uint64_t chunk_bytes = 64 * 1024;
    uint64_t seal_workers = 2;
    // Forwarded to every enclave's EnclaveMigrateOptions: when set, each
    // committed restore advances the enclave's monotonic counter (rollback
    // defense for pre-migration snapshots).
    store::CounterBackend* counter_service = nullptr;
    // Incremental enclave checkpointing (wire format v3): take a full
    // baseline dump while the workers keep running, ship re-dirtied pages
    // after each pre-copy round, and capture only the residual dirty set at
    // the quiescent point — the enclave analogue of pre-copy itself. Off by
    // default; the classic path stays byte-identical on the wire.
    bool incremental = false;
    // ---- post-copy / hybrid (wire format v4) ----
    // post_copy: flip the VM immediately (no pre-copy rounds) and leave the
    // residual enclave pages behind as a kRemote manifest pulled on demand.
    // hybrid: pre-copy (VM rounds + enclave delta rounds) while it
    // converges, then flip the residue. Both imply `incremental` — the
    // manifest is carved out of the final delta dump.
    bool post_copy = false;
    bool hybrid = false;
    // ---- fleet scheduling (src/fleet/) ----
    // Shared uplink arbiter for concurrent migrations: when set, the session
    // registers a flow of `uplink_weight` and attaches its migration
    // channel's bulk (source->target) direction to it, so N concurrent
    // sessions fairly share one modeled NIC. Acks return unshaped.
    sim::SharedLink* uplink = nullptr;
    uint64_t uplink_weight = 1;
    // Invoked on the migration channel right after the session creates it,
    // before any traffic. Lets a caller install per-VM fault plans or taps
    // on exactly this migration's link (the world-level channel interceptor
    // sees every channel, including counter/key helpers).
    std::function<void(sim::Channel&)> channel_hook;
  };

  VmMigrationSession(hv::World& world, hv::Vm& vm, guestos::GuestOs& guest,
                     hv::Machine& source, hv::Machine& target, Options opts);
  // Unregisters the handlers manage() installed: the process callbacks
  // capture this session, and a retrying caller (fleet scheduler) destroys
  // the session after each attempt.
  ~VmMigrationSession();

  // Registers migration handlers for `host`'s process (call once per host
  // before run()).
  void manage(sdk::EnclaveHost& host);

  // Runs the whole migration; returns the source-side report. Spawns the
  // QEMU source/target threads internally and blocks (in virtual time).
  Result<hv::MigrationReport> run(sim::ThreadCtx& ctx);

  // The target engine's view of the last run (useful after a failed run to
  // see how the target side died).
  const Result<hv::MigrationReport>& target_report() const {
    return target_report_;
  }

  // Cooperative pause gate for an external scheduler (src/fleet/): while
  // paused, the engine's pre-copy loop blocks at its next round boundary —
  // the VM keeps running (and dirtying pages) meanwhile, so pausing costs
  // pre-copy progress, never downtime. pause() only raises the flag;
  // resume() wakes the blocked round. Idempotent; safe before/after run().
  void pause() { paused_ = true; }
  void resume(sim::ThreadCtx& ctx) {
    paused_ = false;
    pause_event_.set(ctx);
  }
  bool paused() const { return paused_; }

 private:
  struct ManagedEnclave;

  Result<uint64_t> prepare_process(sim::ThreadCtx& ctx, guestos::Process* p);
  Status resume_process(sim::ThreadCtx& ctx, guestos::Process* p);
  // Incremental mode: the engine's delta hooks, fanned out per enclave.
  Result<uint64_t> delta_begin_process(sim::ThreadCtx& ctx,
                                       guestos::Process* p);
  Result<uint64_t> delta_round_process(sim::ThreadCtx& ctx,
                                       guestos::Process* p);
  EnclaveMigrateOptions enclave_opts() const;
  // Abort-path undo (invoked via GuestOs::cancel_enclave_migration): decide
  // each enclave's fate through its control thread and either re-attach the
  // source instance or tear down a committed one.
  Status cancel_process(sim::ThreadCtx& ctx, guestos::Process* p);
  void cleanup_failed_restore(sim::ThreadCtx& ctx, ManagedEnclave& m);

  hv::World* world_;
  hv::Vm* vm_;
  guestos::GuestOs* guest_;
  hv::Machine* source_;
  hv::Machine* target_;
  Options opts_;
  EnclaveMigrator migrator_;
  bool paused_ = false;
  sim::Event pause_event_;

  struct ManagedEnclave {
    sdk::EnclaveHost* host = nullptr;
    Bytes checkpoint;
    std::unique_ptr<sdk::EnclaveInstance> source_instance;
    // Agent path: key delivery runs concurrently with the remaining pre-copy
    // (that is the whole point of §VI-D); restore waits on this.
    std::unique_ptr<sim::Event> key_delivered;
    Status delivery_status = OkStatus();
    // Where the enclave ends up when source-abort and target-restore race.
    // The real arbiter is the control-thread mailbox (kCancelMigration vs
    // kServeKey); this mirrors its verdict for the session's cleanup paths.
    enum class Fate { kPending, kCancelled, kCommitted };
    Fate fate = Fate::kPending;
    // True once resume_process has handed this enclave to restore(); the
    // cancel path then leaves instance cleanup to restore's failure path.
    bool restore_started = false;
    // Incremental mode: MGD3 segments accumulated across the baseline and
    // delta rounds (prepare_process appends the final quiescent segment and
    // assembles the MGV3 container into `checkpoint`), plus the summed
    // accounting the session merges into the MigrationReport after a
    // successful run.
    std::vector<Bytes> delta_segments;
    sdk::DeltaStats delta_stats;
    uint64_t delta_residual_pages = 0;
  };
  std::map<guestos::Process*, std::vector<ManagedEnclave>> managed_;
  std::unique_ptr<AgentEnclave> agent_;
  Result<hv::MigrationReport> target_report_ =
      Error(ErrorCode::kUnavailable, "target never ran");
};

}  // namespace mig::migration
