// Remote-page service for post-copy migration (wire format v4).
//
// After a post-copy flip the target runs on a partial enclave image: the
// residual dirty tail stayed behind on the source as kRemote manifest
// records. Two small state machines move it across the untrusted link:
//
//  * PageService (source side) — a serve loop bound to the RETAINED source
//    enclave instance. It forwards MGP4 page-request frames to the enclave's
//    control thread (kServePages), which seals each page under its
//    (page, version)-bound subkey and chains it into the wire-v3 hash chain,
//    and sends the reply frame back. The loop exits on a done frame, a
//    severed/quiet link, or a serve error.
//
//  * PageClient (target side) — the pull pump. It drives the pending set in
//    demand order, batching faults and letting the source prefetch
//    fault-adjacent pages, and posts every reply to the target control
//    thread (kApplyPages) for verify-apply. FAIL CLOSED: if the link goes
//    quiet mid-pull the client posts kAbortPostcopy — the target
//    self-destroys rather than run on a partial image — and returns the
//    deadline error. The source's sealed checkpoint stays restorable.
//
// Both sides are untrusted plumbing: every integrity decision (epoch, chain,
// version, content hash, MAC) happens inside the enclaves' control threads.
#pragma once

#include <cstdint>
#include <vector>

#include "sdk/control.h"
#include "sim/network.h"

namespace mig::migration {

struct PageServiceOptions {
  // Upper bound on demand pages forwarded per kServePages post; a bigger
  // request is split across several posts (and reply frames).
  uint64_t max_batch = 32;
  // Manifest pages adjacent to each fault that the enclave may serve in the
  // same reply (forwarded as ControlCmd::prefetch_pages).
  uint64_t prefetch_pages = 8;
  // A link this quiet is treated as hung up; the service exits.
  uint64_t idle_timeout_ns = 30'000'000'000;  // 30 s
};

// Source-side serve loop. Runs until the client hangs up (done frame), the
// link goes quiet/severed, or the enclave refuses a request. Returns the
// number of reply frames served on success.
Result<uint64_t> serve_pages(sim::ThreadCtx& ctx,
                             sdk::ControlMailbox& source_mailbox,
                             sim::Channel::End end,
                             const PageServiceOptions& opts);

struct PagePullOptions {
  uint64_t demand_batch = 8;        // faults bundled per request frame
  uint64_t prefetch_pages = 8;      // forwarded to the source service
  uint64_t reply_timeout_ns = 5'000'000'000;  // 5 s per reply
};

struct PagePullStats {
  uint64_t pages = 0;     // pages verified and applied
  uint64_t requests = 0;  // request frames sent
  uint64_t bytes = 0;     // reply frame bytes received
};

// Target-side pull pump: drains `pending` (from ControlReply::postcopy_pending)
// through the link, applying each reply via kApplyPages on `target_mailbox`.
// On a quiet or severed link it posts kAbortPostcopy (target self-destroys,
// fail closed) and returns kDeadlineExceeded.
Result<PagePullStats> pull_pages(sim::ThreadCtx& ctx,
                                 sdk::ControlMailbox& target_mailbox,
                                 sim::Channel::End end,
                                 std::vector<uint64_t> pending, uint64_t epoch,
                                 const PagePullOptions& opts);

}  // namespace mig::migration
