// The enclave owner's service (runs far away from the untrusted cloud).
//
// Roles, per the paper:
//  * launch-time provisioning (Fig. 7, "during booting"): after verifying a
//    quote through the attestation service, hand the enclave the
//    provisioning key that decrypts its embedded identity private key;
//  * owner-keyed checkpoint/resume (§V-C): issue Kencrypt for legal
//    snapshots and keep an audit log, so "an owner can check suspicious
//    rollbacks" — the rollback-attack tests drive this log.
//
// Live migration deliberately needs NO owner involvement; this service is
// never on that path.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sdk/builder.h"
#include "sgx/attestation.h"
#include "sim/network.h"

namespace mig::migration {

struct AuditEntry {
  std::string verb;  // "PROVISION" | "CKPT" | "RESTORE"
  crypto::Digest mrenclave{};
  uint64_t at_ns = 0;
};

class EnclaveOwner {
 public:
  EnclaveOwner(sgx::AttestationService& ias, crypto::Drbg rng)
      : ias_(&ias), rng_(std::move(rng)) {}

  // Registers an enclave the owner recognizes: its expected measurement and
  // the credentials from the build.
  void enroll(const crypto::Digest& mrenclave, sdk::OwnerCredentials creds);

  // Serves exactly one request arriving on `end` (PROVISION / CKPT /
  // RESTORE). Runs on the caller's thread; typically spawned as a helper
  // sim thread concurrently with the enclave's mailbox command.
  void serve_one(sim::ThreadCtx& ctx, sim::Channel::End end);

  // Policy knob for rollback auditing/tests: when false, RESTORE requests
  // are refused (the owner smells a rollback).
  void set_allow_restore(bool allow) { allow_restore_ = allow; }

  const std::vector<AuditEntry>& audit_log() const { return audit_; }

  // Per-enclave snapshot key (stable so a legal snapshot can be resumed
  // later; issued only to attested instances, every issuance logged).
  Bytes kencrypt_for(const crypto::Digest& mrenclave);

 private:
  sgx::AttestationService* ias_;
  crypto::Drbg rng_;
  struct Enrolled {
    sdk::OwnerCredentials creds;
    Bytes kencrypt;
  };
  std::map<Bytes, Enrolled> enrolled_;  // key: mrenclave bytes
  std::vector<AuditEntry> audit_;
  bool allow_restore_ = true;
};

}  // namespace mig::migration
