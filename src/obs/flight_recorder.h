// Always-on failure forensics: a bounded ring of structured events.
//
// Traces and metrics answer "where did the time go?" but only when somebody
// turned them on before the flight. The flight recorder answers the other
// question — "why did this migration die?" — after the fact, the way a real
// migration stack's black box does: every `Result` error path and every
// fail-closed transition in the control thread, the engine, the session, the
// page service and the counter service drops one structured record into a
// fixed-capacity ring that is always recording.
//
// Design constraints:
//  * Always on, near-zero cost: there is no enable flag to check because the
//    hooks sit exclusively on error/abort paths — a clean migration records
//    nothing. No allocation beyond the strings of the records themselves,
//    no locking (the sim executor runs one thread at a time).
//  * Bounded: a fixed ring of kCapacity records; older records are
//    overwritten and counted as dropped, so a retry loop cannot grow memory.
//  * Deterministic: records carry the virtual clock and sim thread id, and
//    dump() emits them oldest-first with a fixed JSON shape — identical
//    seeds produce byte-identical dumps, so failure-matrix tests can assert
//    on *why* a migration died, not just that it did.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mig::obs {

class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 128;

  struct Record {
    uint64_t seq = 0;    // monotonically increasing since the last clear()
    uint64_t ts_ns = 0;  // virtual clock of the recording sim thread
    uint32_t tid = 0;
    std::string where;   // subsystem site, e.g. "hv.source", "sdk.control"
    std::string what;    // event, e.g. "abort", "fail_closed", "cmd_failed"
    std::string detail;  // free-form cause (status message, phase, counts)
  };

  static FlightRecorder& global();

  void record(uint64_t ts_ns, uint32_t tid, std::string where,
              std::string what, std::string detail = {});

  void clear();

  // Records still in the ring, oldest first.
  std::vector<Record> snapshot() const;
  size_t size() const { return count_ < kCapacity ? count_ : kCapacity; }
  // Every record() since the last clear(), including overwritten ones.
  uint64_t total_recorded() const { return count_; }
  uint64_t dropped() const {
    return count_ > kCapacity ? count_ - kCapacity : 0;
  }

  // Deterministic JSON dump (oldest record first):
  //   {"dropped":N,"records":[{"seq":..,"ts_ns":..,"tid":..,
  //    "where":"..","what":"..","detail":".."},...]}
  std::string dump() const;

  // True if any retained record's where/what/detail contains `needle`.
  bool contains(std::string_view needle) const;

 private:
  std::array<Record, kCapacity> ring_;
  uint64_t count_ = 0;  // total records ever; ring slot = seq % kCapacity
};

inline FlightRecorder& flightrec() { return FlightRecorder::global(); }

// Convenience hook for instrumented code holding a sim thread context
// (anything with now()/id(), same duck-typing as Span).
template <typename Ctx>
inline void flight(Ctx& ctx, std::string where, std::string what,
                   std::string detail = {}) {
  FlightRecorder::global().record(ctx.now(), ctx.id(), std::move(where),
                                  std::move(what), std::move(detail));
}

}  // namespace mig::obs
