// Downtime-budget attribution: fold a TraceRecorder capture into a
// per-migration phase ledger.
//
// The paper's evaluation is a sequence of breakdowns — where does migration
// time go between pre-copy rounds, the two-phase checkpoint, the final
// stop-and-copy, restore and CSSA replay (Figs. 9(c), 10(b)-(d))? The engine
// reports totals (`migration.total_ns`, `migration.downtime_ns`); this
// analyzer re-derives those totals *from the trace* and attributes them to
// phases, so the engine's own numbers and the trace-derived numbers can be
// cross-checked against each other (they must agree exactly — both clocks
// are the same deterministic virtual time).
//
// Two exact partitions plus one set of overlays:
//  * `phases` partitions [migrate_source B, E] on the source sim thread into
//    the engine's top-level spans (pre-copy rounds, prepare, stop-and-copy,
//    post-copy tail, restore wait) plus `other` for the gaps; the entries
//    sum to `total_ns` by construction.
//  * `downtime_phases` partitions the downtime window — from the
//    `stop_and_copy` begin (the engine's stop_time) to the `vm.resumed`
//    instant (the kResumeAck payload) — into device-save, final wire copy
//    and device-restore using the `stop.device_saved` / `stop.final_received`
//    instants; the entries sum to `downtime_ns` by construction.
//  * `span_totals` aggregates cross-thread contributors that overlap the
//    partitions (checkpoint, residual delta dumps, counter round-trips,
//    enclave restore, CSSA replay, post-copy pulls) — the Fig. 10(b)-(d)
//    series.
//
// Deterministic: pure fold over the recorded events, fixed phase order,
// fixed JSON shape. Identical seeds produce byte-identical ledgers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace mig::obs {

struct AttributionPhase {
  std::string name;
  uint64_t ns = 0;
};

struct AttributionLedger {
  bool present = false;  // set by attribute_migration()
  uint64_t total_ns = 0;
  uint64_t downtime_ns = 0;
  // Exact partition of the source half; sums to total_ns.
  std::vector<AttributionPhase> phases;
  // Exact partition of the downtime window; sums to downtime_ns.
  std::vector<AttributionPhase> downtime_phases;
  // Cross-thread contributors (overlap the partitions; informational).
  std::vector<AttributionPhase> span_totals;

  uint64_t phase_ns(std::string_view name) const;
  uint64_t downtime_phase_ns(std::string_view name) const;
  uint64_t span_total_ns(std::string_view name) const;

  // Publishes `attr.total_ns`, `attr.downtime_ns`, `attr.phase.<name>_ns`,
  // `attr.downtime.<name>_ns` and `attr.span.<name>_ns` gauges (all names
  // come from the fixed tables in attribution.cc and are registered in
  // docs/trace-schema.md). No-op while metrics are disabled.
  void publish() const;

  // Deterministic single-line JSON of the whole ledger (test diffing).
  std::string json() const;
};

// Analyzes the LAST complete migration (a balanced `migrate_source` span) in
// the capture. Fails with kFailedPrecondition if the trace holds none.
Result<AttributionLedger> attribute_migration(const TraceRecorder& trace);

}  // namespace mig::obs
