// Metrics registry for the migration pipeline.
//
// Counters (monotone: bytes shipped, rounds, retries, faults injected, CSSA
// pumps), gauges (last-run facts: downtime_ns, migration.success) and
// log2-bucketed histograms (distributions: round bytes, message sizes).
// Everything is process-global, deterministic, and dumps to JSON with sorted
// keys so two identical seeded runs produce byte-identical output.
//
// The registry is the single source of truth the benches and tests read:
// MigrationReport::publish_metrics() folds the engine's report into it, so
// engine-level numbers and trace-derived numbers cannot drift apart.
//
// Naming convention (dot-separated, layer first):
//   hv.*        pre-copy engine          (hv.rounds, hv.transferred_bytes)
//   migration.* session/report level     (migration.downtime_ns, ...)
//   sdk.*       enclave runtime          (sdk.aex, sdk.cssa_pumps, sdk.parks)
//   net.*       simulated links          (net.bytes_sent, net.msg_bytes)
//   sim.*       executor + fault layer   (sim.slices, sim.faults.injected)
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/trace.h"  // enable flags + json_escape live there

namespace mig::obs {

class MetricsRegistry {
 public:
  // 65 buckets: bucket 0 holds value 0, bucket i>0 holds [2^(i-1), 2^i).
  static constexpr size_t kBuckets = 65;
  struct Histogram {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };

  static MetricsRegistry& global();

  void set_enabled(bool on);
  bool enabled() const;
  void clear();

  // Recording (no-ops while disabled).
  void add(std::string_view name, uint64_t delta = 1);  // counter +=
  void set_gauge(std::string_view name, uint64_t v);    // gauge =
  void observe(std::string_view name, uint64_t v);      // histogram sample

  // Query API for tests/benches. Missing names read as zero/empty.
  uint64_t counter(std::string_view name) const;
  uint64_t gauge(std::string_view name) const;
  bool has_gauge(std::string_view name) const;
  Histogram histogram(std::string_view name) const;

  // {"counters":{...},"gauges":{...},"histograms":{...}} with sorted keys
  // and only non-empty histogram buckets listed.
  std::string json() const;

  static size_t bucket_index(uint64_t v);

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, uint64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace mig::obs
