#include "obs/attribution.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"

namespace mig::obs {

namespace {

// A balanced B/E pair reconstructed from the event stream.
struct CompletedSpan {
  std::string name;
  uint32_t tid = 0;
  uint64_t b_ts = 0;
  uint64_t e_ts = 0;
  size_t depth = 0;  // nesting depth on its tid at the B event (0 = root)
};

struct InstantEvent {
  std::string name;
  uint32_t tid = 0;
  uint64_t ts = 0;
};

// The source half's direct child spans, in ledger order. Anything else that
// shows up as a direct child folds into "other" so the gauge name set stays
// closed (docs/trace-schema.md registers every attr.* name).
constexpr std::string_view kPhaseOrder[] = {
    "precopy_rounds", "prepare_enclaves", "stop_and_copy",
    "postcopy_tail",  "restore_wait",     "other",
};

std::string_view phase_for_child(std::string_view span_name) {
  if (span_name == "precopy_round") return "precopy_rounds";
  if (span_name == "prepare_enclaves") return "prepare_enclaves";
  if (span_name == "stop_and_copy") return "stop_and_copy";
  if (span_name == "postcopy.vm_serve") return "postcopy_tail";
  if (span_name == "wait_restore_report") return "restore_wait";
  return "other";
}

// Cross-thread contributors: trace span name -> aggregate name.
constexpr std::pair<std::string_view, std::string_view> kSpanTotals[] = {
    {"two_phase_checkpoint", "checkpoint"},
    {"delta.baseline", "delta_dump"},
    {"delta.round", "delta_dump"},
    {"delta.final", "delta_dump"},
    {"ctl.advance_counter", "counter_roundtrip"},
    {"store.counter.serve", "counter_roundtrip"},
    {"restore.enclave", "enclave_restore"},
    {"cssa_replay", "cssa_replay"},
    {"postcopy.pull", "postcopy_pull"},
    {"postcopy.vm_pull", "postcopy_pull"},
};

constexpr std::string_view kSpanTotalOrder[] = {
    "checkpoint",      "delta_dump", "counter_roundtrip",
    "enclave_restore", "cssa_replay", "postcopy_pull",
};

uint64_t find_phase(const std::vector<AttributionPhase>& v,
                    std::string_view name) {
  for (const AttributionPhase& p : v)
    if (p.name == name) return p.ns;
  return 0;
}

void append_phases(std::string& out, const char* key,
                   const std::vector<AttributionPhase>& v) {
  out += "\"";
  out += key;
  out += "\":{";
  bool first = true;
  for (const AttributionPhase& p : v) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(p.name) + "\":" + std::to_string(p.ns);
  }
  out += "}";
}

}  // namespace

uint64_t AttributionLedger::phase_ns(std::string_view name) const {
  return find_phase(phases, name);
}
uint64_t AttributionLedger::downtime_phase_ns(std::string_view name) const {
  return find_phase(downtime_phases, name);
}
uint64_t AttributionLedger::span_total_ns(std::string_view name) const {
  return find_phase(span_totals, name);
}

void AttributionLedger::publish() const {
  if (!metrics_enabled() || !present) return;
  MetricsRegistry& m = metrics();
  m.set_gauge("attr.total_ns", total_ns);
  m.set_gauge("attr.downtime_ns", downtime_ns);
  for (const AttributionPhase& p : phases)
    m.set_gauge("attr.phase." + p.name + "_ns", p.ns);
  for (const AttributionPhase& p : downtime_phases)
    m.set_gauge("attr.downtime." + p.name + "_ns", p.ns);
  for (const AttributionPhase& p : span_totals)
    m.set_gauge("attr.span." + p.name + "_ns", p.ns);
}

std::string AttributionLedger::json() const {
  std::string out = "{\"present\":";
  out += present ? "true" : "false";
  out += ",\"total_ns\":" + std::to_string(total_ns);
  out += ",\"downtime_ns\":" + std::to_string(downtime_ns) + ",";
  append_phases(out, "phases", phases);
  out += ",";
  append_phases(out, "downtime_phases", downtime_phases);
  out += ",";
  append_phases(out, "span_totals", span_totals);
  out += "}";
  return out;
}

Result<AttributionLedger> attribute_migration(const TraceRecorder& trace) {
  // Pass 1: reconstruct balanced spans and instants. Per-tid stacks mirror
  // the exporter's E-name backfill; unbalanced leftovers (spans still open
  // when the capture was taken) are simply not completed spans.
  std::vector<CompletedSpan> spans;
  std::vector<InstantEvent> instants;
  std::map<uint32_t, std::vector<CompletedSpan>> open;  // per-tid stacks
  for (const TraceRecorder::Event& ev : trace.events()) {
    if (ev.ph == 'B') {
      CompletedSpan s;
      s.name = ev.name;
      s.tid = ev.tid;
      s.b_ts = ev.ts_ns;
      s.depth = open[ev.tid].size();
      open[ev.tid].push_back(std::move(s));
    } else if (ev.ph == 'E') {
      auto it = open.find(ev.tid);
      if (it == open.end() || it->second.empty())
        return Error(ErrorCode::kInvalidArgument,
                     "unbalanced trace: E without matching B");
      CompletedSpan s = std::move(it->second.back());
      it->second.pop_back();
      s.e_ts = ev.ts_ns;
      spans.push_back(std::move(s));
    } else if (ev.ph == 'i') {
      instants.push_back({ev.name, ev.tid, ev.ts_ns});
    }
  }

  // The last complete migration in the capture (retries leave earlier,
  // aborted attempts behind; the committed one is the one to attribute).
  const CompletedSpan* src = nullptr;
  for (const CompletedSpan& s : spans)
    if (s.name == "migrate_source" &&
        (src == nullptr || s.b_ts >= src->b_ts))
      src = &s;
  if (src == nullptr)
    return Error(ErrorCode::kFailedPrecondition,
                 "trace holds no complete migrate_source span");

  AttributionLedger led;
  led.present = true;
  led.total_ns = src->e_ts - src->b_ts;

  // Total-time partition: direct children of migrate_source on its tid.
  std::map<std::string_view, uint64_t> phase_ns;
  uint64_t child_sum = 0;
  const CompletedSpan* stop = nullptr;
  for (const CompletedSpan& s : spans) {
    if (s.tid != src->tid || s.depth != src->depth + 1) continue;
    if (s.b_ts < src->b_ts || s.e_ts > src->e_ts) continue;
    phase_ns[phase_for_child(s.name)] += s.e_ts - s.b_ts;
    child_sum += s.e_ts - s.b_ts;
    if (s.name == "stop_and_copy" && (stop == nullptr || s.b_ts > stop->b_ts))
      stop = &s;
  }
  phase_ns["other"] += led.total_ns - child_sum;  // inter-span gaps
  for (std::string_view name : kPhaseOrder)
    led.phases.push_back({std::string(name), phase_ns[name]});

  // Downtime partition: stop_and_copy B (== the engine's stop_time) to the
  // vm.resumed instant (== the kResumeAck payload the engine subtracts).
  if (stop != nullptr) {
    uint64_t t_stop = stop->b_ts;
    auto first_instant = [&](std::string_view name,
                             uint64_t not_before) -> const InstantEvent* {
      const InstantEvent* best = nullptr;
      for (const InstantEvent& i : instants)
        if (i.name == name && i.ts >= not_before && i.ts <= src->e_ts &&
            (best == nullptr || i.ts < best->ts))
          best = &i;
      return best;
    };
    const InstantEvent* resumed = first_instant("vm.resumed", t_stop);
    if (resumed != nullptr) {
      led.downtime_ns = resumed->ts - t_stop;
      const InstantEvent* saved = first_instant("stop.device_saved", t_stop);
      const InstantEvent* received =
          saved ? first_instant("stop.final_received", saved->ts) : nullptr;
      if (saved != nullptr && received != nullptr &&
          received->ts <= resumed->ts) {
        led.downtime_phases.push_back({"device_save", saved->ts - t_stop});
        led.downtime_phases.push_back({"final_copy", received->ts - saved->ts});
        led.downtime_phases.push_back(
            {"device_restore", resumed->ts - received->ts});
      } else {
        // Pre-instant traces: attribute the whole window as one phase so the
        // sum-to-downtime invariant still holds.
        led.downtime_phases.push_back({"stop_to_resume", led.downtime_ns});
      }
    }
  }

  // Cross-thread contributors inside the migration window.
  std::map<std::string_view, uint64_t> totals;
  for (const CompletedSpan& s : spans) {
    if (s.b_ts < src->b_ts || s.e_ts > src->e_ts) continue;
    for (const auto& [span_name, agg] : kSpanTotals)
      if (s.name == span_name) totals[agg] += s.e_ts - s.b_ts;
  }
  for (std::string_view name : kSpanTotalOrder)
    led.span_totals.push_back({std::string(name), totals[name]});

  return led;
}

}  // namespace mig::obs
