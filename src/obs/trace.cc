#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mig::obs {

namespace internal {
bool g_trace_on = false;
bool g_metrics_on = false;

namespace {
// MIG_TRACE=1 (or any non-empty value other than "0") switches the whole
// process to instrumented mode at startup — the `trace` ctest preset uses
// this to run the full suite with observability on.
bool env_init() {
  const char* v = std::getenv("MIG_TRACE");
  if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
    g_trace_on = true;
    g_metrics_on = true;
  }
  return true;
}
const bool g_env_initialized = env_init();
}  // namespace
}  // namespace internal

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::set_enabled(bool on) { internal::g_trace_on = on; }

void TraceRecorder::clear() {
  events_.clear();
  thread_names_.clear();
}

void TraceRecorder::ensure_thread(uint32_t tid,
                                  const std::string& thread_name) {
  auto it = std::find_if(thread_names_.begin(), thread_names_.end(),
                         [&](const auto& p) { return p.first == tid; });
  if (it == thread_names_.end()) thread_names_.emplace_back(tid, thread_name);
}

void TraceRecorder::begin(uint64_t ts_ns, uint32_t tid,
                          const std::string& thread_name, std::string name,
                          std::string cat, Args args) {
  if (!enabled()) return;
  ensure_thread(tid, thread_name);
  Event e;
  e.ph = 'B';
  e.ts_ns = ts_ns;
  e.tid = tid;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::end(uint64_t ts_ns, uint32_t tid, Args args) {
  if (!enabled()) return;
  Event e;
  e.ph = 'E';
  e.ts_ns = ts_ns;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::instant(uint64_t ts_ns, uint32_t tid,
                            const std::string& thread_name, std::string name,
                            std::string cat, Args args) {
  if (!enabled()) return;
  ensure_thread(tid, thread_name);
  Event e;
  e.ph = 'i';
  e.ts_ns = ts_ns;
  e.tid = tid;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

size_t TraceRecorder::span_count(std::string_view name) const {
  size_t n = 0;
  for (const Event& e : events_) {
    if (e.ph == 'B' && e.name == name) ++n;
  }
  return n;
}

size_t TraceRecorder::instant_count(std::string_view name) const {
  size_t n = 0;
  for (const Event& e : events_) {
    if (e.ph == 'i' && e.name == name) ++n;
  }
  return n;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Chrome trace "ts" is in microseconds; emit ns with fixed 3 fractional
// digits so output is deterministic (no floating-point formatting involved).
std::string ts_us(uint64_t ns) {
  std::string frac = std::to_string(ns % 1000);
  return std::to_string(ns / 1000) + "." +
         std::string(3 - frac.size(), '0') + frac;
}

void append_args(std::string& out, const Args& args) {
  out += "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(args[i].key) + "\":";
    if (args[i].is_str) {
      out += "\"" + json_escape(args[i].str) + "\"";
    } else {
      out += std::to_string(args[i].u64);
    }
  }
  out += "}";
}

}  // namespace

std::string TraceRecorder::chrome_json() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };

  std::vector<std::pair<uint32_t, std::string>> names = thread_names_;
  std::sort(names.begin(), names.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [tid, name] : names) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
  }

  // Per-tid open-span stacks so 'E' events can carry the matching 'B' name
  // (Perfetto tolerates anonymous ends; named ones are self-describing).
  std::vector<std::pair<uint32_t, std::vector<const Event*>>> stacks;
  auto stack_for = [&](uint32_t tid) -> std::vector<const Event*>& {
    for (auto& [t, s] : stacks) {
      if (t == tid) return s;
    }
    stacks.emplace_back(tid, std::vector<const Event*>{});
    return stacks.back().second;
  };

  for (const Event& e : events_) {
    sep();
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + ts_us(e.ts_ns);
    const Event* open = nullptr;
    if (e.ph == 'B') {
      stack_for(e.tid).push_back(&e);
    } else if (e.ph == 'E') {
      auto& stack = stack_for(e.tid);
      if (!stack.empty()) {
        open = stack.back();
        stack.pop_back();
      }
    }
    const std::string& name = e.ph == 'E' && open != nullptr ? open->name
                                                             : e.name;
    const std::string& cat = e.ph == 'E' && open != nullptr ? open->cat
                                                            : e.cat;
    out += ",\"name\":\"" + json_escape(name) + "\"";
    if (!cat.empty()) out += ",\"cat\":\"" + json_escape(cat) + "\"";
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":";
    append_args(out, e.args);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

ScopedObservation::ScopedObservation()
    : prev_trace_(internal::g_trace_on), prev_metrics_(internal::g_metrics_on) {
  TraceRecorder::global().clear();
  MetricsRegistry::global().clear();
  // The flight recorder is always on; clearing it here scopes failure
  // forensics to this capture the same way traces and metrics are scoped.
  FlightRecorder::global().clear();
  internal::g_trace_on = true;
  internal::g_metrics_on = true;
}

ScopedObservation::~ScopedObservation() {
  internal::g_trace_on = prev_trace_;
  internal::g_metrics_on = prev_metrics_;
}

}  // namespace mig::obs
