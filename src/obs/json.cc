#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace mig::obs {

const Json* Json::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

Json Json::make_bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::make_number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = d;
  return j;
}

Json Json::make_integer(uint64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = static_cast<double>(v);
  j.u64_ = v;
  j.is_int_ = true;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::make_array(std::vector<Json> items) {
  Json j;
  j.type_ = Type::kArray;
  j.arr_ = std::move(items);
  return j;
}

Json Json::make_object(std::map<std::string, Json> fields) {
  Json j;
  j.type_ = Type::kObject;
  j.obj_ = std::move(fields);
  return j;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> run() {
    MIG_ASSIGN_OR_RETURN(Json v, parse_value());
    skip_ws();
    if (pos_ != text_.size()) return err("trailing data after document");
    return v;
  }

 private:
  Status err(const std::string& what) const {
    return Error(ErrorCode::kInvalidArgument,
                 "json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      MIG_ASSIGN_OR_RETURN(std::string s, parse_string());
      return Json::make_string(std::move(s));
    }
    if (consume_word("null")) return Json::make_null();
    if (consume_word("true")) return Json::make_bool(true);
    if (consume_word("false")) return Json::make_bool(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return err("unexpected character");
  }

  Result<Json> parse_number() {
    size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    std::string lit(text_.substr(start, pos_ - start));
    if (lit.empty() || lit == "-") return err("malformed number");
    if (integral && lit[0] != '-') {
      return Json::make_integer(std::strtoull(lit.c_str(), nullptr, 10));
    }
    return Json::make_number(std::strtod(lit.c_str(), nullptr));
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return err("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return err("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return err("bad \\u escape");
            }
            // Our emitters only escape control characters; encode the code
            // point as UTF-8 for completeness.
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xc0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (v & 0x3f));
            }
            break;
          }
          default:
            return err("bad escape");
        }
      } else {
        out += c;
      }
    }
    return err("unterminated string");
  }

  Result<Json> parse_array() {
    if (!consume('[')) return err("expected array");
    std::vector<Json> items;
    skip_ws();
    if (consume(']')) return Json::make_array(std::move(items));
    while (true) {
      MIG_ASSIGN_OR_RETURN(Json v, parse_value());
      items.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return Json::make_array(std::move(items));
      if (!consume(',')) return err("expected ',' or ']'");
    }
  }

  Result<Json> parse_object() {
    if (!consume('{')) return err("expected object");
    std::map<std::string, Json> fields;
    skip_ws();
    if (consume('}')) return Json::make_object(std::move(fields));
    while (true) {
      skip_ws();
      MIG_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_ws();
      if (!consume(':')) return err("expected ':'");
      MIG_ASSIGN_OR_RETURN(Json v, parse_value());
      fields.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return Json::make_object(std::move(fields));
      if (!consume(',')) return err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace mig::obs
