#include "obs/metrics.h"

#include <bit>

#include "obs/trace.h"

namespace mig::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::set_enabled(bool on) { internal::g_metrics_on = on; }
bool MetricsRegistry::enabled() const { return internal::g_metrics_on; }

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::add(std::string_view name, uint64_t delta) {
  if (!enabled()) return;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, uint64_t v) {
  if (!enabled()) return;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), v);
  } else {
    it->second = v;
  }
}

size_t MetricsRegistry::bucket_index(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}

void MetricsRegistry::observe(std::string_view name, uint64_t v) {
  if (!enabled()) return;
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  Histogram& h = it->second;
  if (h.count == 0 || v < h.min) h.min = v;
  if (h.count == 0 || v > h.max) h.max = v;
  h.count += 1;
  h.sum += v;
  h.buckets[bucket_index(v)] += 1;
}

uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

uint64_t MetricsRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

bool MetricsRegistry::has_gauge(std::string_view name) const {
  return gauges_.find(name) != gauges_.end();
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::string MetricsRegistry::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n\"" + json_escape(k) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\n\"" + json_escape(k) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\n\"" + json_escape(k) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) + ",\"buckets\":{";
    bool bfirst = true;
    for (size_t i = 0; i < kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out += ",";
      bfirst = false;
      out += "\"" + std::to_string(i) + "\":" + std::to_string(h.buckets[i]);
    }
    out += "}}";
  }
  out += "}}\n";
  return out;
}

}  // namespace mig::obs
