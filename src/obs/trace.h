// Virtual-time tracing for the deterministic simulator.
//
// The paper's whole evaluation is about *where time goes* during a migration
// (two-phase checkpoint latency, pre-copy round behavior, restore/CSSA-replay
// cost — Figs. 9-11). TraceRecorder makes that visible: instrumented code
// opens RAII spans and drops instant events stamped with the calling sim
// thread's virtual clock, and the recorder exports Chrome trace-event JSON
// that Perfetto (ui.perfetto.dev) renders as a per-sim-thread timeline of an
// entire VM migration — pre-copy rounds, checkpoint, attestation/DH
// handshake, key handoff, restore, CSSA replay.
//
// Design constraints, in order:
//  * Deterministic: events are appended in sim-execution order, which the
//    executor already makes deterministic (one sim thread runs at a time,
//    handoff at explicit points). Same seed + same program = byte-identical
//    JSON, so traces are diffable in tests.
//  * Near-zero cost when disabled: every entry point checks one global bool;
//    call sites that would build argument strings guard on obs::active()
//    first. No allocation, no locking, nothing else happens when off.
//  * No dependency on sim/: spans are templated on the context type (they
//    only need now()/id()/name()), so sim itself can be instrumented without
//    a dependency cycle (obs sits between util and sim in the module DAG).
//
// The recorder is process-global and disabled by default; tests use
// ScopedObservation to enable + clear it for one capture. Setting MIG_TRACE=1
// in the environment enables tracing (and metrics) from startup, which is how
// the `trace` ctest preset runs the whole suite instrumented.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace mig::obs {

namespace internal {
extern bool g_trace_on;
extern bool g_metrics_on;
}  // namespace internal

inline bool tracing_enabled() { return internal::g_trace_on; }
inline bool metrics_enabled() { return internal::g_metrics_on; }
// Guard for call sites that build args for trace and/or metrics.
inline bool active() {
  return internal::g_trace_on || internal::g_metrics_on;
}

// One key/value argument attached to a trace event. Values are u64 or string
// (everything the instrumentation needs: byte counts, round numbers, phase
// outcomes, names).
struct Arg {
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  Arg(std::string k, T v)
      : key(std::move(k)), is_str(false), u64(static_cast<uint64_t>(v)) {}
  Arg(std::string k, const char* v) : key(std::move(k)), is_str(true), str(v) {}
  Arg(std::string k, std::string v)
      : key(std::move(k)), is_str(true), str(std::move(v)) {}

  std::string key;
  bool is_str = false;
  uint64_t u64 = 0;
  std::string str;
};
using Args = std::vector<Arg>;

class TraceRecorder {
 public:
  // Event phases mirror the Chrome trace-event ones we emit: 'B'egin/'E'nd
  // span pairs and 'i'nstant events.
  struct Event {
    char ph = 'i';
    uint64_t ts_ns = 0;
    uint32_t tid = 0;
    std::string name;  // empty on 'E' (filled from the matching 'B' on export)
    std::string cat;
    Args args;
  };

  static TraceRecorder& global();

  void set_enabled(bool on);
  bool enabled() const { return internal::g_trace_on; }
  // Drops all recorded events and thread names.
  void clear();

  // Raw recording interface. `thread_name` is registered once per tid (first
  // sighting wins) and exported as Chrome thread_name metadata.
  void begin(uint64_t ts_ns, uint32_t tid, const std::string& thread_name,
             std::string name, std::string cat, Args args = {});
  void end(uint64_t ts_ns, uint32_t tid, Args args = {});
  void instant(uint64_t ts_ns, uint32_t tid, const std::string& thread_name,
               std::string name, std::string cat, Args args = {});

  // Chrome trace-event JSON (object form, loadable in Perfetto / Chrome
  // about:tracing). Deterministic: metadata sorted by tid, events in record
  // order, fixed number formatting.
  std::string chrome_json() const;

  // ---- query API for tests ----
  const std::vector<Event>& events() const { return events_; }
  size_t span_count(std::string_view name) const;     // 'B' events named so
  size_t instant_count(std::string_view name) const;  // 'i' events named so
  bool has_span(std::string_view name) const { return span_count(name) > 0; }

 private:
  void ensure_thread(uint32_t tid, const std::string& thread_name);

  std::vector<Event> events_;
  // tid -> name in registration order (deterministic); export sorts by tid.
  std::vector<std::pair<uint32_t, std::string>> thread_names_;
};

inline TraceRecorder& trace() { return TraceRecorder::global(); }

// RAII span on the calling sim thread's virtual clock. Templated so obs does
// not depend on sim::ThreadCtx; any type with now()/id()/name() works.
template <typename Ctx>
class Span {
 public:
  Span() = default;
  Span(Ctx& ctx, std::string name, std::string cat, Args args = {}) {
    if (!tracing_enabled()) return;
    ctx_ = &ctx;
    trace().begin(ctx.now(), ctx.id(), ctx.name(), std::move(name),
                  std::move(cat), std::move(args));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : ctx_(o.ctx_) { o.ctx_ = nullptr; }
  ~Span() { finish(); }

  // Ends the span early, optionally attaching result args (bytes produced,
  // outcome) that were unknown when it opened.
  void finish(Args args = {}) {
    if (ctx_ == nullptr) return;
    trace().end(ctx_->now(), ctx_->id(), std::move(args));
    ctx_ = nullptr;
  }

 private:
  Ctx* ctx_ = nullptr;
};

template <typename Ctx>
inline void instant(Ctx& ctx, std::string name, std::string cat,
                    Args args = {}) {
  if (!tracing_enabled()) return;
  trace().instant(ctx.now(), ctx.id(), ctx.name(), std::move(name),
                  std::move(cat), std::move(args));
}

// Enables trace + metrics for one capture, clearing previous data; restores
// the prior enable flags on destruction (recorded data stays readable until
// the next capture clears it).
class ScopedObservation {
 public:
  ScopedObservation();
  ~ScopedObservation();
  ScopedObservation(const ScopedObservation&) = delete;
  ScopedObservation& operator=(const ScopedObservation&) = delete;

 private:
  bool prev_trace_;
  bool prev_metrics_;
};

// Escapes a string for embedding in JSON output (shared by trace/metrics/
// bench emitters).
std::string json_escape(std::string_view s);

}  // namespace mig::obs
