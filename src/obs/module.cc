// Module anchor; real sources accompany it.
namespace mig {
const char* k_obs_module = "obs";
}  // namespace mig
