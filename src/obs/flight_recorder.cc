#include "obs/flight_recorder.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mig::obs {

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

void FlightRecorder::record(uint64_t ts_ns, uint32_t tid, std::string where,
                            std::string what, std::string detail) {
  Record& slot = ring_[count_ % kCapacity];
  slot.seq = count_;
  slot.ts_ns = ts_ns;
  slot.tid = tid;
  slot.where = std::move(where);
  slot.what = std::move(what);
  slot.detail = std::move(detail);
  ++count_;
  if (metrics_enabled()) {
    metrics().add("flightrec.records");
    metrics().set_gauge("flightrec.dropped", dropped());
  }
}

void FlightRecorder::clear() {
  for (Record& r : ring_) r = Record{};
  count_ = 0;
}

std::vector<FlightRecorder::Record> FlightRecorder::snapshot() const {
  std::vector<Record> out;
  size_t n = size();
  out.reserve(n);
  uint64_t first = count_ - n;
  for (uint64_t s = first; s < count_; ++s)
    out.push_back(ring_[s % kCapacity]);
  return out;
}

std::string FlightRecorder::dump() const {
  std::string out = "{\"dropped\":" + std::to_string(dropped()) +
                    ",\"records\":[";
  bool first = true;
  for (const Record& r : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(r.seq) +
           ",\"ts_ns\":" + std::to_string(r.ts_ns) +
           ",\"tid\":" + std::to_string(r.tid) + ",\"where\":\"" +
           json_escape(r.where) + "\",\"what\":\"" + json_escape(r.what) +
           "\",\"detail\":\"" + json_escape(r.detail) + "\"}";
  }
  out += "]}";
  return out;
}

bool FlightRecorder::contains(std::string_view needle) const {
  for (const Record& r : snapshot()) {
    if (r.where.find(needle) != std::string::npos ||
        r.what.find(needle) != std::string::npos ||
        r.detail.find(needle) != std::string::npos)
      return true;
  }
  return false;
}

}  // namespace mig::obs
