// Minimal JSON reader used by the observability tests and the trace schema
// checker. Parses the full JSON grammar into a small value tree; this is a
// consumer for our own deterministic emitters (trace/metrics/bench lines),
// not a general-purpose library — numbers are stored as double plus the raw
// integer when the literal was integral, which is enough to round-trip the
// u64 counters we emit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mig::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  // Valid when the literal was integral and non-negative (our emitters only
  // produce such numbers for counters/byte totals).
  uint64_t as_u64() const { return u64_; }
  bool is_integer() const { return is_int_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Json>& items() const { return arr_; }
  const std::map<std::string, Json>& fields() const { return obj_; }

  // Object lookup; returns nullptr when absent or not an object.
  const Json* get(std::string_view key) const;
  bool has(std::string_view key) const { return get(key) != nullptr; }

  // Parses one JSON document; trailing non-whitespace is an error.
  static Result<Json> parse(std::string_view text);

  static Json make_null() { return Json(); }
  static Json make_bool(bool b);
  static Json make_number(double d);
  static Json make_integer(uint64_t v);
  static Json make_string(std::string s);
  static Json make_array(std::vector<Json> items);
  static Json make_object(std::map<std::string, Json> fields);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  uint64_t u64_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace mig::obs
