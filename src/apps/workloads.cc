#include "apps/workloads.h"

#include <cmath>

#include "crypto/bignum.h"
#include "crypto/ciphers.h"
#include "crypto/sha256.h"
#include "util/serde.h"

namespace mig::apps {

namespace {

// Shared scaffolding: every workload keeps a running digest in its data
// region at offset 0 and a scratch input block derived from it, processes
// the block with its real kernel, and charges the calibrated cost.
using BlockFn = uint64_t (*)(ByteSpan input);

std::shared_ptr<sdk::EnclaveProgram> make_block_program(
    const char* name, BlockFn fn, uint64_t work_ns_per_byte_x100) {
  auto prog = std::make_shared<sdk::EnclaveProgram>(name);
  prog->add_ecall(
      kWorkloadEcallProcess, "process",
      [fn, work_ns_per_byte_x100](sdk::EnclaveEnv& env, sdk::Frame& f) {
        Bytes args = f.args();
        Reader r(args);
        uint64_t block = r.u64();
        if (block == 0 || block > (1u << 20))
          return Error(ErrorCode::kInvalidArgument, "bad block size");
        uint64_t digest_off = env.layout().data_off;
        uint64_t state = env.read_u64(digest_off);
        // Deterministic input block derived from the running digest.
        Bytes input(block);
        uint64_t s = state * 0x9e3779b97f4a7c15ULL + 1;
        for (size_t i = 0; i < input.size(); ++i) {
          if (i % 8 == 0) s = s * 6364136223846793005ULL + 1442695040888963407ULL;
          input[i] = static_cast<uint8_t>(s >> (8 * (i % 8)));
        }
        uint64_t out = fn(input);
        env.work(sim::per_byte_x100(work_ns_per_byte_x100, block));
        env.write_u64(digest_off, state ^ out);
        f.step();  // AEX point: these apps are long-running
        return OkStatus();
      });
  prog->add_ecall(kWorkloadEcallDigest, "digest",
                  [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

uint64_t block_des(ByteSpan input) {
  static const Bytes key = hex_decode("0123456789abcdef");
  Bytes ct = crypto::des_cbc_encrypt(key, input);
  uint64_t h = 0;
  for (size_t i = 0; i < ct.size(); i += 64) h = h * 31 + ct[i];
  return h;
}

uint64_t block_rc4(ByteSpan input) {
  Bytes buf(input.begin(), input.end());
  crypto::Rc4(to_bytes("cr4-key")).xor_stream(buf);
  uint64_t h = 0;
  for (size_t i = 0; i < buf.size(); i += 64) h = h * 31 + buf[i];
  return h;
}

uint64_t block_mcrypt(ByteSpan input) {
  static const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  static const Bytes iv(16, 0x3c);
  Bytes ct = crypto::aes128_cbc_encrypt(key, iv, input);
  uint64_t h = 0;
  for (size_t i = 0; i < ct.size(); i += 64) h = h * 31 + ct[i];
  return h;
}

uint64_t block_gnupg(ByteSpan input) {
  // Sign-ish: hash the block, then a short modexp (RSA-like core op).
  crypto::Digest d = crypto::Sha256::hash(input);
  crypto::BigNum m = crypto::BigNum::from_bytes(ByteSpan(d).first(16));
  crypto::BigNum n = crypto::BigNum::from_hex(
      "c9f2d8351629bbbd6cf5cc9a9c1f6af3cba7569d9f30cfd6a1a9b0c5e2fa4d5f");
  crypto::BigNum sig = m.modexp(crypto::BigNum(65537), n);
  Bytes b = sig.to_bytes();
  uint64_t h = 0;
  for (uint8_t v : b) h = h * 131 + v;
  return h;
}

uint64_t block_libjpeg(ByteSpan input) {
  // 8x8 forward DCT over the block, quantize, accumulate.
  uint64_t h = 0;
  for (size_t base = 0; base + 64 <= input.size(); base += 64) {
    double block[8][8];
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x)
        block[y][x] = static_cast<double>(input[base + 8 * y + x]) - 128.0;
    for (int v = 0; v < 8; ++v) {
      for (int u = 0; u < 8; ++u) {
        double sum = 0;
        for (int y = 0; y < 8; ++y)
          for (int x = 0; x < 8; ++x)
            sum += block[y][x] * std::cos((2 * x + 1) * u * M_PI / 16) *
                   std::cos((2 * y + 1) * v * M_PI / 16);
        double cu = u == 0 ? M_SQRT1_2 : 1.0;
        double cv = v == 0 ? M_SQRT1_2 : 1.0;
        int q = static_cast<int>(sum * cu * cv / 4 / 16);  // coarse quantizer
        h = h * 31 + static_cast<uint64_t>(q + 1024);
      }
    }
  }
  return h;
}

uint64_t block_libzip(ByteSpan input) {
  // LZ77-style greedy match finder with a small hash chain; returns a
  // digest of (literal, match) token stream — the compression core.
  constexpr int kWindow = 1024;
  std::vector<int> head(4096, -1);
  auto hash3 = [&](size_t i) {
    return ((input[i] << 6) ^ (input[i + 1] << 3) ^ input[i + 2]) & 0xfff;
  };
  uint64_t h = 0;
  size_t i = 0;
  while (i + 3 < input.size()) {
    int best_len = 0, best_dist = 0;
    int cand = head[hash3(i)];
    int tries = 8;
    while (cand >= 0 && static_cast<int>(i) - cand <= kWindow && tries-- > 0) {
      int len = 0;
      while (i + len < input.size() && len < 255 &&
             input[cand + len] == input[i + len])
        ++len;
      if (len > best_len) {
        best_len = len;
        best_dist = static_cast<int>(i) - cand;
      }
      cand = -1;  // single-probe chain (hash table stores latest only)
    }
    head[hash3(i)] = static_cast<int>(i);
    if (best_len >= 4) {
      h = h * 31 + (static_cast<uint64_t>(best_dist) << 8) + best_len;
      i += best_len;
    } else {
      h = h * 31 + input[i];
      ++i;
    }
  }
  return h;
}

std::shared_ptr<sdk::EnclaveProgram> make_des() {
  return make_block_program("des", block_des, 1'500);
}
std::shared_ptr<sdk::EnclaveProgram> make_cr4() {
  return make_block_program("cr4", block_rc4, 1'000);
}
std::shared_ptr<sdk::EnclaveProgram> make_mcrypt() {
  return make_block_program("mcrypt", block_mcrypt, 1'800);
}
std::shared_ptr<sdk::EnclaveProgram> make_gnupg() {
  return make_block_program("gnupg", block_gnupg, 2'500);
}
std::shared_ptr<sdk::EnclaveProgram> make_libjpeg() {
  return make_block_program("libjpeg", block_libjpeg, 2'000);
}
std::shared_ptr<sdk::EnclaveProgram> make_libzip() {
  return make_block_program("libzip", block_libzip, 1'200);
}

}  // namespace

const std::vector<Workload>& fig9b_workloads() {
  static const std::vector<Workload> workloads = {
      {"des", 4096, 1'500, make_des},
      {"cr4", 4096, 1'000, make_cr4},
      {"mcrypt", 4096, 1'800, make_mcrypt},
      {"gnupg", 4096, 2'500, make_gnupg},
      {"libjpeg", 4096, 2'000, make_libjpeg},
      {"libzip", 4096, 1'200, make_libzip},
  };
  return workloads;
}

const Workload* find_workload(std::string_view name) {
  for (const Workload& w : fig9b_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace mig::apps
