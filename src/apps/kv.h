// Memcached-like in-enclave key-value store (the paper runs Memcached
// 1.4.22 in an enclave for Fig. 11: two-phase checkpointing time vs. state
// size, AES-NI encryption, four worker threads).
//
// Values live in the enclave heap in fixed-size slots; set/get are ecalls.
// The Fig. 11 bench sizes the heap 1..32 MB and measures kPrepareCheckpoint.
#pragma once

#include <memory>

#include "sdk/enclave_env.h"
#include "sdk/program.h"

namespace mig::apps {

inline constexpr uint64_t kKvEcallSet = 1;    // args: u64 key, u64 len
inline constexpr uint64_t kKvEcallGet = 2;    // args: u64 key -> u64 checksum
inline constexpr uint64_t kKvEcallFill = 3;   // args: u64 count, u64 len
inline constexpr uint64_t kKvEcallStats = 4;  // -> u64 items, u64 bytes

inline constexpr uint64_t kKvSlotBytes = 1024;

std::shared_ptr<sdk::EnclaveProgram> make_kv_program();

// Layout parameters for a KV enclave holding ~`value_mb` MB of live state.
sdk::LayoutParams kv_layout(uint64_t value_mb, uint64_t workers = 4);

}  // namespace mig::apps
