// The paper's running example for the data-consistency attack (§IV-A,
// Fig. 3): an in-enclave "bank" holding two accounts whose sum is invariant.
// transfer() debits A, computes for a while, then credits B — a checkpoint
// taken in between captures a state that never legally existed.
#pragma once

#include <functional>
#include <memory>

#include "sdk/enclave_env.h"
#include "sdk/program.h"

namespace mig::apps {

inline constexpr uint64_t kBankEcallInit = 1;      // args: u64 a, u64 b
inline constexpr uint64_t kBankEcallTransfer = 2;  // args: u64 amount
inline constexpr uint64_t kBankEcallBalances = 3;  // -> u64 a, u64 b

// Offsets of the accounts within the data region.
inline constexpr uint64_t kBankOffA = 0;
inline constexpr uint64_t kBankOffB = 8;

// `on_debit`, if provided, is invoked right after the debit lands (an
// untrusted-host observation point; attack tests use it to time their dump).
std::shared_ptr<sdk::EnclaveProgram> make_bank_program(
    std::function<void()> on_debit = nullptr,
    uint64_t mid_transfer_work_ns = 2'000'000);

}  // namespace mig::apps
