#include "apps/mailserver.h"

#include "util/serde.h"

namespace mig::apps {

namespace {
constexpr uint64_t kOffStatus = 0;
constexpr uint64_t kOffCount = 8;
constexpr uint64_t kOffRecipients = 16;  // up to 32 x u64
constexpr uint64_t kMaxRecipients = 32;
}  // namespace

std::shared_ptr<sdk::EnclaveProgram> make_mail_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("mail-server");
  prog->add_ecall(kMailEcallCreate, "create",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t n = r.u64();
    if (n > kMaxRecipients)
      return Error(ErrorCode::kInvalidArgument, "too many recipients");
    uint64_t d = env.layout().data_off;
    env.work(500);
    for (uint64_t i = 0; i < n; ++i)
      env.write_u64(d + kOffRecipients + 8 * i, r.u64());
    env.write_u64(d + kOffCount, n);
    env.write_u64(d + kOffStatus, kMailStatusDraft);
    return r.finish();
  });
  prog->add_ecall(kMailEcallDelete, "delete",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t id = r.u64();
    uint64_t d = env.layout().data_off;
    if (env.read_u64(d + kOffStatus) != kMailStatusDraft)
      return Error(ErrorCode::kFailedPrecondition, "no draft");
    uint64_t n = env.read_u64(d + kOffCount);
    env.work(300);
    uint64_t out = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t rec = env.read_u64(d + kOffRecipients + 8 * i);
      if (rec == id) continue;
      env.write_u64(d + kOffRecipients + 8 * out, rec);
      ++out;
    }
    if (out == n) return Error(ErrorCode::kNotFound, "no such recipient");
    env.write_u64(d + kOffCount, out);
    return OkStatus();
  });
  prog->add_ecall(kMailEcallSend, "send",
                  [](sdk::EnclaveEnv& env, sdk::Frame&) {
    uint64_t d = env.layout().data_off;
    if (env.read_u64(d + kOffStatus) != kMailStatusDraft)
      return Error(ErrorCode::kFailedPrecondition, "no draft to send");
    uint64_t n = env.read_u64(d + kOffCount);
    env.work(800);
    Writer w;
    w.u64(n);
    for (uint64_t i = 0; i < n; ++i)
      w.u64(env.read_u64(d + kOffRecipients + 8 * i));
    env.write_u64(d + kOffStatus, kMailStatusSent);
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kMailEcallStatus, "status",
                  [](sdk::EnclaveEnv& env, sdk::Frame&) {
    uint64_t d = env.layout().data_off;
    Writer w;
    w.u64(env.read_u64(d + kOffStatus));
    w.u64(env.read_u64(d + kOffCount));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

}  // namespace mig::apps
