#include "apps/nbench.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <queue>
#include <tuple>

namespace mig::apps {

namespace {

// Small deterministic generator for kernel inputs.
uint64_t mix(uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---- 1. Numeric Sort: heapsort over 32-bit ints ---------------------------
uint64_t run_numeric_sort(uint64_t seed) {
  std::vector<uint32_t> a(4096);
  for (auto& v : a) v = static_cast<uint32_t>(mix(seed));
  std::make_heap(a.begin(), a.end());
  std::sort_heap(a.begin(), a.end());
  uint64_t sum = 0;
  for (size_t i = 0; i < a.size(); i += 7) sum += a[i] * (i + 1);
  return sum;
}

// ---- 2. String Sort: pointer-chasing sort of variable-length strings ------
uint64_t run_string_sort(uint64_t seed) {
  std::vector<std::string> strs(512);
  for (auto& s : strs) {
    size_t len = 4 + mix(seed) % 60;
    s.resize(len);
    for (auto& c : s) c = static_cast<char>('a' + mix(seed) % 26);
  }
  std::sort(strs.begin(), strs.end());
  uint64_t h = 1469598103934665603ULL;
  for (const auto& s : strs)
    for (char c : s) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  return h;
}

// ---- 3. Bitfield: set/clear/complement runs over a bitmap ------------------
uint64_t run_bitfield(uint64_t seed) {
  std::vector<uint64_t> bits(1024, 0);
  for (int op = 0; op < 4096; ++op) {
    uint64_t start = mix(seed) % (1024 * 64);
    uint64_t len = 1 + mix(seed) % 200;
    int kind = static_cast<int>(mix(seed) % 3);
    for (uint64_t b = start; b < std::min<uint64_t>(start + len, 1024 * 64); ++b) {
      uint64_t& w = bits[b / 64];
      uint64_t m = uint64_t{1} << (b % 64);
      if (kind == 0) w |= m;
      else if (kind == 1) w &= ~m;
      else w ^= m;
    }
  }
  uint64_t sum = 0;
  for (uint64_t w : bits) sum += __builtin_popcountll(w);
  return sum;
}

// ---- 4. FP Emulation: software floating point (fixed-point mantissa ops) ---
uint64_t run_fp_emulation(uint64_t seed) {
  struct SoftFloat {
    int64_t mant;
    int32_t exp;
  };
  auto norm = [](SoftFloat f) {
    if (f.mant == 0) return f;
    while (std::abs(f.mant) >= (int64_t{1} << 40)) { f.mant >>= 1; ++f.exp; }
    while (std::abs(f.mant) < (int64_t{1} << 32)) { f.mant <<= 1; --f.exp; }
    return f;
  };
  auto mul = [&](SoftFloat a, SoftFloat b) {
    SoftFloat r{(a.mant >> 20) * (b.mant >> 20), a.exp + b.exp + 40};
    return norm(r);
  };
  auto add = [&](SoftFloat a, SoftFloat b) {
    if (a.exp < b.exp) std::swap(a, b);
    int32_t d = a.exp - b.exp;
    SoftFloat r{a.mant + (d < 63 ? (b.mant >> d) : 0), a.exp};
    return norm(r);
  };
  SoftFloat acc{int64_t{1} << 33, 0};
  for (int i = 0; i < 3000; ++i) {
    SoftFloat x{static_cast<int64_t>((mix(seed) % (1u << 30)) + (1u << 30)) << 3,
                static_cast<int32_t>(mix(seed) % 8) - 4};
    acc = add(mul(acc, norm(x)), x);
    if (acc.exp > 100) acc.exp -= 90;
    if (acc.exp < -100) acc.exp += 90;
  }
  return static_cast<uint64_t>(acc.mant) ^ static_cast<uint32_t>(acc.exp);
}

// ---- 5. Assignment: greedy + 2-opt improvement on a cost matrix ------------
uint64_t run_assignment(uint64_t seed) {
  constexpr int kN = 48;
  std::array<std::array<uint32_t, kN>, kN> cost;
  for (auto& row : cost)
    for (auto& c : row) c = static_cast<uint32_t>(mix(seed) % 1000);
  std::array<int, kN> assign{};
  std::array<bool, kN> used{};
  for (int i = 0; i < kN; ++i) {
    int best = -1;
    for (int j = 0; j < kN; ++j)
      if (!used[j] && (best < 0 || cost[i][j] < cost[i][best])) best = j;
    assign[i] = best;
    used[best] = true;
  }
  bool improved = true;
  while (improved) {
    improved = false;
    for (int i = 0; i < kN; ++i)
      for (int j = i + 1; j < kN; ++j) {
        uint64_t cur = cost[i][assign[i]] + cost[j][assign[j]];
        uint64_t swp = cost[i][assign[j]] + cost[j][assign[i]];
        if (swp < cur) {
          std::swap(assign[i], assign[j]);
          improved = true;
        }
      }
  }
  uint64_t total = 0;
  for (int i = 0; i < kN; ++i) total += cost[i][assign[i]];
  return total;
}

// ---- 6. IDEA-style cipher rounds (mul mod 65537 / add / xor structure) -----
uint64_t run_idea(uint64_t seed) {
  auto mulm = [](uint32_t a, uint32_t b) -> uint32_t {
    if (a == 0) a = 65536;
    if (b == 0) b = 65536;
    return static_cast<uint32_t>((uint64_t{a} * b) % 65537) & 0xffff;
  };
  uint16_t key[52];
  for (auto& k : key) k = static_cast<uint16_t>(mix(seed));
  uint64_t out = 0;
  for (int block = 0; block < 512; ++block) {
    uint16_t x0 = static_cast<uint16_t>(mix(seed)),
             x1 = static_cast<uint16_t>(mix(seed)),
             x2 = static_cast<uint16_t>(mix(seed)),
             x3 = static_cast<uint16_t>(mix(seed));
    const uint16_t* k = key;
    for (int round = 0; round < 8; ++round, k += 6) {
      x0 = static_cast<uint16_t>(mulm(x0, k[0]));
      x1 = static_cast<uint16_t>(x1 + k[1]);
      x2 = static_cast<uint16_t>(x2 + k[2]);
      x3 = static_cast<uint16_t>(mulm(x3, k[3]));
      uint16_t t0 = static_cast<uint16_t>(mulm(x0 ^ x2, k[4]));
      uint16_t t1 = static_cast<uint16_t>(mulm(static_cast<uint16_t>((x1 ^ x3) + t0), k[5]));
      t0 = static_cast<uint16_t>(t0 + t1);
      x0 ^= t1; x2 ^= t1; x1 ^= t0; x3 ^= t0;
      std::swap(x1, x2);
    }
    out += (uint64_t{x0} << 48) ^ (uint64_t{x1} << 32) ^ (uint64_t{x2} << 16) ^ x3;
  }
  return out;
}

// ---- 7. Huffman: tree build + encode/decode round trip ---------------------
uint64_t run_huffman(uint64_t seed) {
  std::vector<uint8_t> input(8192);
  for (auto& b : input) b = static_cast<uint8_t>(mix(seed) % 64);
  std::array<uint64_t, 256> freq{};
  for (uint8_t b : input) ++freq[b];
  struct Node {
    uint64_t freq;
    int sym, left, right;
  };
  std::vector<Node> nodes;
  using QEntry = std::pair<uint64_t, int>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], s, -1, -1});
    pq.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
  }
  while (pq.size() > 1) {
    auto [f1, n1] = pq.top(); pq.pop();
    auto [f2, n2] = pq.top(); pq.pop();
    nodes.push_back({f1 + f2, -1, n1, n2});
    pq.emplace(f1 + f2, static_cast<int>(nodes.size()) - 1);
  }
  std::array<std::pair<uint64_t, int>, 256> codes{};  // bits, length
  // Iterative DFS assigning codes.
  std::vector<std::tuple<int, uint64_t, int>> stack;
  stack.emplace_back(static_cast<int>(nodes.size()) - 1, 0, 0);
  while (!stack.empty()) {
    auto [n, bits, len] = stack.back();
    stack.pop_back();
    if (nodes[n].sym >= 0) {
      codes[nodes[n].sym] = {bits, std::max(len, 1)};
      continue;
    }
    stack.emplace_back(nodes[n].left, bits << 1, len + 1);
    stack.emplace_back(nodes[n].right, (bits << 1) | 1, len + 1);
  }
  uint64_t total_bits = 0, h = 0;
  for (uint8_t b : input) {
    total_bits += codes[b].second;
    h = h * 31 + codes[b].first;
  }
  return total_bits ^ h;
}

// ---- 8. Neural Net: one epoch of backprop on a tiny MLP --------------------
uint64_t run_neural_net(uint64_t seed) {
  constexpr int kIn = 16, kHid = 12, kOut = 4;
  double w1[kIn][kHid], w2[kHid][kOut];
  for (auto& row : w1)
    for (auto& w : row) w = (static_cast<double>(mix(seed) % 2000) - 1000) / 1000.0;
  for (auto& row : w2)
    for (auto& w : row) w = (static_cast<double>(mix(seed) % 2000) - 1000) / 1000.0;
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  double err_sum = 0;
  for (int sample = 0; sample < 64; ++sample) {
    double in[kIn], hid[kHid], out[kOut], target[kOut];
    for (auto& v : in) v = (mix(seed) % 100) / 100.0;
    for (auto& v : target) v = (mix(seed) % 100) / 100.0;
    for (int h = 0; h < kHid; ++h) {
      double s = 0;
      for (int i = 0; i < kIn; ++i) s += in[i] * w1[i][h];
      hid[h] = sigmoid(s);
    }
    for (int o = 0; o < kOut; ++o) {
      double s = 0;
      for (int h = 0; h < kHid; ++h) s += hid[h] * w2[h][o];
      out[o] = sigmoid(s);
    }
    double dout[kOut];
    for (int o = 0; o < kOut; ++o) {
      dout[o] = (target[o] - out[o]) * out[o] * (1 - out[o]);
      err_sum += std::abs(target[o] - out[o]);
    }
    for (int h = 0; h < kHid; ++h) {
      double dh = 0;
      for (int o = 0; o < kOut; ++o) {
        dh += dout[o] * w2[h][o];
        w2[h][o] += 0.1 * dout[o] * hid[h];
      }
      dh *= hid[h] * (1 - hid[h]);
      for (int i = 0; i < kIn; ++i) w1[i][h] += 0.1 * dh * in[i];
    }
  }
  return static_cast<uint64_t>(err_sum * 1e6);
}

// ---- 9. LU decomposition with partial pivoting ------------------------------
uint64_t run_lu(uint64_t seed) {
  constexpr int kN = 40;
  std::vector<double> m(kN * kN);
  for (auto& v : m) v = 1.0 + (mix(seed) % 1000) / 100.0;
  for (int i = 0; i < kN; ++i) m[i * kN + i] += 100.0;  // diagonally dominant
  double det_log = 0;
  for (int col = 0; col < kN; ++col) {
    int pivot = col;
    for (int r = col + 1; r < kN; ++r)
      if (std::abs(m[r * kN + col]) > std::abs(m[pivot * kN + col])) pivot = r;
    if (pivot != col)
      for (int c = 0; c < kN; ++c) std::swap(m[col * kN + c], m[pivot * kN + c]);
    det_log += std::log(std::abs(m[col * kN + col]));
    for (int r = col + 1; r < kN; ++r) {
      double f = m[r * kN + col] / m[col * kN + col];
      for (int c = col; c < kN; ++c) m[r * kN + c] -= f * m[col * kN + c];
    }
  }
  return static_cast<uint64_t>(det_log * 1e6);
}

}  // namespace

const std::vector<NbenchKernel>& nbench_kernels() {
  // Memory profiles calibrated so the enclave/native ratios land where
  // Fig. 9(a) puts them: compute-bound kernels ~1.0-1.3x, String Sort (big,
  // pointer-chasing, cache-hostile traffic) ~10x. One "iteration" is one
  // full benchmark pass, run entirely inside the enclave (one crossing).
  static const std::vector<NbenchKernel> kernels = {
      {"NumericSort", run_numeric_sort, 600'000, 20'000'000, 0.03, 2 << 20, 1},
      {"StringSort", run_string_sort, 800'000, 160'000'000, 0.30, 32 << 20, 1},
      {"Bitfield", run_bitfield, 500'000, 20'000'000, 0.02, 1 << 20, 1},
      {"FpEmulation", run_fp_emulation, 1'200'000, 4'000'000, 0.02, 1 << 20, 1},
      {"Assignment", run_assignment, 900'000, 40'000'000, 0.05, 4 << 20, 1},
      {"Idea", run_idea, 700'000, 6'000'000, 0.01, 1 << 20, 1},
      {"Huffman", run_huffman, 600'000, 20'000'000, 0.04, 2 << 20, 1},
      {"NeuralNet", run_neural_net, 1'000'000, 30'000'000, 0.04, 3 << 20, 1},
      {"LuDecomposition", run_lu, 1'100'000, 40'000'000, 0.04, 4 << 20, 1},
  };
  return kernels;
}

uint64_t nbench_native_ns(const NbenchKernel& k, const sim::CostModel&) {
  return k.work_ns;
}

uint64_t nbench_enclave_ns(const NbenchKernel& k, const sim::CostModel& cm,
                           uint64_t usable_epc_bytes) {
  // LLC misses to EPC pay the MEE factor on top of the DRAM access they
  // would have cost natively (already inside work_ns).
  double missed = static_cast<double>(k.traffic_bytes) * k.llc_miss_rate;
  uint64_t mee_extra_ns = static_cast<uint64_t>(
      missed * (cm.mee_penalty_x1000 - 1000) / 1000.0 *
      0.026 /* ns per missed byte of DRAM latency, 64B lines @ ~1.7ns */);
  uint64_t crossing_ns = k.crossings * (cm.eenter_ns + cm.eexit_ns);
  // Working set beyond the usable EPC thrashes through EWB/ELDB.
  uint64_t paging_ns = 0;
  if (k.footprint_bytes > usable_epc_bytes) {
    uint64_t overflow_pages =
        (k.footprint_bytes - usable_epc_bytes) / cm.page_size;
    double refault_fraction =
        static_cast<double>(k.footprint_bytes - usable_epc_bytes) /
        k.footprint_bytes;
    // Every touched overflow page faults once per pass over the working set.
    uint64_t passes = std::max<uint64_t>(
        1, k.traffic_bytes / std::max<uint64_t>(1, k.footprint_bytes));
    paging_ns = static_cast<uint64_t>(
        overflow_pages * passes * refault_fraction *
        (cm.ewb_ns_per_page + cm.eldb_ns_per_page));
  }
  return k.work_ns + mee_extra_ns + crossing_ns + paging_ns;
}

}  // namespace mig::apps
