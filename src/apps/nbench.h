// nbench 2.2.3 kernels (Fig. 9(a) workload).
//
// The paper ports BYTEmark/nbench into an enclave with both Intel's SDK and
// their own, and reports normalized runtime vs native. We reimplement the
// ten... nine kernels as real computations (each produces a checksum that
// tests verify), plus a per-kernel memory profile used to charge virtual
// time. The enclave overhead then *emerges* from the model: every iteration
// pays EENTER/EEXIT amortization, LLC-missing traffic pays the MEE penalty,
// and working sets beyond the EPC page in and out through EWB/ELDB — which
// is what makes String Sort an order of magnitude slower in the enclave,
// exactly as in the paper's figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace mig::apps {

struct NbenchKernel {
  std::string name;
  // Real computation: runs one iteration over scratch state derived from
  // `seed`, returns a checksum (tests pin these; benches use them to keep
  // the compiler honest).
  uint64_t (*run)(uint64_t seed);
  // Memory profile per iteration, for the virtual-time model.
  uint64_t work_ns;          // pure compute time, native
  uint64_t traffic_bytes;    // memory traffic per iteration
  double llc_miss_rate;      // fraction of traffic that misses the LLC
  uint64_t footprint_bytes;  // resident working set
  uint64_t crossings;        // enclave boundary crossings per iteration
};

const std::vector<NbenchKernel>& nbench_kernels();

// Virtual-time cost of one iteration, native vs in-enclave. In-enclave
// accesses that miss the LLC pay the MEE factor; working sets beyond the
// usable EPC page through the driver (amortized EWB+ELDB per overflow page).
uint64_t nbench_native_ns(const NbenchKernel& k, const sim::CostModel& cm);
uint64_t nbench_enclave_ns(const NbenchKernel& k, const sim::CostModel& cm,
                           uint64_t usable_epc_bytes);

}  // namespace mig::apps
