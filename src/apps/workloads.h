// The real-world application kernels of Fig. 9(b): des, cr4 (RC4), mcrypt,
// gnupg, libjpeg, libzip — "real world applications which have security
// requirements, changed to applications with enclave". Each becomes an
// enclave program with a process-one-block ecall doing genuine computation
// (our own DES/RC4/AES/modexp/DCT/LZ implementations) plus a calibrated
// virtual-time charge. The Fig. 9(b) bench runs them with and without the
// SDK's migration instrumentation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sdk/enclave_env.h"
#include "sdk/program.h"

namespace mig::apps {

inline constexpr uint64_t kWorkloadEcallProcess = 1;  // args: u64 block bytes
inline constexpr uint64_t kWorkloadEcallDigest = 2;   // -> u64 running digest

struct Workload {
  std::string name;                 // the paper's label (des, cr4, ...)
  uint64_t default_block = 4096;    // bytes per process call
  uint64_t work_ns_per_byte_x100;   // calibrated compute cost
  std::shared_ptr<sdk::EnclaveProgram> (*make_program)();
};

// All six Fig. 9(b) workloads.
const std::vector<Workload>& fig9b_workloads();

// Looks one up by the paper's name ("des", "cr4", "mcrypt", "gnupg",
// "libjpeg", "libzip"); nullptr when unknown.
const Workload* find_workload(std::string_view name);

}  // namespace mig::apps
