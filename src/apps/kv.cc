#include "apps/kv.h"

#include "sgx/types.h"
#include "util/serde.h"

namespace mig::apps {

namespace {
// Data-region bookkeeping offsets.
constexpr uint64_t kOffItems = 0;
constexpr uint64_t kOffBytes = 8;

uint64_t slot_count(const sdk::Layout& l) {
  return l.params.heap_pages * sgx::kPageSize / kKvSlotBytes;
}

uint64_t slot_off(const sdk::Layout& l, uint64_t key) {
  return l.heap_off + (key % slot_count(l)) * kKvSlotBytes;
}

// Deterministic value pattern for a key; checkable by get().
Bytes value_pattern(uint64_t key, uint64_t len) {
  Bytes out(len);
  uint64_t s = key * 0x9e3779b97f4a7c15ULL + 0xabcdef;
  for (size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0) s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    out[i] = static_cast<uint8_t>(s >> (8 * (i % 8)));
  }
  return out;
}

uint64_t checksum(ByteSpan data) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : data) h = (h ^ b) * 1099511628211ULL;
  return h;
}

Status do_set(sdk::EnclaveEnv& env, uint64_t key, uint64_t len) {
  if (len == 0 || len > kKvSlotBytes - 8)
    return Error(ErrorCode::kInvalidArgument, "bad value length");
  uint64_t off = slot_off(env.layout(), key);
  Writer hdr;
  hdr.u64(len);
  env.write_bytes(off, hdr.data());
  env.write_bytes(off + 8, value_pattern(key, len));
  env.work(80 + len / 4);  // memcached-ish store cost
  uint64_t d = env.layout().data_off;
  env.write_u64(d + kOffItems, env.read_u64(d + kOffItems) + 1);
  env.write_u64(d + kOffBytes, env.read_u64(d + kOffBytes) + len);
  return OkStatus();
}
}  // namespace

std::shared_ptr<sdk::EnclaveProgram> make_kv_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("memcached-kv");
  prog->add_ecall(kKvEcallSet, "set", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t key = r.u64();
    uint64_t len = r.u64();
    return do_set(env, key, len);
  });
  prog->add_ecall(kKvEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t key = r.u64();
    uint64_t off = slot_off(env.layout(), key);
    uint64_t len = env.read_u64(off);
    if (len == 0 || len > kKvSlotBytes - 8)
      return Error(ErrorCode::kNotFound, "no such key");
    Bytes value = env.read_bytes(off + 8, len);
    env.work(60 + len / 8);
    Writer w;
    w.u64(checksum(value));
    env.set_retval(w.take());
    return OkStatus();
  });
  // Bulk loader for the Fig. 11 bench: resumable so big fills can AEX.
  prog->add_ecall(kKvEcallFill, "fill", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t count = r.u64();
    uint64_t len = r.u64();
    while (f.pc() < count) {
      MIG_RETURN_IF_ERROR(do_set(env, f.pc(), len));
      f.step();
    }
    return OkStatus();
  });
  prog->add_ecall(kKvEcallStats, "stats", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    uint64_t d = env.layout().data_off;
    w.u64(env.read_u64(d + kOffItems));
    w.u64(env.read_u64(d + kOffBytes));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

sdk::LayoutParams kv_layout(uint64_t value_mb, uint64_t workers) {
  sdk::LayoutParams p;
  p.num_workers = workers;
  p.heap_pages = value_mb * 256;  // 4 KB pages
  p.data_pages = 1;
  return p;
}

}  // namespace mig::apps
