#include "apps/bank.h"

#include "util/serde.h"

namespace mig::apps {

std::shared_ptr<sdk::EnclaveProgram> make_bank_program(
    std::function<void()> on_debit, uint64_t mid_transfer_work_ns) {
  auto prog = std::make_shared<sdk::EnclaveProgram>("bank");
  prog->add_ecall(kBankEcallInit, "init",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t a = r.u64();
    uint64_t b = r.u64();
    env.write_u64(env.layout().data_off + kBankOffA, a);
    env.write_u64(env.layout().data_off + kBankOffB, b);
    return OkStatus();
  });
  prog->add_ecall(
      kBankEcallTransfer, "transfer",
      [on_debit, mid_transfer_work_ns](sdk::EnclaveEnv& env, sdk::Frame& f) {
        Bytes args = f.args();
        Reader r(args);
        uint64_t amount = r.u64();
        uint64_t a_off = env.layout().data_off + kBankOffA;
        uint64_t b_off = env.layout().data_off + kBankOffB;
        // Resumable two-step transaction (Fig. 3's transfer()).
        if (f.pc() == 0) {
          env.write_u64(a_off, env.read_u64(a_off) - amount);  // debit
          if (on_debit) on_debit();
          f.set_local(0, amount);
          f.step();
        }
        if (f.pc() == 1) {
          env.work(mid_transfer_work_ns);  // the attack window
          f.step();
        }
        env.write_u64(b_off, env.read_u64(b_off) + f.local(0));  // credit
        return OkStatus();
      });
  prog->add_ecall(kBankEcallBalances, "balances",
                  [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off + kBankOffA));
    w.u64(env.read_u64(env.layout().data_off + kBankOffB));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

}  // namespace mig::apps
