// The paper's fork-attack running example (Fig. 6): a mail server in an
// enclave. A draft has a recipient list; the client creates the mail,
// deletes Eve from the recipients, then sends. If a malicious operator can
// fork the enclave between the operations, the fork that never saw the
// delete sends the mail to Eve. Self-destroy + single key delivery prevent
// exactly this; examples/mail_server.cc and the attack tests demonstrate it.
#pragma once

#include <memory>

#include "sdk/enclave_env.h"
#include "sdk/program.h"

namespace mig::apps {

inline constexpr uint64_t kMailEcallCreate = 1;  // args: u64 n, n x u64 ids
inline constexpr uint64_t kMailEcallDelete = 2;  // args: u64 id
inline constexpr uint64_t kMailEcallSend = 3;    // -> recipient ids at send
inline constexpr uint64_t kMailEcallStatus = 4;  // -> u64 status, u64 n

// Status values stored in the data region.
inline constexpr uint64_t kMailStatusNone = 0;
inline constexpr uint64_t kMailStatusDraft = 1;
inline constexpr uint64_t kMailStatusSent = 2;

std::shared_ptr<sdk::EnclaveProgram> make_mail_program();

}  // namespace mig::apps
