// Module anchor; real sources accompany it.
namespace mig { const char* k_apps_module = "apps"; }
