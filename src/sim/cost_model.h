// All calibration constants of the simulation, in one place.
//
// The paper evaluates on two DELL Inspiron 7559 laptops (i7-6700HQ 2.6 GHz,
// 8 GB RAM), KVM + QEMU 2.5.0, a 4-VCPU / 2 GB guest, shared storage. We
// cannot measure that hardware, so every modelled operation charges virtual
// nanoseconds from this table. Constants were chosen so the *calibration
// targets* quoted in DESIGN.md §4 (all taken from the paper's text and
// figures) come out at the right magnitude; the *shapes* of the curves then
// emerge from the simulated mechanisms, not from curve fitting.
#pragma once

#include <cstdint>

namespace mig::sim {

struct CostModel {
  // ---- CPU / memory ----
  uint64_t cycle_ns = 1;                   // model cycle ≈ ns at ~1 GHz scale
  uint64_t mem_access_ns_per_byte = 0;     // charged via workload models
  uint64_t cache_line_bytes = 64;

  // ---- SGX instruction costs (per Intel measurements in the literature:
  // enclave crossings are ~3-4k cycles; EADD/EEXTEND dominate build time) ----
  uint64_t eenter_ns = 3'800;
  uint64_t eexit_ns = 3'300;
  uint64_t aex_ns = 3'300;        // AEX hardware part (context scrub + save)
  uint64_t eresume_ns = 3'800;
  uint64_t ecreate_ns = 10'000;
  uint64_t eadd_ns_per_page = 2'300;      // copy + EPCM update
  uint64_t eextend_ns_per_page = 10'400;  // 16 × SHA-256 over 256-byte chunks
  uint64_t einit_ns = 50'000;
  uint64_t eremove_ns_per_page = 500;
  uint64_t ewb_ns_per_page = 8'000;       // encrypt + MAC + version
  uint64_t eldb_ns_per_page = 8'000;
  uint64_t ereport_ns = 10'000;
  uint64_t egetkey_ns = 8'000;

  // EPC access penalty: the MEE makes LLC-miss traffic to EPC ~2-10x more
  // expensive. Workload models consult this multiplier (x1000).
  uint64_t mee_penalty_x1000 = 5'500;   // 5.5x on EPC-missing accesses

  // ---- crypto throughput (ns per byte; paper: 20 KB RC4 ≈ 200 us,
  // 20 KB DES ≈ 300 us, AES-NI fast path for Fig. 11) ----
  uint64_t rc4_ns_per_byte = 10;        // ~100 MB/s
  uint64_t des_ns_per_byte = 15;        // ~66 MB/s
  uint64_t aes_sw_ns_per_byte = 18;
  uint64_t aesni_ns_per_byte_x100 = 120;   // 1.2 ns/B ≈ 0.8 GB/s w/ CBC+copy
  uint64_t chacha20_ns_per_byte_x100 = 250;
  uint64_t sha256_ns_per_byte_x100 = 380;  // ~3.8 ns/B
  uint64_t dh_keygen_ns = 180'000;      // modexp
  uint64_t dh_shared_ns = 180'000;
  // Local attestation uses an ECDH-class exchange (Intel SDK's LA): much
  // cheaper than the WAN channel's finite-field DH.
  uint64_t local_attest_dh_ns = 45'000;
  uint64_t sig_sign_ns = 250'000;
  uint64_t sig_verify_ns = 280'000;

  // ---- guest OS ----
  uint64_t syscall_ns = 700;
  uint64_t signal_deliver_ns = 2'500;      // SIGUSR1 to an enclave process
  uint64_t thread_wakeup_ns = 4'000;       // scheduler wakeup latency
  uint64_t context_switch_ns = 2'000;
  uint64_t upcall_interrupt_ns = 6'000;    // hypervisor->guest upcall

  // ---- hypervisor ----
  uint64_t vmexit_ns = 1'800;
  uint64_t ept_violation_ns = 4'000;
  uint64_t hypercall_ns = 2'000;

  // ---- migration pipeline ----
  uint64_t checkpoint_dump_ns_per_byte_x100 = 150;  // in-enclave traversal+copy
  uint64_t restore_write_ns_per_byte_x100 = 150;
  uint64_t cssa_replay_ns = 9'000;      // one EENTER+AEX pump iteration

  // ---- chunked checkpoint pipeline ----
  // Fixed per-chunk overhead: subkey derivation (one HKDF), header framing,
  // work-queue bookkeeping.
  uint64_t chunk_setup_ns = 1'500;
  // Waking a parked TCS and entering it as a sealing worker (EENTER-class
  // crossing plus scheduler latency).
  uint64_t seal_worker_spawn_ns = 4'000;
  // Bulk sealed-chunk streams bypass the QEMU page-processing path that the
  // 30 ns/B migration-link rate folds in; they see something close to raw
  // GbE: ~8 ns/B ≈ 125 MB/s.
  uint64_t chunk_stream_ns_per_byte_x100 = 800;

  // ---- persistent snapshot store (disk model) ----
  // Shared-storage class device (the paper's testbed uses NFS shared
  // storage): ~200 MB/s sequential writes, slightly faster reads, plus a
  // fixed seek/commit cost per object and a metadata-sync cost for the
  // atomic head pointer flip.
  uint64_t disk_write_ns_per_byte_x100 = 500;   // 5 ns/B ≈ 200 MB/s
  uint64_t disk_read_ns_per_byte_x100 = 400;    // 4 ns/B ≈ 250 MB/s
  uint64_t disk_seek_ns = 2'000'000;            // open/seek/commit per object
  uint64_t disk_sync_ns = 500'000;              // head-pointer metadata flush

  // ---- network (migration link) ----
  // Effective migration throughput including QEMU 2.5-era page processing:
  // ~33 MB/s, which reproduces the paper's ~30 s total for a 2 GB guest.
  uint64_t net_latency_ns = 200'000;            // 0.2 ms one-way LAN
  uint64_t net_ns_per_byte_x100 = 3'000;        // 30 ns/B ≈ 33 MB/s effective
  uint64_t wan_latency_ns = 20'000'000;         // owner / IAS round trips: 20 ms
  uint64_t ias_processing_ns = 5'000'000;       // attestation service verify

  // ---- live migration (pre-copy) ----
  uint64_t page_size = 4096;
  uint64_t precopy_scan_ns_per_page = 120;   // dirty bitmap scan + queueing
  uint64_t vm_stop_resume_ns = 2'000'000;    // pause/unpause + device state

  // ---- incremental enclave checkpointing (wire v3 delta rounds) ----
  // Bumping a page's version counter on a tracked write: one in-enclave
  // read-modify-write (the per-write cost of Fig. 9(b)-style instrumentation).
  uint64_t delta_track_write_ns = 40;
  // Scanning one version-table entry during a delta round.
  uint64_t delta_scan_ns_per_page_x100 = 2'000;  // 20 ns/page
  // Reference dirty rate for a "write-moderate" enclave workload; the delta
  // benches and property tests pace their writer threads off this knob.
  uint64_t enclave_dirty_pages_per_sec = 4'000;
};

// The default model used everywhere unless a test overrides a copy.
inline const CostModel& default_cost_model() {
  static const CostModel model{};
  return model;
}

// Helper for x100 fixed-point per-byte rates.
inline uint64_t per_byte_x100(uint64_t rate_x100, uint64_t bytes) {
  return rate_x100 * bytes / 100;
}

}  // namespace mig::sim
