// Deterministic random number generation for the simulation.
//
// Nothing in the simulator uses std::random_device or wall-clock entropy:
// reproducibility of every test and bench run is a design requirement. Keys
// that the *model* treats as secret (per-CPU SGX keys, Kmigrate, DH secrets)
// are drawn from seeded Rng instances — cryptographically meaningless, but
// the simulation's security arguments are structural, not entropic.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace mig::sim {

// splitmix64: tiny, fast, passes BigCrush as a mixer; plenty for simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  Bytes bytes(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) {
      if (i % 8 == 0) cached_ = next();
      out[i] = static_cast<uint8_t>(cached_ >> (8 * (i % 8)));
    }
    return out;
  }

  // Derives an independent stream (for giving subsystems their own RNGs).
  Rng fork() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  uint64_t state_;
  uint64_t cached_ = 0;
};

}  // namespace mig::sim
