#include "sim/executor.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace mig::sim {

namespace {
// A sim thread's ThreadCtx lives in thread-local storage so ctx methods can
// find their executor state without plumbing.
thread_local ThreadCtx* tls_ctx = nullptr;
}  // namespace

// ---------------------------------------------------------------- ThreadCtx

void ThreadCtx::work(uint64_t ns) { executor_->thread_work(executor_->get(id_), ns); }
void ThreadCtx::work_atomic(uint64_t ns) {
  executor_->thread_work_atomic(executor_->get(id_), ns);
}
void ThreadCtx::sleep(uint64_t ns) { executor_->thread_sleep(executor_->get(id_), ns); }
void ThreadCtx::yield() { executor_->thread_yield(executor_->get(id_)); }
uint64_t ThreadCtx::now() const { return executor_->get(id_).vtime; }

ThreadCtx::PreemptHook ThreadCtx::set_preempt_hook(PreemptHook hook) {
  auto& t = executor_->get(id_);
  std::swap(t.preempt_hook, hook);
  return hook;
}

// -------------------------------------------------------------------- Event

void Event::wait(ThreadCtx& ctx) {
  executor_->thread_wait_event(executor_->get(ctx.id()), *this);
}

bool Event::wait_until(ThreadCtx& ctx, uint64_t deadline_ns) {
  return executor_->thread_wait_event_until(executor_->get(ctx.id()), *this,
                                            deadline_ns);
}

void Event::set(ThreadCtx& ctx) {
  executor_->event_set(&executor_->get(ctx.id()), *this);
}

// ----------------------------------------------------------------- Executor

Executor::Executor(int num_cpus, uint64_t quantum_ns)
    : cpu_free_(static_cast<size_t>(num_cpus), 0), quantum_ns_(quantum_ns) {
  MIG_CHECK(num_cpus >= 1);
  MIG_CHECK(quantum_ns >= 1);
}

Executor::~Executor() { shutdown(); }

Executor::SimThread& Executor::get(ThreadId id) {
  MIG_CHECK_MSG(id >= 1 && id <= threads_.size(), "bad thread id " << id);
  return *threads_[id - 1];
}

const Executor::SimThread& Executor::get(ThreadId id) const {
  MIG_CHECK_MSG(id >= 1 && id <= threads_.size(), "bad thread id " << id);
  return *threads_[id - 1];
}

ThreadId Executor::spawn(std::string name, ThreadFn fn, bool daemon) {
  std::unique_lock<std::mutex> lock(mu_);
  MIG_CHECK_MSG(!shutting_down_, "spawn during shutdown");
  auto t = std::make_unique<SimThread>();
  t->id = next_id_++;
  t->name = std::move(name);
  t->daemon = daemon;
  t->ctx.reset(new ThreadCtx(this, t->id, t->name));
  // Start no earlier than the spawner's clock (causality).
  uint64_t start_at = sched_now_;
  if (tls_ctx != nullptr && tls_ctx->executor_ == this) {
    start_at = std::max(start_at, get(tls_ctx->id()).vtime);
  }
  t->vtime = start_at;
  t->ready_at = start_at;
  SimThread* tp = t.get();
  threads_.push_back(std::move(t));

  tp->os_thread = std::thread([this, tp, fn = std::move(fn)]() {
    {
      std::unique_lock<std::mutex> l(mu_);
      tp->cv.wait(l, [&] { return tp->baton; });
    }
    tls_ctx = tp->ctx.get();
    try {
      if (!tp->kill_requested) fn(*tp->ctx);
    } catch (const ThreadKilled&) {
      // Normal cancellation path.
    }
    tls_ctx = nullptr;
    std::unique_lock<std::mutex> l(mu_);
    tp->state = State::kFinished;
    tp->baton = false;
    tp->yielded_back = true;
    driver_cv_.notify_all();
  });
  return tp->id;
}

bool Executor::drained_locked() const {
  for (const auto& t : threads_) {
    if (!t->daemon && t->state != State::kFinished) return false;
  }
  return true;
}

bool Executor::step_locked(std::unique_lock<std::mutex>& lock) {
  // Earliest-start-first among runnable threads; ties broken by id for
  // determinism. All CPUs are identical, so a burst starts at
  // max(thread.ready_at, earliest-free CPU).
  uint64_t cpu_earliest = *std::min_element(cpu_free_.begin(), cpu_free_.end());
  SimThread* best = nullptr;
  uint64_t best_start = std::numeric_limits<uint64_t>::max();
  for (const auto& t : threads_) {
    uint64_t earliest;
    if (t->state == State::kRunnable) {
      earliest = t->ready_at;
    } else if (t->state == State::kWaiting && t->wait_deadline != kNoDeadline) {
      // A timed event wait: schedulable at its deadline even if the event
      // never fires (the thread detects the timeout itself on wake).
      earliest = t->wait_deadline;
    } else {
      continue;
    }
    uint64_t start = std::max(earliest, cpu_earliest);
    // Earliest start wins; ties go to the least-recently-scheduled thread so
    // no runnable thread starves (round-robin among equals). Both criteria
    // are deterministic.
    if (start < best_start ||
        (best != nullptr && start == best_start &&
         t->last_sched < best->last_sched)) {
      best_start = start;
      best = t.get();
    }
  }
  if (best == nullptr) return false;
  best->last_sched = stats_.slices + 1;

  sched_now_ = std::max(sched_now_, best_start);
  best->vtime = std::max(best->vtime, best_start);
  best->state = State::kRunning;
  running_ = best->id;
  ++stats_.slices;

  best->baton = true;
  best->yielded_back = false;
  best->cv.notify_one();
  driver_cv_.wait(lock, [&] { return best->yielded_back; });
  running_ = kInvalidThread;
  return true;
}

bool Executor::run() {
  // Safety net against accidental infinite simulations (e.g. a worker
  // spin-waiting on a flag nobody will ever clear but not marked daemon).
  return run_until(std::numeric_limits<uint64_t>::max());
}

bool Executor::run_until(uint64_t deadline_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  // Scheduling stats fold into the metrics registry when the run ends, so a
  // traced capture carries the executor's view of the same interval.
  auto publish = [&] {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    m.set_gauge("sim.slices", stats_.slices);
    m.set_gauge("sim.preemptions", stats_.preemptions);
    m.set_gauge("sim.now_ns", sched_now_);
    m.set_gauge("sim.threads", threads_.size());
  };
  for (;;) {
    if (drained_locked() || sched_now_ >= deadline_ns) {
      publish();
      return true;
    }
    if (!step_locked(lock)) {
      // Non-daemon threads remain but nothing is runnable: a hang.
      publish();
      return false;
    }
  }
}

void Executor::kill(ThreadId id) {
  std::unique_lock<std::mutex> lock(mu_);
  SimThread& t = get(id);
  if (t.state == State::kFinished) return;
  t.kill_requested = true;
  if (t.state == State::kWaiting || t.state == State::kSuspended) {
    t.state = State::kRunnable;
    t.ready_at = std::max(t.vtime, sched_now_);
  }
  // Delivery happens at the thread's next scheduling point.
}

void Executor::suspend(ThreadId id) {
  std::unique_lock<std::mutex> lock(mu_);
  SimThread& t = get(id);
  MIG_CHECK_MSG(t.state == State::kRunnable || t.state == State::kWaiting,
                "suspend on thread '" << t.name << "' in bad state");
  if (t.state == State::kRunnable) t.state = State::kSuspended;
  // A thread blocked on an Event stays kWaiting; suspension of event-blocked
  // threads is modeled by the OS simply not scheduling them, which the event
  // already achieves.
}

void Executor::resume(ThreadId id, uint64_t at_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  SimThread& t = get(id);
  if (t.state != State::kSuspended) return;
  t.state = State::kRunnable;
  t.ready_at = std::max(t.vtime, at_ns);
}

bool Executor::finished(ThreadId id) const {
  std::unique_lock<std::mutex> lock(mu_);
  return get(id).state == State::kFinished;
}

std::string Executor::dump_state() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::string out;
  for (const auto& t : threads_) {
    if (t->state == State::kFinished) continue;
    const char* state = "?";
    switch (t->state) {
      case State::kRunnable: state = "RUNNABLE"; break;
      case State::kRunning: state = "RUNNING"; break;
      case State::kWaiting: state = "WAITING"; break;
      case State::kSuspended: state = "SUSPENDED"; break;
      case State::kFinished: state = "FINISHED"; break;
    }
    out += "  " + t->name + (t->daemon ? " [daemon] " : " ") + state +
           " vtime=" + std::to_string(t->vtime) + "\n";
  }
  return out;
}

void Executor::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
    for (auto& t : threads_) {
      if (t->state == State::kFinished) continue;
      t->kill_requested = true;
      if (t->state == State::kWaiting || t->state == State::kSuspended) {
        t->state = State::kRunnable;
        t->ready_at = std::max(t->vtime, sched_now_);
      }
    }
    // Drive remaining threads to completion; each observes ThreadKilled at
    // its next scheduling point.
    for (;;) {
      bool any_live = false;
      for (auto& t : threads_) {
        if (t->state != State::kFinished) any_live = true;
      }
      if (!any_live) break;
      if (!step_locked(lock)) break;  // nothing runnable: threads that never
                                      // started are handled below
    }
    // Threads that were spawned but never scheduled: hand them the baton so
    // the trampoline exits via the kill check.
    for (auto& t : threads_) {
      if (t->state != State::kFinished && t->os_thread.joinable()) {
        t->baton = true;
        t->cv.notify_one();
        driver_cv_.wait(lock, [&] { return t->yielded_back; });
      }
    }
  }
  for (auto& t : threads_) {
    if (t->os_thread.joinable()) t->os_thread.join();
  }
}

// ----------------------------------------------- sim-thread-side primitives

void Executor::check_kill(SimThread& t) {
  if (t.kill_requested) throw ThreadKilled{};
}

void Executor::reschedule_locked(std::unique_lock<std::mutex>& lock,
                                 SimThread& t) {
  // Release the CPU this slice occupied. cpu_release excludes non-CPU time
  // (sleeping, waiting) so those do not block other threads' bursts.
  auto it = std::min_element(cpu_free_.begin(), cpu_free_.end());
  *it = std::max(*it, t.cpu_release);

  t.baton = false;
  t.yielded_back = true;
  driver_cv_.notify_all();
  t.cv.wait(lock, [&] { return t.baton; });
  t.state = State::kRunning;
  check_kill(t);
}

void Executor::thread_work(SimThread& t, uint64_t ns) {
  std::unique_lock<std::mutex> lock(mu_);
  check_kill(t);
  uint64_t remaining = ns;
  while (remaining > 0) {
    uint64_t chunk = std::min(remaining, quantum_ns_);
    t.vtime += chunk;
    remaining -= chunk;
    t.ready_at = t.vtime;
    t.cpu_release = t.vtime;
    t.state = State::kRunnable;
    reschedule_locked(lock, t);
    // Quantum boundary: deliver the preemption hook (unless we are already
    // inside one — AEX handlers must not recursively AEX in the model).
    if (chunk == quantum_ns_ && t.preempt_hook && !t.in_hook) {
      ++stats_.preemptions;
      t.in_hook = true;
      auto hook = t.preempt_hook;  // copy: hook may replace itself
      lock.unlock();
      hook(*t.ctx);
      lock.lock();
      t.in_hook = false;
      check_kill(t);
    }
  }
}

void Executor::thread_work_atomic(SimThread& t, uint64_t ns) {
  std::unique_lock<std::mutex> lock(mu_);
  check_kill(t);
  t.vtime += ns;
  t.ready_at = t.vtime;
  t.cpu_release = t.vtime;
  t.state = State::kRunnable;
  reschedule_locked(lock, t);
}

void Executor::thread_sleep(SimThread& t, uint64_t ns) {
  std::unique_lock<std::mutex> lock(mu_);
  check_kill(t);
  t.cpu_release = t.vtime;  // the CPU is free while we sleep
  t.ready_at = t.vtime + ns;
  t.vtime = t.ready_at;
  t.state = State::kRunnable;
  reschedule_locked(lock, t);
}

void Executor::thread_yield(SimThread& t) {
  std::unique_lock<std::mutex> lock(mu_);
  check_kill(t);
  t.ready_at = t.vtime;
  t.cpu_release = t.vtime;
  t.state = State::kRunnable;
  reschedule_locked(lock, t);
}

void Executor::thread_wait_event(SimThread& t, Event& ev) {
  std::unique_lock<std::mutex> lock(mu_);
  check_kill(t);
  if (ev.set_) {
    t.vtime = std::max(t.vtime, ev.set_time_);
    return;
  }
  ev.waiters_.push_back(t.id);
  t.state = State::kWaiting;
  t.cpu_release = t.vtime;
  reschedule_locked(lock, t);
  // Woken: clock joining happened in event_set via ready_at.
}

bool Executor::thread_wait_event_until(SimThread& t, Event& ev,
                                       uint64_t deadline_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  check_kill(t);
  if (ev.set_) {
    t.vtime = std::max(t.vtime, ev.set_time_);
    return true;
  }
  if (deadline_ns <= t.vtime) return false;
  ev.waiters_.push_back(t.id);
  t.state = State::kWaiting;
  t.cpu_release = t.vtime;
  t.wait_deadline = deadline_ns;
  reschedule_locked(lock, t);
  t.wait_deadline = kNoDeadline;
  // Disambiguate the wake cause: event_set() clears the waiter list, so if we
  // are still on it, the scheduler woke us at the deadline.
  auto it = std::find(ev.waiters_.begin(), ev.waiters_.end(), t.id);
  if (it == ev.waiters_.end()) return true;
  ev.waiters_.erase(it);
  t.vtime = std::max(t.vtime, deadline_ns);
  t.ready_at = t.vtime;
  return false;
}

void Executor::event_set(SimThread* setter, Event& ev) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t at = setter != nullptr ? setter->vtime : sched_now_;
  ev.set_ = true;
  ev.set_time_ = std::max(ev.set_time_, at);
  for (ThreadId id : ev.waiters_) {
    SimThread& w = get(id);
    if (w.state != State::kWaiting) continue;
    w.state = State::kRunnable;
    w.ready_at = std::max(w.vtime, at);
    w.vtime = w.ready_at;
  }
  ev.waiters_.clear();
}

}  // namespace mig::sim
