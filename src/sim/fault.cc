#include "sim/fault.h"

#include <algorithm>

namespace mig::sim {

FaultPlan::FaultPlan() : state_(std::make_shared<State>()) {}

FaultPlan& FaultPlan::drop_message(uint64_t nth) {
  state_->rules.push_back(Rule{Action::kDrop, nth, nullptr, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::sever_at_message(uint64_t nth) {
  state_->rules.push_back(Rule{Action::kSever, nth, nullptr, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::delay_message(uint64_t nth, uint64_t extra_ns) {
  state_->rules.push_back(Rule{Action::kDelay, nth, nullptr, extra_ns, 0});
  return *this;
}

FaultPlan& FaultPlan::corrupt_message(uint64_t nth, size_t offset) {
  state_->rules.push_back(Rule{Action::kCorrupt, nth, nullptr, 0, offset});
  return *this;
}

FaultPlan& FaultPlan::drop_when(Predicate pred) {
  state_->rules.push_back(Rule{Action::kDrop, 0, std::move(pred), 0, 0});
  return *this;
}

FaultPlan& FaultPlan::sever_when(Predicate pred) {
  state_->rules.push_back(Rule{Action::kSever, 0, std::move(pred), 0, 0});
  return *this;
}

FaultPlan& FaultPlan::corrupt_when(Predicate pred, size_t offset) {
  state_->rules.push_back(Rule{Action::kCorrupt, 0, std::move(pred), 0, offset});
  return *this;
}

void FaultPlan::install(Pipe& pipe) const {
  std::shared_ptr<State> st = state_;
  pipe.set_fault_hook(
      [st](uint64_t msg_index, Bytes& m) -> Pipe::FaultDecision {
        st->seen = msg_index;
        Pipe::FaultDecision fd;
        for (const Rule& rule : st->rules) {
          bool match = rule.pred ? rule.pred(m) : rule.nth == msg_index;
          if (!match) continue;
          ++st->fired;
          switch (rule.action) {
            case Action::kDrop:
              fd.drop = true;
              break;
            case Action::kSever:
              fd.sever = true;
              break;
            case Action::kDelay:
              fd.extra_delay_ns += rule.extra_delay_ns;
              break;
            case Action::kCorrupt:
              if (!m.empty()) {
                m[std::min(rule.corrupt_offset, m.size() - 1)] ^= 0x40;
                fd.corrupted = true;
              }
              break;
          }
        }
        return fd;
      });
}

uint64_t FaultPlan::messages_seen() const { return state_->seen; }
uint64_t FaultPlan::faults_fired() const { return state_->fired; }

}  // namespace mig::sim
