// Deterministic scripted fault injection for simulated links.
//
// A FaultPlan describes what goes wrong on ONE pipe (one direction of a
// channel): lose the Nth message, corrupt it, delay it, or kill the link as
// it is sent. Plans install into Pipe's fault hook, which runs after the
// eavesdropping tap, so attack recorders still see what the network ate.
// Because the simulation is deterministic, "sever at the 3rd message" is a
// reproducible experiment, and the failure-matrix tests use exactly that to
// pin down the migration protocol's terminal states under partial failure.
//
// Rules are matched by message index (1-based count of send attempts on the
// pipe) or by predicate over the payload (e.g. "the first kStop frame").
// Index rules fire at most once; predicate rules fire on every match.
// A one-way partition is a plan with sever_at_message()/sever_when() on one
// pipe of a channel while the reverse pipe stays healthy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/network.h"
#include "util/bytes.h"

namespace mig::sim {

class FaultPlan {
 public:
  using Predicate = std::function<bool(const Bytes& message)>;

  FaultPlan();

  // --- index-based rules (1-based send-attempt index, fire once) ---
  FaultPlan& drop_message(uint64_t nth);
  FaultPlan& sever_at_message(uint64_t nth);  // the Nth send is also lost
  FaultPlan& delay_message(uint64_t nth, uint64_t extra_ns);
  // Flips one byte at `offset` (clamped into the payload).
  FaultPlan& corrupt_message(uint64_t nth, size_t offset = 0);

  // --- content-based rules (fire on every matching send) ---
  FaultPlan& drop_when(Predicate pred);
  FaultPlan& sever_when(Predicate pred);
  FaultPlan& corrupt_when(Predicate pred, size_t offset = 0);

  // Installs this plan as `pipe`'s fault hook. The pipe holds shared
  // ownership of the rule state, so the plan object may go out of scope
  // while the simulation runs; counters stay readable through it.
  void install(Pipe& pipe) const;

  // Observability for assertions.
  uint64_t messages_seen() const;
  uint64_t faults_fired() const;

 private:
  enum class Action : uint8_t { kDrop, kSever, kDelay, kCorrupt };
  struct Rule {
    Action action;
    uint64_t nth = 0;          // 0 => predicate rule
    Predicate pred;            // null => index rule
    uint64_t extra_delay_ns = 0;
    size_t corrupt_offset = 0;
  };
  struct State {
    std::vector<Rule> rules;
    uint64_t seen = 0;
    uint64_t fired = 0;
  };

  std::shared_ptr<State> state_;
};

}  // namespace mig::sim
