// Simulated network links.
//
// The migration traffic (pre-copy rounds, enclave checkpoints, the DH key
// exchange, attestation round trips to the owner/IAS) all flow over Channel
// objects. A channel is a reliable, ordered duplex byte-message pipe with a
// latency + bandwidth cost model; delivery time is computed from the sender's
// virtual clock, and receivers block on an executor Event, so end-to-end
// latencies in the benches are causally derived.
//
// Channels are also the eavesdropping point for security tests: everything
// that crosses one is visible to the (untrusted) network, and tests can
// register taps that record or tamper with traffic in flight.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/executor.h"
#include "util/bytes.h"

namespace mig::sim {

// Weighted-fair arbiter for several pipes sharing one physical uplink.
//
// A host evacuating N VMs concurrently pushes all their migration streams
// through one NIC. Each stream registers a flow (with a weight) and every
// send asks the arbiter for a transmission slot. The link still serializes
// physically (one message at a time), but a backlogged flow is paced so its
// long-run share of the link is weight_f / sum(weights of backlogged flows):
// a fat VM cannot starve the rest, and an idle flow's share is redistributed
// instead of wasted. Deterministic: slots depend only on virtual time and
// call order, both fixed by the executor's seed.
class SharedLink {
 public:
  // `rate_x100` is the link's per-byte transmission cost (x100 fixed point),
  // typically CostModel::net_ns_per_byte_x100.
  explicit SharedLink(uint64_t rate_x100) : rate_x100_(rate_x100) {}

  // Registers a flow with scheduling weight `weight` (>= 1) and returns its
  // flow id. Flows are never removed; an idle flow costs nothing.
  int add_flow(uint64_t weight);

  // Marks a flow as done: it no longer counts toward contention, so its
  // share is redistributed immediately instead of decaying with the pacing
  // heuristics. A migration session releases its flow when its wire phase
  // ends; without this, a finished flow's inflated gate reserves link
  // capacity long after its last byte (ruinous at high concurrency).
  void release(int flow) { flows_[flow].released = true; }

  // Grants a transmission slot for `size` bytes from `flow`, ready to send
  // at `ready_ns`. Advances the link and the flow's pacing gate. An
  // `urgent` grant models per-packet priority queuing on the NIC: it jumps
  // the bulk queue entirely (serializing only against other urgent traffic)
  // and pushes subsequent bulk behind it. Reserved for the stop-and-copy
  // blackout, whose bytes must not queue behind peers' pre-copy rounds.
  struct Grant {
    uint64_t start_ns;  // when the first byte hits the wire
    uint64_t end_ns;    // when the last byte has left (link free again)
  };
  Grant admit(int flow, uint64_t size, uint64_t ready_ns, bool urgent = false);

  uint64_t bytes_for(int flow) const { return flows_[flow].bytes; }
  uint64_t rate_x100() const { return rate_x100_; }
  size_t num_flows() const { return flows_.size(); }

 private:
  struct Flow {
    uint64_t weight;
    uint64_t gate_ns = 0;  // earliest next start honoring this flow's share
    uint64_t last_end_ns = 0;  // wire end of this flow's latest grant
    uint64_t last_tx_ns = 0;   // its transmission time
    uint64_t bytes = 0;
    bool released = false;  // done sending; excluded from contention
  };
  // A hole the arbiter left on the wire: a paced flow was granted a slot
  // past link_free_ns_, so [start_ns, end_ns) went unused. Later admissions
  // with earlier ready times backfill these, keeping the link
  // work-conserving even though grants are one-shot and in call order.
  struct Gap {
    uint64_t start_ns;
    uint64_t end_ns;
  };
  static constexpr size_t kMaxGaps = 8;

  uint64_t rate_x100_;
  uint64_t link_free_ns_ = 0;  // physical serialization across all flows
  uint64_t urgent_free_ns_ = 0;  // serialization of the priority lane
  std::vector<Flow> flows_;
  std::vector<Gap> gaps_;
};

// One direction of a duplex link.
class Pipe {
 public:
  Pipe(Executor& executor, const CostModel& cost)
      : cost_(&cost), event_(executor) {}

  void send(ThreadCtx& sender, Bytes message);

  // Sends a small descriptor that *represents* `virtual_bytes` of bulk data
  // (e.g. "here are 240 MB of pre-copy pages"). Transmission time and the
  // byte counters are charged for the virtual size; only the descriptor is
  // materialized. Keeps multi-GB VM migrations cheap to simulate.
  void send_sized(ThreadCtx& sender, Bytes descriptor, uint64_t virtual_bytes);

  // Blocks until a message is deliverable, then returns it. The receiver's
  // clock advances to at least the message's arrival time.
  Bytes recv(ThreadCtx& receiver);

  // Like recv(), but gives up at absolute virtual time `deadline_ns`:
  // returns nullopt with the receiver's clock advanced to the deadline when
  // no message arrives by then. kNoDeadline blocks forever (== recv()).
  std::optional<Bytes> recv_deadline(ThreadCtx& receiver, uint64_t deadline_ns);

  // Relative-timeout convenience over recv_deadline().
  std::optional<Bytes> recv_timeout(ThreadCtx& receiver, uint64_t timeout_ns) {
    return recv_deadline(receiver, receiver.now() + timeout_ns);
  }

  // Non-blocking: message if one has arrived by the receiver's clock.
  std::optional<Bytes> try_recv(ThreadCtx& receiver);

  // Tap invoked on every send, may mutate (tamper) or copy (eavesdrop) the
  // payload before it is enqueued. The tap models the sender's NIC: it sees
  // every send attempt, including ones a severed link then drops.
  using Tap = std::function<void(Bytes& message)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  // Scripted fault verdict for one send, applied after the tap and before
  // queueing. Used by FaultPlan (sim/fault.h); tests rarely set it directly.
  struct FaultDecision {
    bool drop = false;            // lose this message silently
    bool sever = false;           // the link dies as this send starts
    bool corrupted = false;       // hook tampered with the payload (obs only)
    uint64_t extra_delay_ns = 0;  // added to this message's arrival time
  };
  // `msg_index` counts send attempts on this pipe, starting at 1.
  using FaultHook = std::function<FaultDecision(uint64_t msg_index, Bytes& m)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Simulates link failure: subsequent sends are dropped silently (charging
  // no bandwidth) and blocked receivers wake only via recv_deadline — the
  // timeout layer in the migration engine. Models the "migration cancelled
  // due to network problem" case.
  void sever() { severed_ = true; }
  // Heals a severed link (transient partition); messages lost meanwhile stay
  // lost — retransmission is the protocol's job.
  void repair() { severed_ = false; }
  bool severed() const { return severed_; }

  static constexpr uint64_t kNoDeadline = ~0ull;

  // Overrides the link's per-byte transmission rate (x100 fixed point) for
  // this pipe only; 0 restores the cost model's migration-link rate. Used by
  // the chunked checkpoint stream, which models a rawer link than the
  // QEMU-processing-laden migration path.
  void set_rate_x100(uint64_t rate_x100) { rate_override_x100_ = rate_x100; }

  // Routes this pipe's transmissions through a shared uplink arbiter as
  // `flow` (from SharedLink::add_flow). While attached, transmission timing
  // comes from the arbiter instead of this pipe's private serialization, so
  // several pipes contend for — and fairly share — one physical link.
  // Latency and fault handling are unchanged. Pass nullptr to detach.
  void attach_shared_link(SharedLink* link, int flow) {
    shared_link_ = link;
    shared_flow_ = flow;
  }

  // While set, this pipe's sends use the shared link's priority lane (see
  // SharedLink::admit). The migration session raises it for the duration of
  // the stop-and-copy blackout and clears it at stop_end. No effect when no
  // shared link is attached.
  void set_urgent(bool urgent) { urgent_ = urgent; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  struct InFlight {
    uint64_t arrival_ns;
    Bytes payload;
  };

  const CostModel* cost_;
  Event event_;
  std::deque<InFlight> queue_;
  Tap tap_;
  FaultHook fault_hook_;
  bool severed_ = false;
  SharedLink* shared_link_ = nullptr;  // non-owning; see attach_shared_link
  int shared_flow_ = -1;
  bool urgent_ = false;  // route sends through the link's priority lane
  uint64_t rate_override_x100_ = 0;  // 0 = use cost model's net rate
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t sends_attempted_ = 0;  // includes sends a fault or sever dropped
  uint64_t link_free_ns_ = 0;  // serialization: link transmits one msg at a time
};

// Duplex channel: a/b endpoints. Endpoint A sends on ab_ and receives on ba_.
class Channel {
 public:
  Channel(Executor& executor, const CostModel& cost)
      : ab_(executor, cost), ba_(executor, cost) {}

  // Endpoint views.
  class End {
   public:
    End(Pipe& out, Pipe& in) : out_(&out), in_(&in) {}
    void send(ThreadCtx& ctx, Bytes m) { out_->send(ctx, std::move(m)); }
    void send_sized(ThreadCtx& ctx, Bytes m, uint64_t virtual_bytes) {
      out_->send_sized(ctx, std::move(m), virtual_bytes);
    }
    Bytes recv(ThreadCtx& ctx) { return in_->recv(ctx); }
    std::optional<Bytes> recv_deadline(ThreadCtx& ctx, uint64_t deadline_ns) {
      return in_->recv_deadline(ctx, deadline_ns);
    }
    std::optional<Bytes> recv_timeout(ThreadCtx& ctx, uint64_t timeout_ns) {
      return in_->recv_timeout(ctx, timeout_ns);
    }
    std::optional<Bytes> try_recv(ThreadCtx& ctx) { return in_->try_recv(ctx); }
   private:
    Pipe* out_;
    Pipe* in_;
  };

  End a() { return End(ab_, ba_); }
  End b() { return End(ba_, ab_); }

  // Applies a per-byte rate override to both directions (see Pipe).
  void set_rate_x100(uint64_t rate_x100) {
    ab_.set_rate_x100(rate_x100);
    ba_.set_rate_x100(rate_x100);
  }

  Pipe& a_to_b() { return ab_; }
  Pipe& b_to_a() { return ba_; }

  uint64_t total_bytes() const { return ab_.bytes_sent() + ba_.bytes_sent(); }

 private:
  Pipe ab_;
  Pipe ba_;
};

}  // namespace mig::sim
