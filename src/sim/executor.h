// Deterministic cooperative executor with virtual time.
//
// Why this exists: the paper's system is evaluated on real Skylake hardware
// with a 4-VCPU guest. We have neither SGX silicon nor KVM, so every layer of
// the stack runs on a simulated machine. The executor provides the execution
// substrate for that machine:
//
//  * Guest threads (enclave workers, control threads, guest-OS activities,
//    the QEMU/hypervisor migration loop) are spawned as *sim threads*. They
//    are real std::threads underneath, but exactly one runs at a time and
//    handoff happens only at explicit points (work/sleep/yield/wait), so the
//    whole simulation is deterministic: same seed + same program = same
//    interleaving = same virtual timings.
//
//  * Virtual time: a thread charges CPU time with ctx.work(ns). The executor
//    schedules bursts onto `num_cpus` model CPUs (earliest-free CPU first),
//    so contention — e.g. 8 enclaves x 3 threads on 4 VCPUs in Fig. 9(c) —
//    emerges naturally and benches read elapsed virtual time, not wall time.
//
//  * Preemption: long work() bursts are split at a timer quantum; at each
//    boundary the thread's preempt hook runs. The SGX runtime installs a hook
//    while a thread is inside an enclave, which is how AEX (asynchronous
//    enclave exit) is delivered — exactly the mechanism the paper relies on
//    to interrupt long-running enclave threads during two-phase
//    checkpointing.
//
//  * Suspension: the guest OS can suspend/resume sim threads, which models
//    stop_other_threads(). A *malicious* OS simply declines to call it —
//    that is the paper's data-consistency attack, reproduced verbatim.
//
// Causality: each thread carries its own virtual clock; clocks join at
// synchronization points (Event::set/wait, message delivery), so "elapsed
// time observed by the orchestrator" is causally meaningful.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"

namespace mig::sim {

using ThreadId = uint32_t;
inline constexpr ThreadId kInvalidThread = 0;

// Thrown inside a sim thread when it has been killed (enclave destroyed,
// process torn down, executor shutdown). The thread trampoline catches it;
// user code should simply let it propagate through RAII cleanup.
struct ThreadKilled {};

class Executor;

// Handle given to a sim thread's body; all interaction with virtual time and
// scheduling goes through it. Only valid on the thread it was given to.
class ThreadCtx {
 public:
  // Charges `ns` of CPU time. The burst is split at the timer quantum and the
  // preempt hook (if any) runs at each boundary. A scheduling point.
  void work(uint64_t ns);

  // Charges `ns` as one indivisible burst: no quantum split, no preemption
  // hook. For bulk cost modeling (e.g. "this DMA took 3 ms"), not for code
  // that must remain interruptible.
  void work_atomic(uint64_t ns);

  // Becomes runnable again `ns` virtual nanoseconds from now, without
  // occupying a CPU in between.
  void sleep(uint64_t ns);

  // Gives other threads a chance to run (no virtual time charged).
  void yield();

  // This thread's virtual clock, in ns.
  uint64_t now() const;

  ThreadId id() const { return id_; }
  const std::string& name() const { return name_; }
  Executor& executor() const { return *executor_; }

  // Installs/clears the preemption hook invoked at timer-quantum boundaries
  // inside work(). Returns the previous hook so callers can nest.
  using PreemptHook = std::function<void(ThreadCtx&)>;
  PreemptHook set_preempt_hook(PreemptHook hook);

  // Polls `pred` every `poll_ns` of virtual time until it returns true.
  // This is a genuine spin in virtual time (the caller burns CPU time), which
  // is exactly how the paper's spin regions behave.
  template <typename Pred>
  void spin_until(Pred&& pred, uint64_t poll_ns = 1000) {
    while (!pred()) work(poll_ns);
  }

 private:
  friend class Executor;
  ThreadCtx(Executor* executor, ThreadId id, std::string name)
      : executor_(executor), id_(id), name_(std::move(name)) {}

  Executor* executor_;
  ThreadId id_;
  std::string name_;
};

// One-directional synchronization: waiters block (releasing their CPU) until
// another thread calls set(). Waking joins clocks: a woken thread resumes at
// max(its clock, the setter's clock at set() time).
class Event {
 public:
  explicit Event(Executor& executor) : executor_(&executor) {}

  // Blocks the calling sim thread until the event is set. If the event is
  // already set, returns immediately (after joining clocks).
  void wait(ThreadCtx& ctx);

  // Like wait(), but gives up at virtual time `deadline_ns`. Returns true if
  // the event was set (clocks joined as in wait()); false on timeout, with
  // the caller's clock advanced to the deadline. A deadline at or before the
  // caller's clock checks the event without blocking.
  bool wait_until(ThreadCtx& ctx, uint64_t deadline_ns);

  // Sets the event and wakes all current waiters. `ctx` provides the signal
  // time. May be called multiple times; later waits return immediately.
  void set(ThreadCtx& ctx);

  // Resets to unset (for reusable barriers).
  void reset() { set_ = false; }

  bool is_set() const { return set_; }

 private:
  friend class Executor;
  Executor* executor_;
  bool set_ = false;
  uint64_t set_time_ = 0;
  std::vector<ThreadId> waiters_;
};

struct ExecutorStats {
  uint64_t slices = 0;       // scheduling decisions made
  uint64_t preemptions = 0;  // quantum-boundary hook invocations
};

class Executor {
 public:
  // `num_cpus` — model CPUs available for work() bursts (the paper's guest
  // has 4 VCPUs). `quantum_ns` — timer quantum for preemption.
  explicit Executor(int num_cpus, uint64_t quantum_ns = 100'000);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  using ThreadFn = std::function<void(ThreadCtx&)>;

  // Spawns a sim thread, runnable at >= `start_at` virtual time (default:
  // spawner's clock when spawned from a sim thread, else current sim time).
  // Daemon threads never keep run() alive (use for spin-forever workers).
  ThreadId spawn(std::string name, ThreadFn fn, bool daemon = false);

  // Runs until every non-daemon thread has finished or is unrunnable.
  // Returns false if non-daemon threads remain blocked forever (a hang —
  // tests assert on this).
  bool run();

  // Runs until the virtual scheduling clock reaches `deadline_ns` (or the
  // simulation drains). Threads stay paused and resumable afterwards.
  bool run_until(uint64_t deadline_ns);

  // Requests asynchronous cancellation: the thread observes ThreadKilled at
  // its next scheduling point. No-op on finished threads.
  void kill(ThreadId id);

  // Suspend/resume model the guest OS parking a thread. A suspended thread
  // is not schedulable; resume makes it runnable at the resumer's clock.
  void suspend(ThreadId id);
  void resume(ThreadId id, uint64_t at_ns);

  bool finished(ThreadId id) const;

  // The scheduler's notion of current time: the start time of the most
  // recently scheduled slice. Monotone and deterministic.
  uint64_t sched_now() const { return sched_now_; }

  int num_cpus() const { return static_cast<int>(cpu_free_.size()); }
  uint64_t quantum_ns() const { return quantum_ns_; }
  const ExecutorStats& stats() const { return stats_; }

  // Kills all live threads and joins them. Called by the destructor; safe to
  // call explicitly.
  void shutdown();

  // Diagnostic: one line per unfinished thread (name + state). For hang
  // reports after run() returns false.
  std::string dump_state() const;

 private:
  friend class ThreadCtx;
  friend class Event;

  enum class State : uint8_t {
    kRunnable,   // eligible at vtime ready_at
    kRunning,    // currently holding the baton
    kWaiting,    // blocked on an Event
    kSuspended,  // parked by suspend()
    kFinished,
  };

  // Sentinel for "no deadline" on a waiting thread.
  static constexpr uint64_t kNoDeadline = ~0ull;

  struct SimThread {
    ThreadId id;
    std::string name;
    bool daemon = false;
    State state = State::kRunnable;
    uint64_t vtime = 0;        // thread-local virtual clock
    uint64_t ready_at = 0;     // earliest schedulable time when kRunnable
    uint64_t cpu_release = 0;  // time up to which the current slice used CPU
    uint64_t last_sched = 0;   // scheduling sequence number (for fairness)
    // When kWaiting with a deadline, the scheduler may wake the thread at
    // this virtual time even if the event never fires.
    uint64_t wait_deadline = kNoDeadline;
    bool kill_requested = false;
    bool in_hook = false;  // preemption hook active (suppresses nesting)
    std::unique_ptr<ThreadCtx> ctx;
    ThreadCtx::PreemptHook preempt_hook;
    // Baton handoff.
    std::condition_variable cv;
    bool baton = false;          // thread may run
    bool yielded_back = true;    // thread has returned the baton
    std::thread os_thread;
  };

  // -- called from sim threads (via ThreadCtx/Event) --
  void thread_work(SimThread& t, uint64_t ns);
  void thread_work_atomic(SimThread& t, uint64_t ns);
  void thread_sleep(SimThread& t, uint64_t ns);
  void thread_yield(SimThread& t);
  void thread_wait_event(SimThread& t, Event& ev);
  bool thread_wait_event_until(SimThread& t, Event& ev, uint64_t deadline_ns);
  void event_set(SimThread* setter, Event& ev);

  // Returns the baton to the scheduler and blocks until rescheduled.
  // Precondition: lock held; postcondition: lock held, thread is kRunning.
  void reschedule_locked(std::unique_lock<std::mutex>& lock, SimThread& t);
  void check_kill(SimThread& t);

  SimThread& current();
  SimThread& get(ThreadId id);
  const SimThread& get(ThreadId id) const;

  // -- scheduler core (runs on the driver thread) --
  // Picks the next runnable thread and hands it the baton; returns false if
  // nothing is runnable. Precondition/postcondition: lock held.
  bool step_locked(std::unique_lock<std::mutex>& lock);
  bool drained_locked() const;

  mutable std::mutex mu_;
  std::condition_variable driver_cv_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  std::vector<uint64_t> cpu_free_;
  uint64_t quantum_ns_;
  uint64_t sched_now_ = 0;
  ThreadId next_id_ = 1;
  ThreadId running_ = kInvalidThread;
  bool shutting_down_ = false;
  ExecutorStats stats_;
};

}  // namespace mig::sim
