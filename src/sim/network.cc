#include "sim/network.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mig::sim {

void Pipe::send(ThreadCtx& sender, Bytes message) {
  send_sized(sender, std::move(message), 0);
}

void Pipe::send_sized(ThreadCtx& sender, Bytes message, uint64_t virtual_bytes) {
  if (tap_) tap_(message);
  FaultDecision fd;
  if (fault_hook_) fd = fault_hook_(++sends_attempted_, message);
  if (fd.sever) severed_ = true;
  if (obs::active()) {
    if (fd.sever) {
      obs::instant(sender, "fault.sever", "net");
      obs::metrics().add("sim.faults.injected");
    }
    if (fd.corrupted) {
      obs::instant(sender, "fault.corrupt", "net");
      obs::metrics().add("sim.faults.injected");
    }
    if (fd.extra_delay_ns != 0) {
      obs::instant(sender, "fault.delay", "net",
                   {{"extra_delay_ns", fd.extra_delay_ns}});
      obs::metrics().add("sim.faults.injected");
    }
  }
  // Dropped messages never touch the link: no bandwidth is consumed and
  // link_free_ns_ does not advance.
  if (severed_ || fd.drop) {
    if (obs::active()) {
      if (fd.drop) {
        obs::instant(sender, "fault.drop", "net");
        obs::metrics().add("sim.faults.injected");
      }
      obs::metrics().add("net.msgs_dropped");
    }
    return;
  }
  uint64_t size = std::max<uint64_t>(message.size(), virtual_bytes);
  // Serialization on the link: transmission starts when both the sender is
  // ready and the link has drained the previous message.
  uint64_t tx_start = std::max(sender.now(), link_free_ns_);
  uint64_t rate_x100 =
      rate_override_x100_ ? rate_override_x100_ : cost_->net_ns_per_byte_x100;
  uint64_t tx_ns = per_byte_x100(rate_x100, size);
  uint64_t arrival = tx_start + tx_ns + cost_->net_latency_ns + fd.extra_delay_ns;
  link_free_ns_ = tx_start + tx_ns;
  bytes_sent_ += size;
  ++messages_sent_;
  if (obs::metrics_enabled()) {
    auto& m = obs::metrics();
    m.add("net.bytes_sent", size);
    m.add("net.msgs_sent");
    m.observe("net.msg_bytes", size);
    m.observe("net.delivery_ns", arrival - sender.now());
  }
  queue_.push_back(InFlight{arrival, std::move(message)});
  event_.set(sender);
}

Bytes Pipe::recv(ThreadCtx& receiver) {
  for (;;) {
    if (!queue_.empty()) {
      InFlight& head = queue_.front();
      if (head.arrival_ns > receiver.now()) {
        receiver.sleep(head.arrival_ns - receiver.now());
      }
      Bytes out = std::move(head.payload);
      queue_.pop_front();
      return out;
    }
    event_.reset();
    event_.wait(receiver);
  }
}

std::optional<Bytes> Pipe::recv_deadline(ThreadCtx& receiver,
                                         uint64_t deadline_ns) {
  for (;;) {
    if (!queue_.empty()) {
      InFlight& head = queue_.front();
      if (head.arrival_ns > deadline_ns) {
        // The next message cannot make the deadline; give up at the deadline.
        if (deadline_ns > receiver.now())
          receiver.sleep(deadline_ns - receiver.now());
        return std::nullopt;
      }
      if (head.arrival_ns > receiver.now()) {
        receiver.sleep(head.arrival_ns - receiver.now());
      }
      Bytes out = std::move(head.payload);
      queue_.pop_front();
      return out;
    }
    if (receiver.now() >= deadline_ns) return std::nullopt;
    event_.reset();
    if (!event_.wait_until(receiver, deadline_ns)) return std::nullopt;
  }
}

std::optional<Bytes> Pipe::try_recv(ThreadCtx& receiver) {
  if (queue_.empty() || queue_.front().arrival_ns > receiver.now()) {
    return std::nullopt;
  }
  Bytes out = std::move(queue_.front().payload);
  queue_.pop_front();
  return out;
}

}  // namespace mig::sim
