#include "sim/network.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mig::sim {

int SharedLink::add_flow(uint64_t weight) {
  flows_.push_back(Flow{std::max<uint64_t>(weight, 1)});
  return static_cast<int>(flows_.size() - 1);
}

SharedLink::Grant SharedLink::admit(int flow, uint64_t size, uint64_t ready_ns,
                                    bool urgent) {
  Flow& f = flows_[flow];
  uint64_t tx_ns = per_byte_x100(rate_x100_, size);
  if (urgent) {
    // Priority lane: the stop-and-copy blackout's bytes preempt bulk at
    // packet granularity (DSCP-style priority queuing), so they serialize
    // only against other urgent traffic — which the stop-window token
    // already staggers. Bulk capacity accounting still observes them: the
    // link is pushed busy past the urgent slot, so pre-copy grants queue
    // behind the blackout rather than alongside it. Pacing gates are left
    // untouched — a flow is not penalized later for its blackout.
    uint64_t start = std::max(ready_ns, urgent_free_ns_);
    uint64_t end = start + tx_ns;
    urgent_free_ns_ = end;
    link_free_ns_ = std::max(link_free_ns_, end);
    f.last_end_ns = end;
    f.last_tx_ns = tx_ns;
    f.bytes += size;
    return Grant{start, end};
  }
  // A flow may not start before it is ready or before its own pacing gate
  // (fairness). Physical placement on the wire comes next.
  uint64_t paced = std::max(ready_ns, f.gate_ns);
  // Grants are one-shot and in call order, so a paced flow may have been
  // placed past link_free_ns_, leaving a hole an earlier-ready flow should
  // use (the executor wakes threads in virtual-time order, so admissions
  // arrive with non-decreasing ready_ns). Backfill the earliest hole that
  // fits; otherwise append after everything granted so far.
  uint64_t start = 0;
  bool filled_gap = false;
  // Expired holes (fully before this admission's ready time) can never be
  // used by this or any later call.
  std::erase_if(gaps_, [&](const Gap& g) { return g.end_ns <= ready_ns; });
  for (size_t i = 0; i < gaps_.size(); ++i) {
    uint64_t s = std::max(gaps_[i].start_ns, paced);
    if (s + tx_ns <= gaps_[i].end_ns) {
      start = s;
      filled_gap = true;
      // Keep both remainders of the split hole (zero-length ones die on the
      // next prune); cap the list so the scan stays O(1).
      uint64_t tail_start = s + tx_ns;
      uint64_t tail_end = gaps_[i].end_ns;
      gaps_[i].end_ns = s;
      if (tail_end > tail_start && gaps_.size() < kMaxGaps) {
        gaps_.insert(gaps_.begin() + i + 1, Gap{tail_start, tail_end});
      }
      break;
    }
  }
  if (!filled_gap) {
    start = std::max(paced, link_free_ns_);
    if (start > link_free_ns_ && gaps_.size() < kMaxGaps) {
      gaps_.push_back(Gap{link_free_ns_, start});
    }
    link_free_ns_ = start + tx_ns;
  }
  // Share the link among the flows contending when this request arrives
  // (`ready_ns` — NOT the scheduled `start`: a low-weight flow's start lands
  // far in the future, where one-shot admission cannot know who will still
  // be busy). Two signals mark a peer as contending: its pacing gate has not
  // expired yet (it has paced demand beyond now), or its latest grant ended
  // recently enough — within two of its own transmission times — that a
  // closed-loop sender's next request is already on its way. A flow that
  // truly went idle keeps its share reserved only for that bounded horizon,
  // then its capacity is redistributed. A deliberately simple approximation
  // of per-packet WFQ that stays one-shot and deterministic.
  uint64_t active_weight = f.weight;
  for (size_t i = 0; i < flows_.size(); ++i) {
    if (static_cast<int>(i) == flow) continue;
    const Flow& o = flows_[i];
    if (o.released) continue;  // done for good; share redistributed now
    bool paced_ahead = o.gate_ns >= ready_ns;
    bool recently_on_wire =
        o.last_end_ns != 0 && o.last_end_ns + 2 * o.last_tx_ns >= ready_ns;
    if (paced_ahead || recently_on_wire) active_weight += o.weight;
  }
  // Pace the flow: after sending tx_ns worth, it owes the other backlogged
  // flows (active_weight / weight - 1) * tx_ns of link time before it may
  // start again. With a single active flow this collapses to the full link
  // rate. The gate advances from the flow's *entitled* start (`paced`), not
  // the possibly later physical one: service the link denied it (a peer's
  // long message was in the way) is credited back, as in true WFQ — the
  // flow's long-run rate is set by its own pacing schedule, while the wire
  // placement merely serializes.
  f.gate_ns = paced + tx_ns * active_weight / f.weight;
  f.last_end_ns = start + tx_ns;
  f.last_tx_ns = tx_ns;
  f.bytes += size;
  return Grant{start, start + tx_ns};
}

void Pipe::send(ThreadCtx& sender, Bytes message) {
  send_sized(sender, std::move(message), 0);
}

void Pipe::send_sized(ThreadCtx& sender, Bytes message, uint64_t virtual_bytes) {
  if (tap_) tap_(message);
  FaultDecision fd;
  if (fault_hook_) fd = fault_hook_(++sends_attempted_, message);
  if (fd.sever) severed_ = true;
  if (obs::active()) {
    if (fd.sever) {
      obs::instant(sender, "fault.sever", "net");
      obs::metrics().add("sim.faults.injected");
    }
    if (fd.corrupted) {
      obs::instant(sender, "fault.corrupt", "net");
      obs::metrics().add("sim.faults.injected");
    }
    if (fd.extra_delay_ns != 0) {
      obs::instant(sender, "fault.delay", "net",
                   {{"extra_delay_ns", fd.extra_delay_ns}});
      obs::metrics().add("sim.faults.injected");
    }
  }
  // Dropped messages never touch the link: no bandwidth is consumed and
  // link_free_ns_ does not advance.
  if (severed_ || fd.drop) {
    if (obs::active()) {
      if (fd.drop) {
        obs::instant(sender, "fault.drop", "net");
        obs::metrics().add("sim.faults.injected");
      }
      obs::metrics().add("net.msgs_dropped");
    }
    return;
  }
  uint64_t size = std::max<uint64_t>(message.size(), virtual_bytes);
  uint64_t tx_end;
  if (shared_link_) {
    // Contended uplink: the shared arbiter decides when this flow may
    // transmit. Fairness across the pipes attached to the same link.
    SharedLink::Grant g =
        shared_link_->admit(shared_flow_, size, sender.now(), urgent_);
    tx_end = g.end_ns;
    link_free_ns_ = g.end_ns;
  } else {
    // Serialization on the link: transmission starts when both the sender is
    // ready and the link has drained the previous message.
    uint64_t tx_start = std::max(sender.now(), link_free_ns_);
    uint64_t rate_x100 =
        rate_override_x100_ ? rate_override_x100_ : cost_->net_ns_per_byte_x100;
    tx_end = tx_start + per_byte_x100(rate_x100, size);
    link_free_ns_ = tx_end;
  }
  uint64_t arrival = tx_end + cost_->net_latency_ns + fd.extra_delay_ns;
  bytes_sent_ += size;
  ++messages_sent_;
  if (obs::metrics_enabled()) {
    auto& m = obs::metrics();
    m.add("net.bytes_sent", size);
    m.add("net.msgs_sent");
    m.observe("net.msg_bytes", size);
    m.observe("net.delivery_ns", arrival - sender.now());
  }
  queue_.push_back(InFlight{arrival, std::move(message)});
  event_.set(sender);
}

Bytes Pipe::recv(ThreadCtx& receiver) {
  for (;;) {
    if (!queue_.empty()) {
      InFlight& head = queue_.front();
      if (head.arrival_ns > receiver.now()) {
        receiver.sleep(head.arrival_ns - receiver.now());
      }
      Bytes out = std::move(head.payload);
      queue_.pop_front();
      return out;
    }
    event_.reset();
    event_.wait(receiver);
  }
}

std::optional<Bytes> Pipe::recv_deadline(ThreadCtx& receiver,
                                         uint64_t deadline_ns) {
  for (;;) {
    if (!queue_.empty()) {
      InFlight& head = queue_.front();
      if (head.arrival_ns > deadline_ns) {
        // The next message cannot make the deadline; give up at the deadline.
        if (deadline_ns > receiver.now())
          receiver.sleep(deadline_ns - receiver.now());
        return std::nullopt;
      }
      if (head.arrival_ns > receiver.now()) {
        receiver.sleep(head.arrival_ns - receiver.now());
      }
      Bytes out = std::move(head.payload);
      queue_.pop_front();
      return out;
    }
    if (receiver.now() >= deadline_ns) return std::nullopt;
    event_.reset();
    if (!event_.wait_until(receiver, deadline_ns)) return std::nullopt;
  }
}

std::optional<Bytes> Pipe::try_recv(ThreadCtx& receiver) {
  if (queue_.empty() || queue_.front().arrival_ns > receiver.now()) {
    return std::nullopt;
  }
  Bytes out = std::move(queue_.front().payload);
  queue_.pop_front();
  return out;
}

}  // namespace mig::sim
