#include "sgx/hardware.h"

#include <algorithm>

#include "crypto/ciphers.h"
#include "crypto/hmac.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::sgx {

namespace {

Status not_found(const char* what) { return Error(ErrorCode::kNotFound, what); }

// 12-byte ChaCha20 nonce from the page version + low address bits.
Bytes paging_nonce(uint64_t version, uint64_t lin_addr) {
  Bytes nonce(12, 0);
  for (int i = 0; i < 8; ++i) nonce[i] = static_cast<uint8_t>(version >> (8 * i));
  for (int i = 0; i < 4; ++i)
    nonce[8 + i] = static_cast<uint8_t>((lin_addr >> 12) >> (8 * i));
  return nonce;
}

}  // namespace

SgxHardware::SgxHardware(sim::Executor& executor, const sim::CostModel& cost,
                         crypto::Drbg key_seed, HardwareConfig config)
    : executor_(&executor), cost_(&cost), config_(std::move(config)) {
  epc_.resize(config_.epc_pages);
  paging_key_ = key_seed.fork(to_bytes("paging")).generate(32);
  paging_mac_key_ = key_seed.fork(to_bytes("paging-mac")).generate(32);
  report_key_root_ = key_seed.fork(to_bytes("report")).generate(32);
  seal_key_root_ = key_seed.fork(to_bytes("seal")).generate(32);
}

Result<size_t> SgxHardware::alloc_slot() {
  for (size_t i = 0; i < epc_.size(); ++i) {
    if (!epc_[i].valid) {
      epc_[i] = EpcPage{};
      epc_[i].valid = true;
      return i;
    }
  }
  return Error(ErrorCode::kResourceExhausted, "EPC full");
}

SgxHardware::Enclave* SgxHardware::find(EnclaveId eid) {
  auto it = enclaves_.find(eid);
  return it == enclaves_.end() ? nullptr : &it->second;
}
const SgxHardware::Enclave* SgxHardware::find(EnclaveId eid) const {
  auto it = enclaves_.find(eid);
  return it == enclaves_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------- enclave build

Result<EnclaveId> SgxHardware::ecreate(sim::ThreadCtx& ctx, uint64_t base,
                                       uint64_t size, uint64_t isv_prod_id,
                                       uint64_t isv_svn) {
  if (size == 0 || size % kPageSize != 0 || base % kPageSize != 0)
    return Error(ErrorCode::kInvalidArgument, "enclave range not page-aligned");
  ctx.work_atomic(cost_->ecreate_ns);
  MIG_ASSIGN_OR_RETURN(size_t slot, alloc_slot());
  epc_[slot].type = PageType::kSecs;

  EnclaveId eid = next_eid_++;
  Enclave& enc = enclaves_[eid];
  enc.secs.eid = eid;
  enc.secs.base = base;
  enc.secs.size = size;
  enc.secs.isv_prod_id = isv_prod_id;
  enc.secs.isv_svn = isv_svn;
  enc.secs_slot = slot;
  epc_[slot].eid = eid;

  Writer w;
  w.str("ECREATE");
  w.u64(size);
  w.u64(isv_prod_id);
  w.u64(isv_svn);
  enc.secs.measuring.update(w.data());
  return eid;
}

Status SgxHardware::eadd(sim::ThreadCtx& ctx, EnclaveId eid, uint64_t lin_addr,
                         PageType type, Perms perms, ByteSpan content) {
  Enclave* enc = find(eid);
  if (enc == nullptr) return not_found("EADD: no such enclave");
  if (enc->secs.initialized)
    return Error(ErrorCode::kFailedPrecondition, "EADD after EINIT (SGXv1)");
  if (type != PageType::kReg && type != PageType::kTcs)
    return Error(ErrorCode::kInvalidArgument, "EADD: bad page type");
  if (lin_addr % kPageSize != 0 || lin_addr < enc->secs.base ||
      lin_addr + kPageSize > enc->secs.base + enc->secs.size)
    return Error(ErrorCode::kInvalidArgument, "EADD: address outside enclave");
  if (enc->pages.count(lin_addr))
    return Error(ErrorCode::kFailedPrecondition, "EADD: page already present");
  if (content.size() > kPageSize)
    return Error(ErrorCode::kInvalidArgument, "EADD: content too large");

  ctx.work_atomic(cost_->eadd_ns_per_page);
  MIG_ASSIGN_OR_RETURN(size_t slot, alloc_slot());
  EpcPage& page = epc_[slot];
  page.type = type;
  page.eid = eid;
  page.lin_addr = lin_addr;
  page.perms = type == PageType::kTcs ? Perms{} : perms;
  if (type == PageType::kTcs) {
    // The TCS fields arrive serialized in the page content.
    Reader r(content);
    auto tcs = std::make_unique<Tcs>();
    tcs->oentry = r.u64();
    tcs->ossa = r.u64();
    tcs->nssa = r.u64();
    tcs->cssa = 0;
    tcs->busy = false;
    if (!r.ok() || tcs->nssa == 0) {
      epc_[slot].valid = false;
      return Error(ErrorCode::kInvalidArgument, "EADD: malformed TCS");
    }
    page.tcs = std::move(tcs);
  } else {
    page.data.assign(content.begin(), content.end());
    page.data.resize(kPageSize, 0);
  }
  enc->pages[lin_addr] = slot;

  Writer w;
  w.str("EADD");
  w.u64(lin_addr - enc->secs.base);
  w.u8(static_cast<uint8_t>(type));
  w.u8(static_cast<uint8_t>(perms.r) | (perms.w << 1) | (perms.x << 2));
  enc->secs.measuring.update(w.data());
  return OkStatus();
}

Status SgxHardware::eextend(sim::ThreadCtx& ctx, EnclaveId eid,
                            uint64_t lin_addr) {
  Enclave* enc = find(eid);
  if (enc == nullptr) return not_found("EEXTEND: no such enclave");
  if (enc->secs.initialized)
    return Error(ErrorCode::kFailedPrecondition, "EEXTEND after EINIT");
  auto it = enc->pages.find(lin_addr);
  if (it == enc->pages.end()) return not_found("EEXTEND: page not present");
  ctx.work_atomic(cost_->eextend_ns_per_page);

  const EpcPage& page = epc_[it->second];
  Bytes content = page.type == PageType::kTcs
                      ? serialize_page_payload(page)
                      : page.data;
  content.resize(kPageSize, 0);
  for (uint64_t off = 0; off < kPageSize; off += 256) {
    Writer w;
    w.str("EEXTEND");
    w.u64(lin_addr - enc->secs.base + off);
    w.raw(ByteSpan(content).subspan(off, 256));
    enc->secs.measuring.update(w.data());
  }
  return OkStatus();
}

Status SgxHardware::einit(sim::ThreadCtx& ctx, EnclaveId eid,
                          const SigStruct& sig) {
  Enclave* enc = find(eid);
  if (enc == nullptr) return not_found("EINIT: no such enclave");
  if (enc->secs.initialized)
    return Error(ErrorCode::kFailedPrecondition, "EINIT: already initialized");
  ctx.work_atomic(cost_->einit_ns);

  crypto::Sha256 m = enc->secs.measuring;  // copy: measurement is final now
  crypto::Digest mrenclave = m.finish();
  if (!crypto::ct_equal(mrenclave, sig.enclave_hash))
    return Error(ErrorCode::kIntegrityViolation,
                 "EINIT: SIGSTRUCT hash does not match measurement");
  crypto::BigNum signer_pk = crypto::BigNum::from_bytes(sig.signer_pk);
  if (!crypto::sig_verify(signer_pk, sig.enclave_hash, sig.signature))
    return Error(ErrorCode::kAuthFailure, "EINIT: bad SIGSTRUCT signature");

  enc->secs.initialized = true;
  enc->secs.mrenclave = mrenclave;
  enc->secs.mrsigner = crypto::Sha256::hash(sig.signer_pk);
  enc->secs.isv_prod_id = sig.isv_prod_id;
  enc->secs.isv_svn = sig.isv_svn;
  return OkStatus();
}

Status SgxHardware::eremove_page(sim::ThreadCtx& ctx, EnclaveId eid,
                                 uint64_t lin_addr) {
  Enclave* enc = find(eid);
  if (enc == nullptr) return not_found("EREMOVE: no such enclave");
  auto it = enc->pages.find(lin_addr);
  if (it == enc->pages.end()) return not_found("EREMOVE: page not present");
  const EpcPage& page = epc_[it->second];
  if (page.type == PageType::kTcs && page.tcs->busy)
    return Error(ErrorCode::kFailedPrecondition, "EREMOVE: TCS in use");
  ctx.work_atomic(cost_->eremove_ns_per_page);
  epc_[it->second] = EpcPage{};
  enc->pages.erase(it);
  return OkStatus();
}

Status SgxHardware::eremove_enclave(sim::ThreadCtx& ctx, EnclaveId eid) {
  Enclave* enc = find(eid);
  if (enc == nullptr) return not_found("EREMOVE: no such enclave");
  for (const auto& [lin, slot] : enc->pages) {
    const EpcPage& page = epc_[slot];
    if (page.type == PageType::kTcs && page.tcs->busy)
      return Error(ErrorCode::kFailedPrecondition,
                   "EREMOVE: enclave has a busy TCS");
  }
  ctx.work_atomic(cost_->eremove_ns_per_page * (enc->pages.size() + 1));
  for (const auto& [lin, slot] : enc->pages) epc_[slot] = EpcPage{};
  epc_[enc->secs_slot] = EpcPage{};
  enclaves_.erase(eid);
  return OkStatus();
}

void SgxHardware::force_reclaim_enclave(sim::ThreadCtx& ctx, EnclaveId eid) {
  // Power loss / VM kill: EPC is volatile, so the enclave's pages simply
  // cease to exist — busy TCSs and all. No software ever sees the plaintext;
  // threads "inside" at the moment of death never run again.
  Enclave* enc = find(eid);
  if (enc == nullptr) return;
  ctx.work_atomic(cost_->eremove_ns_per_page);
  for (const auto& [lin, slot] : enc->pages) epc_[slot] = EpcPage{};
  epc_[enc->secs_slot] = EpcPage{};
  enclaves_.erase(eid);
}

// ------------------------------------------------------------------ paging

Result<uint64_t> SgxHardware::epa(sim::ThreadCtx& ctx) {
  ctx.work_atomic(cost_->eadd_ns_per_page);
  MIG_ASSIGN_OR_RETURN(size_t slot, alloc_slot());
  EpcPage& page = epc_[slot];
  page.type = PageType::kVa;
  page.va_slots.assign(kVaSlotsPerPage, 0);
  uint64_t id = next_va_id_++;
  va_pages_[id] = slot;
  return id;
}

Bytes SgxHardware::serialize_page_payload(const EpcPage& page) const {
  Writer w;
  w.u8(static_cast<uint8_t>(page.type));
  if (page.type == PageType::kTcs) {
    w.u64(page.tcs->oentry);
    w.u64(page.tcs->ossa);
    w.u64(page.tcs->nssa);
    w.u64(page.tcs->cssa);
  } else {
    w.raw(page.data);
  }
  return w.take();
}

void SgxHardware::deserialize_page_payload(EpcPage& page, ByteSpan payload) const {
  Reader r(payload);
  page.type = static_cast<PageType>(r.u8());
  if (page.type == PageType::kTcs) {
    page.tcs = std::make_unique<Tcs>();
    page.tcs->oentry = r.u64();
    page.tcs->ossa = r.u64();
    page.tcs->nssa = r.u64();
    page.tcs->cssa = r.u64();
    page.tcs->busy = false;
  } else {
    page.data = r.raw(kPageSize);
  }
  MIG_CHECK_MSG(r.ok(), "corrupt page payload passed MAC check");
}

Bytes SgxHardware::paging_mac_input(const EvictedPage& page) const {
  Writer w;
  w.u64(page.eid);
  w.u64(page.lin_addr);
  w.u8(static_cast<uint8_t>(page.type));
  w.u8(static_cast<uint8_t>(page.perms.r) | (page.perms.w << 1) |
       (page.perms.x << 2));
  w.u64(page.version);
  w.bytes(page.ciphertext);
  return w.take();
}

Result<EvictedPage> SgxHardware::ewb(sim::ThreadCtx& ctx, EnclaveId eid,
                                     uint64_t lin_addr, uint64_t va_page,
                                     int va_slot) {
  Enclave* enc = find(eid);
  if (enc == nullptr) return Status(not_found("EWB: no such enclave"));
  auto it = enc->pages.find(lin_addr);
  if (it == enc->pages.end()) return Status(not_found("EWB: page not resident"));
  EpcPage& page = epc_[it->second];
  if (page.type == PageType::kTcs && page.tcs->busy)
    return Error(ErrorCode::kFailedPrecondition, "EWB: TCS in use");
  auto va_it = va_pages_.find(va_page);
  if (va_it == va_pages_.end()) return Status(not_found("EWB: no such VA page"));
  EpcPage& va = epc_[va_it->second];
  if (va_slot < 0 || va_slot >= kVaSlotsPerPage)
    return Error(ErrorCode::kInvalidArgument, "EWB: bad VA slot");
  if (va.va_slots[va_slot] != 0)
    return Error(ErrorCode::kFailedPrecondition, "EWB: VA slot occupied");

  ctx.work_atomic(cost_->ewb_ns_per_page);
  EvictedPage out;
  out.eid = eid;
  out.lin_addr = lin_addr;
  out.type = page.type;
  out.perms = page.perms;
  out.version = ++version_counter_;
  out.va_page = va_page;
  out.va_slot = va_slot;
  Bytes payload = serialize_page_payload(page);
  crypto::chacha20_xor(paging_key_, paging_nonce(out.version, lin_addr), 0,
                       payload);
  out.ciphertext = std::move(payload);
  out.mac = crypto::hmac_sha256(paging_mac_key_, paging_mac_input(out));

  va.va_slots[va_slot] = out.version;
  epc_[it->second] = EpcPage{};
  enc->pages.erase(it);
  return out;
}

Status SgxHardware::eldb(sim::ThreadCtx& ctx, const EvictedPage& evicted) {
  Enclave* enc = find(evicted.eid);
  if (enc == nullptr) return not_found("ELDB: no such enclave");
  if (enc->pages.count(evicted.lin_addr))
    return Error(ErrorCode::kFailedPrecondition, "ELDB: page already resident");
  auto va_it = va_pages_.find(evicted.va_page);
  if (va_it == va_pages_.end()) return not_found("ELDB: no such VA page");
  EpcPage& va = epc_[va_it->second];
  if (evicted.va_slot < 0 || evicted.va_slot >= kVaSlotsPerPage ||
      va.va_slots[evicted.va_slot] != evicted.version ||
      evicted.version == 0) {
    return Error(ErrorCode::kIntegrityViolation,
                 "ELDB: version mismatch (replay or rollback)");
  }
  crypto::Digest mac =
      crypto::hmac_sha256(paging_mac_key_, paging_mac_input(evicted));
  if (!crypto::ct_equal(mac, evicted.mac))
    return Error(ErrorCode::kIntegrityViolation,
                 "ELDB: MAC mismatch (wrong machine or tampered page)");

  ctx.work_atomic(cost_->eldb_ns_per_page);
  MIG_ASSIGN_OR_RETURN(size_t slot, alloc_slot());
  EpcPage& page = epc_[slot];
  Bytes payload = evicted.ciphertext;
  crypto::chacha20_xor(paging_key_, paging_nonce(evicted.version, evicted.lin_addr),
                       0, payload);
  deserialize_page_payload(page, payload);
  page.valid = true;
  page.eid = evicted.eid;
  page.lin_addr = evicted.lin_addr;
  page.perms = evicted.perms;
  enc->pages[evicted.lin_addr] = slot;
  va.va_slots[evicted.va_slot] = 0;  // consume the version: no replay
  return OkStatus();
}

// --------------------------------------------------- control-flow transfer

Result<size_t> SgxHardware::resident_slot(sim::ThreadCtx& ctx, Enclave& enc,
                                          uint64_t lin_page) {
  auto it = enc.pages.find(lin_page);
  if (it != enc.pages.end()) return it->second;
  // Page fault: ask the OS to swap it in (demand paging), then retry.
  if (fault_ && fault_(ctx, enc.secs.eid, lin_page)) {
    it = enc.pages.find(lin_page);
    if (it != enc.pages.end()) return it->second;
  }
  return Status(Error(ErrorCode::kNotFound, "page not resident"));
}

Result<uint64_t> SgxHardware::eenter(sim::ThreadCtx& ctx, CoreState& core,
                                     EnclaveId eid, uint64_t tcs_addr) {
  if (core.in_enclave)
    return Error(ErrorCode::kFailedPrecondition, "EENTER while in enclave");
  Enclave* enc = find(eid);
  if (enc == nullptr) return Status(not_found("EENTER: no such enclave"));
  if (!enc->secs.initialized)
    return Error(ErrorCode::kFailedPrecondition, "EENTER before EINIT");
  if (enc->migrating)
    return Error(ErrorCode::kAborted, "EENTER: enclave frozen by EMIGRATE");
  MIG_ASSIGN_OR_RETURN(size_t slot, resident_slot(ctx, *enc, tcs_addr));
  EpcPage& page = epc_[slot];
  if (page.type != PageType::kTcs)
    return Error(ErrorCode::kInvalidArgument, "EENTER: not a TCS page");
  Tcs& tcs = *page.tcs;
  if (tcs.busy)
    return Error(ErrorCode::kFailedPrecondition, "EENTER: TCS busy");
  if (tcs.cssa >= tcs.nssa)
    return Error(ErrorCode::kResourceExhausted, "EENTER: out of SSA frames");

  ctx.work_atomic(cost_->eenter_ns);
  tcs.busy = true;
  core.in_enclave = true;
  core.eid = eid;
  core.tcs_addr = tcs_addr;
  return tcs.cssa;  // rax
}

Status SgxHardware::eexit(sim::ThreadCtx& ctx, CoreState& core) {
  if (!core.in_enclave)
    return Error(ErrorCode::kFailedPrecondition, "EEXIT outside enclave");
  Enclave* enc = find(core.eid);
  MIG_CHECK(enc != nullptr);
  auto it = enc->pages.find(core.tcs_addr);
  MIG_CHECK_MSG(it != enc->pages.end(), "TCS of running thread evicted");
  ctx.work_atomic(cost_->eexit_ns);
  epc_[it->second].tcs->busy = false;
  core = CoreState{};
  return OkStatus();
}

Status SgxHardware::aex(sim::ThreadCtx& ctx, CoreState& core, ByteSpan context) {
  if (!core.in_enclave)
    return Error(ErrorCode::kFailedPrecondition, "AEX outside enclave");
  Enclave* enc = find(core.eid);
  MIG_CHECK(enc != nullptr);
  auto it = enc->pages.find(core.tcs_addr);
  MIG_CHECK_MSG(it != enc->pages.end(), "TCS of running thread evicted");
  Tcs& tcs = *epc_[it->second].tcs;
  MIG_CHECK_MSG(tcs.cssa < tcs.nssa, "AEX with no free SSA frame");

  // Save the interrupted context into SSA[CSSA] (inside the enclave).
  Writer w;
  w.bytes(context);
  Bytes frame = w.take();
  if (frame.size() > kSsaFrameSize)
    return Error(ErrorCode::kInvalidArgument, "AEX: context exceeds SSA frame");
  frame.resize(kSsaFrameSize, 0);
  uint64_t ssa_addr = enc->secs.base + tcs.ossa + tcs.cssa * kSsaFrameSize;
  MIG_ASSIGN_OR_RETURN(size_t ssa_slot, resident_slot(ctx, *enc, ssa_addr));
  EpcPage& ssa_page = epc_[ssa_slot];
  MIG_CHECK(ssa_page.type == PageType::kReg);
  ssa_page.data = std::move(frame);

  ctx.work_atomic(cost_->aex_ns);
  tcs.cssa += 1;
  tcs.busy = false;
  core = CoreState{};
  return OkStatus();
}

Result<Bytes> SgxHardware::eresume(sim::ThreadCtx& ctx, CoreState& core,
                                   EnclaveId eid, uint64_t tcs_addr) {
  if (core.in_enclave)
    return Error(ErrorCode::kFailedPrecondition, "ERESUME while in enclave");
  Enclave* enc = find(eid);
  if (enc == nullptr) return Status(not_found("ERESUME: no such enclave"));
  if (enc->migrating)
    return Error(ErrorCode::kAborted, "ERESUME: enclave frozen by EMIGRATE");
  MIG_ASSIGN_OR_RETURN(size_t slot, resident_slot(ctx, *enc, tcs_addr));
  EpcPage& page = epc_[slot];
  if (page.type != PageType::kTcs)
    return Error(ErrorCode::kInvalidArgument, "ERESUME: not a TCS page");
  Tcs& tcs = *page.tcs;
  if (tcs.busy)
    return Error(ErrorCode::kFailedPrecondition, "ERESUME: TCS busy");
  if (tcs.cssa == 0)
    return Error(ErrorCode::kFailedPrecondition, "ERESUME: no saved state");

  uint64_t ssa_addr = enc->secs.base + tcs.ossa + (tcs.cssa - 1) * kSsaFrameSize;
  MIG_ASSIGN_OR_RETURN(size_t ssa_slot, resident_slot(ctx, *enc, ssa_addr));
  Reader r(epc_[ssa_slot].data);
  Bytes context = r.bytes();
  if (!r.ok())
    return Error(ErrorCode::kIntegrityViolation, "ERESUME: corrupt SSA frame");

  ctx.work_atomic(cost_->eresume_ns);
  tcs.cssa -= 1;
  tcs.busy = true;
  core.in_enclave = true;
  core.eid = eid;
  core.tcs_addr = tcs_addr;
  return context;
}

// ------------------------------------------------------------ memory access

Status SgxHardware::enclave_read(sim::ThreadCtx& ctx, const CoreState& core,
                                 uint64_t lin, MutByteSpan out) {
  if (!core.in_enclave)
    return Error(ErrorCode::kPermissionDenied, "EPC read from outside enclave");
  Enclave* enc = find(core.eid);
  MIG_CHECK(enc != nullptr);
  if (lin < enc->secs.base || lin + out.size() > enc->secs.base + enc->secs.size)
    return Error(ErrorCode::kInvalidArgument, "read outside enclave range");
  size_t done = 0;
  while (done < out.size()) {
    uint64_t addr = lin + done;
    uint64_t page_base = addr & ~(kPageSize - 1);
    MIG_ASSIGN_OR_RETURN(size_t slot, resident_slot(ctx, *enc, page_base));
    const EpcPage& page = epc_[slot];
    if (page.type != PageType::kReg)
      return Error(ErrorCode::kPermissionDenied,
                   "read of TCS/SECS page (hardware-private)");
    if (!page.perms.r)
      return Error(ErrorCode::kPermissionDenied,
                   "read of non-readable page (SGXv1 W+X limitation)");
    size_t off = addr - page_base;
    size_t n = std::min<size_t>(kPageSize - off, out.size() - done);
    std::copy_n(page.data.begin() + off, n, out.begin() + done);
    done += n;
  }
  return OkStatus();
}

Status SgxHardware::enclave_write(sim::ThreadCtx& ctx, const CoreState& core,
                                  uint64_t lin, ByteSpan data) {
  if (!core.in_enclave)
    return Error(ErrorCode::kPermissionDenied, "EPC write from outside enclave");
  Enclave* enc = find(core.eid);
  MIG_CHECK(enc != nullptr);
  if (lin < enc->secs.base || lin + data.size() > enc->secs.base + enc->secs.size)
    return Error(ErrorCode::kInvalidArgument, "write outside enclave range");
  size_t done = 0;
  while (done < data.size()) {
    uint64_t addr = lin + done;
    uint64_t page_base = addr & ~(kPageSize - 1);
    MIG_ASSIGN_OR_RETURN(size_t slot, resident_slot(ctx, *enc, page_base));
    EpcPage& page = epc_[slot];
    if (page.type != PageType::kReg)
      return Error(ErrorCode::kPermissionDenied,
                   "write of TCS/SECS page (hardware-private)");
    if (!page.perms.w)
      return Error(ErrorCode::kPermissionDenied, "write of read-only page");
    size_t off = addr - page_base;
    size_t n = std::min<size_t>(kPageSize - off, data.size() - done);
    std::copy_n(data.begin() + done, n, page.data.begin() + off);
    done += n;
  }
  return OkStatus();
}

Status SgxHardware::outside_access(EnclaveId eid, uint64_t lin) const {
  (void)eid;
  (void)lin;
  // Non-enclave access to EPC reads an abort page / faults. Always denied.
  return Error(ErrorCode::kPermissionDenied,
               "EPC access from non-enclave software");
}

// -------------------------------------------------------------- attestation

Result<Report> SgxHardware::ereport(sim::ThreadCtx& ctx, const CoreState& core,
                                    const TargetInfo& target,
                                    ByteSpan report_data) {
  if (!core.in_enclave)
    return Error(ErrorCode::kPermissionDenied, "EREPORT outside enclave");
  Enclave* enc = find(core.eid);
  MIG_CHECK(enc != nullptr);
  ctx.work_atomic(cost_->ereport_ns);
  Report rep;
  rep.mrenclave = enc->secs.mrenclave;
  rep.mrsigner = enc->secs.mrsigner;
  rep.isv_prod_id = enc->secs.isv_prod_id;
  rep.isv_svn = enc->secs.isv_svn;
  rep.report_data.assign(report_data.begin(), report_data.end());
  Bytes key = report_key_for(target.mrenclave);
  rep.mac = crypto::hmac_sha256(key, rep.serialize_body());
  return rep;
}

Bytes SgxHardware::report_key_for(const crypto::Digest& mrenclave) const {
  return crypto::hkdf(report_key_root_, mrenclave, to_bytes("report-key"), 32);
}

Result<Bytes> SgxHardware::egetkey(sim::ThreadCtx& ctx, const CoreState& core,
                                   KeyName name) {
  if (!core.in_enclave)
    return Error(ErrorCode::kPermissionDenied, "EGETKEY outside enclave");
  Enclave* enc = find(core.eid);
  MIG_CHECK(enc != nullptr);
  ctx.work_atomic(cost_->egetkey_ns);
  switch (name) {
    case KeyName::kReport:
      return report_key_for(enc->secs.mrenclave);
    case KeyName::kSeal:
      return crypto::hkdf(seal_key_root_, enc->secs.mrsigner,
                          to_bytes("seal-key"), 32);
  }
  return Error(ErrorCode::kInvalidArgument, "EGETKEY: unknown key name");
}

// ------------------------------------------------------------ introspection

uint64_t SgxHardware::free_epc_pages() const {
  uint64_t n = 0;
  for (const auto& p : epc_)
    if (!p.valid) ++n;
  return n;
}

bool SgxHardware::page_resident(EnclaveId eid, uint64_t lin) const {
  const Enclave* enc = find(eid);
  return enc != nullptr && enc->pages.count(lin) > 0;
}

std::optional<Perms> SgxHardware::page_perms(EnclaveId eid, uint64_t lin) const {
  const Enclave* enc = find(eid);
  if (enc == nullptr) return std::nullopt;
  auto it = enc->pages.find(lin);
  if (it == enc->pages.end()) return std::nullopt;
  return epc_[it->second].perms;
}

const Secs* SgxHardware::secs(EnclaveId eid) const {
  const Enclave* enc = find(eid);
  return enc == nullptr ? nullptr : &enc->secs;
}

bool SgxHardware::enclave_exists(EnclaveId eid) const {
  return find(eid) != nullptr;
}

std::vector<uint64_t> SgxHardware::resident_pages(EnclaveId eid) const {
  std::vector<uint64_t> out;
  const Enclave* enc = find(eid);
  if (enc == nullptr) return out;
  out.reserve(enc->pages.size());
  for (const auto& [lin, slot] : enc->pages) out.push_back(lin);
  return out;
}

Result<uint64_t> SgxHardware::debug_read_cssa_for_test(EnclaveId eid,
                                                       uint64_t tcs_addr) const {
  const Enclave* enc = find(eid);
  if (enc == nullptr) return Status(not_found("no such enclave"));
  auto it = enc->pages.find(tcs_addr);
  if (it == enc->pages.end()) return Status(not_found("TCS not resident"));
  if (epc_[it->second].type != PageType::kTcs)
    return Error(ErrorCode::kInvalidArgument, "not a TCS");
  return epc_[it->second].tcs->cssa;
}

}  // namespace mig::sgx
