#include "sgx/image.h"

#include "crypto/sha256.h"
#include "util/serde.h"

namespace mig::sgx {

crypto::Digest EnclaveImage::measure() const {
  crypto::Sha256 m;
  {
    Writer w;
    w.str("ECREATE");
    w.u64(size);
    w.u64(isv_prod_id);
    w.u64(isv_svn);
    m.update(w.data());
  }
  for (const ImagePage& page : pages) {
    {
      Writer w;
      w.str("EADD");
      w.u64(page.offset);
      w.u8(static_cast<uint8_t>(page.type));
      Perms p = page.type == PageType::kTcs ? Perms{} : page.perms;
      w.u8(static_cast<uint8_t>(p.r) | (p.w << 1) | (p.x << 2));
      m.update(w.data());
    }
    // EEXTEND measures the page as the hardware stores it: REG pages hold
    // raw content; TCS pages hold the serialized TCS (type tag + fields,
    // CSSA = 0).
    Bytes stored;
    if (page.type == PageType::kTcs) {
      Reader r(page.content);
      uint64_t oentry = r.u64();
      uint64_t ossa = r.u64();
      uint64_t nssa = r.u64();
      Writer w;
      w.u8(static_cast<uint8_t>(PageType::kTcs));
      w.u64(oentry);
      w.u64(ossa);
      w.u64(nssa);
      w.u64(0);
      stored = w.take();
    } else {
      stored = page.content;
    }
    stored.resize(kPageSize, 0);
    for (uint64_t off = 0; off < kPageSize; off += 256) {
      Writer w;
      w.str("EEXTEND");
      w.u64(page.offset + off);
      w.raw(ByteSpan(stored).subspan(off, 256));
      m.update(w.data());
    }
  }
  return m.finish();
}

void EnclaveImage::sign(const crypto::SigKeyPair& signer, crypto::Drbg& rng) {
  sigstruct.enclave_hash = measure();
  sigstruct.signer_pk = signer.pk.to_bytes();
  sigstruct.signature =
      crypto::sig_sign(signer.sk, sigstruct.enclave_hash, rng);
  sigstruct.isv_prod_id = isv_prod_id;
  sigstruct.isv_svn = isv_svn;
}

}  // namespace mig::sgx
