// Implementation of the paper's §VII-B hardware suggestions for transparent
// enclave migration: EPUTKEY / EMIGRATE / ESWPOUT / ECHANGEOUT / ESWPIN /
// EMIGRATEDONE (ECHANGEIN is subsumed by ESWPIN here: both import a
// migration-key-wrapped page). Guarded by HardwareConfig::migration_ext so
// benches can ablate hardware-assisted vs. the paper's software mechanism.
#include "crypto/ciphers.h"
#include "crypto/hmac.h"
#include "sgx/hardware.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::sgx {

namespace {
Status ext_disabled() {
  return Error(ErrorCode::kFailedPrecondition,
               "migration extension not present on this CPU (#UD)");
}

Bytes mig_nonce(uint64_t lin_addr) {
  Bytes nonce(12, 0);
  for (int i = 0; i < 8; ++i)
    nonce[i] = static_cast<uint8_t>((lin_addr >> 12) >> (8 * i));
  nonce[11] = 0x4d;
  return nonce;
}
}  // namespace

Status SgxHardware::eputkey(sim::ThreadCtx& ctx, ByteSpan enc_key32,
                            ByteSpan mac_key32) {
  if (!config_.migration_ext) return ext_disabled();
  if (enc_key32.size() != 32 || mac_key32.size() != 32)
    return Error(ErrorCode::kInvalidArgument, "EPUTKEY: bad key sizes");
  ctx.work_atomic(cost_->egetkey_ns);
  migration_enc_key_.assign(enc_key32.begin(), enc_key32.end());
  migration_mac_key_.assign(mac_key32.begin(), mac_key32.end());
  return OkStatus();
}

Status SgxHardware::emigrate(sim::ThreadCtx& ctx, EnclaveId eid) {
  if (!config_.migration_ext) return ext_disabled();
  Enclave* enc = find(eid);
  if (enc == nullptr) return Error(ErrorCode::kNotFound, "EMIGRATE: no enclave");
  if (migration_enc_key_.empty())
    return Error(ErrorCode::kFailedPrecondition, "EMIGRATE before EPUTKEY");
  // Deny while any logical processor is inside.
  for (const auto& [lin, slot] : enc->pages) {
    const EpcPage& p = epc_[slot];
    if (p.type == PageType::kTcs && p.tcs->busy)
      return Error(ErrorCode::kFailedPrecondition, "EMIGRATE: enclave running");
  }
  ctx.work_atomic(cost_->ecreate_ns);
  enc->migrating = true;
  enc->migrate_hash = crypto::Sha256();
  enc->migrate_pages = 0;
  return OkStatus();
}

crypto::Digest SgxHardware::migrated_page_hash(const MigratedPage& page) const {
  Writer w;
  w.u64(page.lin_addr);
  w.u8(static_cast<uint8_t>(page.type));
  w.bytes(page.ciphertext);
  return crypto::Sha256::hash(w.data());
}

Result<SgxHardware::MigratedPage> SgxHardware::eswpout(sim::ThreadCtx& ctx,
                                                       EnclaveId eid,
                                                       uint64_t lin_addr) {
  if (!config_.migration_ext) return Status(ext_disabled());
  Enclave* enc = find(eid);
  if (enc == nullptr) return Error(ErrorCode::kNotFound, "ESWPOUT: no enclave");
  if (!enc->migrating)
    return Error(ErrorCode::kFailedPrecondition, "ESWPOUT before EMIGRATE");
  auto it = enc->pages.find(lin_addr);
  if (it == enc->pages.end())
    return Error(ErrorCode::kNotFound, "ESWPOUT: page not resident");
  ctx.work_atomic(cost_->ewb_ns_per_page);

  const EpcPage& page = epc_[it->second];
  MigratedPage out;
  out.eid = eid;
  out.lin_addr = lin_addr;
  out.type = page.type;
  out.perms = page.perms;
  Bytes payload = serialize_page_payload(page);  // TCS pages carry CSSA!
  crypto::chacha20_xor(migration_enc_key_, mig_nonce(lin_addr), 0, payload);
  out.ciphertext = std::move(payload);
  Writer macw;
  macw.u64(lin_addr);
  macw.u8(static_cast<uint8_t>(out.type));
  macw.bytes(out.ciphertext);
  out.mac = crypto::hmac_sha256(migration_mac_key_, macw.data());

  enc->migrate_hash.update(migrated_page_hash(out));
  enc->migrate_pages += 1;
  // The page stays resident at the source until EREMOVE; the freeze
  // guarantees it cannot change, so exporting is idempotent and safe.
  return out;
}

Result<SgxHardware::MigratedPage> SgxHardware::echangeout(
    sim::ThreadCtx& ctx, const EvictedPage& evicted) {
  if (!config_.migration_ext) return Status(ext_disabled());
  Enclave* enc = find(evicted.eid);
  if (enc == nullptr)
    return Error(ErrorCode::kNotFound, "ECHANGEOUT: no enclave");
  if (!enc->migrating)
    return Error(ErrorCode::kFailedPrecondition, "ECHANGEOUT before EMIGRATE");
  // Verify with the paging keys first (same checks as ELDB minus VA).
  crypto::Digest mac =
      crypto::hmac_sha256(paging_mac_key_, paging_mac_input(evicted));
  if (!crypto::ct_equal(mac, evicted.mac))
    return Error(ErrorCode::kIntegrityViolation, "ECHANGEOUT: MAC mismatch");
  ctx.work_atomic(cost_->ewb_ns_per_page);

  Bytes payload = evicted.ciphertext;
  Bytes nonce(12, 0);
  for (int i = 0; i < 8; ++i)
    nonce[i] = static_cast<uint8_t>(evicted.version >> (8 * i));
  for (int i = 0; i < 4; ++i)
    nonce[8 + i] = static_cast<uint8_t>((evicted.lin_addr >> 12) >> (8 * i));
  crypto::chacha20_xor(paging_key_, nonce, 0, payload);  // un-wrap paging key

  MigratedPage out;
  out.eid = evicted.eid;
  out.lin_addr = evicted.lin_addr;
  out.type = evicted.type;
  out.perms = evicted.perms;
  crypto::chacha20_xor(migration_enc_key_, mig_nonce(evicted.lin_addr), 0,
                       payload);
  out.ciphertext = std::move(payload);
  Writer macw;
  macw.u64(out.lin_addr);
  macw.u8(static_cast<uint8_t>(out.type));
  macw.bytes(out.ciphertext);
  out.mac = crypto::hmac_sha256(migration_mac_key_, macw.data());

  enc->migrate_hash.update(migrated_page_hash(out));
  enc->migrate_pages += 1;
  return out;
}

Result<SgxHardware::MigratedSecs> SgxHardware::emigrate_export_secs(
    sim::ThreadCtx& ctx, EnclaveId eid) {
  if (!config_.migration_ext) return Status(ext_disabled());
  Enclave* enc = find(eid);
  if (enc == nullptr) return Error(ErrorCode::kNotFound, "no enclave");
  if (!enc->migrating)
    return Error(ErrorCode::kFailedPrecondition, "SECS export before EMIGRATE");
  ctx.work_atomic(cost_->ewb_ns_per_page);
  Writer w;
  w.u64(enc->secs.base);
  w.u64(enc->secs.size);
  w.u64(enc->secs.isv_prod_id);
  w.u64(enc->secs.isv_svn);
  w.raw(enc->secs.mrenclave);
  w.raw(enc->secs.mrsigner);
  Bytes payload = w.take();
  crypto::chacha20_xor(migration_enc_key_, mig_nonce(0xfffff000), 0, payload);
  MigratedSecs out;
  out.ciphertext = std::move(payload);
  out.mac = crypto::hmac_sha256(migration_mac_key_, out.ciphertext);
  return out;
}

Result<EnclaveId> SgxHardware::emigrate_import_secs(sim::ThreadCtx& ctx,
                                                    const MigratedSecs& secs) {
  if (!config_.migration_ext) return Status(ext_disabled());
  if (migration_enc_key_.empty())
    return Error(ErrorCode::kFailedPrecondition, "SECS import before EPUTKEY");
  crypto::Digest mac = crypto::hmac_sha256(migration_mac_key_, secs.ciphertext);
  if (!crypto::ct_equal(mac, secs.mac))
    return Error(ErrorCode::kIntegrityViolation, "SECS import: MAC mismatch");
  Bytes payload = secs.ciphertext;
  crypto::chacha20_xor(migration_enc_key_, mig_nonce(0xfffff000), 0, payload);
  Reader r(payload);
  uint64_t base = r.u64();
  uint64_t size = r.u64();
  uint64_t prod = r.u64();
  uint64_t svn = r.u64();
  Bytes mrenclave = r.raw(32);
  Bytes mrsigner = r.raw(32);
  if (!r.finish().ok())
    return Error(ErrorCode::kIntegrityViolation, "SECS import: malformed");

  ctx.work_atomic(cost_->ecreate_ns);
  MIG_ASSIGN_OR_RETURN(size_t slot, alloc_slot());
  epc_[slot].type = PageType::kSecs;
  EnclaveId eid = next_eid_++;
  Enclave& enc = enclaves_[eid];
  enc.secs.eid = eid;
  enc.secs.base = base;
  enc.secs.size = size;
  enc.secs.isv_prod_id = prod;
  enc.secs.isv_svn = svn;
  enc.secs.initialized = true;
  std::copy(mrenclave.begin(), mrenclave.end(), enc.secs.mrenclave.begin());
  std::copy(mrsigner.begin(), mrsigner.end(), enc.secs.mrsigner.begin());
  enc.secs_slot = slot;
  epc_[slot].eid = eid;
  enc.migrating = true;  // frozen until EMIGRATEDONE
  enc.import_hash = crypto::Sha256();
  enc.import_pages = 0;
  return eid;
}

Status SgxHardware::eswpin(sim::ThreadCtx& ctx, EnclaveId eid,
                           const MigratedPage& page) {
  if (!config_.migration_ext) return ext_disabled();
  Enclave* enc = find(eid);
  if (enc == nullptr) return Error(ErrorCode::kNotFound, "ESWPIN: no enclave");
  if (!enc->migrating)
    return Error(ErrorCode::kFailedPrecondition, "ESWPIN on a live enclave");
  if (enc->pages.count(page.lin_addr))
    return Error(ErrorCode::kFailedPrecondition, "ESWPIN: page already present");
  Writer macw;
  macw.u64(page.lin_addr);
  macw.u8(static_cast<uint8_t>(page.type));
  macw.bytes(page.ciphertext);
  crypto::Digest mac = crypto::hmac_sha256(migration_mac_key_, macw.data());
  if (!crypto::ct_equal(mac, page.mac))
    return Error(ErrorCode::kIntegrityViolation, "ESWPIN: MAC mismatch");

  ctx.work_atomic(cost_->eldb_ns_per_page);
  MIG_ASSIGN_OR_RETURN(size_t slot, alloc_slot());
  Bytes payload = page.ciphertext;
  crypto::chacha20_xor(migration_enc_key_, mig_nonce(page.lin_addr), 0, payload);
  EpcPage& epc_page = epc_[slot];
  deserialize_page_payload(epc_page, payload);
  epc_page.valid = true;
  epc_page.eid = eid;
  epc_page.lin_addr = page.lin_addr;
  epc_page.perms = page.perms;
  enc->pages[page.lin_addr] = slot;

  enc->import_hash.update(migrated_page_hash(page));
  enc->import_pages += 1;
  return OkStatus();
}

Result<std::pair<crypto::Digest, uint64_t>> SgxHardware::emigrate_state_hash(
    sim::ThreadCtx& ctx, EnclaveId eid) {
  if (!config_.migration_ext) return Status(ext_disabled());
  Enclave* enc = find(eid);
  if (enc == nullptr) return Error(ErrorCode::kNotFound, "no enclave");
  if (!enc->migrating)
    return Error(ErrorCode::kFailedPrecondition, "state hash before EMIGRATE");
  ctx.work_atomic(cost_->ereport_ns);
  crypto::Sha256 h = enc->migrate_hash;
  return std::make_pair(h.finish(), enc->migrate_pages);
}

Status SgxHardware::emigratedone(sim::ThreadCtx& ctx, EnclaveId eid,
                                 const crypto::Digest& expected_state_hash,
                                 uint64_t expected_pages) {
  if (!config_.migration_ext) return ext_disabled();
  Enclave* enc = find(eid);
  if (enc == nullptr) return Error(ErrorCode::kNotFound, "no enclave");
  if (!enc->migrating)
    return Error(ErrorCode::kFailedPrecondition, "EMIGRATEDONE on live enclave");
  ctx.work_atomic(cost_->einit_ns);
  crypto::Sha256 h = enc->import_hash;
  crypto::Digest got = h.finish();
  if (enc->import_pages != expected_pages ||
      !crypto::ct_equal(got, expected_state_hash)) {
    return Error(ErrorCode::kIntegrityViolation,
                 "EMIGRATEDONE: migrated state incomplete or reordered");
  }
  enc->migrating = false;
  return OkStatus();
}

}  // namespace mig::sgx
