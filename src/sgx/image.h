// Enclave image: the serializable build artifact the SDK produces and the
// guest driver consumes (ECREATE/EADD/EEXTEND/EINIT sequence). Identical
// images yield identical MRENCLAVE on any machine — that is what lets the
// target create a "virgin enclave using the same image" (§III Step-1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/dh.h"
#include "sgx/types.h"
#include "util/bytes.h"

namespace mig::sgx {

struct ImagePage {
  uint64_t offset = 0;  // from enclave base
  PageType type = PageType::kReg;
  Perms perms;
  Bytes content;  // <= kPageSize; zero-extended by EADD
};

struct EnclaveImage {
  uint64_t base = 0;
  uint64_t size = 0;
  uint64_t isv_prod_id = 0;
  uint64_t isv_svn = 0;
  std::vector<ImagePage> pages;  // EADD/EEXTEND order
  SigStruct sigstruct;

  // Computes the MRENCLAVE this image will measure to (the SDK signs this;
  // EINIT recomputes and compares). Must mirror SgxHardware's protocol.
  crypto::Digest measure() const;

  // Convenience for the enclave author: sign the measurement.
  void sign(const crypto::SigKeyPair& signer, crypto::Drbg& rng);
};

}  // namespace mig::sgx
