// Functional model of an SGX-capable CPU package.
//
// One SgxHardware instance == one physical machine's SGX engine: its EPC,
// EPCM, per-machine secret keys (paging/report/seal roots, derived from a
// seed that never leaves this object — the software layers above cannot read
// them, exactly like real fused keys), and the instruction set the paper's
// system is built on: ECREATE/EADD/EEXTEND/EINIT (build + measurement),
// EENTER/EEXIT/AEX/ERESUME (control-flow transfer and the CSSA machinery of
// §II-A), EWB/ELDB (paging with per-machine encryption — the very property
// that breaks cross-machine checkpoint restore, Difference-1 in §II-B),
// EREPORT/EGETKEY (attestation), EREMOVE.
//
// Fidelity notes:
//  * Enclave "code" is C++ run by the SDK runtime, so EENTER does not jump
//    anywhere; it performs all architectural checks and state transitions and
//    returns CSSA in rax like the hardware does. The runtime executes the
//    entry stub next, as the measured image dictates.
//  * AEX is delivered by the executor's preemption hook. The interrupted
//    execution context is an opaque blob the runtime hands to aex(); the
//    hardware stores it in the thread's current SSA frame *inside the
//    enclave*, increments the software-invisible CSSA, and scrubs core state
//    — matching §II-A's description bit for bit at the protocol level.
//  * All instruction costs come from sim::CostModel.
//
// Access control is enforced at this boundary: non-enclave software reading
// EPC gets kPermissionDenied (abort-page semantics), an enclave cannot touch
// another enclave's pages, nobody can read a TCS or SECS, and CSSA has no
// read path at all except the rax value EENTER returns — the paper's
// in-enclave tracking (§IV-C) is honest here, not a convenience backdoor.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sgx/types.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "util/status.h"

namespace mig::sgx {

struct HardwareConfig {
  std::string machine_name = "machine";
  uint64_t epc_pages = 24'576;  // 96 MB usable, Skylake-era
  bool migration_ext = false;   // enable the §VII-B proposed instructions
};

// Per-logical-processor SGX state. Owned by whatever models the hardware
// thread (the guest-OS thread object); passed to entry/exit/access calls.
struct CoreState {
  bool in_enclave = false;
  EnclaveId eid = kNoEnclave;
  uint64_t tcs_addr = 0;
};

// EWB output: what lands in untrusted memory. Integrity/anti-replay come
// from the MAC + the version number parked in a VA slot.
struct EvictedPage {
  EnclaveId eid = kNoEnclave;
  uint64_t lin_addr = 0;
  PageType type = PageType::kReg;
  Perms perms;
  Bytes ciphertext;
  crypto::Digest mac{};
  uint64_t version = 0;
  uint64_t va_page = 0;  // VA page id holding the version
  int va_slot = 0;
};

class SgxHardware {
 public:
  SgxHardware(sim::Executor& executor, const sim::CostModel& cost,
              crypto::Drbg key_seed, HardwareConfig config);

  const HardwareConfig& config() const { return config_; }

  // ---- enclave build (privileged software) ---------------------------------
  Result<EnclaveId> ecreate(sim::ThreadCtx& ctx, uint64_t base, uint64_t size,
                            uint64_t isv_prod_id, uint64_t isv_svn);
  Status eadd(sim::ThreadCtx& ctx, EnclaveId eid, uint64_t lin_addr,
              PageType type, Perms perms, ByteSpan content);
  Status eextend(sim::ThreadCtx& ctx, EnclaveId eid, uint64_t lin_addr);
  Status einit(sim::ThreadCtx& ctx, EnclaveId eid, const SigStruct& sig);
  Status eremove_page(sim::ThreadCtx& ctx, EnclaveId eid, uint64_t lin_addr);
  Status eremove_enclave(sim::ThreadCtx& ctx, EnclaveId eid);
  // Crash model (NOT an instruction): models power loss / VM kill wiping the
  // volatile EPC. Unlike EREMOVE it ignores busy TCSs — threads that were
  // inside the enclave simply never run again. No-op on unknown eids.
  void force_reclaim_enclave(sim::ThreadCtx& ctx, EnclaveId eid);

  // ---- EPC paging (privileged software) -------------------------------------
  // EPA: allocates a Version Array page; returns its id.
  Result<uint64_t> epa(sim::ThreadCtx& ctx);
  Result<EvictedPage> ewb(sim::ThreadCtx& ctx, EnclaveId eid, uint64_t lin_addr,
                          uint64_t va_page, int va_slot);
  Status eldb(sim::ThreadCtx& ctx, const EvictedPage& page);

  // ---- control-flow transfer -------------------------------------------------
  // Returns CSSA in "rax" on success (the paper's §IV-C tracking hinges on
  // exactly this return value).
  Result<uint64_t> eenter(sim::ThreadCtx& ctx, CoreState& core, EnclaveId eid,
                          uint64_t tcs_addr);
  Status eexit(sim::ThreadCtx& ctx, CoreState& core);
  // Hardware-internal: invoked when an interrupt arrives while in-enclave.
  // `context` is the interrupted execution context (register-file stand-in);
  // the hardware saves it in SSA[CSSA] and bumps CSSA.
  Status aex(sim::ThreadCtx& ctx, CoreState& core, ByteSpan context);
  // Restores from SSA[CSSA-1], decrementing CSSA; returns the saved context.
  Result<Bytes> eresume(sim::ThreadCtx& ctx, CoreState& core, EnclaveId eid,
                        uint64_t tcs_addr);

  // ---- enclave-mode memory access --------------------------------------------
  Status enclave_read(sim::ThreadCtx& ctx, const CoreState& core, uint64_t lin,
                      MutByteSpan out);
  Status enclave_write(sim::ThreadCtx& ctx, const CoreState& core, uint64_t lin,
                       ByteSpan data);
  // Any non-enclave-mode access to EPC: abort-page semantics.
  Status outside_access(EnclaveId eid, uint64_t lin) const;

  // ---- attestation ------------------------------------------------------------
  Result<Report> ereport(sim::ThreadCtx& ctx, const CoreState& core,
                         const TargetInfo& target, ByteSpan report_data);
  Result<Bytes> egetkey(sim::ThreadCtx& ctx, const CoreState& core, KeyName name);

  // ---- demand paging hook -------------------------------------------------------
  // Installed by the guest OS driver: "make (eid, lin_addr) resident". Called
  // by enclave-mode accesses that fault on an evicted page.
  using FaultHandler =
      std::function<bool(sim::ThreadCtx&, EnclaveId, uint64_t lin_addr)>;
  void set_fault_handler(FaultHandler handler) { fault_ = std::move(handler); }

  // ---- introspection (used by OS bookkeeping and tests) -------------------------
  uint64_t free_epc_pages() const;
  uint64_t total_epc_pages() const { return config_.epc_pages; }
  bool page_resident(EnclaveId eid, uint64_t lin) const;
  std::optional<Perms> page_perms(EnclaveId eid, uint64_t lin) const;
  const Secs* secs(EnclaveId eid) const;
  bool enclave_exists(EnclaveId eid) const;
  // Pages of an enclave currently resident (lin addresses). OS bookkeeping.
  std::vector<uint64_t> resident_pages(EnclaveId eid) const;

  // TEST-ONLY backdoor: reads the hardware-private CSSA. Production code
  // must never call this — the whole point of §IV-C is that it cannot.
  Result<uint64_t> debug_read_cssa_for_test(EnclaveId eid,
                                            uint64_t tcs_addr) const;

  // ---- §VII-B proposed migration instructions (see hardware_ext.cc) -------------
  struct MigratedPage {
    EnclaveId eid = kNoEnclave;
    uint64_t lin_addr = 0;
    PageType type = PageType::kReg;
    Perms perms;
    Bytes ciphertext;   // under the *migration* key, not the paging key
    crypto::Digest mac{};
  };
  struct MigratedSecs {
    Bytes ciphertext;
    crypto::Digest mac{};
  };
  // EPUTKEY: installs the migration key pair agreed by the control enclaves.
  Status eputkey(sim::ThreadCtx& ctx, ByteSpan enc_key32, ByteSpan mac_key32);
  // EMIGRATE: freezes the enclave (no EENTER/ERESUME until EMIGRATEDONE).
  Status emigrate(sim::ThreadCtx& ctx, EnclaveId eid);
  // ESWPOUT: exports one page (including TCS pages with their CSSA!).
  Result<MigratedPage> eswpout(sim::ThreadCtx& ctx, EnclaveId eid,
                               uint64_t lin_addr);
  // ECHANGEOUT: re-wraps an already-EWB-evicted page under the migration key.
  Result<MigratedPage> echangeout(sim::ThreadCtx& ctx, const EvictedPage& page);
  // Exports the frozen enclave's SECS for the target to rebuild from.
  Result<MigratedSecs> emigrate_export_secs(sim::ThreadCtx& ctx, EnclaveId eid);
  // Target side: creates a frozen enclave shell from a migrated SECS.
  Result<EnclaveId> emigrate_import_secs(sim::ThreadCtx& ctx,
                                         const MigratedSecs& secs);
  // ESWPIN / ECHANGEIN: imports a page into a frozen enclave.
  Status eswpin(sim::ThreadCtx& ctx, EnclaveId eid, const MigratedPage& page);
  // EMIGRATEDONE: verifies completeness (page count + running hash must match
  // the source's signed trailer) and thaws the enclave.
  Status emigratedone(sim::ThreadCtx& ctx, EnclaveId eid,
                      const crypto::Digest& expected_state_hash,
                      uint64_t expected_pages);
  // Source-side trailer for EMIGRATEDONE.
  Result<std::pair<crypto::Digest, uint64_t>> emigrate_state_hash(
      sim::ThreadCtx& ctx, EnclaveId eid);

 private:
  // The Quoting Enclave is architectural: it runs with hardware privileges
  // and verifies reports targeted at it via the report-key root.
  friend class QuotingEnclave;
  Bytes report_key_for(const crypto::Digest& mrenclave) const;

  struct EpcPage {
    bool valid = false;
    PageType type = PageType::kReg;
    EnclaveId eid = kNoEnclave;
    uint64_t lin_addr = 0;
    Perms perms;
    Bytes data;                       // kPageSize bytes for REG pages
    std::unique_ptr<Tcs> tcs;         // for PT_TCS pages
    std::vector<uint64_t> va_slots;   // for PT_VA pages
  };

  struct Enclave {
    Secs secs;
    size_t secs_slot = 0;
    // Resident page table: lin_addr -> EPC slot.
    std::map<uint64_t, size_t> pages;
    bool migrating = false;  // §VII-B EMIGRATE freeze
    crypto::Sha256 migrate_hash;  // running hash of ESWPOUT'ed pages
    uint64_t migrate_pages = 0;
    // Import side bookkeeping.
    crypto::Sha256 import_hash;
    uint64_t import_pages = 0;
  };

  Result<size_t> alloc_slot();
  Enclave* find(EnclaveId eid);
  const Enclave* find(EnclaveId eid) const;
  Result<size_t> resident_slot(sim::ThreadCtx& ctx, Enclave& enc, uint64_t lin_page);
  Bytes serialize_page_payload(const EpcPage& page) const;
  void deserialize_page_payload(EpcPage& page, ByteSpan payload) const;
  Bytes paging_mac_input(const EvictedPage& page) const;
  crypto::Digest migrated_page_hash(const MigratedPage& page) const;

  sim::Executor* executor_;
  const sim::CostModel* cost_;
  HardwareConfig config_;

  // Per-machine secrets (never exposed; fused at "manufacturing").
  Bytes paging_key_;      // EWB/ELDB encryption
  Bytes paging_mac_key_;
  Bytes report_key_root_; // per-MRENCLAVE report keys
  Bytes seal_key_root_;   // per-MRSIGNER seal keys

  // §VII-B migration keys (installed by EPUTKEY; empty = not installed).
  Bytes migration_enc_key_;
  Bytes migration_mac_key_;

  std::vector<EpcPage> epc_;
  std::map<EnclaveId, Enclave> enclaves_;
  std::map<uint64_t, size_t> va_pages_;  // va id -> EPC slot
  EnclaveId next_eid_ = 1;
  uint64_t next_va_id_ = 1;
  uint64_t version_counter_ = 0;
  FaultHandler fault_;
};

}  // namespace mig::sgx
