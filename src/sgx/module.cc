// Module anchor; real sources accompany it.
namespace mig { const char* k_sgx_module = "sgx"; }
