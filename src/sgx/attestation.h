// Remote attestation machinery: the Quoting Enclave and the (Intel-run)
// Attestation Service (IAS stand-in).
//
// Flow, matching §II-A and Fig. 7 of the paper:
//   1. enclave A executes EREPORT targeted at the Quoting Enclave;
//   2. the QE verifies the report with its report key (local attestation)
//      and signs a *quote* with the platform attestation key;
//   3. a verifier (the enclave owner at launch, or the *source control
//      thread* during migration — the paper's owner-free attestation) sends
//      the quote to the attestation service, which knows every genuine
//      platform's public key and returns a signed verdict;
//   4. the verifier checks the verdict against the service's well-known
//      public key (baked into enclave images / owner tooling).
//
// The per-machine QE key pair models the EPID group membership of a genuine
// SGX platform: quotes from machines never registered with the service (e.g.
// an attacker's emulator) fail verification.
#pragma once

#include <map>
#include <string>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sgx/hardware.h"
#include "sgx/types.h"
#include "util/status.h"

namespace mig::sgx {

struct Quote {
  std::string platform;     // machine name (EPID pseudonym stand-in)
  Report report;            // body of the attested enclave's report
  Bytes signature;          // QE platform key over the serialized body
  Bytes serialize_body() const;
  Bytes serialize() const;
  static Result<Quote> deserialize(ByteSpan data);
};

// A signed verdict from the attestation service.
struct AttestationVerdict {
  bool ok = false;
  crypto::Digest mrenclave{};
  crypto::Digest mrsigner{};
  Bytes report_data;
  Bytes nonce;       // verifier-chosen anti-replay nonce
  Bytes signature;   // service key over all of the above
  Bytes serialize_body() const;
};

class AttestationService;

// The Quoting Enclave of one machine. Architecturally an enclave; modeled as
// a privileged object holding the platform attestation key and the machine's
// report-verification capability.
class QuotingEnclave {
 public:
  QuotingEnclave(SgxHardware& hw, crypto::Drbg rng);

  // Local-attestation target info for EREPORT.
  TargetInfo target_info() const;

  // Verifies `report` (must be targeted at the QE) and signs a quote.
  Result<Quote> quote(sim::ThreadCtx& ctx, const Report& report);

  const crypto::BigNum& platform_pk() const { return key_.pk; }
  const std::string& platform() const;

 private:
  SgxHardware* hw_;
  crypto::Drbg rng_;
  crypto::SigKeyPair key_;
};

// The attestation service (IAS stand-in). One global instance per simulated
// world; machines register their QE platform keys out of band (manufacturing).
class AttestationService {
 public:
  explicit AttestationService(crypto::Drbg rng);

  void register_platform(const std::string& name, const crypto::BigNum& pk);

  // Verifies a quote and returns a signed verdict binding `nonce`.
  // Charges the WAN round trip + service processing time.
  AttestationVerdict verify(sim::ThreadCtx& ctx, const Quote& quote,
                            ByteSpan nonce);

  // Well-known service public key (baked into images).
  const crypto::BigNum& service_pk() const { return key_.pk; }

  // Verdict-signature check usable by anyone holding the service pk.
  static bool check_verdict(const AttestationVerdict& verdict,
                            const crypto::BigNum& service_pk);

 private:
  crypto::Drbg rng_;
  crypto::SigKeyPair key_;
  std::map<std::string, crypto::BigNum> platforms_;
};

}  // namespace mig::sgx
