#include "sgx/types.h"

#include "util/serde.h"

namespace mig::sgx {

Bytes Report::serialize_body() const {
  Writer w;
  w.raw(mrenclave);
  w.raw(mrsigner);
  w.u64(isv_prod_id);
  w.u64(isv_svn);
  w.bytes(report_data);
  return w.take();
}

}  // namespace mig::sgx
