// Architectural vocabulary of the SGX model: page types, permissions, SECS,
// TCS, SIGSTRUCT, REPORT. Field names follow the Intel SDM (vol. 3D) so the
// code reads like the spec the paper programs against.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace mig::sgx {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kSsaFrameSize = kPageSize;  // one page per SSA frame
inline constexpr int kVaSlotsPerPage = 512;           // 8-byte slots

using EnclaveId = uint64_t;
inline constexpr EnclaveId kNoEnclave = 0;

enum class PageType : uint8_t {
  kSecs = 0,
  kTcs = 1,
  kReg = 2,
  kVa = 3,
};

// Page permissions; EPCM-enforced for PT_REG pages.
struct Perms {
  bool r = false, w = false, x = false;

  static Perms rw() { return {true, true, false}; }
  static Perms rx() { return {true, false, true}; }
  static Perms rwx() { return {true, true, true}; }
  static Perms wx_only() { return {false, true, true}; }  // the SGXv1 problem case

  friend bool operator==(const Perms&, const Perms&) = default;
};

// SGX Enclave Control Structure: per-enclave hardware metadata. Lives in a
// PT_SECS EPC page; no software — not even the enclave — can read it.
struct Secs {
  EnclaveId eid = kNoEnclave;
  uint64_t base = 0;          // enclave linear base address
  uint64_t size = 0;          // enclave linear size (bytes)
  bool initialized = false;   // EINIT done
  crypto::Digest mrenclave{}; // measurement (final after EINIT)
  crypto::Digest mrsigner{};  // H(signer public key)
  uint64_t isv_prod_id = 0;
  uint64_t isv_svn = 0;
  // Running measurement state pre-EINIT.
  crypto::Sha256 measuring;
};

// Thread Control Structure: per-enclave-thread hardware metadata. Lives in a
// PT_TCS EPC page; CSSA in particular is readable by no software, which is
// the crux of the paper's §IV-C tracking problem.
struct Tcs {
  uint64_t oentry = 0;  // entry point offset (fixed entry per TCS)
  uint64_t ossa = 0;    // offset of the SSA array within the enclave
  uint64_t nssa = 0;    // number of SSA frames
  uint64_t cssa = 0;    // current SSA index — hardware-private
  bool busy = false;    // a logical processor is inside via this TCS
};

// The enclave certificate checked by EINIT. The signer signs the expected
// measurement; MRSIGNER becomes H(signer_pk).
struct SigStruct {
  crypto::Digest enclave_hash{};  // expected MRENCLAVE
  Bytes signer_pk;                // serialized Schnorr public key
  Bytes signature;                // over enclave_hash
  uint64_t isv_prod_id = 0;
  uint64_t isv_svn = 0;
};

// EREPORT output: locally-verifiable attestation statement. The MAC is keyed
// with the *target* enclave's report key, so only that enclave (on the same
// machine) can verify it.
struct Report {
  crypto::Digest mrenclave{};
  crypto::Digest mrsigner{};
  uint64_t isv_prod_id = 0;
  uint64_t isv_svn = 0;
  Bytes report_data;  // 64 bytes of caller-chosen binding data
  crypto::Digest mac{};

  Bytes serialize_body() const;
};

// TARGETINFO for EREPORT: identifies which enclave should be able to verify.
struct TargetInfo {
  crypto::Digest mrenclave{};
};

// Key names for EGETKEY.
enum class KeyName : uint8_t {
  kReport = 0,   // verifies REPORTs targeted at this enclave
  kSeal = 1,     // per-(machine, MRSIGNER) sealing key
};

}  // namespace mig::sgx
