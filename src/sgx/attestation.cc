#include "sgx/attestation.h"

#include "crypto/hmac.h"
#include "util/serde.h"

namespace mig::sgx {

namespace {
const crypto::Digest& qe_mrenclave() {
  static const crypto::Digest d =
      crypto::Sha256::hash(to_bytes("architectural-quoting-enclave"));
  return d;
}
}  // namespace

Bytes Quote::serialize_body() const {
  Writer w;
  w.str(platform);
  w.bytes(report.serialize_body());
  return w.take();
}

Bytes Quote::serialize() const {
  Writer w;
  w.bytes(serialize_body());
  w.bytes(signature);
  return w.take();
}

Result<Quote> Quote::deserialize(ByteSpan data) {
  Reader r(data);
  Bytes body = r.bytes();
  Bytes sig = r.bytes();
  MIG_RETURN_IF_ERROR(r.finish());
  Reader rb(body);
  Quote q;
  q.platform = rb.str();
  Bytes report_body = rb.bytes();
  MIG_RETURN_IF_ERROR(rb.finish());
  Reader rr(report_body);
  Bytes mre = rr.raw(32);
  Bytes mrs = rr.raw(32);
  q.report.isv_prod_id = rr.u64();
  q.report.isv_svn = rr.u64();
  q.report.report_data = rr.bytes();
  MIG_RETURN_IF_ERROR(rr.finish());
  std::copy(mre.begin(), mre.end(), q.report.mrenclave.begin());
  std::copy(mrs.begin(), mrs.end(), q.report.mrsigner.begin());
  q.signature = std::move(sig);
  return q;
}

Bytes AttestationVerdict::serialize_body() const {
  Writer w;
  w.u8(ok ? 1 : 0);
  w.raw(mrenclave);
  w.raw(mrsigner);
  w.bytes(report_data);
  w.bytes(nonce);
  return w.take();
}

QuotingEnclave::QuotingEnclave(SgxHardware& hw, crypto::Drbg rng)
    : hw_(&hw), rng_(std::move(rng)), key_(crypto::sig_keygen(rng_)) {}

TargetInfo QuotingEnclave::target_info() const {
  return TargetInfo{qe_mrenclave()};
}

const std::string& QuotingEnclave::platform() const {
  return hw_->config().machine_name;
}

Result<Quote> QuotingEnclave::quote(sim::ThreadCtx& ctx, const Report& report) {
  // Local attestation: recompute the MAC with the QE's report key.
  Bytes key = hw_->report_key_for(qe_mrenclave());
  crypto::Digest expect = crypto::hmac_sha256(key, report.serialize_body());
  if (!crypto::ct_equal(expect, report.mac))
    return Error(ErrorCode::kAuthFailure,
                 "quoting enclave: report MAC invalid (not from this machine "
                 "or not targeted at the QE)");
  ctx.work_atomic(sim::default_cost_model().sig_sign_ns);
  Quote q;
  q.platform = hw_->config().machine_name;
  q.report = report;
  q.signature = crypto::sig_sign(key_.sk, q.serialize_body(), rng_);
  return q;
}

AttestationService::AttestationService(crypto::Drbg rng)
    : rng_(std::move(rng)), key_(crypto::sig_keygen(rng_)) {}

void AttestationService::register_platform(const std::string& name,
                                           const crypto::BigNum& pk) {
  platforms_.emplace(name, pk);
}

AttestationVerdict AttestationService::verify(sim::ThreadCtx& ctx,
                                              const Quote& quote,
                                              ByteSpan nonce) {
  const sim::CostModel& cm = sim::default_cost_model();
  ctx.work_atomic(cm.ias_processing_ns);
  AttestationVerdict v;
  v.nonce.assign(nonce.begin(), nonce.end());
  auto it = platforms_.find(quote.platform);
  if (it != platforms_.end() &&
      crypto::sig_verify(it->second, quote.serialize_body(), quote.signature)) {
    v.ok = true;
    v.mrenclave = quote.report.mrenclave;
    v.mrsigner = quote.report.mrsigner;
    v.report_data = quote.report.report_data;
  }
  v.signature = crypto::sig_sign(key_.sk, v.serialize_body(), rng_);
  return v;
}

bool AttestationService::check_verdict(const AttestationVerdict& verdict,
                                       const crypto::BigNum& service_pk) {
  return crypto::sig_verify(service_pk, verdict.serialize_body(),
                            verdict.signature);
}

}  // namespace mig::sgx
