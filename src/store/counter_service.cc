#include "store/counter_service.h"

#include "crypto/aead.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serde.h"

namespace mig::store {

CounterService::CounterService(sgx::AttestationService& ias, crypto::Drbg rng)
    : ias_(&ias), rng_(std::move(rng)) {
  crypto::Drbg sig_rng = rng_.fork(to_bytes("ctr-sig"));
  sig_ = crypto::sig_keygen(sig_rng);
  kroot_ = rng_.fork(to_bytes("ctr-root")).generate(32);
}

uint64_t CounterService::counter(const crypto::Digest& mrenclave) const {
  auto it = counters_.find(Bytes(mrenclave.begin(), mrenclave.end()));
  return it == counters_.end() ? 1 : it->second;
}

Bytes CounterService::key_for(ByteSpan mrenclave, uint64_t counter) {
  Writer info;
  info.raw(mrenclave);
  info.u64(counter);
  return crypto::hkdf(to_bytes("store-counter"), kroot_, info.data(), 32);
}

void CounterService::serve_one(sim::ThreadCtx& ctx, sim::Channel::End end) {
  // Bounded wait: helper threads serving an enclave that refuses its store
  // command in-enclave (self-destroyed fence, rejected envelope) never see a
  // request at all — they must retire instead of parking forever.
  std::optional<Bytes> request_in = end.recv_timeout(ctx, kServeTimeoutNs);
  if (!request_in.has_value()) return;
  Bytes request = std::move(*request_in);
  if (!available_) {
    // Outage model: the request is lost, no reply ever comes. The enclave's
    // channel timeout makes the store operation fail closed.
    obs::instant(ctx, "store.counter.dropped", "store");
    obs::flight(ctx, "store.counter", "dropped",
                "service unavailable; request swallowed");
    return;
  }
  obs::Span<sim::ThreadCtx> span(ctx, "store.counter.serve", "store");
  obs::metrics().add("store.counter.requests");
  Reader r(request);
  std::string verb = r.str();
  uint64_t counter_arg = r.u64();
  Bytes dh_pub_e = r.bytes();
  Bytes quote_wire = r.bytes();
  auto refuse = [&](std::string why) {
    obs::instant(ctx, "store.counter.refused", "store", {{"why", why}});
    obs::metrics().add("store.counter.refusals");
    obs::flight(ctx, "store.counter", "refused", why);
    Writer w;
    w.str("REFUSED:" + why);
    w.u64(0);
    w.bytes({});
    w.bytes({});
    w.bytes({});
    end.send(ctx, w.take());
  };
  if (!r.finish().ok()) return refuse("malformed");

  auto quote = sgx::Quote::deserialize(quote_wire);
  if (!quote.ok()) return refuse("bad quote");
  ctx.sleep(2 * sim::default_cost_model().wan_latency_ns);
  sgx::AttestationVerdict verdict =
      ias_->verify(ctx, *quote, rng_.generate(16));
  if (!verdict.ok) return refuse("attestation failed");
  crypto::Digest bind = crypto::Sha256::hash(dh_pub_e);
  if (!crypto::ct_equal(ByteSpan(verdict.report_data), ByteSpan(bind)))
    return refuse("quote does not bind DH value");

  // No enrollment: the quote *is* the identity. First contact creates the
  // identity's counter at 1.
  Bytes id(verdict.mrenclave.begin(), verdict.mrenclave.end());
  auto [it, created] = counters_.try_emplace(std::move(id), 1);
  uint64_t& current = it->second;

  uint64_t reply_counter = 0;
  Bytes key;
  if (verb == "SEALGRANT") {
    // Key for the current value; the counter does not move. The reply also
    // tells a stale fork that the world moved on (it compares against its
    // in-enclave epoch and self-destroys).
    reply_counter = current;
    key = key_for(it->first, current);
    obs::metrics().add("store.counter.grants");
  } else if (verb == "OPENGRANT") {
    if (counter_arg != current)
      return refuse("stale snapshot counter");
    // The restore consumes the epoch: key for c, counter moves to c+1, and
    // the restored instance records c+1 as its epoch.
    key = key_for(it->first, current);
    current += 1;
    reply_counter = current;
    obs::metrics().add("store.counter.grants");
  } else if (verb == "ADVANCE") {
    if (counter_arg != 0 && counter_arg != current)
      return refuse("stale counter epoch");
    current += 1;
    reply_counter = current;
    obs::metrics().add("store.counter.advances");
  } else {
    return refuse("unknown verb");
  }
  audit_.push_back(
      CounterAuditEntry{verb, verdict.mrenclave, current, ctx.now()});
  obs::instant(ctx, "store.counter.granted", "store",
               {{"verb", verb}, {"counter", reply_counter}});

  ctx.work(sim::default_cost_model().dh_keygen_ns +
           sim::default_cost_model().dh_shared_ns);
  crypto::DhKeyPair kp = crypto::dh_generate(rng_);
  auto shared =
      crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_e));
  if (!shared.ok()) return refuse("degenerate DH value");
  Bytes session = crypto::hkdf(to_bytes("ctr-channel"), *shared, dh_pub_e, 32);
  Bytes dh_pub_s = kp.pub.to_bytes_padded(128);
  Bytes enc_key =
      key.empty() ? Bytes{}
                  : crypto::seal(crypto::CipherAlg::kChaCha20, session, key);

  // Sign the whole transcript. dh_pub_e is fresh per request, so the
  // signature doubles as the anti-replay binding: a recorded CTRGRANT for an
  // old counter value verifies against no other request.
  Writer transcript;
  transcript.str("ctr-reply");
  transcript.str(verb);
  transcript.u64(reply_counter);
  transcript.bytes(dh_pub_e);
  transcript.bytes(dh_pub_s);
  transcript.bytes(enc_key);
  ctx.work(sim::default_cost_model().sig_sign_ns);
  Bytes sig = crypto::sig_sign(sig_.sk, transcript.data(), rng_);

  Writer w;
  w.str("CTRGRANT");
  w.u64(reply_counter);
  w.bytes(dh_pub_s);
  w.bytes(enc_key);
  w.bytes(sig);
  end.send(ctx, w.take());
}

}  // namespace mig::store
