#include "store/counter_service.h"

#include "crypto/aead.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serde.h"

namespace mig::store {

// ------------------------------------------------------------- CounterCore

Bytes CounterCore::key_for(ByteSpan mrenclave, uint64_t counter) const {
  Writer info;
  info.raw(mrenclave);
  info.u64(counter);
  return crypto::hkdf(to_bytes("store-counter"), kroot_, info.data(), 32);
}

uint64_t CounterCore::counter(ByteSpan mrenclave) const {
  auto it = counters_.find(Bytes(mrenclave.begin(), mrenclave.end()));
  return it == counters_.end() ? 1 : it->second;
}

CounterCore::Outcome CounterCore::peek(std::string_view verb,
                                       uint64_t counter_arg,
                                       ByteSpan mrenclave) const {
  Outcome out;
  uint64_t current = counter(mrenclave);
  if (verb == "SEALGRANT") {
    out.granted = true;
    out.counter = current;
  } else if (verb == "OPENGRANT") {
    if (counter_arg != current) {
      out.refusal = "stale snapshot counter";
      return out;
    }
    out.granted = true;
    out.counter = current + 1;
    out.mutating = true;
  } else if (verb == "ADVANCE") {
    if (counter_arg != 0 && counter_arg != current) {
      out.refusal = "stale counter epoch";
      return out;
    }
    out.granted = true;
    out.counter = current + 1;
    out.mutating = true;
  } else {
    out.refusal = "unknown verb";
  }
  return out;
}

CounterCore::Outcome CounterCore::apply(std::string_view verb,
                                        uint64_t counter_arg,
                                        ByteSpan mrenclave) {
  Outcome out;
  Bytes id(mrenclave.begin(), mrenclave.end());
  auto [it, created] = counters_.try_emplace(std::move(id), 1);
  uint64_t& current = it->second;
  if (verb == "SEALGRANT") {
    // Key for the current value; the counter does not move. The reply also
    // tells a stale fork that the world moved on (it compares against its
    // in-enclave epoch and self-destroys).
    out.granted = true;
    out.counter = current;
    out.key = key_for(it->first, current);
  } else if (verb == "OPENGRANT") {
    if (counter_arg != current) {
      out.refusal = "stale snapshot counter";
      return out;
    }
    // The restore consumes the epoch: key for c, counter moves to c+1, and
    // the restored instance records c+1 as its epoch.
    out.key = key_for(it->first, current);
    current += 1;
    out.granted = true;
    out.counter = current;
    out.mutating = true;
  } else if (verb == "ADVANCE") {
    if (counter_arg != 0 && counter_arg != current) {
      out.refusal = "stale counter epoch";
      return out;
    }
    current += 1;
    out.granted = true;
    out.counter = current;
    out.mutating = true;
  } else {
    out.refusal = "unknown verb";
  }
  return out;
}

// ---------------------------------------------------------- CounterService

CounterService::CounterService(sgx::AttestationService& ias, crypto::Drbg rng)
    : ias_(&ias), rng_(std::move(rng)) {
  crypto::Drbg sig_rng = rng_.fork(to_bytes("ctr-sig"));
  sig_ = crypto::sig_keygen(sig_rng);
  core_ = CounterCore(rng_.fork(to_bytes("ctr-root")).generate(32));
}

uint64_t CounterService::counter(const crypto::Digest& mrenclave) const {
  return core_.counter(ByteSpan(mrenclave));
}

void CounterService::serve_one(sim::ThreadCtx& ctx, sim::Channel::End end) {
  // Bounded wait: helper threads serving an enclave that refuses its store
  // command in-enclave (self-destroyed fence, rejected envelope) never see a
  // request at all — they must retire instead of parking forever.
  std::optional<Bytes> request_in = end.recv_timeout(ctx, kServeTimeoutNs);
  if (!request_in.has_value()) return;
  Bytes request = std::move(*request_in);
  if (!available_) {
    // Outage model: the request is lost, no reply ever comes. The enclave's
    // channel timeout makes the store operation fail closed.
    obs::instant(ctx, "store.counter.dropped", "store");
    obs::flight(ctx, "store.counter", "dropped",
                "service unavailable; request swallowed");
    return;
  }
  // Acquire the serve token: one request at a time end to end, the way a
  // real HSM-backed counter box behaves. Taken only once a request is
  // actually in hand, so idle helper threads never hold the box.
  if (!idle_) idle_ = std::make_unique<sim::Event>(ctx.executor());
  uint64_t queued_at = ctx.now();
  while (busy_) {
    idle_->reset();
    idle_->wait(ctx);
  }
  busy_ = true;
  queue_wait_ns_ += ctx.now() - queued_at;
  obs::metrics().set_gauge("store.counter.queue_wait_ns", queue_wait_ns_);
  // Token held for the rest of the serve, including the error exits.
  struct TokenRelease {
    CounterService* s;
    sim::ThreadCtx* ctx;
    ~TokenRelease() {
      s->busy_ = false;
      s->idle_->set(*ctx);
    }
  } release{this, &ctx};

  obs::Span<sim::ThreadCtx> span(ctx, "store.counter.serve", "store");
  obs::metrics().add("store.counter.requests");
  Reader r(request);
  std::string verb = r.str();
  uint64_t counter_arg = r.u64();
  Bytes dh_pub_e = r.bytes();
  Bytes quote_wire = r.bytes();
  auto refuse = [&](std::string why) {
    obs::instant(ctx, "store.counter.refused", "store", {{"why", why}});
    obs::metrics().add("store.counter.refusals");
    obs::flight(ctx, "store.counter", "refused", why);
    Writer w;
    w.str("REFUSED:" + why);
    w.u64(0);
    w.bytes({});
    w.bytes({});
    w.bytes({});
    end.send(ctx, w.take());
  };
  if (!r.finish().ok()) return refuse("malformed");

  auto quote = sgx::Quote::deserialize(quote_wire);
  if (!quote.ok()) return refuse("bad quote");
  ctx.sleep(2 * sim::default_cost_model().wan_latency_ns);
  sgx::AttestationVerdict verdict =
      ias_->verify(ctx, *quote, rng_.generate(16));
  if (!verdict.ok) return refuse("attestation failed");
  crypto::Digest bind = crypto::Sha256::hash(dh_pub_e);
  if (!crypto::ct_equal(ByteSpan(verdict.report_data), ByteSpan(bind)))
    return refuse("quote does not bind DH value");

  CounterCore::Outcome out =
      core_.apply(verb, counter_arg, ByteSpan(verdict.mrenclave));
  if (!out.granted) return refuse(out.refusal);
  if (verb == "ADVANCE") {
    obs::metrics().add("store.counter.advances");
  } else {
    obs::metrics().add("store.counter.grants");
  }
  uint64_t reply_counter = out.counter;
  audit_.push_back(
      CounterAuditEntry{verb, verdict.mrenclave, out.counter, ctx.now()});
  obs::instant(ctx, "store.counter.granted", "store",
               {{"verb", verb}, {"counter", reply_counter}});

  ctx.work(sim::default_cost_model().dh_keygen_ns +
           sim::default_cost_model().dh_shared_ns);
  crypto::DhKeyPair kp = crypto::dh_generate(rng_);
  auto shared =
      crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_e));
  if (!shared.ok()) return refuse("degenerate DH value");
  Bytes session = crypto::hkdf(to_bytes("ctr-channel"), *shared, dh_pub_e, 32);
  Bytes dh_pub_s = kp.pub.to_bytes_padded(128);
  Bytes enc_key =
      out.key.empty()
          ? Bytes{}
          : crypto::seal(crypto::CipherAlg::kChaCha20, session, out.key);

  // Sign the whole transcript. dh_pub_e is fresh per request, so the
  // signature doubles as the anti-replay binding: a recorded CTRGRANT for an
  // old counter value verifies against no other request.
  Writer transcript;
  transcript.str("ctr-reply");
  transcript.str(verb);
  transcript.u64(reply_counter);
  transcript.bytes(dh_pub_e);
  transcript.bytes(dh_pub_s);
  transcript.bytes(enc_key);
  ctx.work(sim::default_cost_model().sig_sign_ns);
  Bytes sig = crypto::sig_sign(sig_.sk, transcript.data(), rng_);

  Writer w;
  w.str("CTRGRANT");
  w.u64(reply_counter);
  w.bytes(dh_pub_s);
  w.bytes(enc_key);
  w.bytes(sig);
  end.send(ctx, w.take());
}

}  // namespace mig::store
