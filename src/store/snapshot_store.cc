#include "store/snapshot_store.h"

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mig::store {

namespace {
Bytes content_id(ByteSpan blob) {
  crypto::Digest d = crypto::Sha256::hash(blob);
  return Bytes(d.begin(), d.end());
}
}  // namespace

Result<Bytes> SealedSnapshotStore::put(sim::ThreadCtx& ctx, ByteSpan blob) {
  if (!available_)
    return Error(ErrorCode::kUnavailable, "snapshot store unavailable");
  obs::Span<sim::ThreadCtx> span(ctx, "store.put", "store",
                                 {{"bytes", blob.size()}});
  ctx.work(cost_->disk_seek_ns);
  if (torn_next_put_) {
    // Crash mid-write: some bytes hit the platter, the commit never did.
    // Nothing becomes visible (hash-then-publish), the caller sees an error.
    torn_next_put_ = false;
    torn_writes_ += 1;
    ctx.work(sim::per_byte_x100(cost_->disk_write_ns_per_byte_x100,
                                blob.size() / 2));
    obs::instant(ctx, "store.torn_write", "store", {{"bytes", blob.size()}});
    obs::metrics().add("store.torn_writes");
    return Error(ErrorCode::kUnavailable,
                 "torn write: snapshot object not committed");
  }
  ctx.work(sim::per_byte_x100(cost_->disk_write_ns_per_byte_x100,
                              blob.size()) +
           cost_->disk_sync_ns);
  Bytes id = content_id(blob);
  objects_[id] = Bytes(blob.begin(), blob.end());
  obs::metrics().add("store.puts");
  obs::metrics().add("store.bytes_written", blob.size());
  obs::metrics().set_gauge("store.objects", objects_.size());
  obs::metrics().observe("store.blob_bytes", blob.size());
  return id;
}

Result<Bytes> SealedSnapshotStore::get(sim::ThreadCtx& ctx, ByteSpan id) {
  if (!available_)
    return Error(ErrorCode::kUnavailable, "snapshot store unavailable");
  obs::Span<sim::ThreadCtx> span(ctx, "store.get", "store");
  ctx.work(cost_->disk_seek_ns);
  auto it = objects_.find(Bytes(id.begin(), id.end()));
  if (it == objects_.end())
    return Error(ErrorCode::kNotFound, "no snapshot object with that id");
  ctx.work(sim::per_byte_x100(cost_->disk_read_ns_per_byte_x100,
                              it->second.size()));
  obs::metrics().add("store.gets");
  obs::metrics().add("store.bytes_read", it->second.size());
  return it->second;
}

Status SealedSnapshotStore::set_head(sim::ThreadCtx& ctx, ByteSpan mrenclave,
                                     ByteSpan id) {
  if (!available_)
    return Error(ErrorCode::kUnavailable, "snapshot store unavailable");
  if (!contains(id))
    return Error(ErrorCode::kFailedPrecondition,
                 "head must point at a committed object");
  ctx.work(cost_->disk_sync_ns);
  heads_[Bytes(mrenclave.begin(), mrenclave.end())].push_back(
      Bytes(id.begin(), id.end()));
  return OkStatus();
}

Result<Bytes> SealedSnapshotStore::head(sim::ThreadCtx& ctx,
                                        ByteSpan mrenclave) {
  if (!available_)
    return Error(ErrorCode::kUnavailable, "snapshot store unavailable");
  ctx.work(cost_->disk_seek_ns);
  auto it = heads_.find(Bytes(mrenclave.begin(), mrenclave.end()));
  if (it == heads_.end() || it->second.empty())
    return Error(ErrorCode::kNotFound, "no snapshot head for this identity");
  const std::vector<Bytes>& history = it->second;
  if (stale_next_head_ && history.size() >= 2) {
    // Lagging replica: hand out the previous head once. Harmless for
    // freshness — the counter check rejects it at open time.
    stale_next_head_ = false;
    obs::instant(ctx, "store.stale_head", "store");
    return history[history.size() - 2];
  }
  stale_next_head_ = false;
  return history.back();
}

bool SealedSnapshotStore::contains(ByteSpan id) const {
  return objects_.find(Bytes(id.begin(), id.end())) != objects_.end();
}

}  // namespace mig::store
