// Content-addressed persistent store for sealed snapshot envelopes.
//
// The store models the untrusted cloud's durable disk/object storage: it
// survives enclave crashes, machine failures, and VM teardowns, and it is
// completely outside the TCB — everything it holds is a sealed envelope
// (sdk::SnapshotEnvelope) whose confidentiality/integrity come from the
// counter-service sealing key, and whose freshness comes from the counter
// binding. The store itself only provides availability, and the fault knobs
// below model exactly the ways a disk withdraws it:
//
//   * torn write   — a crash mid-put; the object never becomes visible
//                    (puts are atomic: hash-then-publish, like a rename).
//   * stale head   — the head pointer read returns the previous snapshot id
//                    once (a lagging replica). Rollback protection does NOT
//                    come from the store getting this right — the counter
//                    check rejects the stale snapshot at open time.
//   * unavailable  — the store refuses everything (outage).
//
// Objects are keyed by SHA-256 of their content, so a put is idempotent and
// an id fetched from anywhere can be integrity-checked by rehashing. The
// per-identity "head" pointer tracks the latest snapshot for crash recovery
// (a recovering host knows only the identity, not the last id).
//
// Costs are charged against the sim cost model's disk section (seek + per-
// byte transfer + sync), so benches can sweep snapshot sizes meaningfully.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "sim/cost_model.h"
#include "sim/executor.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mig::store {

class SealedSnapshotStore {
 public:
  explicit SealedSnapshotStore(
      const sim::CostModel& cost = sim::default_cost_model())
      : cost_(&cost) {}

  // Durably writes `blob`, returning its content id (SHA-256). Atomic: a
  // torn write publishes nothing and returns an error.
  Result<Bytes> put(sim::ThreadCtx& ctx, ByteSpan blob);
  Result<Bytes> get(sim::ThreadCtx& ctx, ByteSpan id);

  // Head pointer per enclave identity (mrenclave bytes), flipped atomically
  // after a successful put. head() returns the current id.
  Status set_head(sim::ThreadCtx& ctx, ByteSpan mrenclave, ByteSpan id);
  Result<Bytes> head(sim::ThreadCtx& ctx, ByteSpan mrenclave);

  // ---- deterministic fault knobs ----
  void fail_next_put_torn() { torn_next_put_ = true; }
  void serve_stale_head_once() { stale_next_head_ = true; }
  void set_available(bool available) { available_ = available; }

  // ---- introspection (tests + benches) ----
  size_t object_count() const { return objects_.size(); }
  bool contains(ByteSpan id) const;
  uint64_t torn_writes() const { return torn_writes_; }

 private:
  const sim::CostModel* cost_;
  std::map<Bytes, Bytes> objects_;  // content id -> sealed envelope
  // Head history per identity; back() is current. History (not just the
  // latest) so the stale-read fault can serve the genuinely previous head.
  std::map<Bytes, std::vector<Bytes>> heads_;
  bool torn_next_put_ = false;
  bool stale_next_head_ = false;
  bool available_ = true;
  uint64_t torn_writes_ = 0;
};

}  // namespace mig::store
