// Simulated trusted monotonic-counter service (the rollback defense of
// Alder et al., "Migrating SGX Enclaves with Persistent State", and of the
// paper's §V-C audit discussion, generalized to an *at-most-one-live-lease*
// invariant).
//
// The service keeps one monotonic counter per enclave identity (MRENCLAVE)
// and derives the snapshot sealing key from (identity, counter value), so a
// sealed snapshot is cryptographically bound to the counter value current at
// seal time. The protocol verbs:
//
//   SEALGRANT       — return the current counter c and the sealing key for
//                     c. Does NOT advance. The enclave fences itself: if its
//                     in-enclave epoch (sdk::kOffCounterEpoch) is non-zero
//                     and != c, another instance advanced past it — it is a
//                     stale fork and self-destroys.
//   OPENGRANT c     — grant the key for c iff c is still current, then
//                     advance to c+1 (the restore CONSUMES the epoch: the
//                     same snapshot can never be opened twice, and every
//                     older snapshot is dead). The reply carries c+1, the
//                     epoch the restored instance records.
//   ADVANCE e       — advance the counter iff e is current (or 0 = never
//                     sealed). Posted after a committed live migration to
//                     invalidate every pre-migration snapshot. A refusal
//                     means the caller lost the lease and must self-destroy.
//
// Requests are attestation-gated exactly like the owner protocol: the quote
// must bind SHA-256 of the requester's fresh DH public value. Replies are
// Schnorr-signed over the full transcript (including that fresh DH value, so
// a reply cannot be replayed) with a service key whose public half is baked
// into the enclave image as config blob 3 — a man-in-the-middle operator can
// drop messages (availability) but cannot forge a grant or an advance
// acknowledgement.
//
// Like EnclaveOwner, this runs far away from the untrusted cloud; the WAN
// round trip is charged on the enclave side (wan_round_trip) and the IAS
// round trip here.
//
// Two implementations exist behind the CounterBackend interface: this
// single-signer service, and the 2f+1-replica quorum service in
// src/quorum/quorum.h (attested membership, f+1 matching Schnorr-signed
// replies, per-replica Merkle audit logs). The verb semantics — shared via
// CounterCore — are identical; only the trust/availability model differs.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sgx/attestation.h"
#include "sim/network.h"

namespace mig::store {

struct CounterAuditEntry {
  std::string verb;  // "SEALGRANT" | "OPENGRANT" | "ADVANCE"
  crypto::Digest mrenclave{};
  uint64_t counter = 0;  // the counter value after serving the request
  uint64_t at_ns = 0;
};

// Anything that can answer one SEALGRANT/OPENGRANT/ADVANCE request arriving
// on a channel end. The migration/fleet layers hold a CounterBackend* and
// never care whether one signer or a replica quorum stands behind it.
class CounterBackend {
 public:
  virtual ~CounterBackend() = default;

  // Serves at most one request arriving on `end`. Runs on the caller's
  // thread; typically spawned as a helper sim thread concurrently with the
  // enclave's mailbox command. When the backend cannot grant (unavailable,
  // quorum unreachable) the request is swallowed without a reply — the
  // enclave's channel timeout fires and the operation fails closed. When no
  // request arrives within the serve timeout (the enclave refused its store
  // command before contacting us), the call returns without serving.
  virtual void serve_one(sim::ThreadCtx& ctx, sim::Channel::End end) = 0;

  // How long serve_one waits (virtual time) for a request to arrive.
  static constexpr uint64_t kServeTimeoutNs = 60'000'000'000;  // 60 s
};

// The verb state machine all counter backends share: per-identity monotonic
// counters plus the (identity, counter)-bound sealing-key schedule. Pure
// state — no network, no crypto handshake — so a quorum replica and the
// single-signer service cannot drift in semantics.
class CounterCore {
 public:
  CounterCore() = default;
  explicit CounterCore(Bytes kroot) : kroot_(std::move(kroot)) {}

  struct Outcome {
    bool granted = false;
    std::string refusal;   // why, when !granted (wire: "REFUSED:" + refusal)
    uint64_t counter = 0;  // counter value after the op (the reply counter)
    Bytes key;             // sealing key; empty for ADVANCE
    bool mutating = false; // the op advanced the counter
  };

  // Validity check without mutation — the quorum PREPARE phase. Reports the
  // counter value the op *would* reply with.
  Outcome peek(std::string_view verb, uint64_t counter_arg,
               ByteSpan mrenclave) const;

  // Applies the op (first contact creates the identity's counter at 1).
  Outcome apply(std::string_view verb, uint64_t counter_arg,
                ByteSpan mrenclave);

  // Current counter for an identity (1 if it never contacted this core).
  uint64_t counter(ByteSpan mrenclave) const;

  // Sealing key bound to (identity, counter value).
  Bytes key_for(ByteSpan mrenclave, uint64_t counter) const;

 private:
  Bytes kroot_;  // root secret for per-(identity, counter) keys
  // Counters keyed by mrenclave bytes. Any attested enclave gets a slot
  // starting at 1 — no enrollment step, identity is the quote.
  std::map<Bytes, uint64_t> counters_;
};

class CounterService final : public CounterBackend {
 public:
  CounterService(sgx::AttestationService& ias, crypto::Drbg rng);

  // The verification key enclaves need at build time (config blob 3).
  const crypto::BigNum& public_key() const { return sig_.pk; }

  void serve_one(sim::ThreadCtx& ctx, sim::Channel::End end) override;

  // Fault knob: an unreachable counter service (network partition, outage).
  void set_available(bool available) { available_ = available; }

  // Current counter for an identity (1 if it never contacted the service).
  uint64_t counter(const crypto::Digest& mrenclave) const;

  const std::vector<CounterAuditEntry>& audit_log() const { return audit_; }

  // Total virtual time requests spent queued behind the serve token (below).
  // The fleet bench reads this to show the single-signer choke point.
  uint64_t queue_wait_ns() const { return queue_wait_ns_; }

 private:
  sgx::AttestationService* ias_;
  crypto::Drbg rng_;
  crypto::SigKeyPair sig_;  // reply-signing key; pk is config blob 3
  CounterCore core_;
  std::vector<CounterAuditEntry> audit_;
  bool available_ = true;
  // Whole-serve serialization token. A real monotonic-counter box (TPM NV
  // index, HSM) processes one request at a time: the NV write and the reply
  // signature serialize. Concurrent fleet traffic therefore queues here,
  // which is exactly the choke point the quorum backend removes.
  bool busy_ = false;
  std::unique_ptr<sim::Event> idle_;  // lazily bound to the executor
  uint64_t queue_wait_ns_ = 0;
};

}  // namespace mig::store
