// Simulated trusted monotonic-counter service (the rollback defense of
// Alder et al., "Migrating SGX Enclaves with Persistent State", and of the
// paper's §V-C audit discussion, generalized to an *at-most-one-live-lease*
// invariant).
//
// The service keeps one monotonic counter per enclave identity (MRENCLAVE)
// and derives the snapshot sealing key from (identity, counter value), so a
// sealed snapshot is cryptographically bound to the counter value current at
// seal time. The protocol verbs:
//
//   SEALGRANT       — return the current counter c and the sealing key for
//                     c. Does NOT advance. The enclave fences itself: if its
//                     in-enclave epoch (sdk::kOffCounterEpoch) is non-zero
//                     and != c, another instance advanced past it — it is a
//                     stale fork and self-destroys.
//   OPENGRANT c     — grant the key for c iff c is still current, then
//                     advance to c+1 (the restore CONSUMES the epoch: the
//                     same snapshot can never be opened twice, and every
//                     older snapshot is dead). The reply carries c+1, the
//                     epoch the restored instance records.
//   ADVANCE e       — advance the counter iff e is current (or 0 = never
//                     sealed). Posted after a committed live migration to
//                     invalidate every pre-migration snapshot. A refusal
//                     means the caller lost the lease and must self-destroy.
//
// Requests are attestation-gated exactly like the owner protocol: the quote
// must bind SHA-256 of the requester's fresh DH public value. Replies are
// Schnorr-signed over the full transcript (including that fresh DH value, so
// a reply cannot be replayed) with a service key whose public half is baked
// into the enclave image as config blob 3 — a man-in-the-middle operator can
// drop messages (availability) but cannot forge a grant or an advance
// acknowledgement.
//
// Like EnclaveOwner, this runs far away from the untrusted cloud; the WAN
// round trip is charged on the enclave side (wan_round_trip) and the IAS
// round trip here.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sgx/attestation.h"
#include "sim/network.h"

namespace mig::store {

struct CounterAuditEntry {
  std::string verb;  // "SEALGRANT" | "OPENGRANT" | "ADVANCE"
  crypto::Digest mrenclave{};
  uint64_t counter = 0;  // the counter value after serving the request
  uint64_t at_ns = 0;
};

class CounterService {
 public:
  CounterService(sgx::AttestationService& ias, crypto::Drbg rng);

  // The verification key enclaves need at build time (config blob 3).
  const crypto::BigNum& public_key() const { return sig_.pk; }

  // Serves at most one request arriving on `end`. Runs on the caller's
  // thread; typically spawned as a helper sim thread concurrently with the
  // enclave's mailbox command. When the service is unavailable the request
  // is swallowed without a reply — the enclave's channel timeout fires and
  // the operation fails closed. When no request arrives within the serve
  // timeout (the enclave refused its store command before contacting us),
  // the call returns without serving.
  void serve_one(sim::ThreadCtx& ctx, sim::Channel::End end);

  // How long serve_one waits (virtual time) for a request to arrive.
  static constexpr uint64_t kServeTimeoutNs = 60'000'000'000;  // 60 s

  // Fault knob: an unreachable counter service (network partition, outage).
  void set_available(bool available) { available_ = available; }

  // Current counter for an identity (1 if it never contacted the service).
  uint64_t counter(const crypto::Digest& mrenclave) const;

  const std::vector<CounterAuditEntry>& audit_log() const { return audit_; }

 private:
  // Sealing key bound to (identity, counter value).
  Bytes key_for(ByteSpan mrenclave, uint64_t counter);

  sgx::AttestationService* ias_;
  crypto::Drbg rng_;
  crypto::SigKeyPair sig_;  // reply-signing key; pk is config blob 3
  Bytes kroot_;             // root secret for per-(identity, counter) keys
  // Counters keyed by mrenclave bytes. Any attested enclave gets a slot
  // starting at 1 — no enrollment step, identity is the quote.
  std::map<Bytes, uint64_t> counters_;
  std::vector<CounterAuditEntry> audit_;
  bool available_ = true;
};

}  // namespace mig::store
