// Authenticated checkpoint sealing.
//
// The paper (§IV): "the source control thread first calculates a hash value
// of the checkpoint and then uses a randomly generated migration key to
// encrypt the data together with the hash value." We reproduce exactly that
// (inner SHA-256 under the cipher) and additionally apply encrypt-then-MAC
// (outer HMAC) so truncation/tampering is detected without decrypt-and-guess.
// The cipher is selectable because the paper benchmarks RC4, DES and
// AES-NI-accelerated AES-CBC as checkpoint ciphers.
#pragma once

#include <cstdint>
#include <map>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mig::crypto {

enum class CipherAlg : uint8_t {
  kRc4 = 1,
  kDesCbc = 2,
  kAes128Cbc = 3,   // software AES timing
  kAes128CbcNi = 4, // same bytes on the wire; AES-NI cost model
  kChaCha20 = 5,
};

const char* cipher_name(CipherAlg alg);

// Virtual-time cost (ns) of sealing/opening `bytes` with `alg`, per the cost
// model. Kept next to the ciphers so the figure benches and the migration
// path charge identical prices.
uint64_t cipher_cost_ns(CipherAlg alg, size_t bytes);

// Seals `plaintext` under a 32-byte master key. Layout:
//   u8 alg | u32 len | cipher( plaintext || sha256(plaintext) ) | hmac-tag(32)
Bytes seal(CipherAlg alg, ByteSpan key32, ByteSpan plaintext);

// Verifies and decrypts. Any bit flip anywhere => kIntegrityViolation.
Result<Bytes> open(ByteSpan key32, ByteSpan sealed);

// ---------------------------------------------------------------------------
// Chunked sealing — the pipelined checkpoint data path.
//
// The pipeline splits the serialized enclave state into fixed-size chunks so
// N sealing workers can encrypt in parallel while the wire already carries
// earlier chunks. Each chunk is sealed under its own subkey derived from the
// session key (Kmigrate) and the chunk index; because the block/stream
// ciphers above run with a fixed IV, the derived per-chunk key is what plays
// the role of the AEAD nonce — two chunks must never share one. A
// ChunkSealer therefore refuses to seal the same index twice within a
// session, and folds every per-chunk MAC into a single keyed integrity root
// so the whole checkpoint still stands or falls as one unit: a partial chunk
// set can never be accepted, which preserves the self-destroy/commit-point
// semantics of the migration protocol.

// Per-chunk sealing subkey: HKDF("mig-chunk", key32, le64(index)) -> 32 bytes.
Bytes chunk_key(ByteSpan key32, uint64_t index);

class ChunkSealer {
 public:
  ChunkSealer(CipherAlg alg, ByteSpan key32);

  // Seals one chunk under its index-derived subkey. Rejects
  // (kInvalidArgument) an index that was already sealed in this session:
  // reusing a per-chunk key would repeat the keystream.
  Result<Bytes> seal_chunk(uint64_t index, ByteSpan plaintext);

  // Keyed MAC over (count || mac_0 || ... || mac_{n-1}). Requires the sealed
  // indices to be exactly 0..n-1 — a gap means a dropped chunk.
  Result<Bytes> integrity_root() const;

  uint64_t chunks_sealed() const { return macs_.size(); }

 private:
  CipherAlg alg_;
  Bytes key_;
  std::map<uint64_t, Digest> macs_;  // chunk index -> outer MAC tag
};

// ---------------------------------------------------------------------------
// Incremental (delta) checkpointing — the wire-format-v3 key schedule.
//
// Every shipped page is sealed under a subkey bound to (page index, version):
// a stale delta record replayed later re-uses neither key nor chain position,
// so the target can never be tricked into resurrecting old page content. All
// records — including zero-elided and dedup references, which carry no
// ciphertext of their own — are folded into one keyed running chain (the
// delta analogue of the chunk integrity root above): the chain value closing
// each segment commits to every record and segment before it, so reorder,
// truncation, replay and cross-migration splices all surface as a single
// mismatch at apply time.

// Per-page sealing subkey:
//   HKDF("mig-delta", key32, le64(page_index) || le64(version)) -> 32 bytes.
Bytes delta_page_key(ByteSpan key32, uint64_t page_index, uint64_t version);

// Key for the record chain, and the subkey sealing the final segment's
// thread-context trailer.
Bytes delta_root_key(ByteSpan key32);
Bytes delta_final_key(ByteSpan key32);

// Chain key for the wire-v4 remote-page protocol, bound to the counter epoch
// the migration commits to (source epoch + 1): a retained pre-migration
// source derives a different key and every reply it signs is refused.
//   HKDF("mig-postcopy", key32, le64(epoch)) -> 32 bytes.
Bytes postcopy_root_key(ByteSpan key32, uint64_t epoch);

// One chain step per record:
//   HMAC(root_key, prev || seg || page || version || kind || content_hash).
// `prev32` is the previous chain value (all-zero at session start).
Digest delta_chain_record(ByteSpan root_key, ByteSpan prev32, uint64_t segment,
                          uint64_t page_index, uint64_t version, uint8_t kind,
                          const Digest& content_hash);

// Segment close step (also commits the final trailer's hash):
//   HMAC(root_key, prev || "close" || seg || count || final || trailer_hash).
Digest delta_chain_close(ByteSpan root_key, ByteSpan prev32, uint64_t segment,
                         uint64_t record_count, bool final_segment,
                         const Digest& trailer_hash);

class ChunkOpener {
 public:
  explicit ChunkOpener(ByteSpan key32);

  // Verifies and decrypts one chunk. Rejects (kInvalidArgument) a duplicate
  // index — replaying a chunk within a session.
  Result<Bytes> open_chunk(uint64_t index, ByteSpan sealed);

  // Recomputes the integrity root over every chunk opened so far and
  // compares against `root`. Fails unless exactly `count` chunks with
  // indices 0..count-1 were opened — truncation, reordering and chunk
  // substitution all surface here.
  Status verify_root(uint64_t count, ByteSpan root) const;

  uint64_t chunks_opened() const { return macs_.size(); }

 private:
  Bytes key_;
  std::map<uint64_t, Digest> macs_;
};

}  // namespace mig::crypto
