// Authenticated checkpoint sealing.
//
// The paper (§IV): "the source control thread first calculates a hash value
// of the checkpoint and then uses a randomly generated migration key to
// encrypt the data together with the hash value." We reproduce exactly that
// (inner SHA-256 under the cipher) and additionally apply encrypt-then-MAC
// (outer HMAC) so truncation/tampering is detected without decrypt-and-guess.
// The cipher is selectable because the paper benchmarks RC4, DES and
// AES-NI-accelerated AES-CBC as checkpoint ciphers.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace mig::crypto {

enum class CipherAlg : uint8_t {
  kRc4 = 1,
  kDesCbc = 2,
  kAes128Cbc = 3,   // software AES timing
  kAes128CbcNi = 4, // same bytes on the wire; AES-NI cost model
  kChaCha20 = 5,
};

const char* cipher_name(CipherAlg alg);

// Virtual-time cost (ns) of sealing/opening `bytes` with `alg`, per the cost
// model. Kept next to the ciphers so the figure benches and the migration
// path charge identical prices.
uint64_t cipher_cost_ns(CipherAlg alg, size_t bytes);

// Seals `plaintext` under a 32-byte master key. Layout:
//   u8 alg | u32 len | cipher( plaintext || sha256(plaintext) ) | hmac-tag(32)
Bytes seal(CipherAlg alg, ByteSpan key32, ByteSpan plaintext);

// Verifies and decrypts. Any bit flip anywhere => kIntegrityViolation.
Result<Bytes> open(ByteSpan key32, ByteSpan sealed);

}  // namespace mig::crypto
