// Deterministic random bit generator (HMAC-chain construction, in the spirit
// of HMAC_DRBG). Every "random" value in the model — Kmigrate, DH exponents,
// Schnorr nonces, per-CPU hardware keys — comes from a Drbg whose seed is
// controlled by the test/bench, keeping the whole simulation reproducible.
#pragma once

#include "crypto/hmac.h"
#include "util/bytes.h"

namespace mig::crypto {

class Drbg {
 public:
  explicit Drbg(ByteSpan seed) {
    Digest d = hmac_sha256(to_bytes("mig-drbg-init"), seed);
    state_.assign(d.begin(), d.end());
  }

  Bytes generate(size_t n) {
    Bytes out;
    while (out.size() < n) {
      Digest block = hmac_sha256(state_, to_bytes("out"));
      Digest next = hmac_sha256(state_, to_bytes("next"));
      state_.assign(next.begin(), next.end());
      out.insert(out.end(), block.begin(), block.end());
    }
    out.resize(n);
    return out;
  }

  uint64_t generate_u64() {
    Bytes b = generate(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{b[i]} << (8 * i);
    return v;
  }

  // Derives an independent child generator (e.g. one per enclave).
  Drbg fork(ByteSpan label) {
    Bytes seed = state_;
    append(seed, label);
    Digest next = hmac_sha256(state_, to_bytes("fork"));
    state_.assign(next.begin(), next.end());
    return Drbg(seed);
  }

 private:
  Bytes state_;
};

}  // namespace mig::crypto
