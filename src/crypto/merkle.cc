#include "crypto/merkle.h"

namespace mig::crypto {

namespace {

// Largest power of two strictly less than n (n >= 2).
uint64_t split_point(uint64_t n) {
  uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

// RFC 6962 merkle tree hash over leaves[lo, hi).
Digest subtree_root(const std::vector<Digest>& leaves, uint64_t lo,
                    uint64_t hi) {
  if (hi - lo == 1) return leaves[lo];
  uint64_t k = split_point(hi - lo);
  return merkle_node_hash(subtree_root(leaves, lo, lo + k),
                          subtree_root(leaves, lo + k, hi));
}

// Audit path for leaves[index] within leaves[lo, hi), bottom-up.
void subtree_path(const std::vector<Digest>& leaves, uint64_t lo, uint64_t hi,
                  uint64_t index, std::vector<Digest>& out) {
  if (hi - lo == 1) return;
  uint64_t k = split_point(hi - lo);
  if (index < lo + k) {
    subtree_path(leaves, lo, lo + k, index, out);
    out.push_back(subtree_root(leaves, lo + k, hi));
  } else {
    subtree_path(leaves, lo + k, hi, index, out);
    out.push_back(subtree_root(leaves, lo, lo + k));
  }
}

}  // namespace

Digest merkle_leaf_hash(ByteSpan leaf) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.update(ByteSpan(&tag, 1));
  h.update(leaf);
  return h.finish();
}

Digest merkle_node_hash(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.update(ByteSpan(&tag, 1));
  h.update(ByteSpan(left));
  h.update(ByteSpan(right));
  return h.finish();
}

Digest MerkleTree::root() const {
  if (leaves_.empty()) return Digest{};
  return subtree_root(leaves_, 0, leaves_.size());
}

std::vector<Digest> MerkleTree::prove(uint64_t index) const {
  std::vector<Digest> out;
  if (index >= leaves_.size()) return out;
  subtree_path(leaves_, 0, leaves_.size(), index, out);
  return out;
}

bool merkle_verify_inclusion(const Digest& leaf_hash, uint64_t index,
                             uint64_t size, const std::vector<Digest>& proof,
                             const Digest& root) {
  if (size == 0 || index >= size) return false;
  // Walk the path bottom-up, mirroring subtree_path's shape over a virtual
  // [0, size) range: at each level the sibling consumed is the next proof
  // node. The recursion in prove() appends siblings inner-to-outer, so the
  // iterative reconstruction must consume them in the same order.
  Digest acc = leaf_hash;
  uint64_t lo = 0, hi = size;
  // Recompute the sequence of (left-or-right) turns top-down, then fold
  // bottom-up: record the split decisions first.
  std::vector<bool> leaf_is_left;  // per level, top-down
  while (hi - lo > 1) {
    uint64_t k = split_point(hi - lo);
    if (index < lo + k) {
      leaf_is_left.push_back(true);
      hi = lo + k;
    } else {
      leaf_is_left.push_back(false);
      lo += k;
    }
  }
  if (proof.size() != leaf_is_left.size()) return false;
  // proof[i] is the sibling at the i-th level counting from the leaf.
  for (size_t i = 0; i < proof.size(); ++i) {
    bool left = leaf_is_left[leaf_is_left.size() - 1 - i];
    acc = left ? merkle_node_hash(acc, proof[i])
               : merkle_node_hash(proof[i], acc);
  }
  return acc == root;
}

}  // namespace mig::crypto
