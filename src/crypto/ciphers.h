// Symmetric ciphers used by the reproduction.
//
// The paper's prototype evaluates several checkpoint ciphers: RC4 (default in
// Fig. 9(c), ~200 us for 20 KB), DES (~300 us), and AES-CBC with AES-NI for
// the memcached experiment (Fig. 11). The simulator's MEE uses ChaCha20.
// All are from-scratch implementations validated against published vectors;
// RC4/DES are reproduced for fidelity to the paper, not as a recommendation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace mig::crypto {

// ---- ChaCha20 (RFC 8439) --------------------------------------------------

// XORs the ChaCha20 keystream into `data` in place. Encryption == decryption.
void chacha20_xor(ByteSpan key32, ByteSpan nonce12, uint32_t counter,
                  MutByteSpan data);

// ---- RC4 -------------------------------------------------------------------

class Rc4 {
 public:
  explicit Rc4(ByteSpan key);
  void xor_stream(MutByteSpan data);

 private:
  uint8_t s_[256];
  uint8_t i_ = 0, j_ = 0;
};

inline Bytes rc4_apply(ByteSpan key, ByteSpan data) {
  Bytes out(data.begin(), data.end());
  Rc4(key).xor_stream(out);
  return out;
}

// ---- DES (FIPS 46-3), CBC mode ---------------------------------------------

class Des {
 public:
  explicit Des(ByteSpan key8);  // 8-byte key (parity bits ignored)
  void encrypt_block(const uint8_t in[8], uint8_t out[8]) const;
  void decrypt_block(const uint8_t in[8], uint8_t out[8]) const;

 private:
  std::array<uint64_t, 16> subkeys_;
};

// CBC with zero IV and PKCS#7-style padding (sufficient for the simulation;
// every checkpoint uses a fresh key so IV reuse is immaterial here).
Bytes des_cbc_encrypt(ByteSpan key8, ByteSpan plaintext);
Bytes des_cbc_decrypt(ByteSpan key8, ByteSpan ciphertext);

// ---- AES-128 (FIPS 197), CBC mode ------------------------------------------

class Aes128 {
 public:
  explicit Aes128(ByteSpan key16);
  void encrypt_block(const uint8_t in[16], uint8_t out[16]) const;
  void decrypt_block(const uint8_t in[16], uint8_t out[16]) const;

 private:
  std::array<std::array<uint8_t, 16>, 11> round_keys_;
};

Bytes aes128_cbc_encrypt(ByteSpan key16, ByteSpan iv16, ByteSpan plaintext);
Bytes aes128_cbc_decrypt(ByteSpan key16, ByteSpan iv16, ByteSpan ciphertext);

}  // namespace mig::crypto
