#include "crypto/bignum.h"

#include <algorithm>

#include "util/check.h"

namespace mig::crypto {

BigNum::BigNum(uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(ByteSpan be) {
  BigNum out;
  out.limbs_.assign((be.size() + 3) / 4, 0);
  for (size_t i = 0; i < be.size(); ++i) {
    size_t byte_index = be.size() - 1 - i;  // position from LSB
    out.limbs_[byte_index / 4] |= uint32_t{be[i]} << (8 * (byte_index % 4));
  }
  out.trim();
  return out;
}

BigNum BigNum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes(hex_decode(padded));
}

Bytes BigNum::to_bytes() const {
  if (limbs_.empty()) return {0};
  Bytes out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int b = 3; b >= 0; --b) out.push_back(static_cast<uint8_t>(limbs_[i] >> (8 * b)));
  }
  size_t first = 0;
  while (first + 1 < out.size() && out[first] == 0) ++first;
  return Bytes(out.begin() + first, out.end());
}

Bytes BigNum::to_bytes_padded(size_t len) const {
  Bytes raw = to_bytes();
  MIG_CHECK_MSG(raw.size() <= len, "value too large for padded width");
  Bytes out(len - raw.size(), 0);
  append(out, raw);
  return out;
}

size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigNum::cmp(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum operator+(const BigNum& a, const BigNum& b) {
  BigNum out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(s);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.trim();
  return out;
}

BigNum operator-(const BigNum& a, const BigNum& b) {
  MIG_CHECK_MSG(!(a < b), "BigNum subtraction underflow");
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t d = int64_t{a.limbs_[i]} - borrow -
                (i < b.limbs_.size() ? int64_t{b.limbs_[i]} : 0);
    if (d < 0) {
      d += int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(d);
  }
  out.trim();
  return out;
}

BigNum operator*(const BigNum& a, const BigNum& b) {
  if (a.is_zero() || b.is_zero()) return BigNum();
  BigNum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] +
                     uint64_t{a.limbs_[i]} * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<uint32_t>(carry);
  }
  out.trim();
  return out;
}

BigNum BigNum::shifted_left(size_t bits) const {
  if (is_zero()) return BigNum();
  size_t limb_shift = bits / 32, bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (32 - bit_shift);
  }
  out.trim();
  return out;
}

BigNum BigNum::shifted_right(size_t bits) const {
  size_t limb_shift = bits / 32, bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (32 - bit_shift);
  }
  out.trim();
  return out;
}

std::pair<BigNum, BigNum> BigNum::divmod(const BigNum& a, const BigNum& b) {
  MIG_CHECK_MSG(!b.is_zero(), "BigNum division by zero");
  if (a < b) return {BigNum(), a};
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    BigNum q;
    q.limbs_.resize(a.limbs_.size());
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / b.limbs_[0]);
      rem = cur % b.limbs_[0];
    }
    q.trim();
    return {q, BigNum(rem)};
  }
  // Knuth Algorithm D with 32-bit digits.
  size_t n = b.limbs_.size();
  size_t m = a.limbs_.size() - n;
  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (uint32_t top = b.limbs_.back(); !(top & 0x80000000u); top <<= 1) ++shift;
  BigNum u = a.shifted_left(shift);
  BigNum v = b.shifted_left(shift);
  u.limbs_.resize(a.limbs_.size() + 1, 0);  // u has m+n+1 digits
  v.limbs_.resize(n, 0);

  BigNum q;
  q.limbs_.assign(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat.
    uint64_t numerator = (uint64_t{u.limbs_[j + n]} << 32) | u.limbs_[j + n - 1];
    uint64_t q_hat = numerator / v.limbs_[n - 1];
    uint64_t r_hat = numerator % v.limbs_[n - 1];
    while (q_hat >= (uint64_t{1} << 32) ||
           (n >= 2 && q_hat * v.limbs_[n - 2] >
                          ((r_hat << 32) | u.limbs_[j + n - 2]))) {
      --q_hat;
      r_hat += v.limbs_[n - 1];
      if (r_hat >= (uint64_t{1} << 32)) break;
    }
    // D4: multiply and subtract.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = q_hat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = int64_t{u.limbs_[i + j]} - borrow - int64_t(p & 0xffffffffu);
      if (t < 0) {
        t += int64_t{1} << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = int64_t{u.limbs_[j + n]} - borrow - int64_t(carry);
    // D5/D6: if we subtracted too much, add back.
    if (t < 0) {
      t += int64_t{1} << 32;
      --q_hat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t s = uint64_t{u.limbs_[i + j]} + v.limbs_[i] + c;
        u.limbs_[i + j] = static_cast<uint32_t>(s);
        c = s >> 32;
      }
      t += static_cast<int64_t>(c);
      t &= 0xffffffff;
    }
    u.limbs_[j + n] = static_cast<uint32_t>(t);
    q.limbs_[j] = static_cast<uint32_t>(q_hat);
  }
  q.trim();
  u.limbs_.resize(n);
  u.trim();
  BigNum r = u.shifted_right(shift);
  return {q, r};
}

BigNum operator%(const BigNum& a, const BigNum& m) { return BigNum::divmod(a, m).second; }
BigNum operator/(const BigNum& a, const BigNum& b) { return BigNum::divmod(a, b).first; }

BigNum BigNum::modmul(const BigNum& a, const BigNum& b, const BigNum& m) {
  return (a * b) % m;
}

BigNum BigNum::modexp(const BigNum& e, const BigNum& m) const {
  MIG_CHECK(!m.is_zero());
  BigNum base = *this % m;
  BigNum result(1);
  size_t bits = e.bit_length();
  for (size_t i = bits; i-- > 0;) {
    result = modmul(result, result, m);
    if (e.bit(i)) result = modmul(result, base, m);
  }
  return result;
}

}  // namespace mig::crypto
