// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC authenticates EWB-evicted pages, checkpoint blobs, local-attestation
// reports and secure-channel frames. HKDF turns DH shared secrets into the
// channel keys (Kmigrate transport) and derives the per-CPU SGX key tree.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace mig::crypto {

Digest hmac_sha256(ByteSpan key, ByteSpan message);

// HKDF-Extract + Expand in one call; `out_len` <= 255*32.
Bytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, size_t out_len);

// Constant-time comparison; returns true iff equal (and sizes match).
bool ct_equal(ByteSpan a, ByteSpan b);

}  // namespace mig::crypto
