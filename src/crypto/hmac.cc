#include "crypto/hmac.h"

#include "util/check.h"

namespace mig::crypto {

Digest hmac_sha256(ByteSpan key, ByteSpan message) {
  uint8_t k[64] = {0};
  if (key.size() > 64) {
    Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k);
  } else {
    std::copy(key.begin(), key.end(), k);
  }
  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ByteSpan(ipad, 64));
  inner.update(message);
  Digest inner_d = inner.finish();
  Sha256 outer;
  outer.update(ByteSpan(opad, 64));
  outer.update(inner_d);
  return outer.finish();
}

Bytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, size_t out_len) {
  MIG_CHECK(out_len <= 255 * 32);
  Digest prk = hmac_sha256(salt, ikm);
  Bytes out;
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    Digest d = hmac_sha256(prk, block);
    t.assign(d.begin(), d.end());
    append(out, t);
  }
  out.resize(out_len);
  return out;
}

bool ct_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace mig::crypto
