// Append-only Merkle tree over SHA-256 (RFC 6962 structure).
//
// The quorum counter replicas (src/quorum/) keep their audit log as leaves of
// one of these trees and co-sign the root in every reply, so the enclave — and
// the offline tools/counter_audit verifier — can hold a replica to a single
// linear history: two different logs of the same length have different roots,
// and a replica that signs both has equivocated in a way anyone can prove.
//
// Leaves and interior nodes are domain-separated (0x00 / 0x01 prefixes) so a
// leaf value can never be reinterpreted as a subtree root.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace mig::crypto {

// H(0x00 || leaf) — what MerkleTree stores per appended leaf.
Digest merkle_leaf_hash(ByteSpan leaf);
// H(0x01 || left || right).
Digest merkle_node_hash(const Digest& left, const Digest& right);

class MerkleTree {
 public:
  // Appends the raw leaf bytes (hashed internally).
  void append(ByteSpan leaf) { leaves_.push_back(merkle_leaf_hash(leaf)); }
  uint64_t size() const { return leaves_.size(); }

  // Root over the current leaves. The empty tree's root is all zeroes — a
  // sentinel no real tree can produce.
  Digest root() const;

  // Bottom-up audit path for the leaf at `index` (< size()) in the current
  // tree. Verified with merkle_verify_inclusion against root()/size().
  std::vector<Digest> prove(uint64_t index) const;

 private:
  std::vector<Digest> leaves_;  // leaf hashes in append order
};

// True iff `proof` links a leaf with hash `leaf_hash` at position `index` of
// a `size`-leaf tree to `root`. Rejects out-of-range indices and proofs of
// the wrong length for the (index, size) shape.
bool merkle_verify_inclusion(const Digest& leaf_hash, uint64_t index,
                             uint64_t size, const std::vector<Digest>& proof,
                             const Digest& root);

}  // namespace mig::crypto
