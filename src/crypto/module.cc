// Module anchor; real sources accompany it.
namespace mig { const char* k_crypto_module = "crypto"; }
