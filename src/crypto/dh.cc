#include "crypto/dh.h"

#include "crypto/sha256.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::crypto {

namespace {
constexpr std::string_view kOakley2P =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

// Draws an exponent uniformly-enough in [2, q).
BigNum random_exponent(Drbg& rng, const DhGroup& group) {
  for (;;) {
    BigNum x = BigNum::from_bytes(rng.generate(group.byte_len)) % group.q;
    if (BigNum(2) <= x) return x;
  }
}
}  // namespace

const DhGroup& DhGroup::oakley2() {
  static const DhGroup group = [] {
    DhGroup g;
    g.p = BigNum::from_hex(kOakley2P);
    g.g = BigNum(2);
    g.q = (g.p - BigNum(1)) / BigNum(2);
    g.gq = BigNum(4);
    g.byte_len = 128;
    return g;
  }();
  return group;
}

DhKeyPair dh_generate(Drbg& rng, const DhGroup& group) {
  DhKeyPair kp;
  kp.priv = random_exponent(rng, group);
  kp.pub = group.g.modexp(kp.priv, group.p);
  return kp;
}

Result<Bytes> dh_shared(const BigNum& priv, const BigNum& peer_pub,
                        const DhGroup& group) {
  // Reject degenerate public values a MITM could inject to force a known
  // shared secret.
  BigNum p_minus_1 = group.p - BigNum(1);
  if (peer_pub <= BigNum(1) || !(peer_pub < p_minus_1)) {
    return Error(ErrorCode::kAuthFailure, "degenerate DH public value");
  }
  BigNum shared = peer_pub.modexp(priv, group.p);
  return shared.to_bytes_padded(group.byte_len);
}

SigKeyPair sig_keygen(Drbg& rng, const DhGroup& group) {
  SigKeyPair kp;
  kp.sk = random_exponent(rng, group);
  kp.pk = group.gq.modexp(kp.sk, group.p);
  return kp;
}

namespace {
BigNum challenge(const BigNum& r, ByteSpan message, const DhGroup& group) {
  Bytes input = r.to_bytes_padded(group.byte_len);
  append(input, message);
  Digest d = Sha256::hash(input);
  return BigNum::from_bytes(d) % group.q;
}
}  // namespace

Bytes sig_sign(const BigNum& sk, ByteSpan message, Drbg& rng,
               const DhGroup& group) {
  BigNum k = random_exponent(rng, group);
  BigNum r = group.gq.modexp(k, group.p);
  BigNum e = challenge(r, message, group);
  BigNum s = (k + BigNum::modmul(e, sk, group.q)) % group.q;
  Writer w;
  w.bytes(r.to_bytes_padded(group.byte_len));
  w.bytes(s.to_bytes());
  return w.take();
}

bool sig_verify(const BigNum& pk, ByteSpan message, ByteSpan signature,
                const DhGroup& group) {
  Reader rd(signature);
  Bytes r_bytes = rd.bytes();
  Bytes s_bytes = rd.bytes();
  if (!rd.finish().ok()) return false;
  BigNum r = BigNum::from_bytes(r_bytes);
  BigNum s = BigNum::from_bytes(s_bytes);
  if (r.is_zero() || !(r < group.p) || !(s < group.q)) return false;
  BigNum e = challenge(r, message, group);
  BigNum lhs = group.gq.modexp(s, group.p);
  BigNum rhs = BigNum::modmul(r, pk.modexp(e, group.p), group.p);
  return lhs == rhs;
}

}  // namespace mig::crypto
