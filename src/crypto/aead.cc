#include "crypto/aead.h"

#include <algorithm>
#include <string>

#include "crypto/ciphers.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sim/cost_model.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::crypto {

namespace {

struct SubKeys {
  Bytes enc;  // width depends on cipher
  Bytes mac;  // 32 bytes
};

SubKeys derive(ByteSpan key32, CipherAlg alg) {
  size_t enc_len = 32;
  switch (alg) {
    case CipherAlg::kRc4: enc_len = 16; break;
    case CipherAlg::kDesCbc: enc_len = 8; break;
    case CipherAlg::kAes128Cbc:
    case CipherAlg::kAes128CbcNi: enc_len = 16; break;
    case CipherAlg::kChaCha20: enc_len = 32; break;
  }
  Bytes okm = hkdf(to_bytes("mig-aead"), key32, Bytes{static_cast<uint8_t>(alg)},
                   enc_len + 32);
  SubKeys out;
  out.enc.assign(okm.begin(), okm.begin() + enc_len);
  out.mac.assign(okm.begin() + enc_len, okm.end());
  return out;
}

Bytes cipher_encrypt(CipherAlg alg, ByteSpan key, ByteSpan plaintext) {
  static const Bytes kZeroIv16(16, 0);
  static const Bytes kZeroNonce12(12, 0);
  switch (alg) {
    case CipherAlg::kRc4:
      return rc4_apply(key, plaintext);
    case CipherAlg::kDesCbc:
      return des_cbc_encrypt(key, plaintext);
    case CipherAlg::kAes128Cbc:
    case CipherAlg::kAes128CbcNi:
      return aes128_cbc_encrypt(key, kZeroIv16, plaintext);
    case CipherAlg::kChaCha20: {
      Bytes out(plaintext.begin(), plaintext.end());
      chacha20_xor(key, kZeroNonce12, 0, out);
      return out;
    }
  }
  MIG_CHECK_MSG(false, "unknown cipher");
}

Result<Bytes> cipher_decrypt(CipherAlg alg, ByteSpan key, ByteSpan ciphertext) {
  static const Bytes kZeroIv16(16, 0);
  static const Bytes kZeroNonce12(12, 0);
  switch (alg) {
    case CipherAlg::kRc4:
      return rc4_apply(key, ciphertext);
    case CipherAlg::kDesCbc: {
      Bytes out = des_cbc_decrypt(key, ciphertext);
      if (out.empty() && !ciphertext.empty())
        return Error(ErrorCode::kIntegrityViolation, "DES padding invalid");
      return out;
    }
    case CipherAlg::kAes128Cbc:
    case CipherAlg::kAes128CbcNi: {
      Bytes out = aes128_cbc_decrypt(key, kZeroIv16, ciphertext);
      if (out.empty() && !ciphertext.empty())
        return Error(ErrorCode::kIntegrityViolation, "AES padding invalid");
      return out;
    }
    case CipherAlg::kChaCha20: {
      Bytes out(ciphertext.begin(), ciphertext.end());
      chacha20_xor(key, kZeroNonce12, 0, out);
      return out;
    }
  }
  return Error(ErrorCode::kInvalidArgument, "unknown cipher algorithm");
}

}  // namespace

const char* cipher_name(CipherAlg alg) {
  switch (alg) {
    case CipherAlg::kRc4: return "RC4";
    case CipherAlg::kDesCbc: return "DES-CBC";
    case CipherAlg::kAes128Cbc: return "AES-128-CBC";
    case CipherAlg::kAes128CbcNi: return "AES-128-CBC(AES-NI)";
    case CipherAlg::kChaCha20: return "ChaCha20";
  }
  return "?";
}

uint64_t cipher_cost_ns(CipherAlg alg, size_t bytes) {
  const sim::CostModel& cm = sim::default_cost_model();
  switch (alg) {
    case CipherAlg::kRc4: return cm.rc4_ns_per_byte * bytes;
    case CipherAlg::kDesCbc: return cm.des_ns_per_byte * bytes;
    case CipherAlg::kAes128Cbc: return cm.aes_sw_ns_per_byte * bytes;
    case CipherAlg::kAes128CbcNi:
      return sim::per_byte_x100(cm.aesni_ns_per_byte_x100, bytes);
    case CipherAlg::kChaCha20:
      return sim::per_byte_x100(cm.chacha20_ns_per_byte_x100, bytes);
  }
  return 0;
}

Bytes seal(CipherAlg alg, ByteSpan key32, ByteSpan plaintext) {
  MIG_CHECK(key32.size() == 32);
  SubKeys keys = derive(key32, alg);
  // Inner hash, as the paper describes.
  Bytes inner(plaintext.begin(), plaintext.end());
  Digest h = Sha256::hash(plaintext);
  inner.insert(inner.end(), h.begin(), h.end());
  Bytes ct = cipher_encrypt(alg, keys.enc, inner);

  Writer w;
  w.u8(static_cast<uint8_t>(alg));
  w.bytes(ct);
  Digest tag = hmac_sha256(keys.mac, w.data());
  w.raw(tag);
  return w.take();
}

Result<Bytes> open(ByteSpan key32, ByteSpan sealed) {
  MIG_CHECK(key32.size() == 32);
  if (sealed.size() < 1 + 4 + 32)
    return Error(ErrorCode::kIntegrityViolation, "sealed blob too short");
  ByteSpan body = sealed.first(sealed.size() - 32);
  ByteSpan tag = sealed.subspan(sealed.size() - 32);

  Reader rd(body);
  auto alg = static_cast<CipherAlg>(rd.u8());
  Bytes ct = rd.bytes();
  if (!rd.finish().ok())
    return Error(ErrorCode::kIntegrityViolation, "sealed blob malformed");

  SubKeys keys = derive(key32, alg);
  Digest expect = hmac_sha256(keys.mac, body);
  if (!ct_equal(ByteSpan(expect), tag))
    return Error(ErrorCode::kIntegrityViolation, "MAC mismatch");

  MIG_ASSIGN_OR_RETURN(Bytes inner, cipher_decrypt(alg, keys.enc, ct));
  if (inner.size() < 32)
    return Error(ErrorCode::kIntegrityViolation, "inner hash missing");
  Bytes plaintext(inner.begin(), inner.end() - 32);
  Digest h = Sha256::hash(plaintext);
  if (!ct_equal(ByteSpan(h), ByteSpan(inner).subspan(inner.size() - 32)))
    return Error(ErrorCode::kIntegrityViolation, "inner hash mismatch");
  return plaintext;
}

// ---------------------------------------------------------------------------
// Chunked sealing.

namespace {

Bytes le64_bytes(uint64_t v) {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  return b;
}

// The root binds the chunk count and every per-chunk outer MAC, in index
// order, under a key only the two session endpoints can derive.
Digest compute_root(ByteSpan key32, const std::map<uint64_t, Digest>& macs) {
  Bytes root_key = hkdf(to_bytes("mig-chunk-root"), key32, Bytes{}, 32);
  Writer w;
  w.u64(macs.size());
  for (const auto& [index, mac] : macs) w.raw(mac);
  return hmac_sha256(root_key, w.data());
}

// Indices must form exactly 0..n-1; std::map iteration is ordered, so it is
// enough that the largest key is n-1.
bool contiguous(const std::map<uint64_t, Digest>& macs) {
  return macs.empty() || macs.rbegin()->first == macs.size() - 1;
}

Digest tag_of(ByteSpan sealed) {
  Digest tag{};
  std::copy(sealed.end() - 32, sealed.end(), tag.begin());
  return tag;
}

}  // namespace

Bytes chunk_key(ByteSpan key32, uint64_t index) {
  MIG_CHECK(key32.size() == 32);
  return hkdf(to_bytes("mig-chunk"), key32, le64_bytes(index), 32);
}

ChunkSealer::ChunkSealer(CipherAlg alg, ByteSpan key32)
    : alg_(alg), key_(key32.begin(), key32.end()) {
  MIG_CHECK(key_.size() == 32);
}

Result<Bytes> ChunkSealer::seal_chunk(uint64_t index, ByteSpan plaintext) {
  if (macs_.count(index))
    return Error(ErrorCode::kInvalidArgument,
                 "chunk index reused within session: " + std::to_string(index));
  Bytes sealed = seal(alg_, chunk_key(key_, index), plaintext);
  macs_[index] = tag_of(sealed);
  return sealed;
}

Result<Bytes> ChunkSealer::integrity_root() const {
  if (!contiguous(macs_))
    return Error(ErrorCode::kInvalidArgument,
                 "chunk indices are not contiguous from 0");
  Digest root = compute_root(key_, macs_);
  return Bytes(root.begin(), root.end());
}

ChunkOpener::ChunkOpener(ByteSpan key32) : key_(key32.begin(), key32.end()) {
  MIG_CHECK(key_.size() == 32);
}

Result<Bytes> ChunkOpener::open_chunk(uint64_t index, ByteSpan sealed) {
  if (macs_.count(index))
    return Error(ErrorCode::kInvalidArgument,
                 "chunk index replayed within session: " + std::to_string(index));
  if (sealed.size() < 1 + 4 + 32)
    return Error(ErrorCode::kIntegrityViolation, "sealed chunk too short");
  MIG_ASSIGN_OR_RETURN(Bytes plain, open(chunk_key(key_, index), sealed));
  macs_[index] = tag_of(sealed);
  return plain;
}

// ---------------------------------------------------------------------------
// Delta (wire v3) key schedule + record chain.

Bytes delta_page_key(ByteSpan key32, uint64_t page_index, uint64_t version) {
  MIG_CHECK(key32.size() == 32);
  Bytes info = le64_bytes(page_index);
  Bytes ver = le64_bytes(version);
  info.insert(info.end(), ver.begin(), ver.end());
  return hkdf(to_bytes("mig-delta"), key32, info, 32);
}

Bytes delta_root_key(ByteSpan key32) {
  MIG_CHECK(key32.size() == 32);
  return hkdf(to_bytes("mig-delta-root"), key32, Bytes{}, 32);
}

Bytes delta_final_key(ByteSpan key32) {
  MIG_CHECK(key32.size() == 32);
  return hkdf(to_bytes("mig-delta-final"), key32, Bytes{}, 32);
}

Bytes postcopy_root_key(ByteSpan key32, uint64_t epoch) {
  MIG_CHECK(key32.size() == 32);
  return hkdf(to_bytes("mig-postcopy"), key32, le64_bytes(epoch), 32);
}

Digest delta_chain_record(ByteSpan root_key, ByteSpan prev32, uint64_t segment,
                          uint64_t page_index, uint64_t version, uint8_t kind,
                          const Digest& content_hash) {
  MIG_CHECK(prev32.size() == 32);
  Writer w;
  w.raw(prev32);
  w.u64(segment);
  w.u64(page_index);
  w.u64(version);
  w.u8(kind);
  w.raw(content_hash);
  return hmac_sha256(root_key, w.data());
}

Digest delta_chain_close(ByteSpan root_key, ByteSpan prev32, uint64_t segment,
                         uint64_t record_count, bool final_segment,
                         const Digest& trailer_hash) {
  MIG_CHECK(prev32.size() == 32);
  Writer w;
  w.raw(prev32);
  w.raw(to_bytes("close"));
  w.u64(segment);
  w.u64(record_count);
  w.u8(final_segment ? 1 : 0);
  w.raw(trailer_hash);
  return hmac_sha256(root_key, w.data());
}

Status ChunkOpener::verify_root(uint64_t count, ByteSpan root) const {
  if (macs_.size() != count || !contiguous(macs_))
    return Error(ErrorCode::kIntegrityViolation,
                 "chunk set incomplete: saw " + std::to_string(macs_.size()) +
                     " of " + std::to_string(count));
  Digest expect = compute_root(key_, macs_);
  if (root.size() != 32 || !ct_equal(ByteSpan(expect), root))
    return Error(ErrorCode::kIntegrityViolation, "integrity root mismatch");
  return OkStatus();
}

}  // namespace mig::crypto
