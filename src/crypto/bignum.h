// Minimal arbitrary-precision unsigned integers: exactly what finite-field
// Diffie–Hellman and Schnorr signatures need (add/sub/mul/divmod/modexp),
// nothing more. 32-bit limbs, little-endian, schoolbook algorithms — clarity
// over speed; the cost model supplies the virtual-time price of crypto.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace mig::crypto {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t v);

  // Big-endian byte-string / hex constructors (how keys appear on the wire).
  static BigNum from_bytes(ByteSpan be);
  static BigNum from_hex(std::string_view hex);

  Bytes to_bytes() const;                 // big-endian, minimal length
  Bytes to_bytes_padded(size_t len) const;  // big-endian, left-zero-padded

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t bit_length() const;
  bool bit(size_t i) const;

  friend BigNum operator+(const BigNum& a, const BigNum& b);
  // Precondition: a >= b (MIG_CHECK enforced).
  friend BigNum operator-(const BigNum& a, const BigNum& b);
  friend BigNum operator*(const BigNum& a, const BigNum& b);
  friend BigNum operator%(const BigNum& a, const BigNum& m);
  friend BigNum operator/(const BigNum& a, const BigNum& b);

  friend bool operator==(const BigNum& a, const BigNum& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator<(const BigNum& a, const BigNum& b) {
    return cmp(a, b) < 0;
  }
  friend bool operator<=(const BigNum& a, const BigNum& b) {
    return cmp(a, b) <= 0;
  }

  BigNum shifted_left(size_t bits) const;
  BigNum shifted_right(size_t bits) const;

  // (quotient, remainder); divisor must be nonzero.
  static std::pair<BigNum, BigNum> divmod(const BigNum& a, const BigNum& b);

  // this^e mod m, square-and-multiply. m must be nonzero.
  BigNum modexp(const BigNum& e, const BigNum& m) const;

  // (a * b) mod m.
  static BigNum modmul(const BigNum& a, const BigNum& b, const BigNum& m);

 private:
  static int cmp(const BigNum& a, const BigNum& b);
  void trim();

  std::vector<uint32_t> limbs_;  // little-endian; no trailing zero limbs
};

}  // namespace mig::crypto
