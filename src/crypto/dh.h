// Finite-field Diffie–Hellman key exchange and Schnorr signatures over the
// RFC 2409 Oakley Group 2 safe prime (1024-bit, generator 2).
//
// The paper's control threads "leverage Diffie-Hellman key exchange protocol
// to build a secure channel" (§V-B) whose messages are authenticated with an
// enclave identity key pair shipped in the enclave image; the quoting
// enclave's platform key signs attestation quotes. DH supplies the former,
// Schnorr the latter two. Schnorr works in the prime-order subgroup of
// squares (order q = (p-1)/2), generator 4.
#pragma once

#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mig::crypto {

struct DhGroup {
  BigNum p;  // safe prime
  BigNum g;  // generator of Z_p^* (2)
  BigNum q;  // (p-1)/2, prime order of the subgroup of squares
  BigNum gq; // generator of the squares subgroup (4)
  size_t byte_len;  // serialized element width

  static const DhGroup& oakley2();
};

struct DhKeyPair {
  BigNum priv;  // exponent in [2, q)
  BigNum pub;   // g^priv mod p
};

DhKeyPair dh_generate(Drbg& rng, const DhGroup& group = DhGroup::oakley2());

// Shared secret g^(ab) as a fixed-width byte string; feed through HKDF before
// use as a key. Fails on degenerate peer values (0, 1, p-1, >= p).
Result<Bytes> dh_shared(const BigNum& priv, const BigNum& peer_pub,
                        const DhGroup& group = DhGroup::oakley2());

// ---- Schnorr signatures -----------------------------------------------------

struct SigKeyPair {
  BigNum sk;  // x in [2, q)
  BigNum pk;  // gq^x mod p
};

SigKeyPair sig_keygen(Drbg& rng, const DhGroup& group = DhGroup::oakley2());

// Signature = serialized (e, s) with e = H(r || m) mod q, s = k + e*x mod q.
Bytes sig_sign(const BigNum& sk, ByteSpan message, Drbg& rng,
               const DhGroup& group = DhGroup::oakley2());

bool sig_verify(const BigNum& pk, ByteSpan message, ByteSpan signature,
                const DhGroup& group = DhGroup::oakley2());

}  // namespace mig::crypto
