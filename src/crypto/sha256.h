// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: enclave measurement (MRENCLAVE accumulates EEXTEND chunks exactly
// like the hardware does), checkpoint integrity hashes, HMAC, key derivation
// and the Schnorr signature challenge. Validated against NIST test vectors in
// tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace mig::crypto {

using Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  // Streaming interface (EEXTEND feeds 256-byte chunks incrementally).
  void update(ByteSpan data);
  Digest finish();

  // One-shot convenience.
  static Digest hash(ByteSpan data);

 private:
  void compress(const uint8_t block[64]);

  std::array<uint32_t, 8> h_;
  uint8_t buf_[64];
  size_t buf_len_ = 0;
  uint64_t total_len_ = 0;
  bool finished_ = false;
};

inline Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

}  // namespace mig::crypto
