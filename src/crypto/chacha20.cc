#include "crypto/ciphers.h"
#include "util/check.h"

namespace mig::crypto {

namespace {

inline uint32_t rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline uint32_t load_le(const uint8_t* p) {
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

void chacha_block(const uint32_t state[16], uint8_t out[64]) {
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter(x[0], x[4], x[8], x[12]);
    quarter(x[1], x[5], x[9], x[13]);
    quarter(x[2], x[6], x[10], x[14]);
    quarter(x[3], x[7], x[11], x[15]);
    quarter(x[0], x[5], x[10], x[15]);
    quarter(x[1], x[6], x[11], x[12]);
    quarter(x[2], x[7], x[8], x[13]);
    quarter(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace

void chacha20_xor(ByteSpan key32, ByteSpan nonce12, uint32_t counter,
                  MutByteSpan data) {
  MIG_CHECK(key32.size() == 32);
  MIG_CHECK(nonce12.size() == 12);
  uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le(key32.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le(nonce12.data() + 4 * i);

  uint8_t stream[64];
  size_t off = 0;
  while (off < data.size()) {
    chacha_block(state, stream);
    ++state[12];
    size_t n = std::min<size_t>(64, data.size() - off);
    for (size_t i = 0; i < n; ++i) data[off + i] ^= stream[i];
    off += n;
  }
}

Rc4::Rc4(ByteSpan key) {
  MIG_CHECK(!key.empty());
  for (int i = 0; i < 256; ++i) s_[i] = static_cast<uint8_t>(i);
  uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

void Rc4::xor_stream(MutByteSpan data) {
  for (size_t n = 0; n < data.size(); ++n) {
    i_ = static_cast<uint8_t>(i_ + 1);
    j_ = static_cast<uint8_t>(j_ + s_[i_]);
    std::swap(s_[i_], s_[j_]);
    data[n] ^= s_[static_cast<uint8_t>(s_[i_] + s_[j_])];
  }
}

}  // namespace mig::crypto
