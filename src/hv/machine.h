// Physical-machine and world aggregates.
//
// A World is one simulated universe: the executor (virtual time), the cost
// model, the attestation service, and the physical machines. A Machine is
// one SGX-capable host: its hardware engine, quoting enclave and hypervisor
// (KVM stand-in). The paper's testbed is a World with two Machines connected
// by a Channel.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "sgx/attestation.h"
#include "sgx/hardware.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "sim/network.h"

namespace mig::hv {

class Hypervisor;

class Machine {
 public:
  Machine(sim::Executor& exec, const sim::CostModel& cost, crypto::Drbg rng,
          sgx::HardwareConfig hw_config);
  ~Machine();

  const std::string& name() const { return hw_.config().machine_name; }
  sgx::SgxHardware& hw() { return hw_; }
  sgx::QuotingEnclave& qe() { return qe_; }
  Hypervisor& hypervisor() { return *hypervisor_; }
  const sim::CostModel& cost() const { return *cost_; }
  sim::Executor& executor() { return *exec_; }

 private:
  sim::Executor* exec_;
  const sim::CostModel* cost_;
  sgx::SgxHardware hw_;
  sgx::QuotingEnclave qe_;
  std::unique_ptr<Hypervisor> hypervisor_;
};

class World {
 public:
  explicit World(int cpus_per_machine = 4, uint64_t seed = 0x5109,
                 const sim::CostModel& cost = sim::default_cost_model());

  // Creates a machine and registers its quoting enclave with the attestation
  // service (models EPID provisioning at manufacturing).
  Machine& add_machine(const std::string& name, uint64_t epc_pages = 24'576,
                       bool migration_ext = false);

  // A LAN channel between two machines (the migration link).
  std::unique_ptr<sim::Channel> make_channel() {
    auto ch = std::make_unique<sim::Channel>(exec_, *cost_);
    if (channel_interceptor_) channel_interceptor_(*ch);
    return ch;
  }

  // Test seam: invoked on every channel the world creates from now on, so
  // fault plans can reach links made deep inside the stack (e.g. the key
  // handshake channel the migration session opens internally).
  using ChannelInterceptor = std::function<void(sim::Channel&)>;
  void set_channel_interceptor(ChannelInterceptor fn) {
    channel_interceptor_ = std::move(fn);
  }

  sim::Executor& executor() { return exec_; }
  sgx::AttestationService& ias() { return ias_; }
  const sim::CostModel& cost() const { return *cost_; }
  crypto::Drbg fork_rng(std::string_view label) {
    return rng_.fork(to_bytes(label));
  }

 private:
  const sim::CostModel* cost_;
  sim::Executor exec_;
  crypto::Drbg rng_;
  sgx::AttestationService ias_;
  std::vector<std::unique_ptr<Machine>> machines_;
  ChannelInterceptor channel_interceptor_;
};

}  // namespace mig::hv
