// Module anchor; real sources accompany it.
namespace mig { const char* k_hv_module = "hv"; }
