// Guest VM model.
//
// VM memory is modeled as page-count metadata plus a dirtying workload (the
// pre-copy engine in live_migration.cc only needs "how many pages are dirty
// when"), NOT as 2 GB of real buffers. Enclave memory, by contrast, is real
// bytes inside sgx::SgxHardware — it is the thing being migrated faithfully.
//
// GuestHooks is the seam between the hypervisor and the guest OS: the
// hypervisor's migration engine calls prepare_enclaves_for_migration() (the
// upcall + SIGUSR1 + two-phase-checkpoint pipeline of Fig. 8, steps 2-6) and,
// on the target, resume_enclaves_after_migration() (rebuild + restore).
#pragma once

#include <cstdint>
#include <string>

#include "sim/executor.h"
#include "util/status.h"

namespace mig::hv {

// Implemented by guestos::GuestOs.
class GuestHooks {
 public:
  virtual ~GuestHooks() = default;

  // Fig. 8 steps 2-6 on the source. Returns the number of bytes the guest
  // added to VM memory for migration (encrypted checkpoints + enclave
  // records) — they ride along in the final memory rounds.
  virtual Result<uint64_t> prepare_enclaves_for_migration(
      sim::ThreadCtx& ctx) = 0;

  // Target side, after the VM is running again: rebuild the enclaves from
  // the records and let control threads restore them. Returns the restore
  // time in ns (Fig. 10(a)).
  virtual Result<uint64_t> resume_enclaves_after_migration(
      sim::ThreadCtx& ctx) = 0;

  virtual uint64_t enclave_count() const = 0;

  // Source side, when the migration aborts BEFORE the VM commits to the
  // target (link failure, exhausted retries): undo the prepare side effects —
  // delete Kmigrate via kCancelMigration, unfreeze parked workers — so the
  // guest keeps running as if the migration never happened (§V-B "migration
  // cancelled"). Default: nothing to undo.
  virtual Status cancel_enclave_migration(sim::ThreadCtx& ctx) {
    (void)ctx;
    return OkStatus();
  }

  // The engine keeps the VM in pre-copy until this returns true (e.g. agent
  // key pre-delivery still in flight, §VI-D). Default: always ready.
  virtual bool ready_to_stop() { return true; }

  // ---- incremental enclave checkpointing (wire format v3) ----
  // Called once before the engine's first pre-copy round: start a delta
  // session in every enclave (kDumpBaseline — a full dump taken while the
  // worker threads keep running) and return the baseline's wire bytes. The
  // engine ships them as extra bytes of the next running-VM round. A return
  // of 0 means the guest does not do incremental checkpointing and the
  // engine never calls enclave_delta_round — the classic path stays
  // byte-identical on the wire.
  virtual Result<uint64_t> begin_enclave_delta(sim::ThreadCtx& ctx) {
    (void)ctx;
    return uint64_t{0};
  }

  // Called after each pre-copy round while a delta session is live: dump the
  // enclave pages re-dirtied since they were last shipped (kDumpDelta) and
  // return their wire bytes, which ride the next round. The residual dirty
  // set is captured by prepare_enclaves_for_migration's final quiescent
  // dump. Default: nothing to ship.
  virtual Result<uint64_t> enclave_delta_round(sim::ThreadCtx& ctx) {
    (void)ctx;
    return uint64_t{0};
  }

  // ---- post-copy / hybrid (wire format v4) ----
  // Target side, fail-closed: the source vanished while post-copy pages were
  // still owed. The guest must not keep any partially-restored state — tear
  // down whatever the flip already landed. Default: nothing to tear down.
  virtual void postcopy_abort(sim::ThreadCtx& ctx) { (void)ctx; }
};

struct VmConfig {
  std::string name = "guest";
  int vcpus = 4;
  uint64_t memory_mb = 2048;
  // Fraction of memory actually in use (QEMU skips never-touched pages).
  double used_fraction = 0.44;
};

// How fast the guest dirties memory while running (drives pre-copy rounds).
struct DirtyModel {
  uint64_t pages_per_sec = 1'600;       // ~6.5 MB/s of writes
  uint64_t working_set_pages = 40'000;  // dirtying saturates here (~160 MB)
};

class Vm {
 public:
  Vm(VmConfig config, DirtyModel dirty) : config_(config), dirty_(dirty) {}

  const VmConfig& config() const { return config_; }
  const DirtyModel& dirty_model() const { return dirty_; }

  uint64_t total_pages() const { return config_.memory_mb * 256; }  // 4 KB pages
  uint64_t used_pages() const {
    return static_cast<uint64_t>(total_pages() * config_.used_fraction);
  }

  bool running() const { return running_; }
  void set_running(bool r) { running_ = r; }

  void set_hooks(GuestHooks* hooks) { hooks_ = hooks; }
  GuestHooks* hooks() const { return hooks_; }

  // Pages dirtied over a running interval, per the dirty model.
  uint64_t pages_dirtied_over(uint64_t ns) const {
    if (!running_) return 0;
    uint64_t pages = dirty_.pages_per_sec * ns / 1'000'000'000;
    return std::min(pages, dirty_.working_set_pages);
  }

 private:
  VmConfig config_;
  DirtyModel dirty_;
  bool running_ = true;
  GuestHooks* hooks_ = nullptr;
};

}  // namespace mig::hv
