// KVM stand-in: virtual-EPC management for guests and the entry point for
// live migration (§VI-A of the paper).
//
// EPC virtualization, as the paper describes it: the hypervisor reserves a
// guest-physical EPC range, maps it to real EPC lazily (first touch costs an
// EPT violation + backing allocation), and can overcommit by revoking pages.
// In this model the guest driver executes SGX instructions directly against
// the machine's SgxHardware (there is one nesting level of bookkeeping, not
// two page tables), but the *costs* and the accounting of the virtual-EPC
// contract live here.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hv/vm.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "util/status.h"

namespace mig::hv {

class Machine;

struct VEpcState {
  uint64_t vepc_pages = 0;    // size the guest was promised
  uint64_t mapped_pages = 0;  // currently backed by physical EPC
  uint64_t ept_violations = 0;
  uint64_t vmexits_in_enclave = 0;  // "Enclave Interruption" bit set
};

class Hypervisor {
 public:
  explicit Hypervisor(Machine& machine) : machine_(&machine) {}

  // ---- VM lifecycle ----
  void attach_vm(Vm& vm, uint64_t vepc_pages);
  void detach_vm(Vm& vm);

  // ---- paravirtual interface used by the guest SGX driver ----
  // Hypercall: "where is my EPC and how big is it?" (the paper adds exactly
  // this hypercall). Charges the hypercall cost.
  uint64_t hypercall_vepc_size(sim::ThreadCtx& ctx, Vm& vm);

  // First-touch of a vEPC page: EPT violation -> map backing. Subsequent
  // touches are free. The driver calls this before using a new EPC page.
  void touch_vepc_page(sim::ThreadCtx& ctx, Vm& vm, uint64_t vepc_index);

  // A VMExit while a VCPU was executing inside an enclave sets the Enclave
  // Interruption bit; the guest runtime reports these for accounting.
  void note_vmexit_in_enclave(sim::ThreadCtx& ctx, Vm& vm);

  const VEpcState& vepc(const Vm& vm) const;

  Machine& machine() { return *machine_; }

 private:
  Machine* machine_;
  std::map<const Vm*, VEpcState> vms_;
};

}  // namespace mig::hv
