#include "hv/machine.h"

#include "hv/hypervisor.h"

namespace mig::hv {

Machine::Machine(sim::Executor& exec, const sim::CostModel& cost,
                 crypto::Drbg rng, sgx::HardwareConfig hw_config)
    : exec_(&exec),
      cost_(&cost),
      hw_(exec, cost, rng.fork(to_bytes("hw")), std::move(hw_config)),
      qe_(hw_, rng.fork(to_bytes("qe"))),
      hypervisor_(std::make_unique<Hypervisor>(*this)) {}

Machine::~Machine() = default;

World::World(int cpus_per_machine, uint64_t seed, const sim::CostModel& cost)
    : cost_(&cost),
      exec_(cpus_per_machine),
      rng_([&] {
        Bytes s(8);
        for (int i = 0; i < 8; ++i) s[i] = static_cast<uint8_t>(seed >> (8 * i));
        return crypto::Drbg(s);
      }()),
      ias_(rng_.fork(to_bytes("ias"))) {}

Machine& World::add_machine(const std::string& name, uint64_t epc_pages,
                            bool migration_ext) {
  sgx::HardwareConfig config;
  config.machine_name = name;
  config.epc_pages = epc_pages;
  config.migration_ext = migration_ext;
  machines_.push_back(std::make_unique<Machine>(
      exec_, *cost_, rng_.fork(to_bytes(name)), std::move(config)));
  Machine& m = *machines_.back();
  ias_.register_platform(m.name(), m.qe().platform_pk());
  return m;
}

}  // namespace mig::hv
