// Pre-copy live migration engine (QEMU stand-in).
//
// Classic pre-copy over shared storage, as in the paper's evaluation
// (§VIII-B "Live Migration", Figs. 10(b)-(d)): iterate transferring dirty
// pages while the VM runs; when the dirty set is small, ask the guest to
// prepare its enclaves (Fig. 8 pipeline — the VM keeps running and keeps
// dirtying pages while control threads generate checkpoints), then stop the
// VM, ship the remainder + device state, and resume on the target. Enclave
// restore (Fig. 10(a)) happens after the VM is live again; the paper's
// downtime therefore grows only by the extra final-round bytes (checkpoints
// + records), which is exactly the ~3 ms at 64 enclaves.
#pragma once

#include <cstdint>
#include <functional>

#include "hv/vm.h"
#include "obs/attribution.h"
#include "sim/executor.h"
#include "sim/network.h"
#include "util/status.h"

namespace mig::hv {

struct MigrationParams {
  uint64_t max_rounds = 30;
  uint64_t stop_copy_threshold_pages = 150;  // ~600 KB => single-digit-ms downtime

  // Chunked round batching (the checkpoint pipeline idea applied to
  // pre-copy): when > 0, each round is split into batches of this many
  // pages, sent back-to-back so the dirty-page gather for batch k+1 overlaps
  // the wire transmission of batch k. The target acks every kRound frame as
  // before — no target-side change — and retry stays at whole-round
  // granularity. 0 = classic one-frame-per-round behavior, byte-identical
  // on the wire (the failure-matrix tests pin that protocol).
  uint64_t round_batch_pages = 0;

  // ---- failure handling (all virtual time) ----
  // The ack deadline for a round of B bytes is 2x its wire time plus this
  // grace, so detection latency scales with what was actually sent.
  uint64_t ack_grace_ns = 1'000'000'000;  // 1 s
  // Pre-copy rounds are idempotent: on an ack timeout the source retransmits
  // the same round up to this many times, backing off between attempts.
  uint64_t max_ack_retries = 2;
  uint64_t retry_backoff_ns = 200'000'000;  // doubles per attempt
  // Target side: maximum quiet gap between protocol messages. Must exceed
  // the longest round transmission (round 0 of a 2 GB guest is ~28 s at the
  // modeled 33 MB/s) plus source-side prepare work.
  uint64_t target_recv_timeout_ns = 60'000'000'000;  // 60 s
  // Source side: how long to wait for the target's enclave-restore report
  // (covers rebuild + WAN attestation + CSSA pumping for many enclaves).
  uint64_t restore_timeout_ns = 120'000'000'000;  // 120 s

  // ---- post-copy / hybrid (wire format v4) ----
  // post_copy: skip pre-copy entirely — stop, ship only device state and
  // migration records (kFlip), resume on the target immediately, and let the
  // target demand-pull every used page over the same link. Downtime is
  // bounded by the flip frame regardless of the dirty rate.
  bool post_copy = false;
  // hybrid: pre-copy while it converges; the moment a round fails to shrink
  // the dirty set (or rounds run out) flip the residue to post-copy instead
  // of pre-copying forever. Converged workloads behave like pre-copy with a
  // tiny pulled tail; adversarial dirty rates get post-copy's bounded
  // downtime.
  bool hybrid = false;
  // Give hybrid's convergence detector at least this many rounds of signal
  // before it may flip.
  uint64_t postcopy_min_rounds = 2;
  // Target demand-pull batch size (pages per kPageRequest).
  uint64_t postcopy_batch_pages = 512;

  // ---- fleet scheduling hooks (src/fleet/) ----
  // All optional; unset means the classic single-migration behavior. They
  // let an external scheduler pace several concurrent migrations without the
  // engine knowing about the fleet layer.
  //
  // Called at the top of every pre-copy round on the source thread. May
  // block (in virtual time) to pause the migration — e.g. while a
  // deadline-critical VM needs the link — and return when it may proceed.
  std::function<void(sim::ThreadCtx&)> before_round;
  // Bracket the downtime window: stop_begin fires just before the source
  // stops the VM; stop_end fires once the window resolves (resume ack,
  // post-copy flip completion, or abort). A scheduler can serialize stop
  // windows across a fleet so concurrent migrations don't stack their
  // downtimes on the shared link.
  std::function<void(sim::ThreadCtx&)> stop_begin;
  std::function<void(sim::ThreadCtx&)> stop_end;
};

struct MigrationReport {
  bool success = false;
  uint64_t total_ns = 0;
  uint64_t downtime_ns = 0;
  uint64_t transferred_bytes = 0;
  uint64_t rounds = 0;
  uint64_t enclave_prepare_ns = 0;  // Fig. 9(d): suspend-all-enclaves time
  uint64_t enclave_restore_ns = 0;  // Fig. 10(a): rebuild+restore on target
  uint64_t enclave_extra_bytes = 0; // checkpoints + records in VM memory

  // ---- incremental enclave checkpointing (wire format v3) ----
  // Filled by the engine's delta-hook interleaving (rounds, wire bytes) and
  // merged by the session layer (residual/elided/deduped, which only the
  // control-thread replies know). All zero on the classic path.
  uint64_t delta_rounds = 0;          // baseline + delta dumps that shipped bytes
  uint64_t delta_wire_bytes = 0;      // enclave delta bytes ridden on rounds
  uint64_t delta_residual_pages = 0;  // pages left for the stop-phase dump
  uint64_t delta_elided_bytes = 0;    // page bytes saved by zero elision
  uint64_t delta_deduped_bytes = 0;   // page bytes saved by content dedup

  // ---- post-copy / hybrid (wire format v4) ----
  // All zero on the pure pre-copy path.
  uint64_t postcopy_flipped = 0;      // 1 if the migration switched to post-copy
  uint64_t postcopy_pages = 0;        // VM pages pulled after the flip
  uint64_t postcopy_bytes = 0;        // wire bytes of the pulled tail
  uint64_t postcopy_batches = 0;      // kPageRequest/kPageReply exchanges
  uint64_t postcopy_ns = 0;           // flip -> tail drained (VM runs throughout)

  // ---- trace-derived phase budgets (observability) ----
  // Attached by the session layer after a traced run: the span-tree fold of
  // the capture (obs::attribute_migration). Its downtime_ns re-derives this
  // report's downtime_ns from the trace alone — the two must agree exactly,
  // which publish_metrics() makes checkable by emitting both. Empty
  // (present == false) when tracing was off.
  obs::AttributionLedger attribution;

  // Folds every field into the metrics registry as `<prefix>.<field>` gauges
  // so that engine-level numbers, trace-derived numbers and bench output all
  // come from one source. No-op while metrics are disabled.
  void publish_metrics(const char* prefix) const;
};

// Runs the source half of a migration on the calling sim thread and the
// target half on `target_thread_fn`'s thread. The caller provides both ends;
// the engine owns the protocol.
class LiveMigrationEngine {
 public:
  LiveMigrationEngine(const sim::CostModel& cost, MigrationParams params)
      : cost_(&cost), params_(params) {}

  // Source side: drives pre-copy of `vm` through `link`. Blocks (in virtual
  // time) until the target acknowledges resume. The guest hooks, if present,
  // are invoked per the Fig. 8 pipeline.
  Result<MigrationReport> migrate_source(sim::ThreadCtx& ctx, Vm& vm,
                                         sim::Channel::End link);

  // Target side: receives rounds, applies them, resumes the VM, then lets
  // the guest restore enclaves. Returns the target's view of the report.
  Result<MigrationReport> migrate_target(sim::ThreadCtx& ctx, Vm& vm,
                                         sim::Channel::End link);

 private:
  // One-way wire time of a burst: transmission at the modeled link rate plus
  // propagation. Ack deadlines derive from this so failure detection scales
  // with the burst actually sent.
  uint64_t wire_ns(uint64_t bytes) const;

  // Best-effort cleanup when the source half fails before the VM has
  // committed to the target: notify the target, resume the VM if stopped,
  // and let the guest cancel its enclave-migration state (§V-B).
  void abort_source(sim::ThreadCtx& ctx, Vm& vm, sim::Channel::End& link,
                    bool vm_stopped);

  const sim::CostModel* cost_;
  MigrationParams params_;
};

}  // namespace mig::hv
