// Pre-copy live migration engine (QEMU stand-in).
//
// Classic pre-copy over shared storage, as in the paper's evaluation
// (§VIII-B "Live Migration", Figs. 10(b)-(d)): iterate transferring dirty
// pages while the VM runs; when the dirty set is small, ask the guest to
// prepare its enclaves (Fig. 8 pipeline — the VM keeps running and keeps
// dirtying pages while control threads generate checkpoints), then stop the
// VM, ship the remainder + device state, and resume on the target. Enclave
// restore (Fig. 10(a)) happens after the VM is live again; the paper's
// downtime therefore grows only by the extra final-round bytes (checkpoints
// + records), which is exactly the ~3 ms at 64 enclaves.
#pragma once

#include <cstdint>

#include "hv/vm.h"
#include "sim/executor.h"
#include "sim/network.h"
#include "util/status.h"

namespace mig::hv {

struct MigrationParams {
  uint64_t max_rounds = 30;
  uint64_t stop_copy_threshold_pages = 150;  // ~600 KB => single-digit-ms downtime
};

struct MigrationReport {
  bool success = false;
  uint64_t total_ns = 0;
  uint64_t downtime_ns = 0;
  uint64_t transferred_bytes = 0;
  uint64_t rounds = 0;
  uint64_t enclave_prepare_ns = 0;  // Fig. 9(d): suspend-all-enclaves time
  uint64_t enclave_restore_ns = 0;  // Fig. 10(a): rebuild+restore on target
  uint64_t enclave_extra_bytes = 0; // checkpoints + records in VM memory
};

// Runs the source half of a migration on the calling sim thread and the
// target half on `target_thread_fn`'s thread. The caller provides both ends;
// the engine owns the protocol.
class LiveMigrationEngine {
 public:
  LiveMigrationEngine(const sim::CostModel& cost, MigrationParams params)
      : cost_(&cost), params_(params) {}

  // Source side: drives pre-copy of `vm` through `link`. Blocks (in virtual
  // time) until the target acknowledges resume. The guest hooks, if present,
  // are invoked per the Fig. 8 pipeline.
  Result<MigrationReport> migrate_source(sim::ThreadCtx& ctx, Vm& vm,
                                         sim::Channel::End link);

  // Target side: receives rounds, applies them, resumes the VM, then lets
  // the guest restore enclaves. Returns the target's view of the report.
  Result<MigrationReport> migrate_target(sim::ThreadCtx& ctx, Vm& vm,
                                         sim::Channel::End link);

 private:
  const sim::CostModel* cost_;
  MigrationParams params_;
};

}  // namespace mig::hv
