#include "hv/hypervisor.h"

#include "hv/machine.h"
#include "util/check.h"

namespace mig::hv {

void Hypervisor::attach_vm(Vm& vm, uint64_t vepc_pages) {
  MIG_CHECK_MSG(!vms_.count(&vm), "VM attached twice");
  vms_[&vm].vepc_pages = vepc_pages;
}

void Hypervisor::detach_vm(Vm& vm) { vms_.erase(&vm); }

uint64_t Hypervisor::hypercall_vepc_size(sim::ThreadCtx& ctx, Vm& vm) {
  ctx.work_atomic(machine_->cost().hypercall_ns);
  auto it = vms_.find(&vm);
  MIG_CHECK_MSG(it != vms_.end(), "hypercall from unattached VM");
  return it->second.vepc_pages;
}

void Hypervisor::touch_vepc_page(sim::ThreadCtx& ctx, Vm& vm,
                                 uint64_t vepc_index) {
  auto it = vms_.find(&vm);
  MIG_CHECK_MSG(it != vms_.end(), "vEPC touch from unattached VM");
  VEpcState& st = it->second;
  MIG_CHECK_MSG(vepc_index < st.vepc_pages, "vEPC index out of range");
  if (st.mapped_pages > vepc_index) return;  // already mapped (monotone model)
  // First touch: EPT violation, hypervisor maps a backing page.
  ctx.work_atomic(machine_->cost().ept_violation_ns);
  ++st.ept_violations;
  st.mapped_pages = vepc_index + 1;
}

void Hypervisor::note_vmexit_in_enclave(sim::ThreadCtx& ctx, Vm& vm) {
  auto it = vms_.find(&vm);
  MIG_CHECK_MSG(it != vms_.end(), "vmexit from unattached VM");
  ctx.work_atomic(machine_->cost().vmexit_ns);
  ++it->second.vmexits_in_enclave;
}

const VEpcState& Hypervisor::vepc(const Vm& vm) const {
  auto it = vms_.find(&vm);
  MIG_CHECK_MSG(it != vms_.end(), "vepc query for unattached VM");
  return it->second;
}

}  // namespace mig::hv
