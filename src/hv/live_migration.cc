#include "hv/live_migration.h"

#include <algorithm>
#include <optional>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::hv {

void MigrationReport::publish_metrics(const char* prefix) const {
  if (!obs::metrics_enabled()) return;
  auto& m = obs::metrics();
  std::string p(prefix);
  m.set_gauge(p + ".success", success ? 1 : 0);
  m.set_gauge(p + ".total_ns", total_ns);
  m.set_gauge(p + ".downtime_ns", downtime_ns);
  m.set_gauge(p + ".transferred_bytes", transferred_bytes);
  m.set_gauge(p + ".rounds", rounds);
  m.set_gauge(p + ".enclave_prepare_ns", enclave_prepare_ns);
  m.set_gauge(p + ".enclave_restore_ns", enclave_restore_ns);
  m.set_gauge(p + ".enclave_extra_bytes", enclave_extra_bytes);
  m.set_gauge(p + ".delta_rounds", delta_rounds);
  m.set_gauge(p + ".delta_wire_bytes", delta_wire_bytes);
  m.set_gauge(p + ".delta_residual_pages", delta_residual_pages);
  m.set_gauge(p + ".delta_elided_bytes", delta_elided_bytes);
  m.set_gauge(p + ".delta_deduped_bytes", delta_deduped_bytes);
  m.set_gauge(p + ".postcopy_flipped", postcopy_flipped);
  m.set_gauge(p + ".postcopy_pages", postcopy_pages);
  m.set_gauge(p + ".postcopy_bytes", postcopy_bytes);
  m.set_gauge(p + ".postcopy_batches", postcopy_batches);
  m.set_gauge(p + ".postcopy_ns", postcopy_ns);
  // Trace-derived phase budgets ride along when the session attached them,
  // so the engine's totals and the attribution ledger publish together and
  // any drift between the two is visible in one metrics dump.
  attribution.publish();
}

namespace {

enum class Tag : uint8_t {
  kRound = 1,      // pre-copy round: u64 pages, u64 extra_bytes
  kRoundAck = 2,
  kStop = 3,       // final stop-and-copy round: u64 pages, u64 record_bytes
  kResumeAck = 4,  // u64 target resume timestamp (ns)
  kRestoreDone = 5,  // u64 enclave restore ns, u64 error flag
  kAbort = 6,      // peer-side failure: the migration is off

  // ---- post-copy / hybrid (wire format v4) ----
  kPageRequest = 7,   // target -> source: u64 pages wanted (demand batch)
  kPageReply = 8,     // source -> target: u64 pages served (sized frame)
  kPostcopyDone = 9,  // target -> source: the VM tail is fully pulled
  kFlip = 10,  // source -> target: stop-and-flip — u64 tail pages left
               // behind (to be pulled), u64 record/checkpoint bytes riding
               // this frame. Replaces kStop on the post-copy/hybrid path.
};

Bytes msg(Tag tag, uint64_t a = 0, uint64_t b = 0) {
  Writer w;
  w.u8(static_cast<uint8_t>(tag));
  w.u64(a);
  w.u64(b);
  return w.take();
}

struct Parsed {
  Tag tag;
  uint64_t a = 0;
  uint64_t b = 0;
};

// The link is untrusted: a corrupting middlebox can hand us any byte string.
// Truncated frames, trailing garbage and out-of-range tags are all rejected
// as kInvalidArgument — never interpreted.
Result<Parsed> parse(ByteSpan data) {
  Reader r(data);
  uint8_t tag = r.u8();
  Parsed p;
  p.a = r.u64();
  p.b = r.u64();
  if (!r.finish().ok() || tag < static_cast<uint8_t>(Tag::kRound) ||
      tag > static_cast<uint8_t>(Tag::kFlip)) {
    return Error(ErrorCode::kInvalidArgument, "malformed migration frame");
  }
  p.tag = static_cast<Tag>(tag);
  return p;
}

}  // namespace

uint64_t LiveMigrationEngine::wire_ns(uint64_t bytes) const {
  return sim::per_byte_x100(cost_->net_ns_per_byte_x100, bytes) +
         cost_->net_latency_ns;
}

void LiveMigrationEngine::abort_source(sim::ThreadCtx& ctx, Vm& vm,
                                       sim::Channel::End& link,
                                       bool vm_stopped) {
  obs::instant(ctx, "migration.abort", "hv",
               {{"side", "source"}, {"vm_stopped", vm_stopped}});
  obs::metrics().add("hv.aborts");
  obs::flight(ctx, "hv.source", "abort",
              vm_stopped ? "phase=stop_and_copy" : "phase=precopy");
  // Best effort: a severed link simply drops this.
  link.send(ctx, msg(Tag::kAbort));
  if (vm_stopped) {
    ctx.work_atomic(cost_->vm_stop_resume_ns / 2);  // unpause + device restore
    vm.set_running(true);
  }
  if (vm.hooks() != nullptr) {
    // The guest keeps running on the source. Cancel failures are secondary
    // to the abort cause and observable through the enclaves themselves.
    (void)vm.hooks()->cancel_enclave_migration(ctx);
  }
}

Result<MigrationReport> LiveMigrationEngine::migrate_source(
    sim::ThreadCtx& ctx, Vm& vm, sim::Channel::End link) {
  MigrationReport report;
  obs::Span<sim::ThreadCtx> whole(ctx, "migrate_source", "hv",
                                  {{"used_pages", vm.used_pages()}});
  const uint64_t page = cost_->page_size;
  uint64_t start = ctx.now();
  uint64_t dirty = vm.used_pages();  // round 0 sends everything in use

  auto recv_parsed = [&](uint64_t deadline_ns) -> Result<Parsed> {
    std::optional<Bytes> m = link.recv_deadline(ctx, deadline_ns);
    if (!m.has_value())
      return Error(ErrorCode::kDeadlineExceeded,
                   "migration link timed out waiting for the target");
    return parse(*m);
  };

  // One pre-copy round with bounded retry. Rounds are idempotent (the target
  // just applies pages and acks), so a lost round or a lost ack is repaired
  // by retransmission; anything else fails the round.
  // `scan_ns` is the round's dirty-bitmap scan/gather budget; it is charged
  // up front in the classic path, and spread across batches (overlapping the
  // wire) when round batching is on.
  auto send_round_acked = [&](uint64_t pages, uint64_t extra,
                              uint64_t scan_ns) -> Status {
    uint64_t bytes = pages * page + extra;
    obs::Span<sim::ThreadCtx> round_span(
        ctx, "precopy_round", "hv",
        {{"round", report.rounds}, {"pages", pages}, {"bytes", bytes}});
    obs::metrics().observe("hv.round_bytes", bytes);
    const uint64_t batch_pages = params_.round_batch_pages;
    if (batch_pages == 0 || pages <= batch_pages) {
      // Classic whole-round framing: one kRound frame, one ack.
      if (scan_ns > 0) ctx.work_atomic(scan_ns);
      for (uint64_t attempt = 0;; ++attempt) {
        link.send_sized(ctx, msg(Tag::kRound, pages, extra), bytes);
        report.transferred_bytes += bytes;
        Result<Parsed> p =
            recv_parsed(ctx.now() + 2 * wire_ns(bytes) + params_.ack_grace_ns);
        if (p.ok()) {
          if (p->tag == Tag::kRoundAck) return OkStatus();
          if (p->tag == Tag::kAbort)
            return Error(ErrorCode::kAborted, "target aborted the migration");
          return Error(ErrorCode::kInternal, "migration protocol desync");
        }
        if (p.status().code() != ErrorCode::kDeadlineExceeded ||
            attempt >= params_.max_ack_retries) {
          return p.status();
        }
        obs::instant(ctx, "precopy.retry", "hv", {{"attempt", attempt}});
        obs::metrics().add("hv.precopy.retries");
        ctx.sleep(params_.retry_backoff_ns << attempt);
      }
    }
    // Batched: the round's pages ride the link as back-to-back kRound
    // frames. send_sized never blocks the sender, so gathering batch k+1
    // overlaps transmitting batch k; the link itself serializes the bytes.
    // The target acks every frame (it cannot tell a batch from a small
    // round); the source collects one ack per batch. Retry remains at
    // whole-round granularity — rounds are idempotent, and duplicate acks
    // from a half-acked attempt are tolerated just like retransmitted-round
    // acks in the classic path.
    const uint64_t nbatches = (pages + batch_pages - 1) / batch_pages;
    obs::metrics().set_gauge("hv.round_batches", nbatches);
    for (uint64_t attempt = 0;; ++attempt) {
      uint64_t sent = 0;
      for (uint64_t b = 0; b < nbatches; ++b) {
        uint64_t bp = std::min(batch_pages, pages - sent);
        sent += bp;
        ctx.work_atomic(scan_ns / nbatches);
        // Extra (checkpoint) bytes ride on the first batch, so a round that
        // carries checkpoints still announces them in its first frame.
        uint64_t e = b == 0 ? extra : 0;
        link.send_sized(ctx, msg(Tag::kRound, bp, e), bp * page + e);
      }
      report.transferred_bytes += bytes;
      bool all_acked = true;
      for (uint64_t b = 0; b < nbatches && all_acked; ++b) {
        Result<Parsed> p =
            recv_parsed(ctx.now() + 2 * wire_ns(bytes) + params_.ack_grace_ns);
        if (p.ok()) {
          if (p->tag == Tag::kRoundAck) continue;
          if (p->tag == Tag::kAbort)
            return Error(ErrorCode::kAborted, "target aborted the migration");
          return Error(ErrorCode::kInternal, "migration protocol desync");
        }
        if (p.status().code() != ErrorCode::kDeadlineExceeded ||
            attempt >= params_.max_ack_retries) {
          return p.status();
        }
        all_acked = false;
      }
      if (all_acked) return OkStatus();
      obs::instant(ctx, "precopy.retry", "hv", {{"attempt", attempt}});
      obs::metrics().add("hv.precopy.retries");
      ctx.sleep(params_.retry_backoff_ns << attempt);
    }
  };

  // --- wire v3: open the enclave delta sessions before pre-copy begins ---
  // The baseline (a full enclave dump taken while the workers keep running)
  // and each later delta round ride the VM rounds as extra bytes, so the
  // enclave state converges alongside the VM's dirty set and the stop-phase
  // dump only captures the residual re-dirtied pages.
  uint64_t delta_pending = 0;
  bool delta_active = false;
  if (vm.hooks() != nullptr) {
    Result<uint64_t> begun = vm.hooks()->begin_enclave_delta(ctx);
    if (!begun.ok()) {
      abort_source(ctx, vm, link, /*vm_stopped=*/false);
      return begun.status();
    }
    if (*begun > 0) {
      delta_active = true;
      delta_pending = *begun;
      report.delta_rounds += 1;
      report.delta_wire_bytes += *begun;
      obs::instant(ctx, "delta.baseline_ready", "hv", {{"bytes", *begun}});
    }
  }

  // --- iterative pre-copy while the VM runs ---
  // Pure post-copy skips the rounds entirely; hybrid runs them with a
  // convergence detector that flips the residue to post-copy the moment
  // another round would be wasted wire.
  // Fleet pause gate: may block (in virtual time) while an external
  // scheduler holds this migration; the VM keeps running and dirtying pages
  // meanwhile, which the per-round dirty recomputation already accounts for.
  auto pause_gate = [&](uint64_t held_from) {
    if (!params_.before_round) return;
    params_.before_round(ctx);
    uint64_t held_ns = ctx.now() - held_from;
    if (held_ns > 0) dirty += vm.pages_dirtied_over(held_ns);
  };

  bool flip = params_.post_copy;
  if (!params_.post_copy) {
    for (uint64_t round = 0; round < params_.max_rounds; ++round) {
      pause_gate(ctx.now());
      if (dirty <= params_.stop_copy_threshold_pages) break;
      uint64_t before = dirty;
      uint64_t round_start = ctx.now();
      // Dirty-bitmap scan + queueing (charged inside the round so batching
      // can overlap it with the wire).
      Status st = send_round_acked(
          dirty, delta_pending,
          cost_->precopy_scan_ns_per_page * vm.used_pages() / 64);
      if (!st.ok()) {
        abort_source(ctx, vm, link, /*vm_stopped=*/false);
        return st;
      }
      delta_pending = 0;
      if (delta_active) {
        // Interleave one enclave delta round per VM round: whatever the
        // enclaves re-dirtied while this round was on the wire ships with the
        // next one.
        Result<uint64_t> d = vm.hooks()->enclave_delta_round(ctx);
        if (!d.ok()) {
          abort_source(ctx, vm, link, /*vm_stopped=*/false);
          return d.status();
        }
        if (*d > 0) {
          delta_pending += *d;
          report.delta_rounds += 1;
          report.delta_wire_bytes += *d;
        }
      }
      dirty = vm.pages_dirtied_over(ctx.now() - round_start);
      report.rounds += 1;
      if (params_.hybrid && report.rounds >= params_.postcopy_min_rounds &&
          dirty * 8 >= before * 7) {
        // The round shrank the dirty set by less than 1/8: pre-copy is not
        // converging at this dirty rate. Flip instead of burning the rest of
        // max_rounds re-sending pages the guest keeps re-dirtying.
        flip = true;
        break;
      }
    }
    // Rounds exhausted without converging: hybrid still gets bounded
    // downtime by flipping; classic pre-copy stop-and-copies the residue.
    if (params_.hybrid && dirty > params_.stop_copy_threshold_pages)
      flip = true;
  }

  // --- Fig. 8 pipeline: prepare enclaves while the VM still runs ---
  uint64_t checkpoint_bytes = 0;
  uint64_t record_bytes = 0;
  if (vm.hooks() != nullptr) {
    uint64_t prep_start = ctx.now();
    obs::Span<sim::ThreadCtx> prep_span(
        ctx, "prepare_enclaves", "hv",
        {{"enclaves", vm.hooks()->enclave_count()}});
    Result<uint64_t> prep = vm.hooks()->prepare_enclaves_for_migration(ctx);
    prep_span.finish({{"ok", prep.ok()}});
    if (!prep.ok()) {
      // Partial prepares (some enclaves froze before one refused) are undone
      // by the cancel hook inside abort_source.
      abort_source(ctx, vm, link, /*vm_stopped=*/false);
      return prep.status();
    }
    uint64_t extra = *prep;
    report.enclave_prepare_ns = ctx.now() - prep_start;
    report.enclave_extra_bytes = extra;
    // Encrypted checkpoints land in normal VM memory: ship them in one more
    // running-VM round together with whatever was dirtied meanwhile.
    checkpoint_bytes = extra;
    dirty += vm.pages_dirtied_over(report.enclave_prepare_ns);
    // Per-enclave creation/destruction records must be consistent with the
    // final memory image, so they ride in the stop-and-copy round.
    record_bytes = vm.hooks()->enclave_count() * 2048;
    if (!flip) {
      // Ship the checkpoints, then keep pre-copying until the dirty set has
      // re-converged AND the guest is fully ready to switch (key pre-delivery
      // to the agent may still be riding on the WAN, §VI-D — the VM keeps
      // running meanwhile, which is how that latency stays hidden).
      // Delta bytes produced after the last pre-copy send (or a baseline that
      // never saw a round because the dirty set was already converged) still
      // must cross while the VM runs — merge them with the checkpoint bytes.
      uint64_t pending_extra = checkpoint_bytes + delta_pending;
      delta_pending = 0;
      checkpoint_bytes = 0;
      for (uint64_t extra_rounds = 0; extra_rounds < params_.max_rounds;
           ++extra_rounds) {
        pause_gate(ctx.now());
        // The checkpoints must reach the target while the VM still runs (they
        // live in ordinary guest memory); never stop with them unsent.
        if (dirty <= params_.stop_copy_threshold_pages && pending_extra == 0 &&
            vm.hooks()->ready_to_stop()) {
          break;
        }
        if (dirty <= params_.stop_copy_threshold_pages && pending_extra == 0) {
          // Converged but not ready: idle in pre-copy a little longer.
          ctx.sleep(5'000'000);
          dirty += vm.pages_dirtied_over(5'000'000);
          continue;
        }
        uint64_t round_start = ctx.now();
        Status st = send_round_acked(dirty, pending_extra, 0);
        if (!st.ok()) {
          abort_source(ctx, vm, link, /*vm_stopped=*/false);
          return st;
        }
        pending_extra = 0;
        dirty = vm.pages_dirtied_over(ctx.now() - round_start);
        report.rounds += 1;
      }
    } else {
      // Flip path: checkpoints and any unshipped delta bytes still must
      // cross while the VM runs (they live in ordinary guest memory and can
      // be large — e.g. a baseline that never rode a pre-copy round), but
      // the dirty pages themselves stay behind as the post-copy tail. One
      // extra-bytes-only frame carries them; only the bounded per-enclave
      // records ride the flip frame inside the downtime window.
      uint64_t pending_extra = checkpoint_bytes + delta_pending;
      delta_pending = 0;
      checkpoint_bytes = 0;
      if (pending_extra > 0) {
        uint64_t t0 = ctx.now();
        Status st = send_round_acked(0, pending_extra, 0);
        if (!st.ok()) {
          abort_source(ctx, vm, link, /*vm_stopped=*/false);
          return st;
        }
        report.rounds += 1;
        dirty += vm.pages_dirtied_over(ctx.now() - t0);
      }
      while (!vm.hooks()->ready_to_stop()) {
        ctx.sleep(5'000'000);
        dirty += vm.pages_dirtied_over(5'000'000);
      }
    }
  }

  // --- stop-and-copy (classic) or stop-and-flip (post-copy/hybrid) ---
  // Fleet hook: a scheduler may serialize stop windows across concurrent
  // migrations (stop_begin can block until the shared link's downtime slot
  // is free). The VM is still running here, so waiting costs no downtime.
  if (params_.stop_begin) {
    uint64_t held_from = ctx.now();
    params_.stop_begin(ctx);
    uint64_t held_ns = ctx.now() - held_from;
    if (held_ns > 0) dirty += vm.pages_dirtied_over(held_ns);
  }
  uint64_t stop_time = ctx.now();
  obs::Span<sim::ThreadCtx> stop_span(
      ctx, "stop_and_copy", "hv",
      {{"pages", dirty}, {"record_bytes", record_bytes}, {"flip", flip}});
  vm.set_running(false);
  ctx.work_atomic(cost_->vm_stop_resume_ns / 2);  // pause + device save
  // Downtime-window boundary for the attribution analyzer: device state is
  // saved, the final wire copy starts now.
  obs::instant(ctx, "stop.device_saved", "hv");
  uint64_t final_bytes;
  if (flip) {
    // The residue does NOT cross inside the downtime window: the flip frame
    // announces it (tail pages to be pulled) and carries only the bounded
    // migration records + any residual checkpoint bytes.
    final_bytes = record_bytes + checkpoint_bytes + delta_pending;
    report.postcopy_flipped = 1;
    obs::instant(ctx, "postcopy.flip", "hv",
                 {{"tail_pages", dirty}, {"meta_bytes", final_bytes}});
    obs::metrics().add("hv.postcopy.flips");
    link.send_sized(ctx, msg(Tag::kFlip, dirty, final_bytes), final_bytes);
  } else {
    final_bytes = dirty * page + record_bytes;
    link.send_sized(ctx, msg(Tag::kStop, dirty, record_bytes), final_bytes);
  }
  report.transferred_bytes += final_bytes;

  Result<Parsed> p = Error(ErrorCode::kInternal, "unset");
  for (;;) {
    p = recv_parsed(ctx.now() + 2 * wire_ns(final_bytes) +
                    params_.ack_grace_ns);
    // A retransmitted round earns a duplicate ack; drain stale kRoundAcks
    // rather than mistaking them for a protocol violation.
    if (p.ok() && p->tag == Tag::kRoundAck) continue;
    break;
  }
  if (!p.ok() ||
      (p->tag != Tag::kResumeAck && p->tag != Tag::kRestoreDone)) {
    // No resume ack: roll back — resume the VM here, cancel the enclave
    // migration. If the target actually resumed and only its ack was lost,
    // the Kmigrate commit point still guarantees at most one live enclave:
    // the cancel below races the key handshake through the control-thread
    // mailbox, and whichever wins decides the survivor.
    stop_span.finish({{"outcome", "abort"}});
    abort_source(ctx, vm, link, /*vm_stopped=*/true);
    if (params_.stop_end) params_.stop_end(ctx);
    if (!p.ok()) return p.status();
    if (p->tag == Tag::kAbort)
      return Error(ErrorCode::kAborted, "target aborted the migration");
    return Error(ErrorCode::kInternal, "no resume ack");
  }
  if (p->tag == Tag::kResumeAck) report.downtime_ns = p->a - stop_time;
  obs::instant(ctx, "resume_ack", "hv", {{"downtime_ns", report.downtime_ns}});
  stop_span.finish({{"downtime_ns", report.downtime_ns}});
  // The downtime window has resolved (the VM runs on the target even if a
  // post-copy tail remains); release the fleet's stop slot.
  if (params_.stop_end) params_.stop_end(ctx);
  // else: the resume ack itself was lost, but a kRestoreDone arriving in its
  // place proves the target resumed and finished restoring — the migration
  // committed; do not roll back a VM that is live elsewhere. (Downtime is
  // unknowable from this side then and stays 0.)

  if (flip && p->tag == Tag::kResumeAck) {
    // Serve the target's demand pulls from the retained source image while
    // the VM already runs over there. Enclave pages travel separately over
    // the migration session's own page channels; this loop only models the
    // VM-level tail.
    obs::Span<sim::ThreadCtx> serve_span(ctx, "postcopy.vm_serve", "hv",
                                         {{"tail_pages", dirty}});
    for (bool done = false; !done;) {
      Result<Parsed> q = recv_parsed(ctx.now() + params_.restore_timeout_ns);
      if (!q.ok()) {
        obs::flight(ctx, "hv.source", "postcopy_serve_failed",
                    q.status().to_string());
        return q.status();
      }
      switch (q->tag) {
        case Tag::kRoundAck:
          break;  // stale ack from a retransmitted pre-flip round
        case Tag::kPageRequest: {
          uint64_t bytes = q->a * page;
          link.send_sized(ctx, msg(Tag::kPageReply, q->a), bytes);
          report.transferred_bytes += bytes;
          report.postcopy_pages += q->a;
          report.postcopy_bytes += bytes;
          report.postcopy_batches += 1;
          break;
        }
        case Tag::kPostcopyDone:
          report.postcopy_ns = ctx.now() - stop_time;
          done = true;
          break;
        case Tag::kAbort:
          obs::flight(ctx, "hv.source", "postcopy_serve_failed",
                      "target aborted the post-copy pull");
          return Error(ErrorCode::kAborted,
                       "target aborted the post-copy pull");
        default:
          obs::flight(ctx, "hv.source", "postcopy_serve_failed",
                      "migration protocol desync");
          return Error(ErrorCode::kInternal, "migration protocol desync");
      }
    }
    serve_span.finish({{"pages", report.postcopy_pages},
                       {"batches", report.postcopy_batches}});
    obs::metrics().add("hv.postcopy.pages_served", report.postcopy_pages);
  }

  // Wait for the guest-side enclave restore report (Fig. 10(a)). Past the
  // resume ack the VM belongs to the target, so there is no rollback here:
  // failures surface as status and the per-enclave commit point (was
  // Kmigrate delivered?) decides each enclave's fate.
  if (vm.hooks() != nullptr) {
    obs::Span<sim::ThreadCtx> wait_span(ctx, "wait_restore_report", "hv");
    Result<Parsed> d = p->tag == Tag::kRestoreDone
                           ? p
                           : recv_parsed(ctx.now() + params_.restore_timeout_ns);
    if (!d.ok()) {
      obs::flight(ctx, "hv.source", "restore_wait_failed",
                  d.status().to_string());
      return d.status();
    }
    if (d->tag != Tag::kRestoreDone) {
      obs::flight(ctx, "hv.source", "restore_wait_failed",
                  "no restore report");
      return Error(ErrorCode::kInternal, "no restore report");
    }
    if (d->b != 0) {
      obs::flight(ctx, "hv.source", "restore_wait_failed",
                  "enclave restore failed on target");
      return Error(ErrorCode::kAborted, "enclave restore failed on target");
    }
    report.enclave_restore_ns = d->a;
  }
  report.total_ns = ctx.now() - start;
  report.success = true;
  obs::metrics().add("hv.rounds", report.rounds);
  obs::metrics().add("hv.transferred_bytes", report.transferred_bytes);
  report.publish_metrics("migration");
  whole.finish({{"rounds", report.rounds},
                {"transferred_bytes", report.transferred_bytes}});
  return report;
}

Result<MigrationReport> LiveMigrationEngine::migrate_target(
    sim::ThreadCtx& ctx, Vm& vm, sim::Channel::End link) {
  MigrationReport report;
  obs::Span<sim::ThreadCtx> whole(ctx, "migrate_target", "hv");
  uint64_t start = ctx.now();
  for (;;) {
    std::optional<Bytes> m =
        link.recv_deadline(ctx, ctx.now() + params_.target_recv_timeout_ns);
    if (!m.has_value()) {
      obs::flight(ctx, "hv.target", "link_quiet",
                  "migration link went quiet; target aborting");
      return Error(ErrorCode::kDeadlineExceeded,
                   "migration link went quiet; target aborting");
    }
    Result<Parsed> p = parse(*m);
    if (!p.ok()) {
      // Corrupted/truncated frame from the (untrusted) link: tell the source
      // best-effort and bail out before touching any VM state.
      obs::flight(ctx, "hv.target", "bad_frame", p.status().to_string());
      link.send(ctx, msg(Tag::kAbort));
      return p.status();
    }
    if (p->tag == Tag::kRound) {
      // Applying pages into guest RAM: modeled inside the link throughput
      // (the effective rate already includes both ends' page processing).
      // Retransmitted rounds are simply applied and acked again.
      link.send(ctx, msg(Tag::kRoundAck));
      continue;
    }
    if (p->tag == Tag::kAbort) {
      obs::flight(ctx, "hv.target", "source_abort",
                  "source aborted the migration");
      return Error(ErrorCode::kAborted, "source aborted the migration");
    }
    if (p->tag != Tag::kStop && p->tag != Tag::kFlip) {
      obs::flight(ctx, "hv.target", "bad_frame",
                  "unexpected migration message");
      link.send(ctx, msg(Tag::kAbort));
      return Error(ErrorCode::kInvalidArgument, "unexpected migration message");
    }
    // Apply final pages + device state, then resume the VM. On a flip the
    // final frame carries only records — the page tail stays on the source.
    // Downtime-window boundary: the final frame has fully arrived; what
    // remains of the downtime is target-side device restore.
    obs::instant(ctx, "stop.final_received", "hv",
                 {{"flip", p->tag == Tag::kFlip}});
    ctx.work_atomic(cost_->vm_stop_resume_ns / 2);
    vm.set_running(true);
    uint64_t resume_time = ctx.now();
    link.send(ctx, msg(Tag::kResumeAck, resume_time));
    obs::instant(ctx, "vm.resumed", "hv");

    if (p->tag == Tag::kFlip) {
      // Demand-pull the tail with the VM already live. A quiet, corrupting
      // or aborting source fails CLOSED: stop the VM and let the guest tear
      // down anything the flip landed, rather than run on a partial image.
      report.postcopy_flipped = 1;
      uint64_t remaining = p->a;
      obs::Span<sim::ThreadCtx> pull_span(ctx, "postcopy.vm_pull", "hv",
                                          {{"pages", remaining}});
      auto fail_closed = [&](Status why) -> Status {
        pull_span.finish({{"outcome", "fail_closed"}});
        obs::instant(ctx, "postcopy.vm_abort", "hv",
                     {{"pages_owed", remaining}});
        obs::metrics().add("hv.postcopy.aborts");
        obs::flight(ctx, "hv.target", "fail_closed",
                    "phase=postcopy_pull pages_owed=" +
                        std::to_string(remaining) + " " + why.to_string());
        vm.set_running(false);
        if (vm.hooks() != nullptr) vm.hooks()->postcopy_abort(ctx);
        return why;
      };
      while (remaining > 0) {
        uint64_t batch = std::min(params_.postcopy_batch_pages, remaining);
        link.send(ctx, msg(Tag::kPageRequest, batch));
        std::optional<Bytes> pm = link.recv_deadline(
            ctx, ctx.now() + params_.target_recv_timeout_ns);
        if (!pm.has_value())
          return fail_closed(
              Error(ErrorCode::kDeadlineExceeded,
                    "post-copy source went quiet; target fails closed"));
        Result<Parsed> q = parse(*pm);
        if (!q.ok()) {
          link.send(ctx, msg(Tag::kAbort));
          return fail_closed(q.status());
        }
        if (q->tag == Tag::kAbort)
          return fail_closed(
              Error(ErrorCode::kAborted, "source aborted the migration"));
        if (q->tag != Tag::kPageReply) {
          link.send(ctx, msg(Tag::kAbort));
          return fail_closed(
              Error(ErrorCode::kInternal, "migration protocol desync"));
        }
        remaining -= std::min(q->a, remaining);
        report.postcopy_pages += q->a;
        report.postcopy_batches += 1;
      }
      link.send(ctx, msg(Tag::kPostcopyDone));
      report.postcopy_ns = ctx.now() - resume_time;
      pull_span.finish({{"batches", report.postcopy_batches}});
      obs::instant(ctx, "postcopy.vm_tail_complete", "hv");
      obs::metrics().add("hv.postcopy.pages_pulled", report.postcopy_pages);
    }
    // Enclave rebuild/restore happens with the VM already live.
    if (vm.hooks() != nullptr) {
      obs::Span<sim::ThreadCtx> restore_span(ctx, "resume_enclaves", "hv");
      Result<uint64_t> restore = vm.hooks()->resume_enclaves_after_migration(ctx);
      restore_span.finish({{"ok", restore.ok()}});
      if (!restore.ok()) {
        obs::flight(ctx, "hv.target", "enclave_restore_failed",
                    restore.status().to_string());
        link.send(ctx, msg(Tag::kRestoreDone, 0, /*error=*/1));
        return restore.status();
      }
      report.enclave_restore_ns = *restore;
      link.send(ctx, msg(Tag::kRestoreDone, *restore));
    }
    report.downtime_ns = 0;  // target does not observe source stop time
    report.total_ns = ctx.now() - start;
    report.success = true;
    report.publish_metrics("migration.target");
    return report;
  }
}

}  // namespace mig::hv
