#include "hv/live_migration.h"

#include "util/check.h"
#include "util/serde.h"

namespace mig::hv {

namespace {

enum class Tag : uint8_t {
  kRound = 1,      // pre-copy round: u64 pages, u64 extra_bytes
  kRoundAck = 2,
  kStop = 3,       // final stop-and-copy round: u64 pages, u64 record_bytes
  kResumeAck = 4,  // u64 target resume timestamp (ns)
  kRestoreDone = 5,  // u64 enclave restore ns, u64 error flag
  kAbort = 6,      // source-side failure: the migration is off
};

Bytes msg(Tag tag, uint64_t a = 0, uint64_t b = 0) {
  Writer w;
  w.u8(static_cast<uint8_t>(tag));
  w.u64(a);
  w.u64(b);
  return w.take();
}

struct Parsed {
  Tag tag;
  uint64_t a = 0;
  uint64_t b = 0;
};

Result<Parsed> parse(ByteSpan data) {
  Reader r(data);
  Parsed p;
  p.tag = static_cast<Tag>(r.u8());
  p.a = r.u64();
  p.b = r.u64();
  MIG_RETURN_IF_ERROR(r.finish());
  return p;
}

}  // namespace

Result<MigrationReport> LiveMigrationEngine::migrate_source(
    sim::ThreadCtx& ctx, Vm& vm, sim::Channel::End link) {
  MigrationReport report;
  const uint64_t page = cost_->page_size;
  uint64_t start = ctx.now();
  uint64_t dirty = vm.used_pages();  // round 0 sends everything in use

  // --- iterative pre-copy while the VM runs ---
  for (uint64_t round = 0; round < params_.max_rounds; ++round) {
    if (dirty <= params_.stop_copy_threshold_pages) break;
    uint64_t round_start = ctx.now();
    // Dirty-bitmap scan + queueing.
    ctx.work_atomic(cost_->precopy_scan_ns_per_page * vm.used_pages() / 64);
    uint64_t bytes = dirty * page;
    link.send_sized(ctx, msg(Tag::kRound, dirty, 0), bytes);
    report.transferred_bytes += bytes;
    // Backpressure: wait for the target to drain the round.
    Bytes ack = link.recv(ctx);
    MIG_ASSIGN_OR_RETURN(Parsed p, parse(ack));
    if (p.tag != Tag::kRoundAck)
      return Error(ErrorCode::kInternal, "migration protocol desync");
    uint64_t round_ns = ctx.now() - round_start;
    dirty = vm.pages_dirtied_over(round_ns);
    report.rounds += 1;
  }

  // --- Fig. 8 pipeline: prepare enclaves while the VM still runs ---
  uint64_t checkpoint_bytes = 0;
  uint64_t record_bytes = 0;
  if (vm.hooks() != nullptr) {
    uint64_t prep_start = ctx.now();
    Result<uint64_t> prep = vm.hooks()->prepare_enclaves_for_migration(ctx);
    if (!prep.ok()) {
      link.send(ctx, msg(Tag::kAbort));
      return prep.status();
    }
    uint64_t extra = *prep;
    report.enclave_prepare_ns = ctx.now() - prep_start;
    report.enclave_extra_bytes = extra;
    // Encrypted checkpoints land in normal VM memory: ship them in one more
    // running-VM round together with whatever was dirtied meanwhile.
    checkpoint_bytes = extra;
    dirty += vm.pages_dirtied_over(report.enclave_prepare_ns);
    // Per-enclave creation/destruction records must be consistent with the
    // final memory image, so they ride in the stop-and-copy round.
    record_bytes = vm.hooks()->enclave_count() * 2048;
    // Ship the checkpoints, then keep pre-copying until the dirty set has
    // re-converged AND the guest is fully ready to switch (key pre-delivery
    // to the agent may still be riding on the WAN, §VI-D — the VM keeps
    // running meanwhile, which is how that latency stays hidden).
    uint64_t pending_extra = checkpoint_bytes;
    for (uint64_t extra_rounds = 0; extra_rounds < params_.max_rounds;
         ++extra_rounds) {
      if (dirty <= params_.stop_copy_threshold_pages &&
          vm.hooks()->ready_to_stop()) {
        break;
      }
      if (dirty <= params_.stop_copy_threshold_pages) {
        // Converged but not ready: idle in pre-copy a little longer.
        ctx.sleep(5'000'000);
        dirty += vm.pages_dirtied_over(5'000'000);
        continue;
      }
      uint64_t round_start = ctx.now();
      uint64_t bytes = dirty * page + pending_extra;
      link.send_sized(ctx, msg(Tag::kRound, dirty, pending_extra), bytes);
      pending_extra = 0;
      report.transferred_bytes += bytes;
      Bytes ack = link.recv(ctx);
      MIG_ASSIGN_OR_RETURN(Parsed p, parse(ack));
      if (p.tag != Tag::kRoundAck)
        return Error(ErrorCode::kInternal, "migration protocol desync");
      dirty = vm.pages_dirtied_over(ctx.now() - round_start);
      report.rounds += 1;
    }
  }

  // --- stop-and-copy ---
  uint64_t stop_time = ctx.now();
  vm.set_running(false);
  ctx.work_atomic(cost_->vm_stop_resume_ns / 2);  // pause + device save
  uint64_t final_bytes = dirty * page + record_bytes;
  link.send_sized(ctx, msg(Tag::kStop, dirty, record_bytes), final_bytes);
  report.transferred_bytes += final_bytes;

  Bytes ack = link.recv(ctx);
  MIG_ASSIGN_OR_RETURN(Parsed p, parse(ack));
  if (p.tag != Tag::kResumeAck)
    return Error(ErrorCode::kInternal, "no resume ack");
  report.downtime_ns = p.a - stop_time;

  // Wait for the guest-side enclave restore report (Fig. 10(a)).
  if (vm.hooks() != nullptr) {
    Bytes done = link.recv(ctx);
    MIG_ASSIGN_OR_RETURN(Parsed d, parse(done));
    if (d.tag != Tag::kRestoreDone)
      return Error(ErrorCode::kInternal, "no restore report");
    if (d.b != 0)
      return Error(ErrorCode::kAborted, "enclave restore failed on target");
    report.enclave_restore_ns = d.a;
  }
  report.total_ns = ctx.now() - start;
  report.success = true;
  return report;
}

Result<MigrationReport> LiveMigrationEngine::migrate_target(
    sim::ThreadCtx& ctx, Vm& vm, sim::Channel::End link) {
  MigrationReport report;
  uint64_t start = ctx.now();
  for (;;) {
    Bytes m = link.recv(ctx);
    MIG_ASSIGN_OR_RETURN(Parsed p, parse(m));
    if (p.tag == Tag::kRound) {
      // Applying pages into guest RAM: modeled inside the link throughput
      // (the effective rate already includes both ends' page processing).
      link.send(ctx, msg(Tag::kRoundAck));
      continue;
    }
    if (p.tag == Tag::kAbort)
      return Error(ErrorCode::kAborted, "source aborted the migration");
    if (p.tag != Tag::kStop)
      return Error(ErrorCode::kInternal, "unexpected migration message");
    // Apply final pages + device state, then resume the VM.
    ctx.work_atomic(cost_->vm_stop_resume_ns / 2);
    vm.set_running(true);
    uint64_t resume_time = ctx.now();
    link.send(ctx, msg(Tag::kResumeAck, resume_time));
    // Enclave rebuild/restore happens with the VM already live.
    if (vm.hooks() != nullptr) {
      Result<uint64_t> restore = vm.hooks()->resume_enclaves_after_migration(ctx);
      if (!restore.ok()) {
        link.send(ctx, msg(Tag::kRestoreDone, 0, /*error=*/1));
        return restore.status();
      }
      report.enclave_restore_ns = *restore;
      link.send(ctx, msg(Tag::kRestoreDone, *restore));
    }
    report.downtime_ns = 0;  // target does not observe source stop time
    report.total_ns = ctx.now() - start;
    report.success = true;
    return report;
  }
}

}  // namespace mig::hv
