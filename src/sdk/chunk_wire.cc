#include "sdk/chunk_wire.h"

#include <string>

#include "util/check.h"
#include "util/serde.h"

namespace mig::sdk {

namespace {

constexpr char kBlobMagic[4] = {'M', 'G', 'C', '2'};
constexpr char kChunkMagic[4] = {'C', 'H', 'N', 'K'};
constexpr char kEndMagic[4] = {'C', 'E', 'N', 'D'};
constexpr char kSnapMagic[4] = {'M', 'G', 'S', '1'};
constexpr char kDeltaSegMagic[4] = {'M', 'G', 'D', '3'};
constexpr char kDeltaBoxMagic[4] = {'M', 'G', 'V', '3'};
constexpr char kPageMagic[4] = {'M', 'G', 'P', '4'};
constexpr char kQuorumMagic[4] = {'M', 'G', 'Q', '1'};
constexpr char kMembershipMagic[4] = {'Q', 'M', 'B', '1'};

bool has_magic(ByteSpan b, const char (&magic)[4]) {
  if (b.size() < 4) return false;
  for (int i = 0; i < 4; ++i)
    if (b[i] != static_cast<uint8_t>(magic[i])) return false;
  return true;
}

void put_magic(Writer& w, const char (&magic)[4]) {
  for (char c : magic) w.u8(static_cast<uint8_t>(c));
}

bool valid_alg(uint8_t alg) {
  return alg >= static_cast<uint8_t>(crypto::CipherAlg::kRc4) &&
         alg <= static_cast<uint8_t>(crypto::CipherAlg::kChaCha20);
}

void put_header(Writer& w, const ChunkedHeader& h) {
  w.u8(static_cast<uint8_t>(h.alg));
  w.u64(h.chunk_bytes);
  w.u64(h.chunk_count);
  w.u64(h.total_bytes);
}

// Reads the header fields (after the magic) with sanity limits; flips the
// reader's ok flag via the caller's finish()/ok() checks on malformed input.
Result<ChunkedHeader> read_header(Reader& r) {
  ChunkedHeader h;
  uint8_t alg = r.u8();
  h.chunk_bytes = r.u64();
  h.chunk_count = r.u64();
  h.total_bytes = r.u64();
  if (!r.ok() || !valid_alg(alg))
    return Error(ErrorCode::kIntegrityViolation, "chunked header malformed");
  h.alg = static_cast<crypto::CipherAlg>(alg);
  if (h.chunk_count == 0 || h.chunk_count > kMaxWireChunks)
    return Error(ErrorCode::kIntegrityViolation,
                 "chunked header: absurd chunk count");
  return h;
}

}  // namespace

bool is_chunked_checkpoint(ByteSpan blob) { return has_magic(blob, kBlobMagic); }

Bytes encode_chunked_checkpoint(const ChunkedHeader& header,
                                const std::vector<Bytes>& sealed_chunks,
                                ByteSpan root) {
  MIG_CHECK(header.chunk_count == sealed_chunks.size());
  MIG_CHECK(root.size() == 32);
  Writer w;
  put_magic(w, kBlobMagic);
  put_header(w, header);
  for (uint64_t i = 0; i < sealed_chunks.size(); ++i) {
    w.u64(i);
    w.bytes(sealed_chunks[i]);
  }
  w.raw(root);
  return w.take();
}

Result<ParsedChunked> parse_chunked_checkpoint(ByteSpan blob) {
  if (!is_chunked_checkpoint(blob))
    return Error(ErrorCode::kIntegrityViolation, "not a chunked checkpoint");
  Reader r(blob.subspan(4));
  ParsedChunked out;
  MIG_ASSIGN_OR_RETURN(out.header, read_header(r));
  out.sealed_chunks.reserve(out.header.chunk_count);
  for (uint64_t i = 0; i < out.header.chunk_count; ++i) {
    uint64_t index = r.u64();
    Bytes sealed = r.bytes();
    if (!r.ok() || index != i)
      return Error(ErrorCode::kIntegrityViolation,
                   "chunked checkpoint: bad chunk record " + std::to_string(i));
    out.sealed_chunks.push_back(std::move(sealed));
  }
  out.root = r.raw(32);
  MIG_RETURN_IF_ERROR(r.finish());
  return out;
}

Bytes encode_chunk_frame(uint64_t index, ByteSpan sealed) {
  Writer w;
  put_magic(w, kChunkMagic);
  w.u64(index);
  w.bytes(sealed);
  return w.take();
}

Bytes encode_end_frame(const ChunkedHeader& header, ByteSpan root) {
  MIG_CHECK(root.size() == 32);
  Writer w;
  put_magic(w, kEndMagic);
  put_header(w, header);
  w.raw(root);
  return w.take();
}

Result<Bytes> receive_chunked_checkpoint(sim::ThreadCtx& ctx,
                                         sim::Channel::End end,
                                         uint64_t timeout_ns) {
  std::vector<Bytes> chunks;
  for (;;) {
    std::optional<Bytes> frame = end.recv_timeout(ctx, timeout_ns);
    if (!frame)
      return Error(ErrorCode::kDeadlineExceeded,
                   "chunk stream went quiet after " +
                       std::to_string(chunks.size()) + " chunk(s)");
    if (has_magic(*frame, kChunkMagic)) {
      Reader r(ByteSpan(*frame).subspan(4));
      uint64_t index = r.u64();
      Bytes sealed = r.bytes();
      if (!r.finish().ok())
        return Error(ErrorCode::kIntegrityViolation,
                     "chunk stream: malformed frame at chunk index " +
                         std::to_string(chunks.size()));
      if (chunks.size() >= kMaxWireChunks)
        return Error(ErrorCode::kIntegrityViolation,
                     "chunk stream: more than " +
                         std::to_string(kMaxWireChunks) + " chunks");
      if (index != chunks.size())
        return Error(ErrorCode::kIntegrityViolation,
                     "chunk stream: expected chunk index " +
                         std::to_string(chunks.size()) + ", frame carries " +
                         std::to_string(index));
      chunks.push_back(std::move(sealed));
      continue;
    }
    if (has_magic(*frame, kEndMagic)) {
      Reader r(ByteSpan(*frame).subspan(4));
      MIG_ASSIGN_OR_RETURN(ChunkedHeader h, read_header(r));
      Bytes root = r.raw(32);
      MIG_RETURN_IF_ERROR(r.finish());
      if (h.chunk_count != chunks.size())
        return Error(ErrorCode::kIntegrityViolation,
                     "chunk stream: end frame announces " +
                         std::to_string(h.chunk_count) + " chunks, saw " +
                         std::to_string(chunks.size()));
      return encode_chunked_checkpoint(h, chunks, root);
    }
    return Error(ErrorCode::kIntegrityViolation,
                 "chunk stream: unknown frame at chunk index " +
                     std::to_string(chunks.size()));
  }
}

bool is_snapshot_envelope(ByteSpan blob) { return has_magic(blob, kSnapMagic); }

Bytes encode_snapshot_envelope(const SnapshotEnvelope& env) {
  MIG_CHECK(env.mrenclave.size() == 32);
  MIG_CHECK(env.counter != 0);
  Writer w;
  put_magic(w, kSnapMagic);
  w.raw(env.mrenclave);
  w.u64(env.counter);
  w.bytes(env.inner);
  return w.take();
}

Result<SnapshotEnvelope> parse_snapshot_envelope(ByteSpan blob) {
  if (!is_snapshot_envelope(blob))
    return Error(ErrorCode::kIntegrityViolation, "not a snapshot envelope");
  Reader r(blob.subspan(4));
  SnapshotEnvelope env;
  env.mrenclave = r.raw(32);
  env.counter = r.u64();
  env.inner = r.bytes();
  if (!r.ok())
    return Error(ErrorCode::kIntegrityViolation,
                 "snapshot envelope truncated");
  MIG_RETURN_IF_ERROR(r.finish());
  if (env.counter == 0)
    return Error(ErrorCode::kIntegrityViolation,
                 "snapshot envelope: counter 0 is never granted");
  if (env.inner.empty())
    return Error(ErrorCode::kIntegrityViolation,
                 "snapshot envelope: empty sealed payload");
  return env;
}

// ---- incremental checkpoint wire format (v3) ----

bool is_delta_segment(ByteSpan blob) { return has_magic(blob, kDeltaSegMagic); }

bool is_delta_checkpoint(ByteSpan blob) {
  return has_magic(blob, kDeltaBoxMagic);
}

Bytes encode_delta_segment(const DeltaSegment& seg) {
  MIG_CHECK(seg.chain.size() == 32);
  MIG_CHECK(seg.final_segment || seg.trailer.empty());
  Writer w;
  put_magic(w, kDeltaSegMagic);
  w.u8(static_cast<uint8_t>(seg.alg));
  w.u64(seg.index);
  w.u8(seg.final_segment ? 1 : 0);
  w.u64(seg.records.size());
  for (const DeltaRecord& rec : seg.records) {
    w.u64(rec.page);
    w.u64(rec.version);
    w.u8(static_cast<uint8_t>(rec.kind));
    w.bytes(rec.payload);
  }
  w.bytes(seg.trailer);
  w.raw(seg.chain);
  return w.take();
}

Result<DeltaSegment> parse_delta_segment(ByteSpan blob) {
  if (!is_delta_segment(blob))
    return Error(ErrorCode::kIntegrityViolation, "not a delta segment");
  Reader r(blob.subspan(4));
  DeltaSegment seg;
  uint8_t alg = r.u8();
  seg.index = r.u64();
  uint8_t fin = r.u8();
  uint64_t count = r.u64();
  if (!r.ok() || !valid_alg(alg) || fin > 1)
    return Error(ErrorCode::kIntegrityViolation, "delta segment malformed");
  seg.alg = static_cast<crypto::CipherAlg>(alg);
  seg.final_segment = fin == 1;
  if (count > kMaxDeltaRecords)
    return Error(ErrorCode::kIntegrityViolation,
                 "delta segment: absurd record count");
  seg.records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DeltaRecord rec;
    rec.page = r.u64();
    rec.version = r.u64();
    uint8_t kind = r.u8();
    rec.payload = r.bytes();
    if (!r.ok() || kind > static_cast<uint8_t>(DeltaRecordKind::kRemote))
      return Error(ErrorCode::kIntegrityViolation,
                   "delta segment: bad record " + std::to_string(i));
    rec.kind = static_cast<DeltaRecordKind>(kind);
    if (rec.kind == DeltaRecordKind::kZero && !rec.payload.empty())
      return Error(ErrorCode::kIntegrityViolation,
                   "delta segment: zero record carries payload");
    if (rec.kind == DeltaRecordKind::kDup && rec.payload.size() != 32)
      return Error(ErrorCode::kIntegrityViolation,
                   "delta segment: dup record without a 32-byte hash");
    if (rec.kind == DeltaRecordKind::kRemote && rec.payload.size() != 32)
      return Error(ErrorCode::kIntegrityViolation,
                   "delta segment: remote record without a 32-byte hash");
    if (rec.kind == DeltaRecordKind::kRemote && fin != 1)
      return Error(ErrorCode::kIntegrityViolation,
                   "delta segment: remote record outside the final segment");
    seg.records.push_back(std::move(rec));
  }
  seg.trailer = r.bytes();
  seg.chain = r.raw(32);
  MIG_RETURN_IF_ERROR(r.finish());
  if (!seg.final_segment && !seg.trailer.empty())
    return Error(ErrorCode::kIntegrityViolation,
                 "delta segment: trailer on a non-final segment");
  return seg;
}

Bytes encode_delta_container(const std::vector<Bytes>& segments) {
  MIG_CHECK(!segments.empty());
  Writer w;
  put_magic(w, kDeltaBoxMagic);
  w.u64(segments.size());
  for (const Bytes& seg : segments) w.bytes(seg);
  return w.take();
}

Result<std::vector<Bytes>> parse_delta_container(ByteSpan blob) {
  if (!is_delta_checkpoint(blob))
    return Error(ErrorCode::kIntegrityViolation, "not a delta checkpoint");
  Reader r(blob.subspan(4));
  uint64_t count = r.u64();
  if (!r.ok() || count == 0 || count > kMaxDeltaSegments)
    return Error(ErrorCode::kIntegrityViolation,
                 "delta checkpoint: absurd segment count");
  std::vector<Bytes> segments;
  segments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Bytes seg = r.bytes();
    if (!r.ok())
      return Error(ErrorCode::kIntegrityViolation,
                   "delta checkpoint: truncated at segment " +
                       std::to_string(i));
    segments.push_back(std::move(seg));
  }
  MIG_RETURN_IF_ERROR(r.finish());
  return segments;
}

// ---- remote-page protocol (wire format v4) ----

bool is_page_frame(ByteSpan blob) { return has_magic(blob, kPageMagic); }

std::optional<PageFrameKind> page_frame_kind(ByteSpan blob) {
  if (!has_magic(blob, kPageMagic) || blob.size() < 5) return std::nullopt;
  uint8_t kind = blob[4];
  if (kind > static_cast<uint8_t>(PageFrameKind::kDone)) return std::nullopt;
  return static_cast<PageFrameKind>(kind);
}

Bytes encode_page_request(const PageRequest& req) {
  MIG_CHECK(req.epoch != 0);
  MIG_CHECK(!req.pages.empty());
  Writer w;
  put_magic(w, kPageMagic);
  w.u8(static_cast<uint8_t>(PageFrameKind::kRequest));
  w.u64(req.epoch);
  w.u64(req.pages.size());
  for (uint64_t page : req.pages) w.u64(page);
  return w.take();
}

Bytes encode_page_reply(const PageReply& reply) {
  MIG_CHECK(reply.epoch != 0);
  Writer w;
  put_magic(w, kPageMagic);
  w.u8(static_cast<uint8_t>(PageFrameKind::kReply));
  w.u64(reply.epoch);
  w.u64(reply.first_seq);
  w.u64(reply.records.size());
  for (const PageReplyRecord& rec : reply.records) {
    MIG_CHECK(rec.chain.size() == 32);
    w.u64(rec.page);
    w.u64(rec.version);
    w.bytes(rec.sealed);
    w.raw(rec.chain);
  }
  return w.take();
}

Bytes encode_page_done() {
  Writer w;
  put_magic(w, kPageMagic);
  w.u8(static_cast<uint8_t>(PageFrameKind::kDone));
  return w.take();
}

Result<PageRequest> parse_page_request(ByteSpan blob) {
  if (page_frame_kind(blob) != PageFrameKind::kRequest)
    return Error(ErrorCode::kIntegrityViolation, "not a page request");
  Reader r(blob.subspan(5));
  PageRequest req;
  req.epoch = r.u64();
  uint64_t count = r.u64();
  if (!r.ok() || req.epoch == 0)
    return Error(ErrorCode::kIntegrityViolation, "page request malformed");
  if (count == 0 || count > kMaxPageRecords)
    return Error(ErrorCode::kIntegrityViolation,
                 "page request: absurd page count");
  req.pages.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t page = r.u64();
    if (!r.ok())
      return Error(ErrorCode::kIntegrityViolation,
                   "page request: truncated at page index " +
                       std::to_string(i));
    if (!req.pages.empty() && page <= req.pages.back())
      return Error(ErrorCode::kIntegrityViolation,
                   "page request: pages not strictly increasing at index " +
                       std::to_string(i));
    req.pages.push_back(page);
  }
  MIG_RETURN_IF_ERROR(r.finish());
  return req;
}

Result<PageReply> parse_page_reply(ByteSpan blob) {
  if (page_frame_kind(blob) != PageFrameKind::kReply)
    return Error(ErrorCode::kIntegrityViolation, "not a page reply");
  Reader r(blob.subspan(5));
  PageReply reply;
  reply.epoch = r.u64();
  reply.first_seq = r.u64();
  uint64_t count = r.u64();
  if (!r.ok() || reply.epoch == 0)
    return Error(ErrorCode::kIntegrityViolation, "page reply malformed");
  if (count == 0 || count > kMaxPageRecords)
    return Error(ErrorCode::kIntegrityViolation,
                 "page reply: absurd record count");
  reply.records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PageReplyRecord rec;
    rec.page = r.u64();
    rec.version = r.u64();
    rec.sealed = r.bytes();
    rec.chain = r.raw(32);
    if (!r.ok())
      return Error(ErrorCode::kIntegrityViolation,
                   "page reply: truncated at record " + std::to_string(i));
    if (rec.sealed.empty())
      return Error(ErrorCode::kIntegrityViolation,
                   "page reply: empty sealed payload at record " +
                       std::to_string(i));
    reply.records.push_back(std::move(rec));
  }
  MIG_RETURN_IF_ERROR(r.finish());
  return reply;
}

// ---- quorum counter service wire formats ----

bool is_quorum_reply(ByteSpan blob) { return has_magic(blob, kQuorumMagic); }

Bytes encode_quorum_membership(const QuorumMembership& m) {
  MIG_CHECK(!m.members.empty() && m.members.size() % 2 == 1);
  Writer w;
  put_magic(w, kMembershipMagic);
  w.u64(m.members.size());
  for (const QuorumMember& mem : m.members) {
    MIG_CHECK(mem.measurement.size() == 32);
    MIG_CHECK(!mem.pk.empty());
    w.u64(mem.id);
    w.raw(mem.measurement);
    w.bytes(mem.pk);
  }
  return w.take();
}

Result<QuorumMembership> parse_quorum_membership(ByteSpan blob) {
  if (!has_magic(blob, kMembershipMagic))
    return Error(ErrorCode::kIntegrityViolation, "not a quorum membership");
  Reader r(blob.subspan(4));
  uint64_t n = r.u64();
  if (!r.ok() || n == 0 || n > kMaxQuorumReplicas)
    return Error(ErrorCode::kIntegrityViolation,
                 "quorum membership: absurd member count");
  if (n % 2 == 0)
    return Error(ErrorCode::kIntegrityViolation,
                 "quorum membership: member count must be 2f+1 (odd)");
  QuorumMembership m;
  m.members.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    QuorumMember mem;
    mem.id = r.u64();
    mem.measurement = r.raw(32);
    mem.pk = r.bytes();
    if (!r.ok())
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum membership: truncated at member " +
                       std::to_string(i));
    if (mem.pk.empty())
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum membership: empty key for member " +
                       std::to_string(i));
    for (const QuorumMember& prev : m.members) {
      if (prev.id == mem.id)
        return Error(ErrorCode::kIntegrityViolation,
                     "quorum membership: duplicate replica id " +
                         std::to_string(mem.id));
    }
    m.members.push_back(std::move(mem));
  }
  MIG_RETURN_IF_ERROR(r.finish());
  return m;
}

Bytes encode_quorum_reply(const QuorumReplyEnvelope& env) {
  MIG_CHECK(!env.records.empty());
  MIG_CHECK(env.records.size() == env.sigs.size());
  Writer w;
  put_magic(w, kQuorumMagic);
  w.u64(env.records.size());
  for (const QuorumReplyRecord& rec : env.records) {
    MIG_CHECK(rec.key_commit.size() == 32);
    MIG_CHECK(rec.root.size() == 32);
    w.u64(rec.replica_id);
    w.u64(rec.counter);
    w.raw(rec.key_commit);
    w.u64(rec.tree_size);
    w.raw(rec.root);
    w.bytes(rec.leaf);
    w.u64(rec.proof.size());
    for (const Bytes& node : rec.proof) {
      MIG_CHECK(node.size() == 32);
      w.raw(node);
    }
    w.bytes(rec.dh_pub_s);
    w.bytes(rec.enc_key);
  }
  w.u64(env.sigs.size());
  for (const Bytes& sig : env.sigs) w.bytes(sig);
  return w.take();
}

Result<QuorumReplyEnvelope> parse_quorum_reply(ByteSpan blob) {
  if (!is_quorum_reply(blob))
    return Error(ErrorCode::kIntegrityViolation, "not a quorum reply");
  Reader r(blob.subspan(4));
  uint64_t count = r.u64();
  if (!r.ok())
    return Error(ErrorCode::kIntegrityViolation, "quorum reply malformed");
  if (count == 0)
    return Error(ErrorCode::kIntegrityViolation,
                 "quorum reply: empty reply set");
  if (count > kMaxQuorumReplicas)
    return Error(ErrorCode::kIntegrityViolation,
                 "quorum reply: absurd record count");
  QuorumReplyEnvelope env;
  env.records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    QuorumReplyRecord rec;
    rec.replica_id = r.u64();
    rec.counter = r.u64();
    rec.key_commit = r.raw(32);
    rec.tree_size = r.u64();
    rec.root = r.raw(32);
    rec.leaf = r.bytes();
    uint64_t proof_len = r.u64();
    if (!r.ok())
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum reply: truncated record " + std::to_string(i));
    if (proof_len > kMaxQuorumProofNodes)
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum reply: absurd proof length in record " +
                       std::to_string(i));
    rec.proof.reserve(proof_len);
    for (uint64_t p = 0; p < proof_len; ++p) {
      Bytes node = r.raw(32);
      if (!r.ok())
        return Error(ErrorCode::kIntegrityViolation,
                     "quorum reply: truncated merkle proof in record " +
                         std::to_string(i));
      rec.proof.push_back(std::move(node));
    }
    rec.dh_pub_s = r.bytes();
    rec.enc_key = r.bytes();
    if (!r.ok())
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum reply: truncated record " + std::to_string(i));
    if (rec.counter == 0)
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum reply: counter 0 is never granted (record " +
                       std::to_string(i) + ")");
    if (rec.tree_size == 0 || rec.leaf.empty())
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum reply: empty audit log in record " +
                       std::to_string(i));
    for (const QuorumReplyRecord& prev : env.records) {
      if (prev.replica_id == rec.replica_id)
        return Error(ErrorCode::kIntegrityViolation,
                     "quorum reply: duplicate replica id " +
                         std::to_string(rec.replica_id));
    }
    env.records.push_back(std::move(rec));
  }
  uint64_t sig_count = r.u64();
  if (!r.ok() || sig_count != count)
    return Error(ErrorCode::kIntegrityViolation,
                 "quorum reply: signature count does not match record count");
  env.sigs.reserve(sig_count);
  for (uint64_t i = 0; i < sig_count; ++i) {
    Bytes sig = r.bytes();
    if (!r.ok() || sig.empty())
      return Error(ErrorCode::kIntegrityViolation,
                   "quorum reply: bad signature " + std::to_string(i));
    env.sigs.push_back(std::move(sig));
  }
  MIG_RETURN_IF_ERROR(r.finish());
  return env;
}

Bytes quorum_reply_transcript(std::string_view verb, ByteSpan dh_pub_e,
                              const QuorumReplyRecord& rec) {
  // The proof is deliberately outside the transcript: it is verified against
  // the signed root, so tampering with it is already detected, and keeping it
  // unsigned lets a replica prove the same leaf against later roots.
  Writer t;
  t.str("qrm-reply");
  t.str(verb);
  t.bytes(dh_pub_e);
  t.u64(rec.replica_id);
  t.u64(rec.counter);
  t.raw(rec.key_commit);
  t.u64(rec.tree_size);
  t.raw(rec.root);
  t.bytes(rec.leaf);
  t.bytes(rec.dh_pub_s);
  t.bytes(rec.enc_key);
  return t.take();
}

}  // namespace mig::sdk
