#include "sdk/control.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "crypto/ciphers.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdk/builder.h"
#include "sdk/chunk_wire.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::sdk {

ControlReply ControlMailbox::post(sim::ThreadCtx& ctx, ControlCmd cmd) {
  // Multiple host threads may target one mailbox (e.g. every migrating
  // process fetches from the same agent enclave): serialize them, blocking
  // on an event rather than polling.
  while (busy_) {
    free_.reset();
    free_.wait(ctx);
  }
  busy_ = true;
  cmd_ = std::move(cmd);
  reply_ready_.reset();
  cmd_ready_.set(ctx);
  reply_ready_.wait(ctx);
  MIG_CHECK(reply_.has_value());
  ControlReply out = std::move(*reply_);
  reply_.reset();
  busy_ = false;
  free_.set(ctx);
  return out;
}

ControlCmd ControlMailbox::wait_cmd(sim::ThreadCtx& ctx) {
  cmd_ready_.wait(ctx);
  cmd_ready_.reset();
  MIG_CHECK(cmd_.has_value());
  ControlCmd out = std::move(*cmd_);
  cmd_.reset();
  return out;
}

void ControlMailbox::reply(sim::ThreadCtx& ctx, ControlReply reply) {
  reply_ = std::move(reply);
  reply_ready_.set(ctx);
}

uint64_t true_cssa_from_flags(uint64_t local_flag, uint64_t cssa_eenter) {
  // §IV-C: local flag free <=> EENTER/EEXIT balanced <=> AEX/ERESUME
  // balanced <=> CSSA == 0. Local flag spin <=> the thread is outside the
  // enclave with one unmatched AEX <=> CSSA == CSSA_EENTER + 1.
  if (local_flag == kFlagSpin) return cssa_eenter + 1;
  return 0;
}

namespace {

// ---- in-control-thread state shared between kRestore and kFinishRestore ----
struct WorkerSnapshot {
  uint64_t local_flag = 0;
  uint64_t cssa_eenter = 0;
  uint64_t true_cssa = 0;
  Bytes tls_page;
  std::vector<Bytes> ssa_frames;  // frames [0, true_cssa-1)
};

struct Checkpoint {
  std::vector<WorkerSnapshot> workers;
  Bytes meta_page;
  Bytes data_region;
  Bytes heap_region;
};

struct RestoreState {
  bool active = false;
  Checkpoint ckpt;
};

// The control-thread engine. Everything in this class conceptually executes
// inside the enclave; its only communication with the outside is the
// mailbox, network channels (ciphertext/public values) and the quote relay.
class ControlEngine {
 public:
  ControlEngine(EnclaveEnv& env, ControlDeps& deps)
      : env_(&env), deps_(&deps), l_(&env.layout()) {}

  ControlReply handle(ControlCmd& cmd) {
    switch (cmd.type) {
      case ControlCmd::Type::kProvision: return provision(cmd);
      case ControlCmd::Type::kPrepareCheckpoint: return prepare(cmd);
      case ControlCmd::Type::kServeKey: return serve_key(cmd);
      case ControlCmd::Type::kCancelMigration: return cancel(cmd);
      case ControlCmd::Type::kRestore: return restore(cmd);
      case ControlCmd::Type::kFinishRestore: return finish_restore(cmd);
      case ControlCmd::Type::kOwnerCheckpoint: return owner_checkpoint(cmd);
      case ControlCmd::Type::kOwnerRestore: return owner_restore(cmd);
      case ControlCmd::Type::kAgentFetchKey: return agent_fetch_key(cmd);
      case ControlCmd::Type::kAgentServeLocal: return agent_serve_local(cmd);
      case ControlCmd::Type::kStoreSnapshot: return store_snapshot(cmd);
      case ControlCmd::Type::kStoreRestore: return store_restore(cmd);
      case ControlCmd::Type::kAdvanceCounter: return advance_counter(cmd);
      case ControlCmd::Type::kDumpBaseline: return dump_baseline(cmd);
      case ControlCmd::Type::kDumpDelta: return dump_delta(cmd);
      case ControlCmd::Type::kServePages: return serve_pages(cmd);
      case ControlCmd::Type::kApplyPages: return apply_pages(cmd);
      case ControlCmd::Type::kAbortPostcopy: return abort_postcopy(cmd);
      case ControlCmd::Type::kNaiveDump: return naive_dump(cmd);
      case ControlCmd::Type::kShutdown: return {};
    }
    return {Error(ErrorCode::kInvalidArgument, "unknown command"), {}, {}};
  }

 private:
  // ---- small helpers -------------------------------------------------------
  ControlReply fail(ErrorCode code, std::string msg) {
    return {Error(code, std::move(msg)), {}, {}};
  }

  uint64_t num_workers() const { return l_->params.num_workers; }

  bool self_destroyed() { return env_->read_u64(kOffSelfDestroyed) == 1; }

  crypto::Digest own_mrenclave() {
    auto rep = env_->ereport(sgx::TargetInfo{}, {});
    MIG_CHECK(rep.ok());
    return rep->mrenclave;
  }

  crypto::Digest own_mrsigner() {
    auto rep = env_->ereport(sgx::TargetInfo{}, {});
    MIG_CHECK(rep.ok());
    return rep->mrsigner;
  }

  Bytes config_blob(int index) {
    Bytes page = env_->read_bytes(l_->config_off, sgx::kPageSize);
    return read_config_blob(page, index);
  }

  crypto::BigNum embedded_identity_pk() {
    return crypto::BigNum::from_bytes(config_blob(0));
  }
  crypto::BigNum embedded_ias_pk() {
    return crypto::BigNum::from_bytes(config_blob(2));
  }
  // Counter-service verification key (config blob 3); empty when the image
  // was built without one — every store command then fails closed.
  Bytes embedded_counter_pk_blob() { return config_blob(3); }

  // Pinned quorum membership (config blob 4, QMB1); non-empty switches every
  // store command to quorum mode: f+1 matching signed replies required, and
  // single-signer CTRGRANTs are rejected outright (anti-downgrade).
  Bytes embedded_quorum_membership_blob() { return config_blob(4); }

  void wan_round_trip() { env_->ctx().sleep(2 * env_->cost().wan_latency_ns); }

  // ---- two-phase checkpointing (§IV-B) -------------------------------------
  // Phase one: set the global flag and wait until every worker thread is at
  // the quiescent point (local flag free or spin). Phase two: dump.
  void reach_quiescent_point() {
    env_->write_u64(kOffGlobalFlag, 1);
    for (;;) {
      bool quiescent = true;
      for (uint64_t i = 0; i < num_workers(); ++i) {
        uint64_t flag = env_->read_u64(l_->tls_offset(i) + kTlLocalFlag);
        if (flag == kFlagBusy) {
          quiescent = false;
          break;
        }
      }
      if (quiescent) return;
      env_->work(500);
    }
  }

  // Page-granular dump: every page costs traversal time *as it is read*, so
  // in virtual time the dump genuinely overlaps whatever else runs — which
  // is precisely what the §IV-A consistency attack exploits when the
  // quiescence protocol is skipped (kNaiveDump).
  uint64_t charge_page_dump() {
    // The chunked pipeline charges dump traversal per *chunk* inside the
    // pipeline instead (stage 1), so it can overlap sealing in virtual time;
    // by then the quiescent point has been reached, so per-page cost
    // placement no longer affects what the dump can observe.
    if (charge_dump_)
      env_->work(sim::per_byte_x100(
          env_->cost().checkpoint_dump_ns_per_byte_x100, sgx::kPageSize));
    return sgx::kPageSize;
  }

  Result<Bytes> dump_region(uint64_t off, uint64_t pages) {
    Bytes out;
    out.reserve(pages * sgx::kPageSize);
    for (uint64_t p = 0; p < pages; ++p) {
      Bytes page;
      Status st = env_->try_read_bytes(off + p * sgx::kPageSize,
                                       sgx::kPageSize, page);
      if (!st.ok()) {
        // §IV-B: "If having executable, writable and non-readable permission,
        // one EPC page cannot be migrated because the control thread cannot
        // read its content. This is a limitation of our solution in SGX v1."
        return Error(ErrorCode::kPermissionDenied,
                     "enclave has a non-readable (W+X) page; cannot be "
                     "migrated under SGXv1 (" + st.message() + ")");
      }
      append(out, page);
      charge_page_dump();
    }
    return out;
  }

  std::vector<WorkerSnapshot> capture_workers() {
    std::vector<WorkerSnapshot> out;
    for (uint64_t i = 0; i < num_workers(); ++i) {
      WorkerSnapshot w;
      uint64_t tls = l_->tls_offset(i);
      w.local_flag = env_->read_u64(tls + kTlLocalFlag);
      w.cssa_eenter = env_->read_u64(tls + kTlCssaEenter);
      w.true_cssa = true_cssa_from_flags(w.local_flag, w.cssa_eenter);
      w.tls_page = env_->read_bytes(tls, sgx::kPageSize);
      charge_page_dump();
      // Lower SSA frames hold real interrupted contexts; the top frame of a
      // spinning thread is reconstructed on restore.
      for (uint64_t f = 0; f + 1 < w.true_cssa; ++f) {
        w.ssa_frames.push_back(env_->read_bytes(
            l_->ssa_offset(i) + f * sgx::kPageSize, sgx::kPageSize));
        charge_page_dump();
      }
      out.push_back(std::move(w));
    }
    return out;
  }

  Result<Checkpoint> capture() {
    Checkpoint c;
    c.workers = capture_workers();
    c.meta_page = env_->read_bytes(0, sgx::kPageSize);
    charge_page_dump();
    MIG_ASSIGN_OR_RETURN(c.data_region,
                         dump_region(l_->data_off, l_->params.data_pages));
    MIG_ASSIGN_OR_RETURN(c.heap_region,
                         dump_region(l_->heap_off, l_->params.heap_pages));
    return c;
  }

  static void write_workers(Writer& w,
                            const std::vector<WorkerSnapshot>& workers) {
    w.u64(workers.size());
    for (const WorkerSnapshot& ws : workers) {
      w.u64(ws.local_flag);
      w.u64(ws.cssa_eenter);
      w.u64(ws.true_cssa);
      w.bytes(ws.tls_page);
      w.u64(ws.ssa_frames.size());
      for (const Bytes& f : ws.ssa_frames) w.bytes(f);
    }
  }

  static Result<std::vector<WorkerSnapshot>> read_workers(Reader& r) {
    std::vector<WorkerSnapshot> out;
    uint64_t n = r.u64();
    if (!r.ok() || n > 1024)
      return Error(ErrorCode::kInvalidArgument, "absurd worker count");
    for (uint64_t i = 0; i < n; ++i) {
      WorkerSnapshot w;
      w.local_flag = r.u64();
      w.cssa_eenter = r.u64();
      w.true_cssa = r.u64();
      w.tls_page = r.bytes();
      uint64_t frames = r.u64();
      if (!r.ok() || frames > kNssa)
        return Error(ErrorCode::kInvalidArgument, "bad frames");
      for (uint64_t f = 0; f < frames; ++f) w.ssa_frames.push_back(r.bytes());
      out.push_back(std::move(w));
    }
    return out;
  }

  static Bytes serialize_checkpoint(const Checkpoint& c) {
    Writer w;
    write_workers(w, c.workers);
    w.bytes(c.meta_page);
    w.bytes(c.data_region);
    w.bytes(c.heap_region);
    return w.take();
  }

  static Result<Checkpoint> parse_checkpoint(ByteSpan outer) {
    // Outer wrapper: length-prefixed body + optional random padding
    // (§VII-A: the blob size need not reflect the enclave's memory usage).
    Reader ro(outer);
    Bytes body = ro.bytes();
    if (!ro.ok())
      return Error(ErrorCode::kInvalidArgument, "malformed checkpoint");
    Reader r(body);
    Checkpoint c;
    MIG_ASSIGN_OR_RETURN(c.workers, read_workers(r));
    c.meta_page = r.bytes();
    c.data_region = r.bytes();
    c.heap_region = r.bytes();
    MIG_RETURN_IF_ERROR(r.finish());
    return c;
  }

  Bytes checkpoint_plaintext(const Checkpoint& c, uint64_t pad_to_multiple) {
    Bytes body = serialize_checkpoint(c);
    Writer w;
    w.bytes(body);
    if (pad_to_multiple > 0) {
      uint64_t total = w.data().size();
      uint64_t padded = (total + pad_to_multiple - 1) / pad_to_multiple *
                        pad_to_multiple;
      w.raw(deps_->rng.generate(padded - total));
    }
    return w.take();
  }

  // Legacy v1: one seal() over the whole plaintext, serial on this thread.
  Bytes seal_plain_v1(ByteSpan plain, ByteSpan key, crypto::CipherAlg alg) {
    env_->work(crypto::cipher_cost_ns(alg, plain.size()));
    env_->work(sim::per_byte_x100(env_->cost().sha256_ns_per_byte_x100,
                                  plain.size()));
    return crypto::seal(alg, key, plain);
  }

  // The pipelined chunked data path (wire format v2). Three stages overlap
  // in virtual time:
  //   1. dump      — this thread walks the serialized state chunk by chunk,
  //                  charging traversal cost and publishing progress;
  //   2. seal      — `seal_workers` sim threads (parked TCSs woken into a
  //                  crypto loop) claim chunk indices and seal each chunk
  //                  under its Kmigrate+index subkey, contending with
  //                  everything else for the model CPUs;
  //   3. send      — this thread ships each sealed chunk over cmd.chunk_stream
  //                  the moment it is ready. send() never blocks the sender —
  //                  the link itself serializes — so the wire carries chunk k
  //                  while the workers encrypt chunk k+1.
  // Per-chunk MACs fold into one integrity root (crypto::ChunkSealer): the
  // checkpoint is still accepted or rejected as a single unit.
  Bytes seal_plain_chunked(Bytes plain_in, ByteSpan key, ControlCmd& cmd) {
    const sim::CostModel& cost = env_->cost();
    const uint64_t chunk_bytes = cmd.chunk_bytes;
    const uint64_t chunks =
        std::max<uint64_t>(1, (plain_in.size() + chunk_bytes - 1) / chunk_bytes);
    const uint64_t workers =
        std::clamp<uint64_t>(cmd.seal_workers, 1, chunks);

    struct Pipeline {
      Bytes plain;
      uint64_t chunk_bytes = 0;
      uint64_t chunks = 0;
      uint64_t dumped = 0;      // chunks stage 1 has produced
      uint64_t next_claim = 0;  // next index a sealing worker takes
      std::vector<Bytes> sealed;
      crypto::ChunkSealer sealer;
      sim::Event dumped_ev;
      sim::Event sealed_ev;
      Pipeline(sim::Executor& ex, crypto::CipherAlg alg, ByteSpan k)
          : sealer(alg, k), dumped_ev(ex), sealed_ev(ex) {}
      ByteSpan chunk(uint64_t i) const {
        uint64_t off = i * chunk_bytes;
        return ByteSpan(plain).subspan(
            off, std::min<uint64_t>(chunk_bytes, plain.size() - off));
      }
    };
    auto p = std::make_shared<Pipeline>(env_->ctx().executor(), cmd.cipher, key);
    p->plain = std::move(plain_in);
    p->chunk_bytes = chunk_bytes;
    p->chunks = chunks;
    p->sealed.resize(chunks);

    if (obs::metrics_enabled()) {
      auto& m = obs::metrics();
      m.set_gauge("pipeline.depth", workers);
      m.set_gauge("pipeline.chunk_bytes", chunk_bytes);
    }

    const crypto::CipherAlg alg = cmd.cipher;
    const sim::CostModel* cm = &cost;
    for (uint64_t wi = 0; wi < workers; ++wi) {
      env_->work(cost.seal_worker_spawn_ns);
      env_->ctx().executor().spawn(
          "seal-w" + std::to_string(wi), [p, alg, cm](sim::ThreadCtx& tc) {
            obs::Span<sim::ThreadCtx> span(tc, "pipeline.seal_worker", "sdk");
            for (;;) {
              if (p->next_claim >= p->chunks) return;
              uint64_t i = p->next_claim++;
              while (p->dumped <= i) {
                p->dumped_ev.reset();
                p->dumped_ev.wait(tc);
              }
              ByteSpan chunk = p->chunk(i);
              uint64_t t0 = tc.now();
              tc.work(cm->chunk_setup_ns +
                      crypto::cipher_cost_ns(alg, chunk.size()) +
                      sim::per_byte_x100(cm->sha256_ns_per_byte_x100,
                                         chunk.size()));
              auto sealed = p->sealer.seal_chunk(i, chunk);
              MIG_CHECK(sealed.ok());  // indices are claimed uniquely
              p->sealed[i] = std::move(*sealed);
              if (obs::metrics_enabled()) {
                obs::metrics().add("pipeline.chunks_sealed");
                obs::metrics().observe("pipeline.chunk_seal_ns", tc.now() - t0);
              }
              p->sealed_ev.set(tc);
            }
          });
    }

    {
      obs::Span<sim::ThreadCtx> dump_span(env_->ctx(), "pipeline.dump", "sdk",
                                          {{"chunks", chunks}});
      for (uint64_t i = 0; i < chunks; ++i) {
        env_->work(sim::per_byte_x100(cost.checkpoint_dump_ns_per_byte_x100,
                                      p->chunk(i).size()));
        p->dumped = i + 1;
        p->dumped_ev.set(env_->ctx());
      }
    }

    {
      obs::Span<sim::ThreadCtx> send_span(env_->ctx(), "pipeline.send", "sdk");
      for (uint64_t i = 0; i < chunks; ++i) {
        while (p->sealed[i].empty()) {
          p->sealed_ev.reset();
          p->sealed_ev.wait(env_->ctx());
        }
        if (cmd.chunk_stream.has_value())
          cmd.chunk_stream->send(env_->ctx(),
                                 encode_chunk_frame(i, p->sealed[i]));
      }
    }

    auto root = p->sealer.integrity_root();
    MIG_CHECK(root.ok());
    ChunkedHeader h;
    h.alg = cmd.cipher;
    h.chunk_bytes = chunk_bytes;
    h.chunk_count = chunks;
    h.total_bytes = p->plain.size();
    if (cmd.chunk_stream.has_value())
      cmd.chunk_stream->send(env_->ctx(), encode_end_frame(h, *root));
    return encode_chunked_checkpoint(h, p->sealed, *root);
  }

  Bytes seal_checkpoint(const Checkpoint& c, ByteSpan key, ControlCmd& cmd) {
    Bytes plain = checkpoint_plaintext(c, cmd.pad_to_multiple);
    if (cmd.chunk_bytes == 0) return seal_plain_v1(plain, key, cmd.cipher);
    return seal_plain_chunked(std::move(plain), key, cmd);
  }

  // Mirror of seal_plain_chunked on the restore side: open every chunk under
  // its index-derived subkey, then require the integrity root to cover
  // exactly the announced chunk set. Serial — restore latency is dominated
  // by the pump replay, and a lone target thread has no workers to spare.
  Result<Bytes> open_chunked(ByteSpan blob, ByteSpan key) {
    const sim::CostModel& cost = env_->cost();
    MIG_ASSIGN_OR_RETURN(ParsedChunked pc, parse_chunked_checkpoint(blob));
    if (pc.header.total_bytes > (uint64_t{1} << 32))
      return Error(ErrorCode::kIntegrityViolation,
                   "chunked checkpoint: absurd total size");
    crypto::ChunkOpener opener(key);
    Bytes plain;
    for (uint64_t i = 0; i < pc.sealed_chunks.size(); ++i) {
      const Bytes& sc = pc.sealed_chunks[i];
      env_->work(cost.chunk_setup_ns + crypto::cipher_cost_ns(pc.header.alg, sc.size()) +
                 sim::per_byte_x100(cost.sha256_ns_per_byte_x100, sc.size()));
      Result<Bytes> chunk = opener.open_chunk(i, sc);
      if (!chunk.ok())
        return Error(chunk.status().code(),
                     "chunk " + std::to_string(i) + " of " +
                         std::to_string(pc.sealed_chunks.size()) + ": " +
                         chunk.status().message());
      append(plain, *chunk);
    }
    MIG_RETURN_IF_ERROR(opener.verify_root(pc.header.chunk_count, pc.root));
    if (plain.size() != pc.header.total_bytes)
      return Error(ErrorCode::kIntegrityViolation,
                   "chunked checkpoint: total size mismatch");
    return plain;
  }

  // ---- incremental checkpointing (wire format v3) ----------------------------
  // Source-side session state between kDumpBaseline and the final kDumpDelta.
  struct DeltaState {
    bool active = false;
    Bytes root_key;                         // chain key (from Kmigrate)
    crypto::Digest chain{};                 // running chain, zero at start
    uint64_t next_segment = 0;
    std::map<uint64_t, uint64_t> shipped;   // page -> last shipped version
    std::set<crypto::Digest> shipped_hashes;  // content already on the wire
  };

  // Post-copy (wire v4) source state, armed by the final kDumpDelta when the
  // residual tail stays behind as kRemote manifest records. Serving keeps
  // working after self-destroy on purpose: the image froze at the quiescent
  // point and resumed workers only ever spin, so the content each manifest
  // entry promises can never change again.
  struct PageServeState {
    bool armed = false;
    Bytes root_key;    // postcopy_root_key(Kmigrate, epoch)
    Bytes kmigrate;    // page seal keys derive from this
    crypto::Digest chain{};  // continues the wire-v3 delta chain
    uint64_t next_seq = 0;
    uint64_t epoch = 0;  // counter epoch replies are bound to (source + 1)
    crypto::CipherAlg cipher = crypto::CipherAlg::kRc4;
    std::map<uint64_t, uint64_t> manifest;  // page -> version still owed
  };

  // Post-copy target state between kRestore and the last kApplyPages.
  struct PageApplyState {
    bool active = false;
    Bytes root_key;
    Bytes kmigrate;
    crypto::Digest chain{};
    uint64_t next_seq = 0;
    uint64_t epoch = 0;
    struct Pending {
      uint64_t version = 0;
      crypto::Digest hash{};
    };
    std::map<uint64_t, Pending> pending;  // page -> what the manifest promised
  };

  // The pages the delta records cover, in canonical order: the meta page,
  // then the data region, then the heap. TLS + SSA state travels in the
  // final segment's sealed trailer instead — the same split the classic
  // Checkpoint makes between regions and WorkerSnapshots.
  std::vector<uint64_t> delta_page_list() const {
    std::vector<uint64_t> pages;
    pages.push_back(0);
    uint64_t d0 = l_->data_off / sgx::kPageSize;
    for (uint64_t p = 0; p < l_->params.data_pages; ++p) pages.push_back(d0 + p);
    uint64_t h0 = l_->heap_off / sgx::kPageSize;
    for (uint64_t p = 0; p < l_->params.heap_pages; ++p) pages.push_back(h0 + p);
    return pages;
  }

  // Fail closed: any error mid-dump abandons the delta session (the chain is
  // half-advanced and can never be completed consistently). The migration
  // layer rolls the rest back via kCancelMigration.
  void abandon_delta() {
    env_->write_u64(kOffDeltaTracking, 0);
    delta_ = DeltaState{};
  }

  // One dump round. Baseline ships every page; deltas ship only pages whose
  // version moved past the last shipped value. Each page's version is read
  // BEFORE its content: a worker racing the content read bumps the version
  // past what we record as shipped, so a possibly-torn page is always
  // re-shipped by a later round — and the final round runs at the quiescent
  // point, where no writer races anything.
  //
  // Returns the encoded segment, or an empty blob when a non-final round
  // found nothing re-dirtied (no segment is emitted; the chain and segment
  // counter stay untouched).
  Result<Bytes> dump_delta_segment(ControlCmd& cmd, bool baseline, bool final,
                                   DeltaStats& stats,
                                   std::map<uint64_t, uint64_t>* remote_out =
                                       nullptr) {
    // A post-copy tail turns residual data pages into kRemote manifest
    // records (hash + version, no payload); the meta page always ships in
    // full, since the target cannot restore without it.
    const bool remote_tail = final && cmd.postcopy_tail;
    const sim::CostModel& cost = env_->cost();
    Bytes kmigrate = env_->read_bytes(kOffKmigrate, 32);
    const Bytes zero_page(sgx::kPageSize, 0);
    const crypto::Digest zero_hash = crypto::Sha256::hash(zero_page);
    DeltaSegment seg;
    seg.alg = cmd.cipher;
    seg.index = delta_.next_segment;
    seg.final_segment = final;
    for (uint64_t page : delta_page_list()) {
      ++stats.pages_scanned;
      env_->work(sim::per_byte_x100(cost.delta_scan_ns_per_page_x100, 1));
      uint64_t version = env_->read_u64(l_->track_slot(page * sgx::kPageSize));
      auto it = delta_.shipped.find(page);
      if (!baseline && it != delta_.shipped.end() && version <= it->second)
        continue;
      Bytes content;
      Status st = env_->try_read_bytes(page * sgx::kPageSize, sgx::kPageSize,
                                       content);
      if (!st.ok()) {
        // Same SGXv1 limitation as dump_region(): a W+X page is unreadable.
        return Error(ErrorCode::kPermissionDenied,
                     "enclave has a non-readable (W+X) page; cannot be "
                     "migrated under SGXv1 (" + st.message() + ")");
      }
      charge_page_dump();
      env_->work(sim::per_byte_x100(cost.sha256_ns_per_byte_x100,
                                    content.size()));
      crypto::Digest h = crypto::Sha256::hash(content);
      DeltaRecord rec;
      rec.page = page;
      rec.version = version;
      if (h == zero_hash) {
        rec.kind = DeltaRecordKind::kZero;
        ++stats.pages_zero;
        stats.elided_bytes += sgx::kPageSize;
      } else if (delta_.shipped_hashes.count(h) != 0) {
        rec.kind = DeltaRecordKind::kDup;
        rec.payload.assign(h.begin(), h.end());
        ++stats.pages_deduped;
        stats.deduped_bytes += sgx::kPageSize;
      } else if (remote_tail && page != 0) {
        // kRemote never feeds shipped_hashes: a second identical residual
        // page also goes remote, so dup records only ever reference content
        // the target has actually applied.
        rec.kind = DeltaRecordKind::kRemote;
        rec.payload.assign(h.begin(), h.end());
        if (remote_out != nullptr) (*remote_out)[page] = version;
      } else {
        rec.kind = DeltaRecordKind::kData;
        env_->work(crypto::cipher_cost_ns(cmd.cipher, content.size()));
        rec.payload = crypto::seal(
            cmd.cipher, crypto::delta_page_key(kmigrate, page, version),
            content);
        delta_.shipped_hashes.insert(h);
      }
      delta_.chain = crypto::delta_chain_record(
          delta_.root_key, delta_.chain, seg.index, page, version,
          static_cast<uint8_t>(rec.kind), h);
      delta_.shipped[page] = version;
      seg.records.push_back(std::move(rec));
    }
    stats.pages_sent = seg.records.size();
    if (!final && seg.records.empty()) return Bytes{};
    if (final) {
      Writer tw;
      write_workers(tw, capture_workers());
      Bytes workers_blob = tw.take();
      env_->work(crypto::cipher_cost_ns(cmd.cipher, workers_blob.size()) +
                 sim::per_byte_x100(cost.sha256_ns_per_byte_x100,
                                    workers_blob.size()));
      seg.trailer = crypto::seal(cmd.cipher,
                                 crypto::delta_final_key(kmigrate),
                                 workers_blob);
    }
    delta_.chain = crypto::delta_chain_close(
        delta_.root_key, delta_.chain, seg.index, seg.records.size(), final,
        crypto::Sha256::hash(seg.trailer));
    seg.chain.assign(delta_.chain.begin(), delta_.chain.end());
    ++delta_.next_segment;
    Bytes wire = encode_delta_segment(seg);
    stats.wire_bytes = wire.size();
    obs::metrics().add("delta.segments");
    obs::metrics().add("delta.pages_sent", stats.pages_sent);
    obs::metrics().add("delta.pages_zero", stats.pages_zero);
    obs::metrics().add("delta.pages_deduped", stats.pages_deduped);
    return wire;
  }

  // ---- kDumpBaseline ----------------------------------------------------------
  ControlReply dump_baseline(ControlCmd& cmd) {
    if (self_destroyed())
      return fail(ErrorCode::kAborted, "enclave has self-destroyed");
    // Fresh Kmigrate, same contract as kPrepareCheckpoint.
    Bytes kmigrate = deps_->rng.generate(32);
    env_->write_bytes(kOffKmigrate, kmigrate);
    env_->write_u64(kOffKeyServed, 0);
    // Reset + arm tracking BEFORE reading any content, so every write racing
    // the baseline dump bumps its page past the shipped version.
    const Bytes zero_page(sgx::kPageSize, 0);
    for (uint64_t p = 0; p < l_->track_pages; ++p)
      env_->write_bytes(l_->track_off + p * sgx::kPageSize, zero_page);
    env_->write_u64(kOffDeltaTracking, 1);
    delta_ = DeltaState{};
    delta_.active = true;
    delta_.root_key = crypto::delta_root_key(kmigrate);
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "delta.baseline", "sdk");
    ControlReply reply;
    auto wire = dump_delta_segment(cmd, /*baseline=*/true, /*final=*/false,
                                   reply.delta);
    if (!wire.ok()) {
      abandon_delta();
      return fail(wire.status().code(), wire.status().message());
    }
    span.finish({{"pages", reply.delta.pages_sent}});
    reply.blob = std::move(*wire);
    return reply;
  }

  // ---- kDumpDelta -------------------------------------------------------------
  ControlReply dump_delta(ControlCmd& cmd) {
    if (!delta_.active)
      return fail(ErrorCode::kFailedPrecondition,
                  "no delta session: kDumpBaseline was never run");
    if (self_destroyed())
      return fail(ErrorCode::kAborted, "enclave has self-destroyed");
    if (cmd.final_dump) {
      // Stop-phase dump: the two-phase protocol of §IV-B, but by now only
      // the residual dirty set is left to capture. Note reach_quiescent_point
      // writes the global flag, which itself bumps the meta page's version —
      // the meta page is always part of the residual set.
      obs::Span<sim::ThreadCtx> quiesce_span(env_->ctx(),
                                             "checkpoint.quiesce", "sdk");
      reach_quiescent_point();
    }
    obs::Span<sim::ThreadCtx> span(
        env_->ctx(), cmd.final_dump ? "delta.final" : "delta.round", "sdk");
    ControlReply reply;
    std::map<uint64_t, uint64_t> remote;
    auto wire = dump_delta_segment(cmd, /*baseline=*/false, cmd.final_dump,
                                   reply.delta, &remote);
    if (!wire.ok()) {
      abandon_delta();
      return fail(wire.status().code(), wire.status().message());
    }
    span.finish({{"pages", reply.delta.pages_sent},
                 {"final", cmd.final_dump}});
    reply.blob = std::move(*wire);
    if (cmd.final_dump) {
      if (cmd.postcopy_tail) {
        // Arm the page service before the session state is dropped. The
        // epoch is the value the migration commits to: the target advances
        // the counter to source epoch + 1 when restore completes, so a fork
        // of this enclave restored from an older snapshot (older epoch)
        // derives different keys and its replies are refused.
        Bytes kmigrate = env_->read_bytes(kOffKmigrate, 32);
        page_serve_ = PageServeState{};
        page_serve_.armed = true;
        page_serve_.epoch = env_->read_u64(kOffCounterEpoch) + 1;
        page_serve_.kmigrate = kmigrate;
        page_serve_.root_key =
            crypto::postcopy_root_key(kmigrate, page_serve_.epoch);
        page_serve_.chain = delta_.chain;
        page_serve_.cipher = cmd.cipher;
        page_serve_.manifest = std::move(remote);
        for (const auto& [page, version] : page_serve_.manifest) {
          (void)version;
          reply.postcopy_pending.push_back(page);
        }
        reply.postcopy_epoch = page_serve_.epoch;
        obs::instant(env_->ctx(), "postcopy.armed", "sdk",
                     {{"pages", page_serve_.manifest.size()},
                      {"epoch", page_serve_.epoch}});
      }
      // The session is complete: counting stops. The shipped meta page still
      // carries the armed flag; the target's apply path clears it.
      env_->write_u64(kOffDeltaTracking, 0);
      delta_ = DeltaState{};
    }
    return reply;
  }

  // Target side: parse + verify the whole v3 container, reconstructing the
  // same Checkpoint the classic formats decode to. Every data record's MAC,
  // the per-segment chain values, per-page version monotonicity, segment
  // contiguity and page-set completeness are all checked here — a stale,
  // reordered, spliced or truncated delta never reaches enclave memory.
  Result<Checkpoint> open_delta(
      ControlCmd& cmd, ByteSpan key,
      std::map<uint64_t, PageApplyState::Pending>* remote_out = nullptr,
      crypto::Digest* chain_out = nullptr) {
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "delta.apply", "sdk");
    const sim::CostModel& cost = env_->cost();
    MIG_ASSIGN_OR_RETURN(std::vector<Bytes> segs,
                         parse_delta_container(cmd.blob));
    Bytes root_key = crypto::delta_root_key(key);
    crypto::Digest chain{};
    std::map<uint64_t, uint64_t> versions;  // page -> last applied version
    std::map<uint64_t, Bytes> pages;        // page -> current plaintext
    std::map<crypto::Digest, Bytes> cache;  // content hash -> plaintext
    const Bytes zero_page(sgx::kPageSize, 0);
    const crypto::Digest zero_hash = crypto::Sha256::hash(zero_page);
    Bytes sealed_trailer;
    for (uint64_t i = 0; i < segs.size(); ++i) {
      auto seg = parse_delta_segment(segs[i]);
      if (!seg.ok())
        return Error(seg.status().code(), "segment " + std::to_string(i) +
                                              ": " + seg.status().message());
      if (seg->index != i)
        return Error(ErrorCode::kIntegrityViolation,
                     "delta checkpoint: position " + std::to_string(i) +
                         " carries segment index " + std::to_string(seg->index));
      bool last = i + 1 == segs.size();
      if (seg->final_segment != last)
        return Error(ErrorCode::kIntegrityViolation,
                     last ? "delta checkpoint: last segment is not final"
                          : "delta checkpoint: final segment in the middle");
      for (const DeltaRecord& rec : seg->records) {
        if (rec.page >= l_->tracked_pages())
          return Error(ErrorCode::kIntegrityViolation,
                       "delta record targets page " + std::to_string(rec.page) +
                           " outside the enclave");
        auto vit = versions.find(rec.page);
        if (vit != versions.end() && rec.version <= vit->second)
          return Error(ErrorCode::kIntegrityViolation,
                       "delta record replays a stale version of page " +
                           std::to_string(rec.page));
        Bytes plain;
        crypto::Digest h{};
        switch (rec.kind) {
          case DeltaRecordKind::kData: {
            env_->work(crypto::cipher_cost_ns(seg->alg, rec.payload.size()) +
                       sim::per_byte_x100(cost.sha256_ns_per_byte_x100,
                                          rec.payload.size()));
            auto opened = crypto::open(
                crypto::delta_page_key(key, rec.page, rec.version),
                rec.payload);
            if (!opened.ok())
              return Error(opened.status().code(),
                           "delta page " + std::to_string(rec.page) +
                               " rejected: " + opened.status().message());
            plain = std::move(*opened);
            if (plain.size() != sgx::kPageSize)
              return Error(ErrorCode::kIntegrityViolation,
                           "delta page is not page-sized");
            h = crypto::Sha256::hash(plain);
            cache[h] = plain;
            break;
          }
          case DeltaRecordKind::kZero:
            plain = zero_page;
            h = zero_hash;
            break;
          case DeltaRecordKind::kDup: {
            std::copy(rec.payload.begin(), rec.payload.end(), h.begin());
            auto cit = cache.find(h);
            if (cit == cache.end())
              return Error(ErrorCode::kIntegrityViolation,
                           "dup record references content never applied");
            plain = cit->second;
            break;
          }
          case DeltaRecordKind::kRemote: {
            if (!cmd.allow_postcopy || remote_out == nullptr)
              return Error(ErrorCode::kIntegrityViolation,
                           "remote record for page " +
                               std::to_string(rec.page) +
                               " refused: post-copy is not enabled");
            if (rec.page == 0)
              return Error(ErrorCode::kIntegrityViolation,
                           "meta page cannot be remote");
            // The page stays a zero placeholder until kApplyPages delivers
            // content matching this hash at this version.
            std::copy(rec.payload.begin(), rec.payload.end(), h.begin());
            plain = zero_page;
            PageApplyState::Pending p;
            p.version = rec.version;
            p.hash = h;
            (*remote_out)[rec.page] = p;
            break;
          }
        }
        chain = crypto::delta_chain_record(root_key, chain, seg->index,
                                           rec.page, rec.version,
                                           static_cast<uint8_t>(rec.kind), h);
        if (rec.kind != DeltaRecordKind::kRemote && remote_out != nullptr)
          remote_out->erase(rec.page);
        versions[rec.page] = rec.version;
        pages[rec.page] = std::move(plain);
      }
      chain = crypto::delta_chain_close(root_key, chain, seg->index,
                                        seg->records.size(),
                                        seg->final_segment,
                                        crypto::Sha256::hash(seg->trailer));
      if (!crypto::ct_equal(ByteSpan(chain), ByteSpan(seg->chain)))
        return Error(ErrorCode::kIntegrityViolation,
                     "delta chain mismatch at segment " + std::to_string(i));
      if (seg->final_segment) sealed_trailer = std::move(seg->trailer);
      obs::metrics().add("delta.segments_applied");
    }
    if (sealed_trailer.empty())
      return Error(ErrorCode::kIntegrityViolation,
                   "delta checkpoint: final segment carries no thread state");
    env_->work(crypto::cipher_cost_ns(crypto::CipherAlg::kChaCha20,
                                      sealed_trailer.size()));
    MIG_ASSIGN_OR_RETURN(
        Bytes workers_blob,
        crypto::open(crypto::delta_final_key(key), sealed_trailer));
    Reader tr(workers_blob);
    Checkpoint c;
    MIG_ASSIGN_OR_RETURN(c.workers, read_workers(tr));
    MIG_RETURN_IF_ERROR(tr.finish());
    // Completeness: every checkpointable page must have shipped at least
    // once (the baseline guarantees it; a truncated baseline does not).
    for (uint64_t page : delta_page_list()) {
      auto pit = pages.find(page);
      if (pit == pages.end())
        return Error(ErrorCode::kIntegrityViolation,
                     "delta checkpoint never shipped page " +
                         std::to_string(page));
      if (page == 0)
        c.meta_page = pit->second;
      else if (page >= l_->heap_off / sgx::kPageSize)
        append(c.heap_region, pit->second);
      else
        append(c.data_region, pit->second);
    }
    if (chain_out != nullptr) *chain_out = chain;
    return c;
  }

  // ---- kServePages (wire v4 source role) -------------------------------------
  // Answers one page-request frame from the frozen post-copy manifest. No
  // self_destroyed() guard on purpose: the source serves pages AFTER serving
  // Kmigrate (which self-destroys it), and a frozen image can only tell the
  // truth. Each manifest page is served exactly once — a replayed request
  // finds it gone.
  ControlReply serve_pages(ControlCmd& cmd) {
    if (!page_serve_.armed)
      return fail(ErrorCode::kFailedPrecondition,
                  "no post-copy manifest armed");
    auto req = parse_page_request(cmd.blob);
    if (!req.ok())
      return fail(req.status().code(),
                  "page request rejected: " + req.status().message());
    if (req->epoch != page_serve_.epoch)
      return fail(ErrorCode::kPermissionDenied,
                  "page request bound to epoch " + std::to_string(req->epoch) +
                      "; this source serves epoch " +
                      std::to_string(page_serve_.epoch));
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "postcopy.serve", "sdk");
    const sim::CostModel& cost = env_->cost();
    // Expand each demand fault with up to prefetch_pages adjacent manifest
    // pages (fault locality: the next fault is likely the next page).
    std::set<uint64_t> to_serve;
    for (uint64_t page : req->pages) {
      if (page_serve_.manifest.count(page) == 0)
        return fail(ErrorCode::kInvalidArgument,
                    "page " + std::to_string(page) +
                        " is not in the post-copy manifest");
      to_serve.insert(page);
      for (uint64_t n = 1; n <= cmd.prefetch_pages; ++n) {
        if (page_serve_.manifest.count(page + n) == 0) break;
        to_serve.insert(page + n);
      }
    }
    uint64_t prefetched = to_serve.size() - req->pages.size();
    PageReply frame;
    frame.epoch = page_serve_.epoch;
    frame.first_seq = page_serve_.next_seq;
    for (uint64_t page : to_serve) {
      uint64_t version = page_serve_.manifest.at(page);
      Bytes content;
      Status st = env_->try_read_bytes(page * sgx::kPageSize, sgx::kPageSize,
                                       content);
      if (!st.ok()) return fail(st.code(), st.message());
      charge_page_dump();
      env_->work(sim::per_byte_x100(cost.sha256_ns_per_byte_x100,
                                    content.size()) +
                 crypto::cipher_cost_ns(page_serve_.cipher, content.size()));
      crypto::Digest h = crypto::Sha256::hash(content);
      PageReplyRecord rec;
      rec.page = page;
      rec.version = version;
      rec.sealed = crypto::seal(
          page_serve_.cipher,
          crypto::delta_page_key(page_serve_.kmigrate, page, version),
          content);
      page_serve_.chain = crypto::delta_chain_record(
          page_serve_.root_key, page_serve_.chain, page_serve_.next_seq, page,
          version, static_cast<uint8_t>(DeltaRecordKind::kData), h);
      rec.chain.assign(page_serve_.chain.begin(), page_serve_.chain.end());
      ++page_serve_.next_seq;
      frame.records.push_back(std::move(rec));
      page_serve_.manifest.erase(page);
    }
    obs::metrics().add("postcopy.pages_served", frame.records.size());
    obs::metrics().add("postcopy.prefetched", prefetched);
    span.finish({{"pages", frame.records.size()},
                 {"remaining", page_serve_.manifest.size()}});
    ControlReply reply;
    reply.blob = encode_page_reply(frame);
    for (const auto& [page, version] : page_serve_.manifest) {
      (void)version;
      reply.postcopy_pending.push_back(page);
    }
    return reply;
  }

  // ---- kApplyPages (wire v4 target role) -------------------------------------
  // Verify-applies one page reply: epoch binding, chain continuity from the
  // delta chain, manifest version + content hash, and the per-page MAC all
  // have to hold before a byte reaches enclave memory.
  ControlReply apply_pages(ControlCmd& cmd) {
    if (!page_apply_.active)
      return fail(ErrorCode::kFailedPrecondition,
                  "no post-copy restore in progress");
    auto frame = parse_page_reply(cmd.blob);
    if (!frame.ok())
      return fail(frame.status().code(),
                  "page reply rejected: " + frame.status().message());
    if (frame->epoch != page_apply_.epoch)
      return fail(ErrorCode::kIntegrityViolation,
                  "page reply from a stale epoch (" +
                      std::to_string(frame->epoch) + ", expected " +
                      std::to_string(page_apply_.epoch) + "); refused");
    if (frame->first_seq != page_apply_.next_seq)
      return fail(ErrorCode::kIntegrityViolation,
                  "page reply out of chain order: expected seq " +
                      std::to_string(page_apply_.next_seq) + ", got " +
                      std::to_string(frame->first_seq) + "; replay refused");
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "postcopy.apply", "sdk");
    const sim::CostModel& cost = env_->cost();
    uint64_t applied = 0;
    for (const PageReplyRecord& rec : frame->records) {
      auto pit = page_apply_.pending.find(rec.page);
      if (pit == page_apply_.pending.end())
        return fail(ErrorCode::kIntegrityViolation,
                    "page " + std::to_string(rec.page) +
                        " was never outstanding; splice refused");
      if (rec.version != pit->second.version)
        return fail(ErrorCode::kIntegrityViolation,
                    "page " + std::to_string(rec.page) + " carries version " +
                        std::to_string(rec.version) +
                        ", manifest promised " +
                        std::to_string(pit->second.version));
      env_->work(crypto::cipher_cost_ns(cmd.cipher, rec.sealed.size()) +
                 sim::per_byte_x100(cost.sha256_ns_per_byte_x100,
                                    rec.sealed.size()));
      auto opened = crypto::open(
          crypto::delta_page_key(page_apply_.kmigrate, rec.page, rec.version),
          rec.sealed);
      if (!opened.ok())
        return fail(opened.status().code(),
                    "served page " + std::to_string(rec.page) +
                        " rejected: " + opened.status().message());
      if (opened->size() != sgx::kPageSize)
        return fail(ErrorCode::kIntegrityViolation,
                    "served page is not page-sized");
      crypto::Digest h = crypto::Sha256::hash(*opened);
      if (!crypto::ct_equal(h, pit->second.hash))
        return fail(ErrorCode::kIntegrityViolation,
                    "page " + std::to_string(rec.page) +
                        " content does not match the manifest; splice refused");
      crypto::Digest expect = crypto::delta_chain_record(
          page_apply_.root_key, page_apply_.chain, page_apply_.next_seq,
          rec.page, rec.version,
          static_cast<uint8_t>(DeltaRecordKind::kData), h);
      if (rec.chain.size() != 32 ||
          !crypto::ct_equal(ByteSpan(expect), ByteSpan(rec.chain)))
        return fail(ErrorCode::kIntegrityViolation,
                    "post-copy chain mismatch at page " +
                        std::to_string(rec.page));
      env_->write_bytes(rec.page * sgx::kPageSize, *opened);
      env_->work(sim::per_byte_x100(cost.restore_write_ns_per_byte_x100,
                                    opened->size()));
      page_apply_.chain = expect;
      ++page_apply_.next_seq;
      page_apply_.pending.erase(pit);
      ++applied;
    }
    obs::metrics().add("postcopy.pages_applied", applied);
    span.finish({{"pages", applied},
                 {"remaining", page_apply_.pending.size()}});
    ControlReply reply;
    for (const auto& [page, p] : page_apply_.pending) {
      (void)p;
      reply.postcopy_pending.push_back(page);
    }
    if (page_apply_.pending.empty())
      obs::instant(env_->ctx(), "postcopy.tail_complete", "sdk");
    return reply;
  }

  // ---- kAbortPostcopy (fail closed) ------------------------------------------
  // Source outage mid-post-copy: part of this enclave's state never arrived,
  // so there is nothing to roll forward and no key this instance could ever
  // serve. Self-destroy exactly like a stale-epoch fence — the global flag
  // stays set forever and resumed workers spin. The source's sealed image
  // (and any store snapshot from before the migration) remains the
  // restorable copy: this failed target never advanced the counter, so
  // pre-migration snapshots still open.
  ControlReply abort_postcopy(ControlCmd&) {
    page_apply_ = PageApplyState{};
    restore_state_ = RestoreState{};
    env_->write_u64(kOffGlobalFlag, 1);
    env_->write_u64(kOffSelfDestroyed, 1);
    obs::instant(env_->ctx(), "postcopy.fail_closed", "sdk");
    obs::metrics().add("postcopy.aborts");
    obs::flight(env_->ctx(), "sdk.control", "fail_closed",
                "phase=postcopy_pull; target enclave self-destroyed");
    return fail(ErrorCode::kAborted,
                "post-copy source outage; target self-destroyed (fail closed)");
  }

  // ---- kPrepareCheckpoint ---------------------------------------------------
  ControlReply prepare(ControlCmd& cmd) {
    if (self_destroyed())
      return fail(ErrorCode::kAborted, "enclave has self-destroyed");
    // Fresh Kmigrate, generated inside the enclave (§IV: "randomly generated
    // migration key").
    Bytes kmigrate = deps_->rng.generate(32);
    env_->write_bytes(kOffKmigrate, kmigrate);
    env_->write_u64(kOffKeyServed, 0);
    {
      obs::Span<sim::ThreadCtx> quiesce_span(env_->ctx(), "checkpoint.quiesce",
                                             "sdk");
      reach_quiescent_point();
    }
    obs::Span<sim::ThreadCtx> dump_span(env_->ctx(), "checkpoint.dump_seal",
                                        "sdk");
    charge_dump_ = cmd.chunk_bytes == 0;
    auto c = capture();
    charge_dump_ = true;
    if (!c.ok()) return fail(c.status().code(), c.status().message());
    ControlReply reply;
    reply.blob = seal_checkpoint(*c, kmigrate, cmd);
    return reply;
  }

  // ---- kNaiveDump (the strawman the §IV-A attack defeats) --------------------
  // Identical to prepare() but with NO global flag and NO quiescence wait:
  // it believes the OS's claim that all other threads are stopped. A lying
  // OS lets a worker race the dump (data-consistency attack, Fig. 3).
  ControlReply naive_dump(ControlCmd& cmd) {
    Bytes kmigrate = deps_->rng.generate(32);
    env_->write_bytes(kOffKmigrate, kmigrate);
    env_->write_u64(kOffKeyServed, 0);
    auto c = capture();
    if (!c.ok()) return fail(c.status().code(), c.status().message());
    ControlReply reply;
    // The strawman predates the chunk pipeline: always plain v1 sealing.
    reply.blob = seal_plain_v1(checkpoint_plaintext(*c, cmd.pad_to_multiple),
                               kmigrate, cmd.cipher);
    return reply;
  }

  // ---- kCancelMigration -----------------------------------------------------
  ControlReply cancel(ControlCmd&) {
    if (env_->read_u64(kOffKeyServed) == 1 || self_destroyed())
      return fail(ErrorCode::kAborted,
                  "cannot cancel: Kmigrate already delivered (self-destroyed)");
    // "If a migration is canceled, the source enclave will delete the
    // Kmigrate immediately so the checkpoint will be useless."
    env_->write_bytes(kOffKmigrate, Bytes(32, 0));
    env_->write_u64(kOffGlobalFlag, 0);
    // A cancelled incremental migration also stops version counting; the
    // already-shipped segments are dead ciphertext without Kmigrate. An
    // armed post-copy manifest dies with the key it was derived from.
    abandon_delta();
    page_serve_ = PageServeState{};
    return {};
  }

  // ---- kServeKey (source role, §V-B) ----------------------------------------
  ControlReply serve_key(ControlCmd& cmd) {
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "key_handshake.serve", "sdk");
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no channel");
    if (self_destroyed() || env_->read_u64(kOffKeyServed) == 1) {
      // Single secure channel, ever: additional requests are refused.
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kAborted, "key already served once");
    }
    // A cancelled (or never-prepared) migration leaves Kmigrate zeroed; a
    // zeroed key must never be served — the checkpoint it sealed is dead and
    // self-destroying here would kill the one live copy of the enclave.
    Bytes armed = env_->read_bytes(kOffKmigrate, 32);
    if (std::all_of(armed.begin(), armed.end(),
                    [](uint8_t b) { return b == 0; })) {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kFailedPrecondition, "no migration key armed");
    }
    std::optional<Bytes> req_in =
        cmd.channel->recv_timeout(env_->ctx(), cmd.channel_timeout_ns);
    if (!req_in.has_value()) {
      // The requester never showed up. Keep the key: the migration manager
      // decides next (retry kServeKey, or kCancelMigration to roll back).
      return fail(ErrorCode::kDeadlineExceeded, "no key request arrived");
    }
    Bytes request = std::move(*req_in);
    Reader r(request);
    std::string tag = r.str();
    Bytes dh_pub_t = r.bytes();
    Bytes quote_wire = r.bytes();
    if (!r.finish().ok() || tag != "KEYREQ") {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kInvalidArgument, "malformed key request");
    }

    // Remote attestation of the target enclave, without the owner (§III
    // Step-2): verify the quote through the attestation service, check that
    // the attested enclave is *the same enclave* (same MRENCLAVE) and that
    // the quote binds the DH public value.
    auto quote = sgx::Quote::deserialize(quote_wire);
    if (!quote.ok()) {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kAuthFailure, "undecodable quote");
    }
    wan_round_trip();
    Bytes nonce = deps_->rng.generate(16);
    sgx::AttestationVerdict verdict =
        deps_->ias->verify(env_->ctx(), *quote, nonce);
    if (!sgx::AttestationService::check_verdict(verdict, embedded_ias_pk()) ||
        !verdict.ok) {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kAuthFailure, "attestation failed");
    }
    // Accept the same enclave (same MRENCLAVE) or, when the §VI-D agent
    // optimization is in use, a developer agent (same MRSIGNER).
    bool same_enclave = crypto::ct_equal(verdict.mrenclave, own_mrenclave());
    bool developer_agent = cmd.allow_agent_recipient &&
                           crypto::ct_equal(verdict.mrsigner, own_mrsigner());
    if (!same_enclave && !developer_agent) {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kAuthFailure,
                  "target enclave measurement differs");
    }
    crypto::Digest bind = crypto::Sha256::hash(dh_pub_t);
    if (!crypto::ct_equal(ByteSpan(verdict.report_data), ByteSpan(bind))) {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kAuthFailure, "quote does not bind DH value");
    }

    // Diffie-Hellman: derive the session key; encrypt Kmigrate under it and
    // authenticate the message with the enclave identity key so the target
    // can authenticate the source (§V-B "the target authenticates the
    // source").
    env_->work(env_->cost().dh_keygen_ns + env_->cost().dh_shared_ns);
    crypto::DhKeyPair kp = crypto::dh_generate(deps_->rng);
    auto shared = crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_t));
    if (!shared.ok()) {
      cmd.channel->send(env_->ctx(), to_bytes("REFUSE"));
      return fail(ErrorCode::kAuthFailure, "degenerate DH value");
    }
    Bytes dh_pub_s = kp.pub.to_bytes_padded(128);
    Bytes session = crypto::hkdf(to_bytes("mig-channel"), *shared,
                                 dh_pub_t, 32);
    Bytes kmigrate = env_->read_bytes(kOffKmigrate, 32);
    Bytes enc = crypto::seal(crypto::CipherAlg::kChaCha20, session, kmigrate);

    if (env_->read_u64(kOffProvisioned) != 1)
      return fail(ErrorCode::kFailedPrecondition,
                  "identity key not provisioned");
    crypto::BigNum sk = crypto::BigNum::from_bytes(
        env_->read_bytes(kOffIdentityPriv, 160));
    // The reply carries the source's measurement (public) inside the signed
    // transcript: the target checks it against its own MRENCLAVE, and an
    // agent files the key under it for later local requests.
    crypto::Digest own_mre = own_mrenclave();
    Writer transcript;
    transcript.bytes(dh_pub_t);
    transcript.bytes(dh_pub_s);
    transcript.bytes(enc);
    transcript.raw(own_mre);
    env_->work(env_->cost().sig_sign_ns);
    Bytes sig = crypto::sig_sign(sk, transcript.data(), deps_->rng);

    Writer reply_msg;
    reply_msg.str("KEYREP");
    reply_msg.bytes(dh_pub_s);
    reply_msg.bytes(enc);
    reply_msg.raw(own_mre);
    reply_msg.bytes(sig);
    cmd.channel->send(env_->ctx(), reply_msg.take());

    // Self-destroy (§V-B): this enclave will never resume. The global flag
    // stays set forever, so any worker the OS resumes spins forever.
    env_->write_u64(kOffKeyServed, 1);
    env_->write_u64(kOffSelfDestroyed, 1);
    obs::instant(env_->ctx(), "key_handoff", "sdk",
                 {{"recipient", developer_agent ? "agent" : "target"}});
    obs::metrics().add("sdk.keys_served");
    return {};
  }

  // ---- kRestore (target role) ------------------------------------------------
  ControlReply restore(ControlCmd& cmd) {
    Result<Bytes> kmigrate = Error(ErrorCode::kInvalidArgument, "no key source");
    if (cmd.agent != nullptr) {
      // §VI-D agent optimization: fetch Kmigrate by local attestation.
      kmigrate = key_from_agent(*cmd.agent);
    } else if (cmd.channel.has_value()) {
      kmigrate = key_from_source(*cmd.channel, cmd.channel_timeout_ns);
    }
    if (!kmigrate.ok())
      return fail(kmigrate.status().code(), kmigrate.status().message());
    return restore_with_key(cmd, *kmigrate);
  }

  ControlReply restore_with_key(ControlCmd& cmd, ByteSpan key) {
    // The blob is self-describing: v2 chunked blobs carry the "MGC2" magic
    // and v3 delta containers "MGV3" — neither first byte can collide with a
    // v1 blob's leading CipherAlg.
    Result<Checkpoint> parsed = Error(ErrorCode::kInternal, "unreachable");
    std::map<uint64_t, PageApplyState::Pending> remote;
    crypto::Digest delta_chain{};
    if (is_delta_checkpoint(cmd.blob)) {
      parsed = open_delta(cmd, key, &remote, &delta_chain);
      if (!parsed.ok())
        return fail(parsed.status().code(), "checkpoint rejected: " +
                                                parsed.status().message());
    } else {
      Result<Bytes> plain = Error(ErrorCode::kInternal, "unreachable");
      if (is_chunked_checkpoint(cmd.blob)) {
        plain = open_chunked(cmd.blob, key);
      } else {
        env_->work(crypto::cipher_cost_ns(cmd.cipher, cmd.blob.size()));
        plain = crypto::open(key, cmd.blob);
      }
      if (!plain.ok())
        return fail(plain.status().code(), "checkpoint rejected: " +
                                               plain.status().message());
      parsed = parse_checkpoint(*plain);
      // Keep the inner detail (e.g. which chunk or region failed): the
      // store-restore and session layers surface this string verbatim.
      if (!parsed.ok())
        return fail(parsed.status().code(), "corrupt checkpoint: " +
                                                parsed.status().message());
    }
    if (parsed->workers.size() != num_workers())
      return fail(ErrorCode::kInvalidArgument, "worker count mismatch");

    uint64_t restored = 0;
    env_->write_bytes(0, parsed->meta_page);
    // A delta checkpoint's meta page arrives with version counting still
    // armed (the source dumps at quiescence mid-session). Disarm before any
    // further restore writes — this instance starts its own sessions fresh.
    env_->write_u64(kOffDeltaTracking, 0);
    env_->write_u64(kOffGlobalFlag, 1);  // stays set until finish_restore
    env_->write_u64(kOffPumpMode, 1);
    for (uint64_t i = 0; i < num_workers(); ++i) {
      env_->write_bytes(l_->tls_offset(i), parsed->workers[i].tls_page);
      restored += sgx::kPageSize;
    }
    env_->write_bytes(l_->data_off, parsed->data_region);
    env_->write_bytes(l_->heap_off, parsed->heap_region);
    restored += parsed->meta_page.size() + parsed->data_region.size() +
                parsed->heap_region.size();
    env_->work(sim::per_byte_x100(env_->cost().restore_write_ns_per_byte_x100,
                                  restored));

    restore_state_.active = true;
    restore_state_.ckpt = std::move(*parsed);

    ControlReply reply;
    for (uint64_t i = 0; i < num_workers(); ++i) {
      uint64_t pumps = restore_state_.ckpt.workers[i].true_cssa;
      if (pumps > 0) reply.pumps.push_back(PumpPlan{i, pumps});
    }
    page_apply_ = PageApplyState{};
    if (!remote.empty()) {
      // Post-copy tail: arm the apply state. The epoch is read from the
      // restored meta page (the source's epoch at the quiescent point) + 1 —
      // the value this migration will advance the counter to on commit.
      page_apply_.active = true;
      page_apply_.epoch = env_->read_u64(kOffCounterEpoch) + 1;
      page_apply_.kmigrate.assign(key.begin(), key.end());
      page_apply_.root_key =
          crypto::postcopy_root_key(page_apply_.kmigrate, page_apply_.epoch);
      page_apply_.chain = delta_chain;
      page_apply_.pending = std::move(remote);
      for (const auto& [page, p] : page_apply_.pending) {
        (void)p;
        reply.postcopy_pending.push_back(page);
      }
      reply.postcopy_epoch = page_apply_.epoch;
      obs::instant(env_->ctx(), "postcopy.pull_armed", "sdk",
                   {{"pages", page_apply_.pending.size()},
                    {"epoch", page_apply_.epoch}});
    }
    return reply;
  }

  Result<Bytes> key_from_source(sim::Channel::End& ch, uint64_t timeout_ns,
                                bool check_source_mre = true,
                                crypto::Digest* source_mre_out = nullptr) {
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "key_handshake.fetch", "sdk");
    env_->work(env_->cost().dh_keygen_ns);
    crypto::DhKeyPair kp = crypto::dh_generate(deps_->rng);
    Bytes dh_pub_t = kp.pub.to_bytes_padded(128);
    crypto::Digest bind = crypto::Sha256::hash(dh_pub_t);
    MIG_ASSIGN_OR_RETURN(sgx::Report report,
                         env_->ereport(deps_->qe->target_info(), bind));
    MIG_ASSIGN_OR_RETURN(sgx::Quote quote,
                         deps_->qe->quote(env_->ctx(), report));
    Writer req;
    req.str("KEYREQ");
    req.bytes(dh_pub_t);
    req.bytes(quote.serialize());
    ch.send(env_->ctx(), req.take());

    std::optional<Bytes> reply_in = ch.recv_timeout(env_->ctx(), timeout_ns);
    if (!reply_in.has_value())
      return Error(ErrorCode::kDeadlineExceeded,
                   "source never answered the key request");
    Bytes reply = std::move(*reply_in);
    Reader r(reply);
    std::string tag = r.str();
    if (tag == "REFUSE")
      return Error(ErrorCode::kAborted, "source refused key exchange");
    Bytes dh_pub_s = r.bytes();
    Bytes enc = r.bytes();
    Bytes src_mre = r.raw(32);
    Bytes sig = r.bytes();
    MIG_RETURN_IF_ERROR(r.finish());
    if (tag != "KEYREP")
      return Error(ErrorCode::kInvalidArgument, "bad key reply");
    // The target authenticates the source with the public key shipped in
    // the enclave image (§V-B).
    Writer transcript;
    transcript.bytes(dh_pub_t);
    transcript.bytes(dh_pub_s);
    transcript.bytes(enc);
    transcript.raw(src_mre);
    env_->work(env_->cost().sig_verify_ns);
    if (!crypto::sig_verify(embedded_identity_pk(), transcript.data(), sig))
      return Error(ErrorCode::kAuthFailure, "source signature invalid");
    if (check_source_mre &&
        !crypto::ct_equal(ByteSpan(src_mre), ByteSpan(own_mrenclave())))
      return Error(ErrorCode::kAuthFailure, "key is for a different enclave");
    env_->work(env_->cost().dh_shared_ns);
    MIG_ASSIGN_OR_RETURN(
        Bytes shared,
        crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_s)));
    Bytes session = crypto::hkdf(to_bytes("mig-channel"), shared, dh_pub_t, 32);
    MIG_ASSIGN_OR_RETURN(Bytes key, crypto::open(session, enc));
    if (source_mre_out != nullptr)
      std::copy(src_mre.begin(), src_mre.end(), source_mre_out->begin());
    return key;
  }

  Result<Bytes> key_from_agent(AgentPort& agent) {
    obs::Span<sim::ThreadCtx> span(env_->ctx(), "key_handshake.agent", "sdk");
    env_->work(env_->cost().local_attest_dh_ns);
    crypto::DhKeyPair kp = crypto::dh_generate(deps_->rng);
    Bytes dh_pub = kp.pub.to_bytes_padded(128);
    crypto::Digest bind = crypto::Sha256::hash(dh_pub);
    MIG_ASSIGN_OR_RETURN(sgx::Report report,
                         env_->ereport(agent.target_info(), bind));
    AgentPort::Request req{report, dh_pub};
    AgentPort::Response resp = agent.request(env_->ctx(), req);
    MIG_RETURN_IF_ERROR(resp.status);
    env_->work(env_->cost().local_attest_dh_ns);
    MIG_ASSIGN_OR_RETURN(
        Bytes shared,
        crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(resp.dh_pub)));
    Bytes session = crypto::hkdf(to_bytes("agent-channel"), shared, dh_pub, 32);
    return crypto::open(session, resp.enc_kmigrate);
  }

  // ---- kFinishRestore (§IV-C Step-4) -----------------------------------------
  ControlReply finish_restore(ControlCmd&) {
    if (!restore_state_.active)
      return fail(ErrorCode::kFailedPrecondition, "no restore in progress");
    // Post-copy: the enclave only finishes restore once every remote page
    // arrived and verified — workers must never run on placeholder pages.
    if (page_apply_.active && !page_apply_.pending.empty())
      return fail(ErrorCode::kFailedPrecondition,
                  "post-copy tail incomplete: " +
                      std::to_string(page_apply_.pending.size()) +
                      " page(s) outstanding");
    const Checkpoint& c = restore_state_.ckpt;
    for (uint64_t i = 0; i < num_workers(); ++i) {
      const WorkerSnapshot& w = c.workers[i];
      if (w.true_cssa == 0) continue;
      // In-enclave CSSA tracking: the pump stub recorded the rax of the
      // last EENTER; after its AEX the true CSSA is that + 1. Verify the
      // untrusted library pumped exactly to the checkpointed value.
      uint64_t tracked =
          env_->read_u64(l_->tls_offset(i) + kTlCssaEenter) + 1;
      if (tracked != w.true_cssa) {
        return fail(ErrorCode::kIntegrityViolation,
                    "CSSA restore verification failed (library lied)");
      }
      // Rebuild SSA: interrupted contexts from the checkpoint below, a
      // reconstructed spin context on top.
      for (uint64_t f = 0; f + 1 < w.true_cssa; ++f) {
        env_->write_bytes(l_->ssa_offset(i) + f * sgx::kPageSize,
                          w.ssa_frames[f]);
      }
      CtxKind kind = w.true_cssa == 1 ? CtxKind::kSpinEntry
                                      : CtxKind::kSpinHandler;
      Writer frame;
      frame.bytes(serialize_ctx(kind, i));
      Bytes page = frame.take();
      page.resize(sgx::kPageSize, 0);
      env_->write_bytes(l_->ssa_offset(i) + (w.true_cssa - 1) * sgx::kPageSize,
                        page);
    }
    env_->write_u64(kOffPumpMode, 0);
    env_->write_u64(kOffSelfDestroyed, 0);
    env_->write_u64(kOffKeyServed, 0);
    env_->write_u64(kOffGlobalFlag, 0);
    restore_state_ = RestoreState{};
    page_apply_ = PageApplyState{};
    return {};
  }

  // ---- owner-keyed checkpoint/resume (§V-C) -----------------------------------
  Result<Bytes> owner_key_exchange(sim::Channel::End& ch, std::string_view verb,
                                   uint64_t timeout_ns) {
    env_->work(env_->cost().dh_keygen_ns);
    crypto::DhKeyPair kp = crypto::dh_generate(deps_->rng);
    Bytes dh_pub = kp.pub.to_bytes_padded(128);
    crypto::Digest bind = crypto::Sha256::hash(dh_pub);
    MIG_ASSIGN_OR_RETURN(sgx::Report report,
                         env_->ereport(deps_->qe->target_info(), bind));
    MIG_ASSIGN_OR_RETURN(sgx::Quote quote,
                         deps_->qe->quote(env_->ctx(), report));
    Writer req;
    req.str(std::string(verb));
    req.bytes(dh_pub);
    req.bytes(quote.serialize());
    wan_round_trip();
    ch.send(env_->ctx(), req.take());
    std::optional<Bytes> reply_in = ch.recv_timeout(env_->ctx(), timeout_ns);
    if (!reply_in.has_value())
      return Error(ErrorCode::kDeadlineExceeded, "owner never answered");
    Bytes reply = std::move(*reply_in);
    Reader r(reply);
    std::string tag = r.str();
    Bytes dh_pub_o = r.bytes();
    Bytes enc = r.bytes();
    MIG_RETURN_IF_ERROR(r.finish());
    if (tag != "OWNERKEY")
      return Error(ErrorCode::kAuthFailure, "owner refused: " + tag);
    env_->work(env_->cost().dh_shared_ns);
    MIG_ASSIGN_OR_RETURN(
        Bytes shared,
        crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_o)));
    Bytes session = crypto::hkdf(to_bytes("owner-channel"), shared, dh_pub, 32);
    return crypto::open(session, enc);
  }

  ControlReply owner_checkpoint(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no owner channel");
    if (self_destroyed())
      return fail(ErrorCode::kAborted, "enclave has self-destroyed");
    auto kencrypt =
        owner_key_exchange(*cmd.channel, "CKPT", cmd.channel_timeout_ns);
    if (!kencrypt.ok()) return fail(kencrypt.status().code(),
                                    kencrypt.status().message());
    reach_quiescent_point();
    charge_dump_ = cmd.chunk_bytes == 0;
    auto c = capture();
    charge_dump_ = true;
    if (!c.ok()) return fail(c.status().code(), c.status().message());
    ControlReply reply;
    reply.blob = seal_checkpoint(*c, *kencrypt, cmd);
    // A snapshot is not a migration: execution continues right away.
    env_->write_u64(kOffGlobalFlag, 0);
    return reply;
  }

  ControlReply owner_restore(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no owner channel");
    auto kencrypt =
        owner_key_exchange(*cmd.channel, "RESTORE", cmd.channel_timeout_ns);
    if (!kencrypt.ok()) return fail(kencrypt.status().code(),
                                    kencrypt.status().message());
    return restore_with_key(cmd, *kencrypt);
  }

  // ---- persistent snapshot store (store/, rollback defense) -------------------
  struct CounterGrant {
    uint64_t counter = 0;
    Bytes key;  // empty for ADVANCE (no sealing key comes back)
  };

  // Attested key exchange with the monotonic-counter service. Mirrors
  // owner_key_exchange, with two additions: the request carries a counter
  // argument, and the reply must verify under the counter-service public key
  // baked into the image (config blob 3) over a transcript that includes our
  // fresh DH value — so the untrusted operator relaying these messages can
  // drop a grant (availability) but can neither forge nor replay one.
  Result<CounterGrant> counter_key_exchange(sim::Channel::End& ch,
                                            std::string_view verb,
                                            uint64_t counter_arg,
                                            uint64_t timeout_ns) {
    Bytes membership_blob = embedded_quorum_membership_blob();
    Bytes pk_blob = embedded_counter_pk_blob();
    if (pk_blob.empty() && membership_blob.empty())
      return Error(ErrorCode::kFailedPrecondition,
                   "image built without a counter-service key");
    env_->work(env_->cost().dh_keygen_ns);
    crypto::DhKeyPair kp = crypto::dh_generate(deps_->rng);
    Bytes dh_pub = kp.pub.to_bytes_padded(128);
    crypto::Digest bind = crypto::Sha256::hash(dh_pub);
    MIG_ASSIGN_OR_RETURN(sgx::Report report,
                         env_->ereport(deps_->qe->target_info(), bind));
    MIG_ASSIGN_OR_RETURN(sgx::Quote quote,
                         deps_->qe->quote(env_->ctx(), report));
    Writer req;
    req.str(std::string(verb));
    req.u64(counter_arg);
    req.bytes(dh_pub);
    req.bytes(quote.serialize());
    wan_round_trip();
    ch.send(env_->ctx(), req.take());
    std::optional<Bytes> reply_in = ch.recv_timeout(env_->ctx(), timeout_ns);
    if (!reply_in.has_value())
      return Error(ErrorCode::kDeadlineExceeded,
                   "counter service never answered");
    Bytes reply = std::move(*reply_in);
    if (!membership_blob.empty())
      return verify_quorum_grant(reply, verb, dh_pub, kp, membership_blob);
    Reader r(reply);
    std::string tag = r.str();
    uint64_t counter = r.u64();
    Bytes dh_pub_s = r.bytes();
    Bytes enc = r.bytes();
    Bytes sig = r.bytes();
    MIG_RETURN_IF_ERROR(r.finish());
    if (tag != "CTRGRANT")
      return Error(ErrorCode::kPermissionDenied,
                   "counter service refused: " + tag);
    Writer transcript;
    transcript.str("ctr-reply");
    transcript.str(std::string(verb));
    transcript.u64(counter);
    transcript.bytes(dh_pub);
    transcript.bytes(dh_pub_s);
    transcript.bytes(enc);
    env_->work(env_->cost().sig_verify_ns);
    if (!crypto::sig_verify(crypto::BigNum::from_bytes(pk_blob),
                            transcript.data(), sig))
      return Error(ErrorCode::kAuthFailure,
                   "counter-service signature invalid");
    if (counter == 0)
      return Error(ErrorCode::kAuthFailure, "counter 0 is never granted");
    CounterGrant grant;
    grant.counter = counter;
    if (!enc.empty()) {
      env_->work(env_->cost().dh_shared_ns);
      MIG_ASSIGN_OR_RETURN(
          Bytes shared,
          crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(dh_pub_s)));
      Bytes session = crypto::hkdf(to_bytes("ctr-channel"), shared, dh_pub, 32);
      MIG_ASSIGN_OR_RETURN(grant.key, crypto::open(session, enc));
    }
    return grant;
  }

  // Quorum-mode reply verification (§ docs/store.md "replicated counter"):
  // the enclave accepts a grant only when f+1 *distinct pinned* replicas
  // signed records agreeing on (counter, key_commit), each record is bound
  // to our fresh DH value via the signed transcript, and each record's
  // newest audit-log leaf proves inclusion under its co-signed Merkle root.
  // A record failing any check is excluded individually — up to f Byzantine
  // replicas (forged signatures, stale counters, equivocating roots) cannot
  // block a grant backed by the f+1 honest ones, and can never assemble a
  // quorum of their own.
  Result<CounterGrant> verify_quorum_grant(const Bytes& reply,
                                           std::string_view verb,
                                           const Bytes& dh_pub,
                                           const crypto::DhKeyPair& kp,
                                           const Bytes& membership_blob) {
    auto membership = parse_quorum_membership(membership_blob);
    if (!membership.ok())
      return Error(ErrorCode::kFailedPrecondition,
                   "image carries a malformed quorum membership");
    if (!is_quorum_reply(reply)) {
      // Legacy-format reply to a quorum-pinned enclave. A refusal is still
      // meaningful — the untrusted coordinator forwards the replicas'
      // matching refusal verbatim, and acting on it achieves nothing that
      // dropping our traffic could not. A single-signer CTRGRANT, however,
      // can never satisfy the pinned membership: reject it outright so a
      // compromised operator cannot downgrade us to one signer.
      Reader r(reply);
      std::string tag = r.str();
      r.u64();
      r.bytes();
      r.bytes();
      r.bytes();
      MIG_RETURN_IF_ERROR(r.finish());
      if (tag != "CTRGRANT")
        return Error(ErrorCode::kPermissionDenied,
                     "counter service refused: " + tag);
      return Error(ErrorCode::kAuthFailure,
                   "single-signer grant rejected: enclave pins a replica quorum");
    }
    MIG_ASSIGN_OR_RETURN(QuorumReplyEnvelope env, parse_quorum_reply(reply));

    // Per-record verification: pinned id, Schnorr over the reply-bound
    // transcript, Merkle inclusion of the newest leaf under the signed root.
    std::vector<const QuorumReplyRecord*> valid;
    for (size_t i = 0; i < env.records.size(); ++i) {
      const QuorumReplyRecord& rec = env.records[i];
      const QuorumMember* member = nullptr;
      for (const QuorumMember& m : membership->members)
        if (m.id == rec.replica_id) member = &m;
      if (member == nullptr) continue;  // unpinned replica: ignore
      env_->work(env_->cost().sig_verify_ns);
      Bytes transcript = quorum_reply_transcript(verb, dh_pub, rec);
      if (!crypto::sig_verify(crypto::BigNum::from_bytes(member->pk),
                              transcript, env.sigs[i]))
        continue;
      crypto::Digest root;
      std::copy(rec.root.begin(), rec.root.end(), root.begin());
      std::vector<crypto::Digest> proof;
      proof.reserve(rec.proof.size());
      for (const Bytes& node : rec.proof) {
        crypto::Digest d;
        std::copy(node.begin(), node.end(), d.begin());
        proof.push_back(d);
      }
      if (!crypto::merkle_verify_inclusion(crypto::merkle_leaf_hash(rec.leaf),
                                           rec.tree_size - 1, rec.tree_size,
                                           proof, root))
        continue;
      valid.push_back(&rec);
    }

    // Quorum assembly: the (counter, key_commit) pair backed by the most
    // distinct replicas must clear f+1. Parsing already rejected duplicate
    // replica ids, so counting records counts replicas.
    std::vector<const QuorumReplyRecord*> winners;
    for (const QuorumReplyRecord* a : valid) {
      std::vector<const QuorumReplyRecord*> group;
      for (const QuorumReplyRecord* b : valid)
        if (b->counter == a->counter &&
            crypto::ct_equal(ByteSpan(b->key_commit), ByteSpan(a->key_commit)))
          group.push_back(b);
      if (group.size() > winners.size()) winners = std::move(group);
    }
    if (winners.size() < membership->quorum())
      return Error(ErrorCode::kAuthFailure,
                   "quorum not reached: " + std::to_string(winners.size()) +
                       " of " + std::to_string(membership->quorum()) +
                       " required matching signed replies");

    // Any winning record carries the same key (its commitment is part of the
    // quorum match); decrypt from the first and check it against the
    // co-signed commitment before trusting it.
    const QuorumReplyRecord& rec = *winners.front();
    CounterGrant grant;
    grant.counter = rec.counter;
    if (!rec.enc_key.empty()) {
      env_->work(env_->cost().dh_shared_ns);
      MIG_ASSIGN_OR_RETURN(
          Bytes shared,
          crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(rec.dh_pub_s)));
      Bytes session = crypto::hkdf(to_bytes("qrm-channel"), shared, dh_pub, 32);
      MIG_ASSIGN_OR_RETURN(grant.key, crypto::open(session, rec.enc_key));
    }
    crypto::Digest commit = crypto::Sha256::hash(grant.key);
    if (!crypto::ct_equal(ByteSpan(commit), ByteSpan(rec.key_commit)))
      return Error(ErrorCode::kAuthFailure,
                   "granted key does not match the quorum's key commitment");
    return grant;
  }

  // Stale-fork fence: the service counter moved past this instance's epoch,
  // so another instance of this enclave was restored (or committed a live
  // migration) meanwhile. At-most-one-live-lease says this copy dies, the
  // same way a post-serve source does: global flag stays set forever, every
  // worker the OS resumes spins forever.
  ControlReply fence_stale_epoch() {
    env_->write_u64(kOffGlobalFlag, 1);
    env_->write_u64(kOffSelfDestroyed, 1);
    obs::instant(env_->ctx(), "store.fenced", "sdk");
    obs::metrics().add("store.fences");
    obs::flight(env_->ctx(), "sdk.control", "fail_closed",
                "stale counter epoch fence; enclave self-destroyed");
    return fail(ErrorCode::kAborted,
                "counter advanced past this instance's epoch; self-destroyed");
  }

  // ---- kStoreSnapshot ---------------------------------------------------------
  ControlReply store_snapshot(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no counter-service channel");
    if (self_destroyed())
      return fail(ErrorCode::kAborted, "enclave has self-destroyed");
    uint64_t epoch = env_->read_u64(kOffCounterEpoch);
    auto grant = counter_key_exchange(*cmd.channel, "SEALGRANT", epoch,
                                      cmd.channel_timeout_ns);
    if (!grant.ok())
      return fail(grant.status().code(), grant.status().message());
    if (epoch != 0 && grant->counter != epoch) return fence_stale_epoch();
    // Record the binding before capture, so the snapshot's own meta page
    // carries the epoch it was sealed at.
    env_->write_u64(kOffCounterEpoch, grant->counter);
    reach_quiescent_point();
    charge_dump_ = cmd.chunk_bytes == 0;
    auto c = capture();
    charge_dump_ = true;
    if (!c.ok()) {
      env_->write_u64(kOffGlobalFlag, 0);
      return fail(c.status().code(), c.status().message());
    }
    SnapshotEnvelope envelope;
    crypto::Digest mre = own_mrenclave();
    envelope.mrenclave.assign(mre.begin(), mre.end());
    envelope.counter = grant->counter;
    envelope.inner = seal_checkpoint(*c, grant->key, cmd);
    // A snapshot is not a migration: execution continues right away.
    env_->write_u64(kOffGlobalFlag, 0);
    obs::metrics().add("store.snapshots_sealed");
    ControlReply reply;
    reply.blob = encode_snapshot_envelope(envelope);
    return reply;
  }

  // ---- kStoreRestore ----------------------------------------------------------
  ControlReply store_restore(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no counter-service channel");
    auto envelope = parse_snapshot_envelope(cmd.blob);
    if (!envelope.ok())
      return fail(envelope.status().code(),
                  "snapshot rejected: " + envelope.status().message());
    if (!crypto::ct_equal(ByteSpan(envelope->mrenclave),
                          ByteSpan(own_mrenclave())))
      return fail(ErrorCode::kAuthFailure,
                  "snapshot belongs to a different enclave");
    // OPENGRANT consumes the epoch: it succeeds only if the envelope's
    // counter is still current, and the counter advances past it — the same
    // snapshot can never be opened twice. The outer counter field is only a
    // hint; tampering with it yields a key for the wrong counter value and
    // the MAC check below rejects the payload.
    auto grant = counter_key_exchange(*cmd.channel, "OPENGRANT",
                                      envelope->counter,
                                      cmd.channel_timeout_ns);
    if (!grant.ok())
      return fail(grant.status().code(), grant.status().message());
    cmd.blob = std::move(envelope->inner);
    ControlReply reply = restore_with_key(cmd, grant->key);
    if (!reply.status.ok()) return reply;
    // restore_with_key rewrote the meta page with the snapshot's (older)
    // epoch; this instance's lease is the value OPENGRANT advanced to.
    env_->write_u64(kOffCounterEpoch, grant->counter);
    obs::metrics().add("store.snapshots_opened");
    return reply;
  }

  // ---- kAdvanceCounter --------------------------------------------------------
  // Posted by the migration layer after a committed live migration: bump the
  // counter so every snapshot sealed before the migration is dead ciphertext
  // (rollback defense for the live path).
  ControlReply advance_counter(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no counter-service channel");
    if (self_destroyed())
      return fail(ErrorCode::kAborted, "enclave has self-destroyed");
    uint64_t epoch = env_->read_u64(kOffCounterEpoch);
    auto grant = counter_key_exchange(*cmd.channel, "ADVANCE", epoch,
                                      cmd.channel_timeout_ns);
    if (!grant.ok()) {
      // A refusal means the lease is gone: another instance advanced past
      // us. Fence conservatively — a forged refusal only achieves what the
      // operator could do anyway (kill this instance); it can never produce
      // two live leases. Timeouts and bad signatures keep the epoch: purely
      // an availability failure, the caller may retry.
      if (grant.status().code() == ErrorCode::kPermissionDenied)
        return fence_stale_epoch();
      return fail(grant.status().code(), grant.status().message());
    }
    env_->write_u64(kOffCounterEpoch, grant->counter);
    obs::instant(env_->ctx(), "store.counter_advanced", "sdk",
                 {{"epoch", grant->counter}});
    return {};
  }

  // ---- agent-enclave roles (§VI-D) ---------------------------------------------
  // Agent key store: (mrenclave, key) entries in the agent's heap. The
  // count lives at kOffAgentHasKey; entry i at heap_off + 64*i.
  ControlReply agent_fetch_key(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no channel");
    crypto::Digest src_mre{};
    auto key = key_from_source(*cmd.channel, cmd.channel_timeout_ns,
                               /*check_source_mre=*/false, &src_mre);
    if (!key.ok()) return fail(key.status().code(), key.status().message());
    if (key->size() != 32)
      return fail(ErrorCode::kInvalidArgument, "bad key size");
    uint64_t n = env_->read_u64(kOffAgentHasKey);
    uint64_t entry = l_->heap_off + 64 * n;
    if (entry + 64 > l_->size)
      return fail(ErrorCode::kResourceExhausted, "agent key store full");
    env_->write_bytes(entry, src_mre);
    env_->write_bytes(entry + 32, *key);
    env_->write_u64(kOffAgentHasKey, n + 1);
    return {};
  }

  ControlReply agent_serve_local(ControlCmd& cmd) {
    if (!cmd.agent_request.has_value())
      return fail(ErrorCode::kInvalidArgument, "no request");
    if (env_->read_u64(kOffAgentHasKey) == 0)
      return fail(ErrorCode::kFailedPrecondition, "agent holds no key");
    const AgentRequest& req = *cmd.agent_request;
    // Local attestation: the report must be targeted at us (MAC verifies
    // with our report key), come from the same developer (MRSIGNER), and
    // bind the DH value.
    auto report_key = env_->egetkey(sgx::KeyName::kReport);
    if (!report_key.ok()) return fail(ErrorCode::kInternal, "EGETKEY failed");
    crypto::Digest mac =
        crypto::hmac_sha256(*report_key, req.report.serialize_body());
    if (!crypto::ct_equal(mac, req.report.mac))
      return fail(ErrorCode::kAuthFailure, "report not targeted at agent");
    if (!crypto::ct_equal(req.report.mrsigner, own_mrsigner()))
      return fail(ErrorCode::kAuthFailure, "requester has foreign signer");
    crypto::Digest bind = crypto::Sha256::hash(req.dh_pub);
    if (!crypto::ct_equal(ByteSpan(req.report.report_data), ByteSpan(bind)))
      return fail(ErrorCode::kAuthFailure, "report does not bind DH value");

    env_->work(2 * env_->cost().local_attest_dh_ns);
    crypto::DhKeyPair kp = crypto::dh_generate(deps_->rng);
    auto shared =
        crypto::dh_shared(kp.priv, crypto::BigNum::from_bytes(req.dh_pub));
    if (!shared.ok()) return fail(ErrorCode::kAuthFailure, "degenerate DH");
    Bytes dh_pub_a = kp.pub.to_bytes_padded(128);
    Bytes session = crypto::hkdf(to_bytes("agent-channel"), *shared,
                                 req.dh_pub, 32);
    // Look the key up by the requester's measurement.
    Bytes kmigrate;
    uint64_t n = env_->read_u64(kOffAgentHasKey);
    for (uint64_t i = 0; i < n; ++i) {
      Bytes mre = env_->read_bytes(l_->heap_off + 64 * i, 32);
      if (crypto::ct_equal(mre, req.report.mrenclave)) {
        kmigrate = env_->read_bytes(l_->heap_off + 64 * i + 32, 32);
        break;
      }
    }
    if (kmigrate.empty())
      return fail(ErrorCode::kNotFound, "no key parked for this enclave");
    ControlReply reply;
    Writer w;
    w.bytes(dh_pub_a);
    w.bytes(crypto::seal(crypto::CipherAlg::kChaCha20, session, kmigrate));
    reply.blob = w.take();
    return reply;
  }

  // ---- kProvision (launch-time, Fig. 7 left) -----------------------------------
  ControlReply provision(ControlCmd& cmd) {
    if (!cmd.channel.has_value())
      return fail(ErrorCode::kInvalidArgument, "no owner channel");
    auto prov_key =
        owner_key_exchange(*cmd.channel, "PROVISION", cmd.channel_timeout_ns);
    if (!prov_key.ok()) return fail(prov_key.status().code(),
                                    prov_key.status().message());
    // Decrypt the embedded identity private key and validate it against the
    // embedded public key (a wrong provisioning key yields garbage).
    Bytes enc_sk = config_blob(1);
    Bytes nonce(12, 0x5e);
    crypto::chacha20_xor(*prov_key, nonce, 0, enc_sk);
    crypto::BigNum sk = crypto::BigNum::from_bytes(enc_sk);
    const crypto::DhGroup& g = crypto::DhGroup::oakley2();
    env_->work(env_->cost().dh_keygen_ns);
    if (!(g.gq.modexp(sk, g.p) == embedded_identity_pk()))
      return fail(ErrorCode::kAuthFailure, "provisioning key invalid");
    env_->write_bytes(kOffIdentityPriv, sk.to_bytes_padded(160));
    env_->write_u64(kOffProvisioned, 1);
    return {};
  }

  EnclaveEnv* env_;
  ControlDeps* deps_;
  const Layout* l_;
  RestoreState restore_state_;
  DeltaState delta_;
  PageServeState page_serve_;
  PageApplyState page_apply_;
  // False only while a chunked prepare captures state: the pipeline charges
  // dump traversal per chunk instead (see charge_page_dump()).
  bool charge_dump_ = true;
};

}  // namespace

namespace {

const char* cmd_name(ControlCmd::Type t) {
  switch (t) {
    case ControlCmd::Type::kProvision: return "ctl.provision";
    case ControlCmd::Type::kPrepareCheckpoint: return "ctl.prepare_checkpoint";
    case ControlCmd::Type::kServeKey: return "ctl.serve_key";
    case ControlCmd::Type::kCancelMigration: return "ctl.cancel_migration";
    case ControlCmd::Type::kRestore: return "ctl.restore";
    case ControlCmd::Type::kFinishRestore: return "ctl.finish_restore";
    case ControlCmd::Type::kOwnerCheckpoint: return "ctl.owner_checkpoint";
    case ControlCmd::Type::kOwnerRestore: return "ctl.owner_restore";
    case ControlCmd::Type::kAgentFetchKey: return "ctl.agent_fetch_key";
    case ControlCmd::Type::kAgentServeLocal: return "ctl.agent_serve_local";
    case ControlCmd::Type::kStoreSnapshot: return "ctl.store_snapshot";
    case ControlCmd::Type::kStoreRestore: return "ctl.store_restore";
    case ControlCmd::Type::kAdvanceCounter: return "ctl.advance_counter";
    case ControlCmd::Type::kDumpBaseline: return "ctl.dump_baseline";
    case ControlCmd::Type::kDumpDelta: return "ctl.dump_delta";
    case ControlCmd::Type::kServePages: return "ctl.serve_pages";
    case ControlCmd::Type::kApplyPages: return "ctl.apply_pages";
    case ControlCmd::Type::kAbortPostcopy: return "ctl.abort_postcopy";
    case ControlCmd::Type::kNaiveDump: return "ctl.naive_dump";
    case ControlCmd::Type::kShutdown: return "ctl.shutdown";
  }
  return "ctl.unknown";
}

}  // namespace

void control_thread_main(EnclaveEnv& env, ControlMailbox& mailbox,
                         ControlDeps& deps) {
  ControlEngine engine(env, deps);
  for (;;) {
    ControlCmd cmd = mailbox.wait_cmd(env.ctx());
    if (cmd.type == ControlCmd::Type::kShutdown) {
      mailbox.reply(env.ctx(), {});
      return;
    }
    obs::Span<sim::ThreadCtx> span(env.ctx(), cmd_name(cmd.type), "sdk");
    ControlReply reply = engine.handle(cmd);
    obs::metrics().add("sdk.control_cmds");
    if (!reply.status.ok()) {
      // Central failure forensics: every command the engine refuses lands in
      // the flight recorder with its command name and root-cause status, so
      // an aborted migration can name the control-path step that killed it.
      obs::flight(env.ctx(), "sdk.control", cmd_name(cmd.type),
                  reply.status.to_string());
    }
    span.finish({{"ok", reply.status.ok()}});
    mailbox.reply(env.ctx(), std::move(reply));
  }
}

}  // namespace mig::sdk
