#include "sdk/builder.h"

#include "crypto/ciphers.h"
#include "crypto/sha256.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::sdk {

Bytes read_config_blob(ByteSpan config_page, int index) {
  Reader r(config_page);
  Bytes blob;
  for (int i = 0; i <= index; ++i) blob = r.bytes();
  MIG_CHECK_MSG(r.ok(), "malformed config region");
  return blob;
}

BuildOutput build_enclave_image(const BuildInput& input,
                                const crypto::SigKeyPair& dev_signer,
                                const crypto::BigNum& ias_pk,
                                crypto::Drbg& rng) {
  MIG_CHECK(input.program != nullptr);
  BuildOutput out;
  out.program = input.program;
  out.migration_support = input.migration_support;
  out.layout = Layout::compute(input.layout);
  const Layout& l = out.layout;

  // Owner credentials: identity key pair + provisioning key.
  if (input.identity_override.has_value()) {
    out.owner.identity = *input.identity_override;
  } else {
    crypto::Drbg id_rng = rng.fork(to_bytes("identity"));
    out.owner.identity = crypto::sig_keygen(id_rng);
  }
  out.owner.provisioning_key = rng.fork(to_bytes("prov")).generate(32);

  sgx::EnclaveImage& img = out.image;
  img.base = kEnclaveBase;
  img.size = l.size;
  img.isv_prod_id = 1;
  img.isv_svn = 1;

  auto add_page = [&](uint64_t off, sgx::PageType type, sgx::Perms perms,
                      Bytes content) {
    img.pages.push_back(sgx::ImagePage{off, type, perms, std::move(content)});
  };

  // Meta page: all-zero initially (global flag unset, not provisioned).
  {
    Bytes meta(sgx::kPageSize, 0);
    Writer w;
    w.u64(input.layout.num_workers);
    std::copy(w.data().begin(), w.data().end(), meta.begin() + kOffNumWorkers);
    add_page(0, sgx::PageType::kReg, sgx::Perms::rw(), std::move(meta));
  }

  // Config region (read-only): identity pub | encrypted identity priv |
  // IAS pk | counter-service pk | quorum membership (unconfigured slots are
  // written as empty blobs — readers index blobs sequentially, so every
  // slot is always present).
  {
    Bytes priv = out.owner.identity.sk.to_bytes_padded(160);
    Bytes nonce(12, 0x5e);
    crypto::chacha20_xor(out.owner.provisioning_key, nonce, 0, priv);
    Writer w;
    w.bytes(out.owner.identity.pk.to_bytes_padded(160));
    w.bytes(priv);
    w.bytes(ias_pk.to_bytes_padded(160));
    w.bytes(input.counter_service_pk
                ? input.counter_service_pk->to_bytes_padded(160)
                : Bytes{});
    w.bytes(input.quorum_membership);
    Bytes config = w.take();
    MIG_CHECK(config.size() <= sgx::kPageSize);
    add_page(l.config_off, sgx::PageType::kReg, sgx::Perms{true, false, false},
             std::move(config));
    for (uint64_t p = 1; p < l.params.config_pages; ++p) {
      add_page(l.config_off + p * sgx::kPageSize, sgx::PageType::kReg,
               sgx::Perms{true, false, false}, Bytes{});
    }
  }

  // TCS pages + SSA region + thread-local pages.
  for (uint64_t i = 0; i < l.num_tcs; ++i) {
    Writer w;
    w.u64(/*oentry=*/l.code_off);
    w.u64(/*ossa=*/l.ssa_offset(i));
    w.u64(/*nssa=*/kNssa);
    add_page(l.tcs_offset(i), sgx::PageType::kTcs, sgx::Perms{}, w.take());
  }
  for (uint64_t i = 0; i < l.num_tcs * kNssa; ++i) {
    add_page(l.ssa_off + i * sgx::kPageSize, sgx::PageType::kReg,
             sgx::Perms::rw(), Bytes{});
  }
  for (uint64_t i = 0; i < l.num_tcs; ++i) {
    add_page(l.tls_offset(i), sgx::PageType::kReg, sgx::Perms::rw(), Bytes{});
  }

  // Code pages: measured program identity (+ the migration runtime when
  // enabled — a different SDK configuration is a different enclave).
  {
    std::string ident = input.program->identity();
    ident += input.migration_support ? "|sdk:migration" : "|sdk:plain";
    crypto::Digest d = crypto::Sha256::hash(to_bytes(ident));
    Bytes code;
    while (code.size() < sgx::kPageSize) code.insert(code.end(), d.begin(), d.end());
    code.resize(sgx::kPageSize);
    for (uint64_t p = 0; p < l.params.code_pages; ++p) {
      add_page(l.code_off + p * sgx::kPageSize, sgx::PageType::kReg,
               sgx::Perms::rx(), code);
    }
  }

  // Data region: app initial data.
  {
    MIG_CHECK(input.app_data.size() <= l.params.data_pages * sgx::kPageSize);
    for (uint64_t p = 0; p < l.params.data_pages; ++p) {
      uint64_t start = p * sgx::kPageSize;
      Bytes content;
      if (start < input.app_data.size()) {
        uint64_t n = std::min<uint64_t>(sgx::kPageSize,
                                        input.app_data.size() - start);
        content.assign(input.app_data.begin() + start,
                       input.app_data.begin() + start + n);
      }
      add_page(l.data_off + p * sgx::kPageSize, sgx::PageType::kReg,
               sgx::Perms::rw(), std::move(content));
    }
  }

  // Heap: zero pages. Optionally one W+X (non-readable) page at the end for
  // the §IV-B SGXv1-limitation tests.
  for (uint64_t p = 0; p < l.params.heap_pages; ++p) {
    bool wx = input.include_wx_page && p + 1 == l.params.heap_pages;
    add_page(l.heap_off + p * sgx::kPageSize, sgx::PageType::kReg,
             wx ? sgx::Perms::wx_only() : sgx::Perms::rw(), Bytes{});
  }

  // Track region: per-page write-version counters for delta checkpointing.
  // Zero (tracking off) until a kDumpBaseline arms it.
  for (uint64_t p = 0; p < l.track_pages; ++p) {
    add_page(l.track_off + p * sgx::kPageSize, sgx::PageType::kReg,
             sgx::Perms::rw(), Bytes{});
  }

  crypto::Drbg sign_rng = rng.fork(to_bytes("sign"));
  img.sign(dev_signer, sign_rng);
  return out;
}

}  // namespace mig::sdk
