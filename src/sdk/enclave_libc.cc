#include "sdk/enclave_libc.h"

#include "util/check.h"

namespace mig::sdk {

namespace {
constexpr uint64_t align16(uint64_t v) { return (v + 15) & ~uint64_t{15}; }
}  // namespace

void EnclaveAllocator::ensure_formatted() {
  if (env_->read_u64(kOffHeapMagic) == kMagic) return;
  // One big free block spanning the whole heap.
  uint64_t payload = heap_end() - heap_begin() - kHeaderBytes;
  env_->write_u64(heap_begin(), payload);
  env_->write_u64(heap_begin() + 8, 1);  // free
  env_->write_u64(kOffHeapMagic, kMagic);
}

Result<uint64_t> EnclaveAllocator::malloc(uint64_t bytes) {
  if (bytes == 0) return Error(ErrorCode::kInvalidArgument, "malloc(0)");
  ensure_formatted();
  uint64_t need = align16(bytes);
  uint64_t block = heap_begin();
  while (block + kHeaderBytes <= heap_end()) {
    uint64_t size = env_->read_u64(block);
    uint64_t is_free = env_->read_u64(block + 8);
    MIG_CHECK_MSG(size > 0 && block + kHeaderBytes + size <= heap_end(),
                  "corrupt heap block @" << block);
    env_->work(40);  // walk cost
    if (is_free == 1 && size >= need) {
      // Split if the remainder can hold another block.
      if (size >= need + kHeaderBytes + 16) {
        uint64_t rest = block + kHeaderBytes + need;
        env_->write_u64(rest, size - need - kHeaderBytes);
        env_->write_u64(rest + 8, 1);
        env_->write_u64(block, need);
      }
      env_->write_u64(block + 8, 0);
      return block + kHeaderBytes;
    }
    block += kHeaderBytes + size;
  }
  return Error(ErrorCode::kResourceExhausted, "enclave heap exhausted");
}

Status EnclaveAllocator::free(uint64_t ptr) {
  ensure_formatted();
  if (ptr < heap_begin() + kHeaderBytes || ptr >= heap_end())
    return Error(ErrorCode::kInvalidArgument, "free of non-heap pointer");
  uint64_t block = ptr - kHeaderBytes;
  uint64_t size = env_->read_u64(block);
  if (env_->read_u64(block + 8) != 0)
    return Error(ErrorCode::kFailedPrecondition, "double free");
  env_->write_u64(block + 8, 1);
  // Coalesce with the next block if it is free.
  uint64_t next = block + kHeaderBytes + size;
  if (next + kHeaderBytes <= heap_end() && env_->read_u64(next + 8) == 1) {
    uint64_t next_size = env_->read_u64(next);
    env_->write_u64(block, size + kHeaderBytes + next_size);
  }
  return OkStatus();
}

uint64_t EnclaveAllocator::free_bytes() {
  ensure_formatted();
  uint64_t total = 0;
  uint64_t block = heap_begin();
  while (block + kHeaderBytes <= heap_end()) {
    uint64_t size = env_->read_u64(block);
    if (env_->read_u64(block + 8) == 1) total += size;
    block += kHeaderBytes + size;
  }
  return total;
}

uint64_t EnclaveAllocator::block_count() {
  ensure_formatted();
  uint64_t n = 0;
  uint64_t block = heap_begin();
  while (block + kHeaderBytes <= heap_end()) {
    ++n;
    block += kHeaderBytes + env_->read_u64(block);
  }
  return n;
}

}  // namespace mig::sdk
