#include "sdk/enclave_env.h"

#include "util/check.h"
#include "util/serde.h"

namespace mig::sdk {

namespace {
// Heap bump pointer lives in the meta page so it checkpoints with the rest.
constexpr uint64_t kOffHeapNext = 40;
}  // namespace

Bytes serialize_ctx(CtxKind kind, uint64_t thread_idx) {
  Writer w;
  w.u8(static_cast<uint8_t>(kind));
  w.u64(thread_idx);
  return w.take();
}

Result<std::pair<CtxKind, uint64_t>> parse_ctx(ByteSpan blob) {
  Reader r(blob);
  auto kind = static_cast<CtxKind>(r.u8());
  uint64_t idx = r.u64();
  MIG_RETURN_IF_ERROR(r.finish());
  return std::make_pair(kind, idx);
}

EnclaveEnv::EnclaveEnv(sim::ThreadCtx& ctx, sgx::SgxHardware& hw,
                       sgx::CoreState& core, sgx::EnclaveId eid,
                       const Layout& layout, uint64_t thread_idx)
    : ctx_(&ctx), hw_(&hw), core_(&core), eid_(eid), layout_(&layout),
      thread_idx_(thread_idx) {}

const sim::CostModel& EnclaveEnv::cost() const {
  return sim::default_cost_model();
}

void EnclaveEnv::work(uint64_t ns) {
  ctx_->work(ns);
  ns_since_aex_ += ns;
}

bool EnclaveEnv::aex_pending() const { return ns_since_aex_ >= kTimerTickNs; }

void EnclaveEnv::aex_point(CtxKind kind) {
  if (!aex_pending()) return;
  force_aex(kind);
}

void EnclaveEnv::force_aex(CtxKind kind) {
  ns_since_aex_ = 0;
  Status st = hw_->aex(*ctx_, *core_, serialize_ctx(kind, thread_idx_));
  MIG_CHECK_MSG(st.ok(), "AEX failed: " << st.to_string());
  throw AexSignal{};
}

uint64_t EnclaveEnv::read_u64(uint64_t off) {
  Bytes b = read_bytes(off, 8);
  Reader r(b);
  return r.u64();
}

void EnclaveEnv::write_u64(uint64_t off, uint64_t value) {
  Writer w;
  w.u64(value);
  write_bytes(off, w.data());
}

Bytes EnclaveEnv::read_bytes(uint64_t off, size_t n) {
  Bytes out(n);
  Status st = hw_->enclave_read(*ctx_, *core_, kEnclaveBase + off, out);
  MIG_CHECK_MSG(st.ok(), "enclave read @" << off << ": " << st.to_string());
  return out;
}

Status EnclaveEnv::try_read_bytes(uint64_t off, size_t n, Bytes& out) {
  out.resize(n);
  return hw_->enclave_read(*ctx_, *core_, kEnclaveBase + off, out);
}

void EnclaveEnv::write_bytes(uint64_t off, ByteSpan data) {
  Status st = hw_->enclave_write(*ctx_, *core_, kEnclaveBase + off, data);
  MIG_CHECK_MSG(st.ok(), "enclave write @" << off << ": " << st.to_string());
  track_write(off, data.size());
}

// Bumps the version counter of every page the write touched. Armed only
// while a delta migration session is live (kOffDeltaTracking, set by
// kDumpBaseline): with tracking off this is a single meta-page read and the
// write path is otherwise unchanged. Writes to the track region itself are
// never tracked — that would recurse.
void EnclaveEnv::track_write(uint64_t off, size_t n) {
  if (n == 0 || layout_->track_pages == 0) return;
  if (off >= layout_->track_off || off == kOffDeltaTracking) return;
  if (read_u64(kOffDeltaTracking) == 0) return;
  const sim::CostModel& cm = cost();
  uint64_t first = off / sgx::kPageSize;
  uint64_t last = (off + n - 1) / sgx::kPageSize;
  for (uint64_t page = first; page <= last; ++page) {
    uint64_t slot = layout_->track_off + page * 8;
    Bytes cur(8);
    Status st = hw_->enclave_read(*ctx_, *core_, kEnclaveBase + slot, cur);
    MIG_CHECK_MSG(st.ok(), "track read: " << st.to_string());
    Reader r(cur);
    Writer w;
    w.u64(r.u64() + 1);
    st = hw_->enclave_write(*ctx_, *core_, kEnclaveBase + slot, w.data());
    MIG_CHECK_MSG(st.ok(), "track write: " << st.to_string());
    ctx_->work(cm.delta_track_write_ns);
  }
}

Result<uint64_t> EnclaveEnv::heap_alloc(uint64_t bytes) {
  uint64_t next = read_u64(kOffHeapNext);
  if (next == 0) next = layout_->heap_off;
  uint64_t aligned = (bytes + 15) & ~uint64_t{15};
  // The heap ends where the track region begins (it used to end at `size`).
  if (next + aligned > layout_->track_off)
    return Error(ErrorCode::kResourceExhausted, "enclave heap exhausted");
  write_u64(kOffHeapNext, next + aligned);
  return next;
}

void EnclaveEnv::heap_reset() { write_u64(kOffHeapNext, layout_->heap_off); }

Result<Bytes> EnclaveEnv::ocall(uint64_t id, ByteSpan args) {
  if (ocalls_ == nullptr)
    return Error(ErrorCode::kUnavailable, "no ocall table bound");
  auto it = ocalls_->find(id);
  if (it == ocalls_->end())
    return Error(ErrorCode::kNotFound, "no such ocall");
  // The trampoline leaves the enclave, performs the call and re-enters;
  // charge both crossings + the syscall (the paper inserts exactly these
  // trampolines, §VI-C).
  const sim::CostModel& cm = cost();
  ctx_->work(cm.eexit_ns + cm.syscall_ns);
  Result<Bytes> result = it->second(*ctx_, args);
  ctx_->work(cm.eenter_ns);
  return result;
}

Result<sgx::Report> EnclaveEnv::ereport(const sgx::TargetInfo& target,
                                        ByteSpan data) {
  return hw_->ereport(*ctx_, *core_, target, data);
}

Result<Bytes> EnclaveEnv::egetkey(sgx::KeyName name) {
  return hw_->egetkey(*ctx_, *core_, name);
}

}  // namespace mig::sdk
