// Builds EnclaveImages from programs: lays out memory per sdk/layout.h,
// embeds the enclave identity keys (public key in plaintext, private key
// encrypted under the owner's provisioning key — §V-B "We put a pair of keys
// into the enclave image"), embeds the attestation-service public key, and
// signs the measurement with the developer key.
#pragma once

#include <memory>
#include <optional>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sdk/layout.h"
#include "sdk/program.h"
#include "sgx/image.h"

namespace mig::sdk {

// Credentials the *enclave owner* keeps: the provisioning key that decrypts
// the embedded identity private key, and the identity public key to
// recognize their enclaves.
struct OwnerCredentials {
  Bytes provisioning_key;       // 32 B symmetric
  crypto::SigKeyPair identity;  // the enclave identity key pair
};

struct BuildInput {
  std::shared_ptr<const EnclaveProgram> program;
  LayoutParams layout;
  Bytes app_data;               // initial contents of the data region
  bool migration_support = true;  // stubs + control thread instrumentation
  // When set, embed this identity key pair instead of generating one — used
  // to give the developer's agent enclave the same identity as the app
  // enclaves it serves (§VI-D: "A developer can use one agent enclave to
  // serve all his/her enclaves").
  std::optional<crypto::SigKeyPair> identity_override;
  // Makes the last heap page writable+executable but NOT readable — the
  // SGXv1 corner the paper calls out in §IV-B: such a page cannot be dumped
  // by the control thread, so the enclave is unmigratable. For tests.
  bool include_wx_page = false;
  // When set, embed the trusted counter service's public key (config blob 3)
  // so the control thread can authenticate SEALGRANT/OPENGRANT/ADVANCE
  // replies for the persistent snapshot store. Absent ⇒ snapshot/restore
  // from the store is refused (the enclave has no root of trust for it).
  std::optional<crypto::BigNum> counter_service_pk;
  // When non-empty, a QMB1-encoded quorum membership set (config blob 4,
  // see sdk/chunk_wire.h): the enclave then requires f+1 matching
  // Schnorr-signed replies from the pinned 2f+1 replicas instead of one
  // CTRGRANT, and rejects single-signer grants outright (anti-downgrade).
  Bytes quorum_membership;
};

struct BuildOutput {
  sgx::EnclaveImage image;
  Layout layout;
  OwnerCredentials owner;
  std::shared_ptr<const EnclaveProgram> program;
  bool migration_support = true;
};

// `dev_signer` signs SIGSTRUCT (determines MRSIGNER); `rng` draws the
// identity key pair and provisioning key.
BuildOutput build_enclave_image(const BuildInput& input,
                                const crypto::SigKeyPair& dev_signer,
                                const crypto::BigNum& ias_pk,
                                crypto::Drbg& rng);

// Offsets of the embedded blobs inside the config region (serialized with
// util/serde): identity_pub | identity_priv_encrypted | ias_pk |
// counter_service_pk | quorum_membership (the last two are empty blobs when
// the image was built without them).
Bytes read_config_blob(ByteSpan config_page, int index);

}  // namespace mig::sdk
