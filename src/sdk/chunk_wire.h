// Chunked checkpoint wire format (v2) and its stream framing.
//
// The pipelined checkpoint data path seals the serialized enclave state as a
// sequence of fixed-size chunks (crypto/aead.h ChunkSealer) so that sealing
// can run on parallel workers and the network can carry chunk k while chunk
// k+1 is still being encrypted. Two byte formats fall out of that:
//
//  * the *assembled blob* (v2) — what EnclaveMigrator hands around in place
//    of the legacy single seal() blob:
//
//      "MGC2" | u8 alg | u64 chunk_bytes | u64 chunk_count | u64 total_bytes
//             | chunk_count x ( u64 index | bytes sealed_chunk )
//             | root (32 raw bytes)
//
//    The first magic byte (0x4D) can never collide with a legacy blob, whose
//    first byte is a CipherAlg in 1..5 — restore dispatches on it.
//
//  * the *stream frames* — what the control thread emits over a channel
//    while the pipeline runs: one CHNK frame per sealed chunk, then a CEND
//    frame carrying the header and the integrity root. A receiver that never
//    sees CEND (fault between chunk k and k+1) holds only useless ciphertext:
//    without the root the chunk set can never be accepted.
//
// Decoders here are deliberately defensive: they are fed by fuzz and
// tampering tests and must reject hostile input without allocating absurd
// amounts of memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "crypto/aead.h"
#include "sim/network.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mig::sdk {

// Upper bound a decoder will believe for chunk_count; a 96 MB EPC at the
// minimum 4 KB chunk size is ~24k chunks, so 2^20 is generous.
inline constexpr uint64_t kMaxWireChunks = 1u << 20;

struct ChunkedHeader {
  crypto::CipherAlg alg = crypto::CipherAlg::kRc4;
  uint64_t chunk_bytes = 0;  // nominal plaintext bytes per chunk
  uint64_t chunk_count = 0;
  uint64_t total_bytes = 0;  // plaintext bytes across all chunks
};

// True iff `blob` starts with the v2 magic.
bool is_chunked_checkpoint(ByteSpan blob);

// Assembles the v2 blob from `chunk_count` sealed chunks (indexed by
// position) and the 32-byte integrity root.
Bytes encode_chunked_checkpoint(const ChunkedHeader& header,
                                const std::vector<Bytes>& sealed_chunks,
                                ByteSpan root);

struct ParsedChunked {
  ChunkedHeader header;
  std::vector<Bytes> sealed_chunks;  // position == chunk index
  Bytes root;
};

Result<ParsedChunked> parse_chunked_checkpoint(ByteSpan blob);

// ---- stream framing ----

// "CHNK" | u64 index | bytes sealed_chunk
Bytes encode_chunk_frame(uint64_t index, ByteSpan sealed);
// "CEND" | u8 alg | u64 chunk_bytes | u64 chunk_count | u64 total_bytes | root
Bytes encode_end_frame(const ChunkedHeader& header, ByteSpan root);

// Drains CHNK frames (which must arrive in index order 0,1,2,...) until the
// CEND frame, reassembling the v2 blob. `timeout_ns` bounds the wait for
// *each* frame; a quiet or severed link yields kDeadlineExceeded and no
// partial output escapes. Errors name the chunk index that failed.
Result<Bytes> receive_chunked_checkpoint(sim::ThreadCtx& ctx,
                                         sim::Channel::End end,
                                         uint64_t timeout_ns);

// ---- persistent snapshot envelope (store format) ----
//
// What the snapshot store persists: the sealed checkpoint (legacy v1 or
// chunked v2 — ciphertext either way) wrapped with the identity it belongs
// to and the counter value it was sealed against:
//
//   "MGS1" | mrenclave (32 raw bytes) | u64 counter | bytes inner
//
// Both outer fields are *bindings*, not trust anchors: the sealing key is
// HKDF(per-identity root, counter), so a tampered counter or mrenclave
// selects the wrong key and the inner MAC check fails. The plaintext copies
// exist so a restorer can ask the counter service for the right grant and
// refuse obviously-wrong snapshots before paying for a decrypt.

struct SnapshotEnvelope {
  Bytes mrenclave;      // 32 raw bytes
  uint64_t counter = 0; // counter value the seal key was derived from (>= 1)
  Bytes inner;          // sealed checkpoint blob (v1 or v2)
};

// True iff `blob` starts with the MGS1 magic.
bool is_snapshot_envelope(ByteSpan blob);

Bytes encode_snapshot_envelope(const SnapshotEnvelope& env);

// Defensive: rejects bad magic, short mrenclave, counter 0, empty inner
// blob, and trailing bytes.
Result<SnapshotEnvelope> parse_snapshot_envelope(ByteSpan blob);

// ---- incremental checkpoint wire format (v3) ----
//
// An incremental checkpoint is a *sequence of segments*: segment 0 is the
// baseline (every checkpointable page, dumped while the workers keep
// running), each later segment carries only the pages re-dirtied since they
// were last shipped, and the last segment (final=1) is produced at the
// quiescent point and additionally carries the sealed thread contexts.
//
//   segment:   "MGD3" | u8 alg | u64 index | u8 final | u64 record_count
//              | record_count x ( u64 page | u64 version | u8 kind
//                                 | bytes payload )
//              | bytes trailer        (sealed thread contexts; empty
//                                      unless final)
//              | chain (32 raw bytes)
//
//   record kinds: 0 = data  (payload: page sealed under the
//                            (page, version)-bound subkey)
//                 1 = zero  (payload empty: the page is all zeroes)
//                 2 = dup   (payload: 32-byte SHA-256 of page content the
//                            target has already applied)
//
//   container: "MGV3" | u64 segment_count | segment_count x (bytes segment)
//
// The chain value closing each segment is the keyed running chain of
// crypto::delta_chain_record/close over every record since the baseline:
// the target recomputes it while applying, so segment reorder, replay,
// truncation and record tampering are all rejected with one check. The
// first container byte (0x4D, 'M') cannot collide with a legacy v1 blob
// (first byte = CipherAlg in 1..5); "MGV3" vs "MGC2" disambiguates v2.

inline constexpr uint64_t kMaxDeltaRecords = 1u << 20;
inline constexpr uint64_t kMaxDeltaSegments = 1u << 12;

enum class DeltaRecordKind : uint8_t {
  kData = 0,
  kZero = 1,
  kDup = 2,
  // Post-copy manifest entry (wire v4): the page stays behind on the source
  // and will be pulled on demand. The payload is the 32-byte SHA-256 of the
  // page content at the quiescent point; the record still advances the keyed
  // chain, so the manifest itself cannot be dropped, reordered or spliced.
  kRemote = 3,
};

struct DeltaRecord {
  uint64_t page = 0;     // absolute page index within the enclave
  uint64_t version = 0;  // version counter value the content was read at
  DeltaRecordKind kind = DeltaRecordKind::kData;
  Bytes payload;         // sealed page / empty / 32-byte content hash
};

struct DeltaSegment {
  crypto::CipherAlg alg = crypto::CipherAlg::kRc4;
  uint64_t index = 0;
  bool final_segment = false;
  std::vector<DeltaRecord> records;
  Bytes trailer;  // sealed thread-context blob (final segments only)
  Bytes chain;    // 32-byte running-chain value after this segment
};

// True iff `blob` starts with the v3 segment / container magic.
bool is_delta_segment(ByteSpan blob);
bool is_delta_checkpoint(ByteSpan blob);

Bytes encode_delta_segment(const DeltaSegment& seg);
// Defensive: rejects bad magic/alg/kind, record_count > kMaxDeltaRecords,
// dup payloads that are not exactly 32 bytes, a non-final segment with a
// trailer, a short chain, and trailing bytes.
Result<DeltaSegment> parse_delta_segment(ByteSpan blob);

Bytes encode_delta_container(const std::vector<Bytes>& segments);
// Defensive: rejects bad magic, segment_count 0 or > kMaxDeltaSegments, and
// trailing bytes. Segment blobs are returned unparsed (the apply path parses
// and verifies them one by one, naming the segment that failed).
Result<std::vector<Bytes>> parse_delta_container(ByteSpan blob);

// ---- remote-page protocol (wire format v4) ----
//
// Post-copy/hybrid migration ships the residual dirty tail as kRemote
// manifest records (above) and then pulls the actual page content over the
// untrusted link, one batched request/reply exchange per fault burst:
//
//   request: "MGP4" | u8 0 | u64 epoch | u64 count
//            | count x u64 page            (strictly increasing)
//   reply:   "MGP4" | u8 1 | u64 epoch | u64 first_seq | u64 count
//            | count x ( u64 page | u64 version | bytes sealed
//                        | chain (32 raw bytes) )
//   done:    "MGP4" | u8 2                 (client -> service: hang up)
//
// `epoch` is the counter epoch the migration commits to (source epoch + 1):
// a retained pre-migration source — or a fork restored from an older
// snapshot — carries an older epoch, derives different chain/page keys, and
// its replies are refused. Each reply record extends the wire-v3 delta chain
// (seeded from the final segment's closing value) with sequence number
// `first_seq + i`, so replayed, reordered or spliced replies surface as one
// chain mismatch at apply time. Pages are sealed under the same
// (page, version)-bound subkeys as delta records.

inline constexpr uint64_t kMaxPageRecords = 1u << 16;

enum class PageFrameKind : uint8_t {
  kRequest = 0,
  kReply = 1,
  kDone = 2,
};

struct PageRequest {
  uint64_t epoch = 0;
  std::vector<uint64_t> pages;  // strictly increasing
};

struct PageReplyRecord {
  uint64_t page = 0;
  uint64_t version = 0;
  Bytes sealed;  // page sealed under the (page, version)-bound subkey
  Bytes chain;   // 32-byte running-chain value *after* this record
};

struct PageReply {
  uint64_t epoch = 0;
  uint64_t first_seq = 0;  // chain sequence number of the first record
  std::vector<PageReplyRecord> records;
};

// True iff `blob` starts with the v4 magic (any frame kind).
bool is_page_frame(ByteSpan blob);
// Kind of a v4 frame, or nullopt if not even the magic matches.
std::optional<PageFrameKind> page_frame_kind(ByteSpan blob);

Bytes encode_page_request(const PageRequest& req);
Bytes encode_page_reply(const PageReply& reply);
Bytes encode_page_done();

// Defensive: reject bad magic/kind, epoch 0, empty or absurd page lists,
// non-increasing request pages, empty sealed payloads, short chains,
// truncation (naming the failing record) and trailing bytes.
Result<PageRequest> parse_page_request(ByteSpan blob);
Result<PageReply> parse_page_reply(ByteSpan blob);

// ---- quorum counter service (src/quorum/) wire formats ----
//
// The 2f+1-replica counter service answers a SEALGRANT/OPENGRANT/ADVANCE
// request with an *envelope* of per-replica grant records instead of one
// CTRGRANT. Two formats:
//
//  * membership blob (config blob 4, pinned at image build time):
//
//      "QMB1" | u64 n | n x ( u64 replica_id | measurement (32 raw bytes)
//                             | bytes pk )
//
//    n must be odd (2f+1); the enclave accepts a grant only when f+1
//    distinct pinned replicas signed matching records. An image with an
//    empty blob 4 runs in single-signer mode (config blob 3) unchanged.
//
//  * reply envelope (coordinator -> enclave):
//
//      "MGQ1" | u64 record_count | record_count x record
//             | u64 sig_count | sig_count x bytes sig
//      record = u64 replica_id | u64 counter | key_commit (32 raw bytes)
//             | u64 tree_size | root (32 raw bytes) | bytes leaf
//             | u64 proof_len | proof_len x (32 raw bytes)
//             | bytes dh_pub_s | bytes enc_key
//
//    sig[i] is replica i's Schnorr signature over
//    quorum_reply_transcript(verb, dh_pub_e, record[i]) — the enclave's
//    fresh DH value makes each record reply-bound (no replay), and the
//    co-signed Merkle root + inclusion proof of `leaf` (the replica's newest
//    audit-log entry, at index tree_size-1) commit the replica to one linear
//    log history. key_commit = SHA-256 of the granted sealing key, so the
//    enclave can check that every matching replica granted the *same* key
//    before trusting any single record's enc_key.

inline constexpr uint64_t kMaxQuorumReplicas = 16;
// An audit path longer than 64 nodes implies a tree with > 2^64 leaves.
inline constexpr uint64_t kMaxQuorumProofNodes = 64;

struct QuorumMember {
  uint64_t id = 0;
  Bytes measurement;  // 32 raw bytes (replica attestation measurement)
  Bytes pk;           // serialized Schnorr public key
};

struct QuorumMembership {
  std::vector<QuorumMember> members;  // size 2f+1, odd
  uint64_t f() const { return (members.size() - 1) / 2; }
  uint64_t quorum() const { return f() + 1; }
};

Bytes encode_quorum_membership(const QuorumMembership& m);
// Defensive: rejects bad magic, zero/even/absurd member counts, duplicate
// replica ids, short measurements, empty keys, and trailing bytes.
Result<QuorumMembership> parse_quorum_membership(ByteSpan blob);

struct QuorumReplyRecord {
  uint64_t replica_id = 0;
  uint64_t counter = 0;
  Bytes key_commit;  // 32 raw bytes: SHA-256 of the sealing key ("" for none)
  uint64_t tree_size = 0;  // audit-log size after this op
  Bytes root;              // 32 raw bytes: Merkle root over the log
  Bytes leaf;              // newest audit entry (serialized, index size-1)
  std::vector<Bytes> proof;  // inclusion proof nodes, 32 raw bytes each
  Bytes dh_pub_s;
  Bytes enc_key;  // sealing key sealed to the requester; empty for ADVANCE
};

struct QuorumReplyEnvelope {
  std::vector<QuorumReplyRecord> records;
  std::vector<Bytes> sigs;  // parallel to records
};

// True iff `blob` starts with the MGQ1 magic.
bool is_quorum_reply(ByteSpan blob);

Bytes encode_quorum_reply(const QuorumReplyEnvelope& env);
// Defensive: rejects bad magic, a zero-length reply set, absurd counts,
// duplicate replica ids, counter 0, short commit/root digests, truncated
// Merkle proofs (naming the record), a signature count that does not match
// the record count, empty signatures, and trailing bytes.
Result<QuorumReplyEnvelope> parse_quorum_reply(ByteSpan blob);

// The per-record byte string a replica signs (and the enclave verifies).
Bytes quorum_reply_transcript(std::string_view verb, ByteSpan dh_pub_e,
                              const QuorumReplyRecord& rec);

}  // namespace mig::sdk
