// The control thread (§III of the paper) and its mailbox.
//
// "We introduce control thread, a new thread that runs within each enclave,
//  to assist migration... Control threads are totally transparent to enclave
//  developers as long as the developers use our SDK."
//
// The mailbox is UNTRUSTED shared memory between the in-enclave control
// thread and the outside world (SGX library / migration manager). Commands
// and replies carry only data the enclave chooses to expose: sealed
// checkpoints, public DH values, quotes, pump counts. All secrets stay in
// enclave memory; all integrity-bearing decisions happen inside.
//
// Command set:
//   kProvision         — launch-time owner attestation (Fig. 7 left):
//                        attest to the owner, receive the provisioning key,
//                        decrypt the embedded identity private key.
//   kPrepareCheckpoint — two-phase checkpointing (§IV-B) + state dump (§IV):
//                        sets the global flag, waits for the quiescent
//                        point, dumps memory + thread state, seals it under
//                        a fresh in-enclave Kmigrate.
//   kDumpBaseline      — incremental checkpointing (wire v3): generate a
//                        fresh Kmigrate, arm per-page write-version tracking
//                        and dump EVERY checkpointable page while the worker
//                        threads keep running. Pages dirtied during or after
//                        the dump get their version bumped and re-ship in a
//                        later delta.
//   kDumpDelta         — ship only the pages re-dirtied since they were
//                        last shipped. With final_dump set, first reach the
//                        quiescent point (two-phase protocol), then dump the
//                        residual dirty set plus the sealed thread contexts
//                        and disarm tracking — the delta analogue of
//                        kPrepareCheckpoint's stop-phase dump.
//   kServeKey          — source role of §V-B: accept exactly ONE key-
//                        exchange request, remotely attest the requester
//                        (owner-free), deliver Kmigrate, then self-destroy.
//   kCancelMigration   — §V-B: migration cancelled; delete Kmigrate and
//                        unset the global flag so workers resume.
//   kRestore           — target role: handshake for Kmigrate (via the source
//                        enclave or a local agent enclave), decrypt + verify
//                        the checkpoint, restore memory, emit the CSSA pump
//                        plan for the untrusted library.
//   kFinishRestore     — after pumping: verify the in-enclave-tracked CSSA
//                        against the checkpoint (§IV-C Step-4), reconstruct
//                        SSA frames, unset flags.
//   kOwnerCheckpoint / kOwnerRestore — §V-C legal checkpoint/resume with an
//                        owner-issued Kencrypt (audited on the owner side).
//   kStoreSnapshot     — persistent snapshot: fetch a SEALGRANT from the
//                        counter service (store/counter_service.h), fence
//                        against a stale epoch, then run the two-phase
//                        checkpoint under the counter-bound sealing key and
//                        return an MGS1 snapshot envelope. The enclave keeps
//                        running afterwards.
//   kStoreRestore      — cold-migration / crash-recovery restore: parse the
//                        envelope defensively, OPENGRANT its counter value
//                        (consuming the epoch — each snapshot opens at most
//                        once), restore memory, record the new epoch.
//   kAdvanceCounter    — posted after a committed live migration: advance
//                        the counter so every pre-migration snapshot is dead
//                        (rollback defense). A refusal means this instance
//                        lost the at-most-one-live-lease race: self-destroy.
//   kShutdown          — leave the enclave so EREMOVE can proceed.
#pragma once

#include <optional>
#include <vector>

#include "crypto/aead.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "sdk/enclave_env.h"
#include "sgx/attestation.h"
#include "sim/network.h"

namespace mig::sdk {

struct PumpPlan {
  uint64_t worker_idx = 0;
  uint64_t pumps = 0;  // EENTER+AEX cycles to reach the checkpointed CSSA
};

// A local-attestation key request (client enclave -> agent enclave).
struct AgentRequest {
  sgx::Report report;  // targeted at the agent, binds dh_pub
  Bytes dh_pub;
};

struct ControlCmd {
  enum class Type {
    kProvision,
    kPrepareCheckpoint,
    kServeKey,
    kCancelMigration,
    kRestore,
    kFinishRestore,
    kOwnerCheckpoint,
    kOwnerRestore,
    kAgentFetchKey,   // agent role: obtain Kmigrate from the source enclave
    kAgentServeLocal, // agent role: answer one local-attestation key request
    kStoreSnapshot,   // persistent snapshot under a counter-bound seal key
    kStoreRestore,    // cold restore from a snapshot envelope
    kAdvanceCounter,  // invalidate pre-migration snapshots (rollback defense)
    kDumpBaseline,    // wire v3: arm tracking + full dump, workers running
    kDumpDelta,       // wire v3: dump re-dirtied pages (final: quiesce first)
    kServePages,      // wire v4 source role: answer one page-request frame
                      // from the frozen post-copy manifest (works after
                      // self-destroy — the image is frozen, workers parked)
    kApplyPages,      // wire v4 target role: verify-apply one page reply
                      // (epoch, chain, version and content hash all checked)
    kAbortPostcopy,   // fail-closed: source outage mid-post-copy; the target
                      // self-destroys rather than run on a partial image
    // STRAWMAN used by the §IV-A attack demonstration: dump immediately,
    // trusting that the (untrusted!) OS already stopped the worker threads.
    // The paper's design never uses this; attacks/ does.
    kNaiveDump,
    kShutdown,
  };
  Type type = Type::kShutdown;
  std::optional<sim::Channel::End> channel;  // network peer for this command
  // Bound (virtual time) on every blocking channel recv this command
  // performs. A quiet peer yields kDeadlineExceeded instead of wedging the
  // control thread — and with it the one-command-at-a-time mailbox — forever.
  uint64_t channel_timeout_ns = 5'000'000'000;  // 5 s
  crypto::CipherAlg cipher = crypto::CipherAlg::kRc4;
  Bytes blob;  // checkpoint in (restore paths)
  // §VII-A side-channel mitigation: pad the checkpoint so its size does not
  // reflect the enclave's live memory usage. 0 = no padding; otherwise the
  // plaintext is padded up to the next multiple of this many bytes.
  uint64_t pad_to_multiple = 0;
  // kRestore with a local agent: mailbox of the agent enclave on this
  // machine (key obtained by local attestation instead of WAN).
  class AgentPort* agent = nullptr;
  // kServeKey: also accept a developer agent enclave (same MRSIGNER) as the
  // key recipient, not only a same-MRENCLAVE target (§VI-D).
  bool allow_agent_recipient = false;
  // kAgentServeLocal: the local-attestation request being answered.
  std::optional<AgentRequest> agent_request;

  // ---- chunked checkpoint pipeline (wire format v2) ----
  // When nonzero, the prepare paths split the serialized state into chunks
  // of this many plaintext bytes, seal them with `seal_workers` parallel
  // in-enclave sealing workers (each chunk under a Kmigrate+index derived
  // subkey, all per-chunk MACs folded into one integrity root) and return
  // the v2 chunked blob (sdk/chunk_wire.h). 0 keeps the legacy single-blob
  // v1 sealing. Restore auto-detects either format.
  uint64_t chunk_bytes = 0;
  uint64_t seal_workers = 1;
  // When set alongside chunk_bytes, prepare streams each sealed chunk over
  // this end the moment it is ready — the wire carries chunk k while chunk
  // k+1 is still being encrypted — and finishes with an end frame bearing
  // the integrity root. The assembled blob is still returned in the reply.
  std::optional<sim::Channel::End> chunk_stream;

  // ---- incremental checkpointing (wire format v3) ----
  // kDumpDelta only: this is the stop-phase dump — reach the quiescent point
  // first, include the sealed thread contexts, and disarm tracking.
  bool final_dump = false;

  // ---- post-copy (wire format v4) ----
  // kDumpDelta final: ship the residual dirty data/heap pages as kRemote
  // manifest records (hash + version only) and arm the page service so the
  // retained image can answer kServePages afterwards. The meta page and the
  // thread-context trailer always travel in full.
  bool postcopy_tail = false;
  // kRestore / kStoreRestore: accept kRemote manifest records; the reply
  // then carries the outstanding pages in `postcopy_pending` and
  // kFinishRestore refuses until kApplyPages drained them all.
  bool allow_postcopy = false;
  // kServePages: serve up to this many manifest pages adjacent to each
  // requested page in the same reply (fault-locality prefetch). 0 = exactly
  // the requested pages.
  uint64_t prefetch_pages = 0;
};

// Per-dump accounting for the incremental (wire v3) paths. Filled by
// kDumpBaseline / kDumpDelta so the migration layer can report how much the
// delta machinery saved (satellite of the ISSUE: rounds, residual pages,
// elided/deduped bytes flow into MigrationReport and BENCH_JSON).
struct DeltaStats {
  uint64_t pages_scanned = 0;  // checkpointable pages examined this dump
  uint64_t pages_sent = 0;     // records emitted (data + zero + dup)
  uint64_t pages_zero = 0;     // zero-elided records
  uint64_t pages_deduped = 0;  // content-hash dedup references
  uint64_t wire_bytes = 0;     // encoded segment size
  uint64_t elided_bytes = 0;   // page bytes NOT shipped thanks to zero elision
  uint64_t deduped_bytes = 0;  // page bytes NOT shipped thanks to dedup
};

struct ControlReply {
  Status status = OkStatus();
  Bytes blob;                    // sealed checkpoint out (prepare paths)
  std::vector<PumpPlan> pumps;   // restore path
  DeltaStats delta;              // kDumpBaseline / kDumpDelta accounting
  // Post-copy: pages still owed by the source after this command (sorted).
  // kRestore fills it from the kRemote manifest; kApplyPages returns the
  // shrinking remainder; kServePages returns what the source still holds.
  std::vector<uint64_t> postcopy_pending;
  // Post-copy: the counter epoch replies must be bound to (kRestore only).
  uint64_t postcopy_epoch = 0;
};

// One-command-at-a-time rendezvous between untrusted host code and the
// control thread.
class ControlMailbox {
 public:
  explicit ControlMailbox(sim::Executor& exec)
      : cmd_ready_(exec), reply_ready_(exec), free_(exec) {}

  // Host side: posts a command and blocks until the control thread replies.
  ControlReply post(sim::ThreadCtx& ctx, ControlCmd cmd);

  // Control-thread side.
  ControlCmd wait_cmd(sim::ThreadCtx& ctx);
  void reply(sim::ThreadCtx& ctx, ControlReply reply);

 private:
  sim::Event cmd_ready_;
  sim::Event reply_ready_;
  sim::Event free_;  // broadcast when the mailbox frees up (no polling)
  bool busy_ = false;
  std::optional<ControlCmd> cmd_;
  std::optional<ControlReply> reply_;
};

// Local-attestation key service exposed by an agent enclave (§VI-D
// optimization). The port itself is untrusted plumbing; the payloads are
// protected by the report MAC + DH.
class AgentPort {
 public:
  using Request = AgentRequest;
  struct Response {
    Status status = OkStatus();
    Bytes dh_pub;
    Bytes enc_kmigrate;  // under the DH session key
  };
  using Handler = std::function<Response(sim::ThreadCtx&, const Request&)>;

  // Measurement of the agent enclave (so clients can EREPORT at it).
  void set_target_info(sgx::TargetInfo info) { target_info_ = info; }
  const sgx::TargetInfo& target_info() const { return target_info_; }

  void set_handler(Handler h) { handler_ = std::move(h); }
  Response request(sim::ThreadCtx& ctx, const Request& r) {
    if (!handler_)
      return Response{Error(ErrorCode::kUnavailable, "agent not ready"), {}, {}};
    return handler_(ctx, r);
  }

 private:
  sgx::TargetInfo target_info_;
  Handler handler_;
};

// Everything the control thread needs from its surroundings. The qe/ias
// pointers model the untrusted-relay round trips to the quoting enclave and
// the attestation service; trust is established by signatures, not by these
// pointers.
struct ControlDeps {
  sgx::QuotingEnclave* qe = nullptr;
  sgx::AttestationService* ias = nullptr;
  crypto::Drbg rng{Bytes{0}};  // in-enclave entropy (RDRAND stand-in)
};

// Body of the control thread; runs inside the enclave on its own TCS until
// kShutdown. Defined in control.cc.
void control_thread_main(EnclaveEnv& env, ControlMailbox& mailbox,
                         ControlDeps& deps);

// Computes a worker's true CSSA from its checkpointed flags per §IV-C:
// free -> 0; spin -> CSSA_EENTER + 1.
uint64_t true_cssa_from_flags(uint64_t local_flag, uint64_t cssa_eenter);

}  // namespace mig::sdk
