// Enclave memory layout, fixed at build time (the paper: "The memory layout
// of an enclave is decided during development. Our SDK puts the global flag
// at the beginning of enclave, so the address of the global flag can help
// the control thread to determine the address range of the enclave.").
//
//   +-------------------+ base
//   | meta page         |  global flag @ +0, pump mode, runtime fields,
//   |                   |  in-enclave secrets (provisioned identity key,
//   |                   |  Kmigrate) — all RW, all part of the checkpoint
//   +-------------------+
//   | config pages (R)  |  identity public key, encrypted identity private
//   |                   |  key, IAS public key — image content, never dumped
//   +-------------------+
//   | TCS pages         |  one per worker + one for the control thread
//   +-------------------+
//   | SSA region        |  nssa=2 frames (pages) per TCS
//   +-------------------+
//   | thread-local pages|  local flag, flag stack, CSSA_EENTER record,
//   |                   |  resumable ecall frame — one page per TCS
//   +-------------------+
//   | code pages (RX)   |  measured program identity
//   +-------------------+
//   | data pages (RW)   |  application initial data
//   +-------------------+
//   | heap pages (RW)   |  in-enclave malloc arena
//   +-------------------+
//   | track pages (RW)  |  per-page write-version counters (wire v3 delta
//   |                   |  checkpointing) — runtime state, never dumped
//   +-------------------+ base + size
#pragma once

#include <cstdint>

#include "sgx/types.h"

namespace mig::sdk {

inline constexpr uint64_t kEnclaveBase = 0x10000000;
inline constexpr uint64_t kNssa = 2;

// ---- meta page field offsets (from enclave base) ----
// Flag values for the two-phase protocol (paper Fig. 4).
inline constexpr uint64_t kFlagFree = 0;
inline constexpr uint64_t kFlagBusy = 1;
inline constexpr uint64_t kFlagSpin = 2;

inline constexpr uint64_t kOffGlobalFlag = 0;       // u64: 0/1
inline constexpr uint64_t kOffPumpMode = 8;         // u64: CSSA-restore pumping
inline constexpr uint64_t kOffNumWorkers = 16;      // u64 (runtime mirror)
inline constexpr uint64_t kOffProvisioned = 24;     // u64: identity key present
inline constexpr uint64_t kOffSelfDestroyed = 32;   // u64: never resume again
inline constexpr uint64_t kOffCounterEpoch = 40;    // u64: counter-service epoch
                                                    // (0 = never sealed/restored)
inline constexpr uint64_t kOffKeyServed = 48;       // u64: Kmigrate delivered
inline constexpr uint64_t kOffAgentHasKey = 56;     // u64: agent role holds key
inline constexpr uint64_t kOffIdentityPriv = 64;    // 160 B: plaintext identity sk
inline constexpr uint64_t kOffKmigrate = 256;       // 32 B: migration key
inline constexpr uint64_t kOffDeltaTracking = 288;  // u64: version counting on
inline constexpr uint64_t kOffAppMeta = 512;        // app-visible scratch

// ---- thread-local page field offsets (within the thread's page) ----
inline constexpr uint64_t kTlLocalFlag = 0;     // u64: free/busy/spin
inline constexpr uint64_t kTlFlagSp = 8;        // u64: flag stack depth
inline constexpr uint64_t kTlFlagStack = 16;    // 4 x u64
inline constexpr uint64_t kTlCssaEenter = 48;   // u64: rax of latest EENTER
inline constexpr uint64_t kTlEcallId = 56;      // u64
inline constexpr uint64_t kTlPc = 64;           // u64: resumable step index
inline constexpr uint64_t kTlLocals = 72;       // 16 x u64
inline constexpr uint64_t kTlArgLen = 200;      // u64
inline constexpr uint64_t kTlArgs = 208;        // up to 512 B
inline constexpr uint64_t kTlArgsMax = 512;

struct LayoutParams {
  uint64_t num_workers = 2;
  uint64_t config_pages = 1;
  uint64_t code_pages = 4;
  uint64_t data_pages = 2;
  uint64_t heap_pages = 4;
};

// All offsets are relative to the enclave base.
struct Layout {
  LayoutParams params;
  uint64_t num_tcs = 0;       // workers + control thread
  uint64_t meta_off = 0;
  uint64_t config_off = 0;
  uint64_t tcs_off = 0;
  uint64_t ssa_off = 0;
  uint64_t tls_off = 0;
  uint64_t code_off = 0;
  uint64_t data_off = 0;
  uint64_t heap_off = 0;
  uint64_t track_off = 0;     // per-page version counters (u64 each)
  uint64_t track_pages = 0;
  uint64_t size = 0;

  static Layout compute(const LayoutParams& p) {
    Layout l;
    l.params = p;
    l.num_tcs = p.num_workers + 1;  // + control thread (auto-inserted)
    uint64_t off = sgx::kPageSize;  // meta page at 0
    l.config_off = off;
    off += p.config_pages * sgx::kPageSize;
    l.tcs_off = off;
    off += l.num_tcs * sgx::kPageSize;
    l.ssa_off = off;
    off += l.num_tcs * kNssa * sgx::kPageSize;
    l.tls_off = off;
    off += l.num_tcs * sgx::kPageSize;
    l.code_off = off;
    off += p.code_pages * sgx::kPageSize;
    l.data_off = off;
    off += p.data_pages * sgx::kPageSize;
    l.heap_off = off;
    off += p.heap_pages * sgx::kPageSize;
    // One u64 version counter for every page below the track region. The
    // counters are runtime state (like the SSA), not application state: they
    // are excluded from checkpoints and reset by every kDumpBaseline.
    l.track_off = off;
    uint64_t tracked = off / sgx::kPageSize;
    l.track_pages = (tracked * 8 + sgx::kPageSize - 1) / sgx::kPageSize;
    off += l.track_pages * sgx::kPageSize;
    l.size = off;
    return l;
  }

  uint64_t control_tcs_index() const { return params.num_workers; }
  uint64_t tcs_offset(uint64_t idx) const {
    return tcs_off + idx * sgx::kPageSize;
  }
  uint64_t ssa_offset(uint64_t idx) const {
    return ssa_off + idx * kNssa * sgx::kPageSize;
  }
  uint64_t tls_offset(uint64_t idx) const {
    return tls_off + idx * sgx::kPageSize;
  }
  // Offset of the version counter for the page containing `off`.
  uint64_t track_slot(uint64_t off) const {
    return track_off + (off / sgx::kPageSize) * 8;
  }
  uint64_t tracked_pages() const { return track_off / sgx::kPageSize; }
  uint64_t total_pages() const { return size / sgx::kPageSize; }
};

}  // namespace mig::sdk
