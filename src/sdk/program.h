// Application programming model for enclave code.
//
// Real SGX runs machine code; this model runs C++ registered in an
// EnclaveProgram. The one honest requirement the simulation imposes is that
// ecalls be written as *resumable steps*: every piece of state an ecall
// carries across a potential interruption must live in enclave memory (the
// per-thread Frame or the data/heap regions), never on the C++ stack.
// That is precisely the property real enclave code has implicitly (its stack
// *is* enclave memory); here it is explicit, and it is what makes AEX,
// ERESUME and cross-machine restore work: the saved "context" is
// {which ecall, which step}, and everything else is migrated memory.
//
// An ecall body typically looks like:
//
//   [](EnclaveEnv& env, Frame& frame) -> Status {
//     while (frame.pc() < kSteps) {
//       do_one_step(env, frame);          // mutates enclave memory only
//       frame.step();                      // pc++, AEX point
//     }
//     return OkStatus();
//   }
//
// AEX can occur only at frame.step() / env.aex_point() boundaries; the
// runtime re-dispatches the same ecall after ERESUME and the body fast-
// forwards via pc. Run-to-completion ecalls (no step() calls) are also fine;
// they are atomic w.r.t. interruption, like short real ecalls usually are.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace mig::sdk {

class EnclaveEnv;
class Frame;

using EcallFn = std::function<Status(EnclaveEnv&, Frame&)>;

class EnclaveProgram {
 public:
  explicit EnclaveProgram(std::string name) : name_(std::move(name)) {}

  // Identity is measured into the code pages: two programs with different
  // names or ecall sets produce different MRENCLAVEs.
  const std::string& name() const { return name_; }

  EnclaveProgram& add_ecall(uint64_t id, std::string name, EcallFn fn) {
    ecalls_[id] = Entry{std::move(name), std::move(fn)};
    return *this;
  }

  const EcallFn* find_ecall(uint64_t id) const {
    auto it = ecalls_.find(id);
    return it == ecalls_.end() ? nullptr : &it->second.fn;
  }

  // Measured identity string: covers the program name and ecall names, so
  // logically different programs measure differently (code bytes stand-in).
  std::string identity() const {
    std::string id = name_;
    for (const auto& [num, entry] : ecalls_) {
      id += "|" + std::to_string(num) + ":" + entry.name;
    }
    return id;
  }

 private:
  struct Entry {
    std::string name;
    EcallFn fn;
  };
  std::string name_;
  std::map<uint64_t, Entry> ecalls_;
};

}  // namespace mig::sdk
