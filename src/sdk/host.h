// EnclaveHost: the application-facing SDK object plus the untrusted
// "SGX library" of the paper (§VI-C).
//
// One EnclaveHost manages one logical enclave of one guest process. It
//  * builds the enclave image (entry stubs, control thread TCS, embedded
//    keys — all inserted without developer involvement),
//  * creates/destroys the enclave instance through the guest SGX driver,
//  * dispatches ecalls: EENTER, run the measured entry stub, catch AEX
//    unwinds, decide ERESUME vs. handler-entry vs. park-for-migration,
//  * tracks its *belief* of each worker's CSSA (untrusted bookkeeping — the
//    enclave verifies the truth in-enclave per §IV-C),
//  * registers the process migration handlers that the guest OS invokes on
//    SIGUSR1 (Fig. 8 step 3-5) and drives restore on the target.
//
// Migration transparency for applications: a worker blocked in ecall() when
// the VM migrates simply experiences a long call — the thread parks when its
// enclave freezes on the source and continues through ERESUME on the target
// instance after restore.
#pragma once

#include <memory>
#include <vector>

#include "guestos/guest_os.h"
#include "sdk/builder.h"
#include "sdk/control.h"
#include "sdk/enclave_env.h"
#include "sdk/program.h"

namespace mig::sdk {

// A bound enclave instance on a specific machine. During migration the old
// instance outlives the VM on the source (its control thread serves the key
// exchange and then self-destroys) while the host binds a new instance on
// the target.
struct EnclaveInstance {
  hv::Machine* machine = nullptr;
  sgx::EnclaveId eid = sgx::kNoEnclave;
  std::unique_ptr<ControlMailbox> mailbox;
  std::unique_ptr<ControlDeps> deps;
  sim::ThreadId control_thread = sim::kInvalidThread;
};

class EnclaveHost {
 public:
  EnclaveHost(guestos::GuestOs& os, guestos::Process& process,
              BuildOutput built, sgx::AttestationService& ias,
              crypto::Drbg rng);
  ~EnclaveHost();

  // Builds the instance on the process's current machine and starts the
  // control thread. Blocks for the driver build (Fig. 10(a)'s per-enclave
  // rebuild cost comes from here).
  Status create(sim::ThreadCtx& ctx);
  Status destroy(sim::ThreadCtx& ctx);
  // Crash model: the enclave's EPC is wiped abruptly (power loss / VM kill)
  // — no control-thread shutdown handshake, busy TCSs ignored. The instance
  // is dropped and the host marked lost; a later create() + store restore
  // is the only way back. For crash-recovery tests.
  void crash_instance(sim::ThreadCtx& ctx);

  // Synchronous ecall on worker `worker_idx`; survives migration.
  Result<Bytes> ecall(sim::ThreadCtx& ctx, uint64_t worker_idx, uint64_t id,
                      ByteSpan args);

  // Registers an ocall handler (untrusted, lives in the SGX library). Must
  // be called before the first ecall that uses it.
  void register_ocall(uint64_t id, EnclaveEnv::OcallFn fn) {
    ocalls_[id] = std::move(fn);
  }
  const EnclaveEnv::OcallTable& ocalls() const { return ocalls_; }

  // ---- migration plumbing (used by migration::MigrationManager) ----
  ControlMailbox& mailbox();
  EnclaveInstance* instance() { return instance_.get(); }
  const Layout& layout() const { return built_.layout; }
  const sgx::EnclaveImage& image() const { return built_.image; }
  const OwnerCredentials& owner_credentials() const { return built_.owner; }
  guestos::Process& process() { return *process_; }
  guestos::GuestOs& os() { return *os_; }

  // Marks workers "parked": in-flight ecalls wait for finish_migration().
  // The done event is re-armed here so a second migration of the same
  // enclave parks correctly (it stays set after the first one finishes).
  void begin_parking() {
    parked_ = true;
    migration_done_->reset();
  }
  // Detaches the source instance (caller keeps it alive for the key
  // handshake + self-destroy) so create() can bind a target instance.
  std::unique_ptr<EnclaveInstance> detach_instance();
  // Re-binds an instance (attack simulation: the operator "resumes" the
  // source enclave after migration — which self-destroy defeats; also the
  // rollback path when a migration is cancelled before the key was served).
  void adopt_instance(std::unique_ptr<EnclaveInstance> inst) {
    MIG_CHECK(instance_ == nullptr);
    instance_ = std::move(inst);
    instance_lost_ = false;
  }
  // Records that this host's enclave is gone for good (self-destroyed after
  // serving Kmigrate, with no target instance to adopt). Pending and future
  // ecalls fail with kAborted instead of waiting for an instance forever.
  void mark_instance_lost() { instance_lost_ = true; }
  bool instance_lost() const { return instance_lost_; }
  // Tears down a detached source instance (kShutdown + EREMOVE).
  Status destroy_detached(sim::ThreadCtx& ctx, hv::Machine& machine,
                          std::unique_ptr<EnclaveInstance> inst);
  // Untrusted CSSA pumping (§IV-C Step-3): EENTER/AEX `pumps` times.
  Status pump_cssa(sim::ThreadCtx& ctx, uint64_t worker_idx, uint64_t pumps);
  // Updates host-side believed CSSA after restore and releases parked
  // workers.
  void finish_migration(sim::ThreadCtx& ctx,
                        const std::vector<PumpPlan>& pumps);

  // Fig. 9(b): whether the per-entry migration instrumentation is compiled
  // in (stubs, flags, CSSA recording).
  bool migration_support() const { return migration_support_; }

 private:
  struct HostThread {
    sgx::CoreState core;
    uint64_t believed_cssa = 0;  // untrusted mirror of the TCS CSSA
    Bytes retval;                // untrusted return buffer for the ecall
  };

  friend class EnclaveRuntime;

  Status spawn_control_thread(sim::ThreadCtx& ctx);
  // Entry/handler/resume bodies (the measured stubs). Implemented in
  // host.cc next to the dispatch loop that drives them.
  Result<Bytes> dispatch_loop(sim::ThreadCtx& ctx, uint64_t worker_idx,
                              uint64_t id, ByteSpan args);

  guestos::GuestOs* os_;
  guestos::Process* process_;
  sgx::AttestationService* ias_;
  BuildOutput built_;
  crypto::Drbg rng_;
  std::unique_ptr<EnclaveInstance> instance_;
  // Instances killed by crash_instance(): their control threads never exited
  // their mailbox wait, so the mailbox memory must stay alive.
  std::vector<std::unique_ptr<EnclaveInstance>> crashed_;
  std::vector<HostThread> workers_;
  bool parked_ = false;
  bool instance_lost_ = false;
  bool migration_support_ = true;
  std::unique_ptr<sim::Event> migration_done_;
  EnclaveEnv::OcallTable ocalls_;
};

}  // namespace mig::sdk
