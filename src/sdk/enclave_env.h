// In-enclave execution environment: the API enclave code (app ecalls, the
// SDK's stubs, the control thread) programs against.
//
// Every memory access goes through the hardware's access-checked paths — the
// enclave can only touch its own REG pages, demand paging faults charge real
// ELDB costs, and nothing here can read a TCS. Virtual time is charged via
// work(); a timer-tick budget turns long computations into AEXes at the next
// aex_point(), which is how the paper interrupts long-running threads so
// they reach the spin region (§IV-B).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sdk/layout.h"
#include "sdk/program.h"
#include "sgx/hardware.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "util/status.h"

namespace mig::sdk {

// Thrown by aex_point() when an asynchronous exit fires; unwinds enclave
// code back to the (untrusted) host dispatch loop. The execution context has
// already been saved to the SSA by the hardware when this is in flight.
struct AexSignal {};

// Kinds of saved execution context (serialized into SSA frames).
enum class CtxKind : uint8_t {
  kEcall = 1,       // interrupted inside an ecall body
  kSpinEntry = 2,   // interrupted while spinning in the entry stub
  kSpinHandler = 3, // interrupted while spinning in the exception handler
  kPump = 4,        // synthetic context from CSSA-restore pumping
};

Bytes serialize_ctx(CtxKind kind, uint64_t thread_idx);
Result<std::pair<CtxKind, uint64_t>> parse_ctx(ByteSpan blob);

class EnclaveEnv {
 public:
  EnclaveEnv(sim::ThreadCtx& ctx, sgx::SgxHardware& hw, sgx::CoreState& core,
             sgx::EnclaveId eid, const Layout& layout, uint64_t thread_idx);

  // ---- virtual time / interruption ----
  // Charges CPU time (inside the enclave).
  void work(uint64_t ns);
  // AEX boundary: if at least one timer tick elapsed since entry/last AEX,
  // performs the asynchronous exit (hardware context save) and throws
  // AexSignal. Enclave code sprinkles these via Frame::step().
  void aex_point(CtxKind kind);
  // Unconditional AEX (used by the pump stub during CSSA restore).
  [[noreturn]] void force_aex(CtxKind kind);
  bool aex_pending() const;

  // ---- memory (access-checked, absolute offsets from enclave base) ----
  uint64_t read_u64(uint64_t off);
  void write_u64(uint64_t off, uint64_t value);
  Bytes read_bytes(uint64_t off, size_t n);
  void write_bytes(uint64_t off, ByteSpan data);
  // Checked variants used where failure is meaningful (e.g. the W+X dump
  // limitation in §IV-B).
  Status try_read_bytes(uint64_t off, size_t n, Bytes& out);

  // ---- in-enclave heap (bump allocator; pointer state in the meta page) ----
  Result<uint64_t> heap_alloc(uint64_t bytes);
  void heap_reset();

  // ---- hardware services available to enclave code ----
  Result<sgx::Report> ereport(const sgx::TargetInfo& target, ByteSpan data);
  Result<Bytes> egetkey(sgx::KeyName name);

  // ---- ocalls (§VI-C) ----
  // Forwards a "system call" to the untrusted SGX library: pays the
  // EEXIT + syscall + EENTER crossings and runs the host-registered handler.
  // The result is untrusted input to the enclave.
  using OcallFn = std::function<Result<Bytes>(sim::ThreadCtx&, ByteSpan)>;
  using OcallTable = std::map<uint64_t, OcallFn>;
  void set_ocall_table(const OcallTable* table) { ocalls_ = table; }
  Result<Bytes> ocall(uint64_t id, ByteSpan args);

  // ---- untrusted return channel ----
  // Ecalls return data to the host by writing it here (models the shared
  // out-buffer of a real ecall; the enclave controls what leaves).
  void set_retval(Bytes data) { retval_ = std::move(data); }
  Bytes take_retval() { return std::move(retval_); }

  // ---- layout conveniences ----
  const Layout& layout() const { return *layout_; }
  uint64_t base() const { return kEnclaveBase; }
  uint64_t thread_idx() const { return thread_idx_; }
  uint64_t tls_off() const { return layout_->tls_offset(thread_idx_); }
  sim::ThreadCtx& ctx() { return *ctx_; }
  const sim::CostModel& cost() const;
  sgx::EnclaveId eid() const { return eid_; }

  // Timer-tick length; cost-model scale (1 ms guest timer).
  static constexpr uint64_t kTimerTickNs = 1'000'000;

 private:
  sim::ThreadCtx* ctx_;
  sgx::SgxHardware* hw_;
  sgx::CoreState* core_;
  sgx::EnclaveId eid_;
  // Delta checkpointing: bump the version counter of each page a write
  // touched (no-op unless kOffDeltaTracking is armed).
  void track_write(uint64_t off, size_t n);

  const Layout* layout_;
  uint64_t thread_idx_;
  uint64_t ns_since_aex_ = 0;
  Bytes retval_;
  const OcallTable* ocalls_ = nullptr;
};

// Resumable ecall frame view over the thread-local page.
class Frame {
 public:
  Frame(EnclaveEnv& env) : env_(&env), tls_(env.tls_off()) {}

  uint64_t ecall_id() { return env_->read_u64(tls_ + kTlEcallId); }
  uint64_t pc() { return env_->read_u64(tls_ + kTlPc); }
  void set_pc(uint64_t pc) { env_->write_u64(tls_ + kTlPc, pc); }

  // Advances the step counter and offers an AEX point. The canonical way to
  // structure resumable ecalls.
  void step() {
    set_pc(pc() + 1);
    env_->aex_point(CtxKind::kEcall);
  }

  uint64_t local(int i) { return env_->read_u64(tls_ + kTlLocals + 8 * i); }
  void set_local(int i, uint64_t v) {
    env_->write_u64(tls_ + kTlLocals + 8 * i, v);
  }

  Bytes args() {
    uint64_t len = env_->read_u64(tls_ + kTlArgLen);
    return env_->read_bytes(tls_ + kTlArgs, std::min(len, kTlArgsMax));
  }

  EnclaveEnv& env() { return *env_; }

 private:
  EnclaveEnv* env_;
  uint64_t tls_;
};

}  // namespace mig::sdk
