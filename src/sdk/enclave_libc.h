// The SDK's simplified in-enclave libc (§VI-C): "our SDK supports most of
// libc functions in enclave through statically linking a simplified libc
// within enclave. For some functions, such as malloc and free, the SDK
// implements them in enclave directly. For other functions requiring
// invoking system calls, such as read and write, they will eventually be
// forwarded to the outside SGX library."
//
// Two pieces:
//  * EnclaveAllocator — a first-fit free-list malloc/free whose entire state
//    (block headers included) lives in the enclave heap region, so it
//    checkpoints and migrates with everything else;
//  * ocalls — EnclaveEnv::ocall() charges the EEXIT/EENTER crossing and the
//    syscall, then runs a host-registered handler. Handlers live in the
//    untrusted SGX library; the enclave treats results as untrusted input.
#pragma once

#include "sdk/enclave_env.h"

namespace mig::sdk {

// Free-list allocator over [heap_off, heap_off + heap_pages * page). Block
// header: u64 size (payload bytes) | u64 free flag | padding to 16. The list
// is implicit by address order, which makes coalescing a next-block check.
class EnclaveAllocator {
 public:
  explicit EnclaveAllocator(EnclaveEnv& env) : env_(&env) {}

  // Lazily formats the heap on first use (detected via a magic word in the
  // meta page, so a restored enclave keeps its allocations).
  Result<uint64_t> malloc(uint64_t bytes);
  Status free(uint64_t ptr);

  // Introspection for tests.
  uint64_t free_bytes();
  uint64_t block_count();

 private:
  static constexpr uint64_t kHeaderBytes = 16;
  static constexpr uint64_t kMagic = 0x1a110cull;
  // Meta-page word recording that the heap has been formatted.
  static constexpr uint64_t kOffHeapMagic = kOffAppMeta - 8;

  void ensure_formatted();
  uint64_t heap_begin() const { return env_->layout().heap_off; }
  uint64_t heap_end() const { return env_->layout().size; }

  EnclaveEnv* env_;
};

}  // namespace mig::sdk
