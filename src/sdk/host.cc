#include "sdk/host.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/serde.h"

namespace mig::sdk {

namespace {
// Cost of the per-entry migration instrumentation (save/restore local flag,
// check global flag, record CSSA_EENTER): a handful of memory operations.
// This is the entire Fig. 9(b) overhead.
constexpr uint64_t kStubNs = 60;
constexpr uint64_t kSpinPollNs = 2'000;
}  // namespace

// Trusted in-enclave runtime: the stubs the SDK measures into every enclave.
// Methods throw AexSignal when the hardware AEXes; flag-stack state lives in
// enclave memory so an unwind never loses it.
class EnclaveRuntime {
 public:
  EnclaveRuntime(sim::ThreadCtx& ctx, EnclaveHost& host, uint64_t widx,
                 sgx::CoreState& core)
      : env_(ctx, host.instance_->machine->hw(), core, host.instance_->eid,
             host.built_.layout, widx),
        host_(&host),
        widx_(widx),
        tls_(host.built_.layout.tls_offset(widx)) {
    env_.set_ocall_table(&host.ocalls_);
  }

  EnclaveEnv& env() { return env_; }

  // Fresh EENTER (rax == 0 path) carrying an ecall request.
  Result<Bytes> run_entry(uint64_t rax, uint64_t id, ByteSpan args) {
    stub_prologue(rax);
    // Write the resumable frame before anything can interrupt us, so a
    // spin-in-entry migration can re-dispatch on the target.
    env_.write_u64(tls_ + kTlEcallId, id);
    env_.write_u64(tls_ + kTlPc, 0);
    Writer w;
    w.u64(std::min<uint64_t>(args.size(), kTlArgsMax));
    env_.write_bytes(tls_ + kTlArgLen, w.data());
    env_.write_bytes(tls_ + kTlArgs, args.first(std::min<size_t>(args.size(),
                                                                 kTlArgsMax)));
    if (host_->migration_support_) {
      push_flag();
      if (env_.read_u64(kOffGlobalFlag) == 1) {
        set_flag(kFlagSpin);
        spin_wait(CtxKind::kSpinEntry);
        set_flag(kFlagBusy);
      }
    }
    return dispatch();
  }

  // Handler EENTER (rax >= 1): the paper's exception-handler path where an
  // interrupted thread checks the global flag (Fig. 4 right side).
  void run_handler(uint64_t rax) {
    stub_prologue(rax);
    if (host_->migration_support_ &&
        env_.read_u64(kOffGlobalFlag) == 1) {
      push_flag();
      set_flag(kFlagSpin);
      spin_wait(CtxKind::kSpinHandler);
      pop_flag();
    }
  }

  // ERESUME continuations.
  Result<Bytes> resume_ecall() { return dispatch(); }

  Result<Bytes> resume_spin_then_entry() {
    spin_wait(CtxKind::kSpinEntry);
    set_flag(kFlagBusy);
    return dispatch();
  }

  void resume_spin_handler() {
    spin_wait(CtxKind::kSpinHandler);
    pop_flag();
  }

 private:
  void stub_prologue(uint64_t rax) {
    if (host_->migration_support_) {
      env_.work(kStubNs);
      // §IV-C: "At the entry of enclave, the stub code will record
      // CSSA_EENTER (the return value of EENTER)."
      env_.write_u64(tls_ + kTlCssaEenter, rax);
      // CSSA-restore pumping (§IV-C, target Step-3): record and AEX out.
      if (env_.read_u64(kOffPumpMode) == 1) {
        env_.force_aex(CtxKind::kPump);
      }
    }
  }

  void push_flag() {
    uint64_t sp = env_.read_u64(tls_ + kTlFlagSp);
    MIG_CHECK_MSG(sp < 4, "flag stack overflow (nesting > nssa?)");
    env_.write_u64(tls_ + kTlFlagStack + 8 * sp,
                   env_.read_u64(tls_ + kTlLocalFlag));
    env_.write_u64(tls_ + kTlFlagSp, sp + 1);
    set_flag(kFlagBusy);
  }

  void pop_flag() {
    uint64_t sp = env_.read_u64(tls_ + kTlFlagSp);
    MIG_CHECK_MSG(sp > 0, "flag stack underflow");
    env_.write_u64(tls_ + kTlFlagSp, sp - 1);
    set_flag(env_.read_u64(tls_ + kTlFlagStack + 8 * (sp - 1)));
  }

  void set_flag(uint64_t v) { env_.write_u64(tls_ + kTlLocalFlag, v); }

  // "When running in the spin region, a thread will not change any memory
  // and will keep in the region until it finds that the global flag is
  // unset." AEX points let the timer interrupt long spins (and park the
  // thread during migration).
  void spin_wait(CtxKind kind) {
    obs::instant(env_.ctx(), "spin.enter", "sdk", {{"worker", widx_}});
    while (env_.read_u64(kOffGlobalFlag) == 1) {
      env_.work(kSpinPollNs);
      env_.aex_point(kind);
    }
    obs::instant(env_.ctx(), "spin.exit", "sdk", {{"worker", widx_}});
  }

  Result<Bytes> dispatch() {
    Frame frame(env_);
    uint64_t id = frame.ecall_id();
    const EcallFn* fn = host_->built_.program->find_ecall(id);
    if (fn == nullptr) {
      if (host_->migration_support_) pop_flag();
      return Error(ErrorCode::kNotFound, "no such ecall");
    }
    Status st = (*fn)(env_, frame);
    if (host_->migration_support_) pop_flag();
    MIG_RETURN_IF_ERROR(st);
    return env_.take_retval();
  }

  EnclaveEnv env_;
  EnclaveHost* host_;
  uint64_t widx_;
  uint64_t tls_;
};

// ------------------------------------------------------------- EnclaveHost

EnclaveHost::EnclaveHost(guestos::GuestOs& os, guestos::Process& process,
                         BuildOutput built, sgx::AttestationService& ias,
                         crypto::Drbg rng)
    : os_(&os),
      process_(&process),
      ias_(&ias),
      built_(std::move(built)),
      rng_(std::move(rng)) {
  migration_support_ = built_.migration_support;
  workers_.resize(built_.layout.params.num_workers);
  migration_done_ = std::make_unique<sim::Event>(os.executor());
}

EnclaveHost::~EnclaveHost() = default;

Status EnclaveHost::create(sim::ThreadCtx& ctx) {
  MIG_CHECK_MSG(instance_ == nullptr, "instance already bound");
  MIG_ASSIGN_OR_RETURN(sgx::EnclaveId eid,
                       os_->create_enclave(ctx, *process_, built_.image));
  auto inst = std::make_unique<EnclaveInstance>();
  inst->machine = &os_->machine();
  inst->eid = eid;
  inst->mailbox = std::make_unique<ControlMailbox>(os_->executor());
  inst->deps = std::make_unique<ControlDeps>();
  inst->deps->qe = &inst->machine->qe();
  inst->deps->ias = ias_;
  inst->deps->rng = rng_.fork(to_bytes("enclave-rdrand"));
  instance_ = std::move(inst);
  instance_lost_ = false;
  return spawn_control_thread(ctx);
}

Status EnclaveHost::spawn_control_thread(sim::ThreadCtx& ctx) {
  EnclaveInstance* inst = instance_.get();
  const Layout& l = built_.layout;
  uint64_t control_idx = l.control_tcs_index();
  uint64_t tcs = kEnclaveBase + l.tcs_offset(control_idx);
  hv::Machine* machine = inst->machine;
  sgx::EnclaveId eid = inst->eid;
  ControlMailbox* mailbox = inst->mailbox.get();
  ControlDeps* deps = inst->deps.get();
  const Layout* layout = &built_.layout;
  inst->control_thread = os_->executor().spawn(
      process_->name() + "/control",
      [machine, eid, tcs, mailbox, deps, layout,
       control_idx](sim::ThreadCtx& tctx) {
        sgx::CoreState core;
        auto rax = machine->hw().eenter(tctx, core, eid, tcs);
        MIG_CHECK_MSG(rax.ok(), "control thread EENTER failed: "
                                    << rax.status().to_string());
        EnclaveEnv env(tctx, machine->hw(), core, eid, *layout, control_idx);
        control_thread_main(env, *mailbox, *deps);
        Status st = machine->hw().eexit(tctx, core);
        MIG_CHECK(st.ok());
      },
      /*daemon=*/true);
  (void)ctx;
  return OkStatus();
}

ControlMailbox& EnclaveHost::mailbox() {
  MIG_CHECK_MSG(instance_ != nullptr, "no bound instance");
  return *instance_->mailbox;
}

std::unique_ptr<EnclaveInstance> EnclaveHost::detach_instance() {
  return std::move(instance_);
}

namespace {
// Posts kShutdown and waits until the control thread has actually EEXITed
// (its TCS must be idle before EREMOVE can succeed).
void shutdown_control_thread(sim::ThreadCtx& ctx, EnclaveInstance& inst) {
  (void)inst.mailbox->post(ctx, ControlCmd{});  // kShutdown default
  sim::Executor& exec = ctx.executor();
  ctx.spin_until([&] { return exec.finished(inst.control_thread); });
}
}  // namespace

Status EnclaveHost::destroy_detached(sim::ThreadCtx& ctx, hv::Machine& machine,
                                     std::unique_ptr<EnclaveInstance> inst) {
  if (inst == nullptr) return OkStatus();
  shutdown_control_thread(ctx, *inst);
  return machine.hw().eremove_enclave(ctx, inst->eid);
}

Status EnclaveHost::destroy(sim::ThreadCtx& ctx) {
  if (instance_ == nullptr) return OkStatus();
  shutdown_control_thread(ctx, *instance_);
  Status st = os_->destroy_enclave(ctx, *process_, instance_->eid);
  instance_.reset();
  return st;
}

void EnclaveHost::crash_instance(sim::ThreadCtx& ctx) {
  mark_instance_lost();
  if (instance_ == nullptr) return;
  // No shutdown handshake: the EPC vanishes under the control thread. That
  // (daemon) thread stays parked in its mailbox wait forever, so the mailbox
  // must outlive the instance — the untrusted shared page survives the
  // enclave. Stash the whole instance instead of freeing it.
  os_->crash_enclave(ctx, *process_, instance_->eid);
  crashed_.push_back(std::move(instance_));
}

Status EnclaveHost::pump_cssa(sim::ThreadCtx& ctx, uint64_t worker_idx,
                              uint64_t pumps) {
  MIG_CHECK(worker_idx < workers_.size());
  EnclaveInstance* inst = instance_.get();
  if (inst == nullptr) return Error(ErrorCode::kUnavailable, "no instance");
  HostThread& ht = workers_[worker_idx];
  uint64_t tcs = kEnclaveBase + built_.layout.tcs_offset(worker_idx);
  obs::Span<sim::ThreadCtx> span(ctx, "cssa_pump", "sdk",
                                 {{"worker", worker_idx}, {"pumps", pumps}});
  for (uint64_t i = 0; i < pumps; ++i) {
    auto rax = inst->machine->hw().eenter(ctx, ht.core, inst->eid, tcs);
    MIG_RETURN_IF_ERROR(rax.status());
    EnclaveRuntime rt(ctx, *this, worker_idx, ht.core);
    try {
      rt.run_entry(*rax, /*id=*/0, {});
      // Pump mode must AEX; reaching here means the enclave is not pumping.
      return Error(ErrorCode::kFailedPrecondition, "enclave not in pump mode");
    } catch (const AexSignal&) {
      // Expected: one EENTER+AEX cycle == CSSA += 1.
      obs::metrics().add("sdk.cssa_pumps");
    }
  }
  return OkStatus();
}

void EnclaveHost::finish_migration(sim::ThreadCtx& ctx,
                                   const std::vector<PumpPlan>& pumps) {
  for (const PumpPlan& p : pumps) {
    MIG_CHECK(p.worker_idx < workers_.size());
    workers_[p.worker_idx].believed_cssa = p.pumps;
  }
  parked_ = false;
  migration_done_->set(ctx);
}

Result<Bytes> EnclaveHost::ecall(sim::ThreadCtx& ctx, uint64_t worker_idx,
                                 uint64_t id, ByteSpan args) {
  return dispatch_loop(ctx, worker_idx, id, args);
}

Result<Bytes> EnclaveHost::dispatch_loop(sim::ThreadCtx& ctx,
                                         uint64_t worker_idx, uint64_t id,
                                         ByteSpan args) {
  MIG_CHECK_MSG(worker_idx < workers_.size(), "bad worker index");
  HostThread& ht = workers_[worker_idx];
  const Layout& l = built_.layout;
  Bytes args_copy(args.begin(), args.end());

  enum class Next { kFresh, kAfterAex, kResumeChain };
  Next next = Next::kFresh;
  bool handler_tried = false;
  // Parking discipline: a worker may only park when its enclave-side state
  // is quiescent — before a fresh entry, or after it AEX'd out of a spin
  // region (local flag == spin). Parking mid-ecall (flag busy) would
  // deadlock the control thread's quiescence wait, and entering a
  // half-restored target instance would corrupt the CSSA pumping.
  bool park_ready = false;
  EnclaveInstance* chain_inst = nullptr;  // instance this AEX chain is on

  for (;;) {
    if (parked_ && (next == Next::kFresh || park_ready ||
                    instance_.get() == nullptr ||
                    instance_.get() != chain_inst)) {
      obs::instant(ctx, "worker.park", "sdk", {{"worker", worker_idx}});
      obs::metrics().add("sdk.parks");
      migration_done_->wait(ctx);
      obs::instant(ctx, "worker.unpark", "sdk", {{"worker", worker_idx}});
      park_ready = false;
      continue;
    }
    EnclaveInstance* inst = instance_.get();
    if (inst == nullptr) {
      if (instance_lost_) {
        // Self-destroyed after serving Kmigrate and the target never came
        // up here: this in-flight call can never complete.
        return Error(ErrorCode::kAborted, "enclave self-destroyed; instance lost");
      }
      // Between detach and re-create: behave like parked.
      ctx.sleep(10'000);
      continue;
    }
    chain_inst = inst;
    sgx::SgxHardware& hw = inst->machine->hw();
    uint64_t tcs = kEnclaveBase + l.tcs_offset(worker_idx);

    switch (next) {
      case Next::kFresh: {
        auto rax = hw.eenter(ctx, ht.core, inst->eid, tcs);
        if (!rax.ok()) {
          if (rax.status().code() == ErrorCode::kAborted) {
            ctx.sleep(100'000);  // enclave frozen (EMIGRATE path); retry
            continue;
          }
          return rax.status();
        }
        EnclaveRuntime rt(ctx, *this, worker_idx, ht.core);
        try {
          Result<Bytes> result = rt.run_entry(*rax, id, args_copy);
          MIG_RETURN_IF_ERROR(hw.eexit(ctx, ht.core));
          return result;
        } catch (const AexSignal&) {
          obs::instant(ctx, "aex", "sdk", {{"worker", worker_idx}});
          obs::metrics().add("sdk.aex");
          ht.believed_cssa += 1;
          next = Next::kAfterAex;
          handler_tried = false;
        }
        break;
      }

      case Next::kAfterAex: {
        // The library's policy after an asynchronous exit: during migration
        // it EENTERs the in-enclave exception handler so the thread can
        // observe the global flag (§IV-B); otherwise it ERESUMEs.
        if (migration_support_ && !handler_tried &&
            (os_->migration_in_progress() || parked_)) {
          handler_tried = true;
          auto rax = hw.eenter(ctx, ht.core, inst->eid, tcs);
          if (!rax.ok()) {
            next = Next::kResumeChain;
            break;
          }
          EnclaveRuntime rt(ctx, *this, worker_idx, ht.core);
          try {
            rt.run_handler(*rax);
            MIG_RETURN_IF_ERROR(hw.eexit(ctx, ht.core));
            // Handler returned: flag cleared (migration cancelled/finished).
            next = Next::kResumeChain;
          } catch (const AexSignal&) {
            // The thread AEX'd while spinning: it is now outside the
            // enclave with CSSA = CSSA_EENTER + 1 and local flag spin —
            // safe to park. believed_cssa mirrors the extra frame.
            obs::instant(ctx, "aex", "sdk", {{"worker", worker_idx}});
            obs::metrics().add("sdk.aex");
            ht.believed_cssa += 1;
            next = Next::kResumeChain;
            park_ready = true;
            if (!parked_) ctx.sleep(50'000);
          }
        } else {
          next = Next::kResumeChain;
        }
        break;
      }

      case Next::kResumeChain: {
        if (ht.believed_cssa == 0) {
          // Lost track (can only happen if untrusted bookkeeping was wrong);
          // fall back to a fresh entry, the enclave stubs stay correct.
          next = Next::kFresh;
          break;
        }
        auto saved = hw.eresume(ctx, ht.core, inst->eid, tcs);
        if (!saved.ok()) {
          if (saved.status().code() == ErrorCode::kAborted ||
              saved.status().code() == ErrorCode::kFailedPrecondition) {
            ctx.sleep(100'000);
            continue;
          }
          return saved.status();
        }
        ht.believed_cssa -= 1;
        auto parsed = parse_ctx(*saved);
        if (!parsed.ok()) return parsed.status();
        CtxKind kind = parsed->first;
        EnclaveRuntime rt(ctx, *this, worker_idx, ht.core);
        try {
          switch (kind) {
            case CtxKind::kEcall: {
              Result<Bytes> result = rt.resume_ecall();
              MIG_RETURN_IF_ERROR(hw.eexit(ctx, ht.core));
              return result;
            }
            case CtxKind::kSpinEntry: {
              Result<Bytes> result = rt.resume_spin_then_entry();
              MIG_RETURN_IF_ERROR(hw.eexit(ctx, ht.core));
              return result;
            }
            case CtxKind::kSpinHandler:
            case CtxKind::kPump: {
              rt.resume_spin_handler();
              MIG_RETURN_IF_ERROR(hw.eexit(ctx, ht.core));
              // Unwound one nesting level; keep resuming.
              next = Next::kResumeChain;
              break;
            }
          }
        } catch (const AexSignal&) {
          obs::instant(ctx, "aex", "sdk", {{"worker", worker_idx}});
          obs::metrics().add("sdk.aex");
          ht.believed_cssa += 1;
          next = Next::kAfterAex;
          // A spin that AEX'd again should not re-enter the handler (that
          // would grow CSSA past NSSA); a computation that AEX'd normally
          // should get the handler check during migration.
          handler_tried = (kind != CtxKind::kEcall);
          park_ready = (kind != CtxKind::kEcall);
        }
        break;
      }
    }
  }
}

}  // namespace mig::sdk
