// Module anchor; real sources accompany it.
namespace mig { const char* k_sdk_module = "sdk"; }
