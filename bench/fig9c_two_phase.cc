// Figure 9(c): average two-phase checkpointing time per enclave vs. the
// number of concurrently-checkpointing enclaves (1, 2, 4, 8) on a 4-VCPU
// guest. Each enclave has two worker threads; checkpoints are ~20 KB and
// RC4-encrypted, as in the paper.
//
// Expected shape (paper): ~255 us flat up to 4 enclaves, a small rise at 8
// (3 threads per enclave > 4 VCPUs).
#include "apps/workloads.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  bench::print_header("Figure 9(c)",
                      "two-phase checkpointing time vs enclave count "
                      "(2 workers/enclave, RC4, ~20 KB state)");

  std::printf("%10s %28s\n", "enclaves", "avg two-phase time (us)");
  for (int n : {1, 2, 4, 8}) {
    bench::Bed bed;
    guestos::Process& proc = bed.guest.create_process("apps");
    std::vector<sdk::EnclaveHost*> hosts;
    for (int i = 0; i < n; ++i) {
      const apps::Workload& w =
          *apps::find_workload(i % 2 == 0 ? "libjpeg" : "mcrypt");
      hosts.push_back(&bed.add_enclave(proc, w.make_program()));
    }
    uint64_t total_ns = 0;
    bed.run([&](sim::ThreadCtx& ctx) {
      for (auto* h : hosts) MIG_CHECK(h->create(ctx).ok());
      // All control threads checkpoint concurrently (what the Fig. 8
      // pipeline does when the signal fans out).
      struct Done {
        sim::Event ev;
        uint64_t ns = 0;
        explicit Done(sim::Executor& e) : ev(e) {}
      };
      std::vector<std::unique_ptr<Done>> done;
      for (auto* h : hosts) {
        auto d = std::make_unique<Done>(bed.world.executor());
        Done* dp = d.get();
        bed.world.executor().spawn("ckpt", [h, dp](sim::ThreadCtx& c) {
          uint64_t t0 = c.now();
          sdk::ControlCmd cmd;
          cmd.type = sdk::ControlCmd::Type::kPrepareCheckpoint;
          cmd.cipher = crypto::CipherAlg::kRc4;
          sdk::ControlReply r = h->mailbox().post(c, cmd);
          MIG_CHECK_MSG(r.status.ok(), r.status.to_string());
          dp->ns = c.now() - t0;
          dp->ev.set(c);
        });
        done.push_back(std::move(d));
      }
      for (auto& d : done) {
        d->ev.wait(ctx);
        total_ns += d->ns;
      }
      for (auto* h : hosts) {
        sdk::ControlCmd cancel;
        cancel.type = sdk::ControlCmd::Type::kCancelMigration;
        MIG_CHECK(h->mailbox().post(ctx, cancel).status.ok());
      }
    });
    std::printf("%10d %28.1f\n", n, bench::us(total_ns / n));
    bench::JsonLine("fig9c_two_phase")
        .num("enclaves", n)
        .num("avg_two_phase_ns", total_ns / n)
        .emit();
  }
  std::printf("\n");
  return 0;
}
