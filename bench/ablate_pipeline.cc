// Ablation: the pipelined chunked checkpoint data path (PR 3 tentpole).
//
// Sweeps sealing-worker count and chunk size for one ~2 MB enclave and
// measures the full checkpoint data path in virtual time: quiesce + dump +
// seal + stream every sealed byte to a receiver. The 1-worker baseline is
// the legacy serial path (dump everything, one seal() over the whole blob,
// then ship it); the pipelined rows overlap dump/seal/send with N sealing
// workers contending for the world's 4 model CPUs.
//
// Expected trends:
//   * 4 workers cut checkpoint time to well under 0.5x the serial baseline
//     (the wire becomes the bottleneck once sealing is parallel);
//   * 8 workers plateau — only 4 model CPUs exist;
//   * tiny chunks pay per-chunk setup, huge chunks lose overlap; the middle
//     of the sweep wins.
#include "apps/workloads.h"
#include "bench_common.h"
#include "sdk/chunk_wire.h"

namespace {

mig::sdk::LayoutParams big_layout() {
  mig::sdk::LayoutParams p;
  p.num_workers = 2;
  p.data_pages = 1;
  p.heap_pages = 512;  // ~2 MB of heap: the default enclave for this ablation
  return p;
}

struct Row {
  const char* mode;  // "serial" or "pipeline"
  uint64_t workers;
  uint64_t chunk_kb;  // 0 for serial
};

// Runs one configuration in a fresh world and returns the virtual time from
// the start of prepare until the receiver holds every checkpoint byte.
uint64_t run_config(const Row& row) {
  using namespace mig;
  bench::Bed bed;
  guestos::Process& proc = bed.guest.create_process("app");
  sdk::EnclaveHost& host = bed.add_enclave(
      proc, apps::find_workload("mcrypt")->make_program(), big_layout());

  auto channel = bed.world.make_channel();
  // The chunk stream models a raw bulk link, not the QEMU-processing-laden
  // migration path.
  channel->set_rate_x100(bed.world.cost().chunk_stream_ns_per_byte_x100);

  uint64_t elapsed = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    bed.provision(ctx, host);

    struct Recv {
      sim::Event done;
      uint64_t end_ns = 0;
      explicit Recv(sim::Executor& e) : done(e) {}
    } recv(bed.world.executor());
    bool pipelined = row.chunk_kb != 0;
    ctx.executor().spawn("ckpt-recv", [&](sim::ThreadCtx& c) {
      if (pipelined) {
        auto blob = sdk::receive_chunked_checkpoint(c, channel->b(),
                                                    10'000'000'000ull);
        MIG_CHECK_MSG(blob.ok(), blob.status().to_string());
      } else {
        channel->b().recv(c);
      }
      recv.end_ns = c.now();
      recv.done.set(c);
    });

    migration::EnclaveMigrateOptions opts;
    opts.chunk_bytes = row.chunk_kb * 1024;
    opts.seal_workers = row.workers;
    sim::Channel::End a = channel->a();
    if (pipelined) opts.chunk_stream = &a;

    migration::EnclaveMigrator migrator(bed.world);
    uint64_t t0 = ctx.now();
    auto blob = migrator.prepare(ctx, host, opts);
    MIG_CHECK_MSG(blob.ok(), blob.status().to_string());
    if (!pipelined) channel->a().send(ctx, std::move(*blob));
    recv.done.wait(ctx);
    elapsed = recv.end_ns - t0;
  });
  return elapsed;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header("Ablation: pipelined chunked checkpointing",
                      "dump+seal+send time vs sealing workers and chunk size");

  const Row rows[] = {
      {"serial", 1, 0},      // legacy v1: the 1-worker baseline
      {"pipeline", 1, 64},   // pipeline overhead with no parallelism
      {"pipeline", 2, 64},
      {"pipeline", 4, 64},
      {"pipeline", 8, 64},   // > 4 model CPUs: should plateau
      {"pipeline", 4, 16},
      {"pipeline", 4, 256},
  };

  std::printf("%10s %8s %10s %16s %10s\n", "mode", "workers", "chunk(KB)",
              "checkpoint(ms)", "vs serial");
  uint64_t serial_ns = 0;
  for (const Row& row : rows) {
    uint64_t ns = run_config(row);
    if (row.chunk_kb == 0) serial_ns = ns;
    MIG_CHECK(serial_ns > 0);
    std::printf("%10s %8llu %10llu %16.2f %9.2fx\n", row.mode,
                static_cast<unsigned long long>(row.workers),
                static_cast<unsigned long long>(row.chunk_kb), bench::ms(ns),
                static_cast<double>(ns) / static_cast<double>(serial_ns));
    bench::JsonLine("ablate_pipeline")
        .str("mode", row.mode)
        .num("workers", row.workers)
        .num("chunk_kb", row.chunk_kb)
        .num("checkpoint_ns", ns)
        .num("serial_ns", serial_ns)
        .num("ratio_x100", ns * 100 / serial_ns)
        .emit();
  }
  std::printf(
      "\nWith sealing parallelized the bulk link becomes the bottleneck: 4\n"
      "workers land well under half the serial baseline, 8 workers add\n"
      "nothing (4 model CPUs), and chunk size trades per-chunk setup cost\n"
      "against pipeline overlap.\n\n");
  return 0;
}
