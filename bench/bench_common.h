// Shared scaffolding for the figure benches: a two-machine world with a
// 2 GB / 4-VCPU guest (the paper's testbed), enclave builders, provisioning,
// and table printing. Each bench binary reproduces one figure of the paper's
// evaluation and prints the same series the figure plots.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::bench {

struct Bed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  hv::Vm target_host_vm;
  guestos::GuestOs guest;
  guestos::GuestOs target_host_os;
  crypto::Drbg rng{to_bytes("bench-bed")};
  crypto::SigKeyPair dev_signer;
  // One developer identity shared by all this developer's enclaves, so a
  // single agent enclave can serve them all (§VI-D).
  crypto::SigKeyPair dev_identity;
  migration::EnclaveOwner owner;
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;

  Bed()
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        target_host_vm(hv::VmConfig{.name = "target-host"}, hv::DirtyModel{}),
        guest(*source, vm),
        target_host_os(*target, target_host_vm),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))) {
    crypto::Drbg srng(to_bytes("dev"));
    dev_signer = crypto::sig_keygen(srng);
    dev_identity = crypto::sig_keygen(srng);
  }

  // Small enclave matching the paper's migration experiments ("the enclaves
  // run either libjpeg or mcrypt and have two worker threads", checkpoint
  // ~20 KB): 1 data page + 1 heap page + meta + 2 TLS pages.
  sdk::EnclaveHost& add_enclave(guestos::Process& proc,
                                std::shared_ptr<sdk::EnclaveProgram> prog,
                                sdk::LayoutParams layout = small_layout()) {
    sdk::BuildInput in;
    in.program = std::move(prog);
    in.layout = layout;
    in.identity_override = dev_identity;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("h"))));
    return *hosts.back();
  }

  static sdk::LayoutParams small_layout() {
    sdk::LayoutParams p;
    p.num_workers = 2;
    p.data_pages = 1;
    p.heap_pages = 1;
    return p;
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    sdk::ControlReply r = host.mailbox().post(ctx, cmd);
    MIG_CHECK_MSG(r.status.ok(), r.status.to_string());
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("bench", std::move(fn));
    MIG_CHECK_MSG(world.executor().run(),
                  "simulation hung:\n" << world.executor().dump_state());
  }
};

inline void print_header(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("==============================================================\n");
}

inline double us(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }
inline double ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

// Machine-readable result line, one per measured data point, printed next to
// the human-readable table:
//
//   BENCH_JSON {"bench":"fig10a_restore","enclaves":8,"restore_ns":123456}
//
// Drivers scrape stdout for the BENCH_JSON prefix and parse the rest as one
// JSON object (tools/check_trace_schema validates the shape). All virtual-time
// quantities are integral nanoseconds — no floating point, so output is
// byte-stable across runs and platforms.
class JsonLine {
 public:
  explicit JsonLine(std::string bench) {
    body_ = "{\"bench\":\"" + obs::json_escape(bench) + "\"";
  }

  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  JsonLine& num(const std::string& key, T v) {
    body_ += ",\"" + obs::json_escape(key) +
             "\":" + std::to_string(static_cast<uint64_t>(v));
    return *this;
  }

  JsonLine& str(const std::string& key, const std::string& v) {
    body_ += ",\"" + obs::json_escape(key) + "\":\"" + obs::json_escape(v) +
             "\"";
    return *this;
  }

  void emit() { std::printf("BENCH_JSON %s}\n", body_.c_str()); }

 private:
  std::string body_;
};

}  // namespace mig::bench
