// Figure 9(b): overhead of migration support on real applications (des, cr4,
// mcrypt, gnupg, libjpeg, libzip). Runs each workload's enclave twice — with
// and without the SDK's migration instrumentation (entry stubs, flag
// bookkeeping, CSSA recording) — and prints normalized runtime.
//
// Expected shape (paper): "migration support brings almost no overhead".
#include "apps/workloads.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  using namespace mig::apps;
  bench::print_header("Figure 9(b)",
                      "migration-support overhead on applications "
                      "(w/o support = 1.000)");

  std::printf("%-10s %14s %14s %10s\n", "app", "w/o-mig(us)", "w/-mig(us)",
              "normalized");
  for (const Workload& w : fig9b_workloads()) {
    uint64_t elapsed[2] = {0, 0};
    for (int support = 0; support <= 1; ++support) {
      bench::Bed bed;
      guestos::Process& proc = bed.guest.create_process(w.name);
      sdk::BuildInput in;
      in.program = w.make_program();
      in.migration_support = support == 1;
      sdk::BuildOutput built = sdk::build_enclave_image(
          in, bed.dev_signer, bed.world.ias().service_pk(), bed.rng);
      sdk::EnclaveHost host(bed.guest, proc, std::move(built), bed.world.ias(),
                            bed.rng.fork(to_bytes("h")));
      bed.run([&](sim::ThreadCtx& ctx) {
        MIG_CHECK(host.create(ctx).ok());
        uint64_t t0 = ctx.now();
        for (int i = 0; i < 50; ++i) {
          Writer args;
          args.u64(w.default_block);
          auto r = host.ecall(ctx, 0, kWorkloadEcallProcess, args.data());
          MIG_CHECK_MSG(r.ok(), r.status().to_string());
        }
        elapsed[support] = ctx.now() - t0;
        MIG_CHECK(host.destroy(ctx).ok());
      });
    }
    std::printf("%-10s %14.1f %14.1f %10.4f\n", w.name.c_str(),
                bench::us(elapsed[0]), bench::us(elapsed[1]),
                static_cast<double>(elapsed[1]) / elapsed[0]);
    bench::JsonLine("fig9b_migration_support")
        .str("app", w.name)
        .num("no_support_ns", elapsed[0])
        .num("with_support_ns", elapsed[1])
        .emit();
  }
  std::printf("\n");
  return 0;
}
