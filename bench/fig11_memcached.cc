// Figure 11: two-phase checkpointing time vs. checkpoint size for a
// memcached-like KV store running in an enclave — four worker threads,
// AES-CBC with AES-NI, 1..32 MB of live state.
//
// Expected shape (paper): linear in the state size, ~200 ms at 32 MB.
#include "apps/kv.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  using namespace mig::apps;
  bench::print_header("Figure 11",
                      "two-phase checkpointing time vs Memcached state size "
                      "(4 workers, AES-NI)");

  std::printf("%10s %22s %20s\n", "state(MB)", "checkpoint size(MB)",
              "two-phase time(ms)");
  for (uint64_t mb : {1, 2, 4, 8, 16, 32}) {
    bench::Bed bed;
    guestos::Process& proc = bed.guest.create_process("memcached");
    sdk::EnclaveHost& host =
        bed.add_enclave(proc, make_kv_program(), kv_layout(mb, /*workers=*/4));
    uint64_t elapsed = 0;
    uint64_t blob_size = 0;
    bed.run([&](sim::ThreadCtx& ctx) {
      MIG_CHECK(host.create(ctx).ok());
      // Fill the store to ~the nominal size.
      uint64_t items = mb * 1024;  // 1 KB slots
      Writer fill;
      fill.u64(items);
      fill.u64(900);
      auto r = host.ecall(ctx, 0, kKvEcallFill, fill.data());
      MIG_CHECK_MSG(r.ok(), r.status().to_string());

      uint64_t t0 = ctx.now();
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kPrepareCheckpoint;
      cmd.cipher = crypto::CipherAlg::kAes128CbcNi;
      sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
      MIG_CHECK_MSG(reply.status.ok(), reply.status.to_string());
      elapsed = ctx.now() - t0;
      blob_size = reply.blob.size();
      sdk::ControlCmd cancel;
      cancel.type = sdk::ControlCmd::Type::kCancelMigration;
      MIG_CHECK(host.mailbox().post(ctx, cancel).status.ok());
      MIG_CHECK(host.destroy(ctx).ok());
    });
    std::printf("%10llu %22.1f %20.1f\n", static_cast<unsigned long long>(mb),
                blob_size / 1048576.0, bench::ms(elapsed));
    bench::JsonLine("fig11_memcached")
        .num("state_mb", mb)
        .num("checkpoint_bytes", blob_size)
        .num("two_phase_ns", elapsed)
        .emit();
  }
  std::printf("\n");
  return 0;
}
