// Ablation (§VII-B): the paper's proposed hardware instructions (EPUTKEY /
// EMIGRATE / ESWPOUT / ESWPIN / EMIGRATEDONE) vs. the software control-thread
// mechanism, moving the same enclave state across machines. The hardware
// path needs no control thread, no two-phase protocol and no CSSA tricks —
// TCS pages (CSSA included) export directly.
#include "apps/kv.h"
#include "bench_common.h"
#include "crypto/drbg.h"

namespace {

using namespace mig;

// Software path: two-phase checkpoint + key exchange (agent) + restore.
uint64_t run_software(uint64_t mb) {
  bench::Bed bed;
  guestos::Process& proc = bed.guest.create_process("kv");
  sdk::EnclaveHost& host =
      bed.add_enclave(proc, apps::make_kv_program(), apps::kv_layout(mb));
  uint64_t elapsed = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    bed.provision(ctx, host);
    Writer fill;
    fill.u64(mb * 1024);
    fill.u64(900);
    MIG_CHECK(host.ecall(ctx, 0, apps::kKvEcallFill, fill.data()).ok());

    uint64_t t0 = ctx.now();
    migration::EnclaveMigrator migrator(bed.world);
    migration::EnclaveMigrateOptions opts;
    opts.cipher = crypto::CipherAlg::kAes128CbcNi;
    auto blob = migrator.prepare(ctx, host, opts);
    MIG_CHECK(blob.ok());
    auto inst = host.detach_instance();
    bed.guest.set_migration_target(*bed.target);
    MIG_CHECK(bed.guest.resume_enclaves_after_migration(ctx).ok());
    MIG_CHECK(migrator.restore(ctx, host, *bed.source, inst,
                               std::move(*blob), opts).ok());
    elapsed = ctx.now() - t0;
  });
  return elapsed;
}

// Hardware path: EMIGRATE freeze + per-page ESWPOUT/ESWPIN + EMIGRATEDONE.
uint64_t run_hardware(uint64_t mb) {
  hv::World world(4);
  hv::Machine& src = world.add_machine("src", 24'576, /*migration_ext=*/true);
  hv::Machine& dst = world.add_machine("dst", 24'576, /*migration_ext=*/true);
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(src, vm);
  guestos::Process& proc = guest.create_process("kv");
  crypto::Drbg rng(to_bytes("hw"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  sdk::BuildInput in;
  in.program = apps::make_kv_program();
  in.layout = apps::kv_layout(mb);
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("h")));

  uint64_t elapsed = 0;
  world.executor().spawn("bench", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    Writer fill;
    fill.u64(mb * 1024);
    fill.u64(900);
    MIG_CHECK(host.ecall(ctx, 0, apps::kKvEcallFill, fill.data()).ok());
    sgx::EnclaveId eid = host.instance()->eid;
    // The §VII-B design needs no in-enclave migration assistance: retire the
    // control thread so EMIGRATE sees no busy TCS.
    sim::ThreadId control = host.instance()->control_thread;
    (void)host.mailbox().post(ctx, sdk::ControlCmd{});  // kShutdown
    ctx.spin_until([&] { return world.executor().finished(control); });

    uint64_t t0 = ctx.now();
    // Control enclaves agree on migration keys (remote attestation modeled
    // as one WAN round trip), install with EPUTKEY.
    ctx.sleep(2 * world.cost().wan_latency_ns);
    crypto::Drbg krng(to_bytes("mig-keys"));
    Bytes ek = krng.generate(32);
    Bytes mk = krng.generate(32);
    MIG_CHECK(src.hw().eputkey(ctx, ek, mk).ok());
    MIG_CHECK(dst.hw().eputkey(ctx, ek, mk).ok());

    MIG_CHECK(src.hw().emigrate(ctx, eid).ok());
    auto msecs = src.hw().emigrate_export_secs(ctx, eid);
    MIG_CHECK(msecs.ok());
    auto teid = dst.hw().emigrate_import_secs(ctx, *msecs);
    MIG_CHECK(teid.ok());
    for (uint64_t lin : src.hw().resident_pages(eid)) {
      auto page = src.hw().eswpout(ctx, eid, lin);
      MIG_CHECK(page.ok());
      MIG_CHECK(dst.hw().eswpin(ctx, *teid, *page).ok());
    }
    auto trailer = src.hw().emigrate_state_hash(ctx, eid);
    MIG_CHECK(trailer.ok());
    MIG_CHECK(dst.hw().emigratedone(ctx, *teid, trailer->first,
                                    trailer->second).ok());
    elapsed = ctx.now() - t0;
  });
  MIG_CHECK(world.executor().run());
  return elapsed;
}

}  // namespace

int main() {
  bench::print_header("Ablation: §VII-B hardware-assisted migration",
                      "software control-thread path vs proposed instructions");
  std::printf("%10s %18s %18s %10s\n", "state(MB)", "software(ms)",
              "hardware(ms)", "ratio");
  for (uint64_t mb : {1, 4, 16}) {
    uint64_t sw = run_software(mb);
    uint64_t hw = run_hardware(mb);
    std::printf("%10llu %18.2f %18.2f %9.1fx\n",
                static_cast<unsigned long long>(mb), bench::ms(sw),
                bench::ms(hw), static_cast<double>(sw) / hw);
    bench::JsonLine("ablate_hw_assist")
        .num("state_mb", mb)
        .num("software_ns", sw)
        .num("hardware_ns", hw)
        .emit();
  }
  std::printf(
      "\nThe hardware path skips the enclave rebuild (SECS migrates), the\n"
      "two-phase protocol and the CSSA replay; it also migrates W+X-only\n"
      "pages, which the software mechanism cannot read (SGXv1 limitation).\n\n");
  return 0;
}
