// Figure 9(a): nbench normalized runtime — native vs. enclave (Intel SDK and
// the paper's SDK). Each kernel really computes (checksums printed so the
// work is observable); the enclave overhead comes from the MEE / crossing /
// EPC-paging model in apps/nbench.cc.
//
// Expected shape (paper): compute-bound kernels ~1x, String Sort ~10x.
#include "apps/nbench.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  using namespace mig::apps;
  bench::print_header(
      "Figure 9(a)",
      "nbench in-enclave overhead, normalized runtime (native = 1.00)");

  const sim::CostModel& cm = sim::default_cost_model();
  const uint64_t usable_epc = 92ull << 20;

  std::printf("%-18s %12s %12s %12s %12s  %s\n", "kernel", "native(us)",
              "IntelSDK", "OurSDK", "checksum", "");
  std::printf("%-18s %12s %12s %12s %12s\n", "", "", "(norm)", "(norm)", "");
  for (const NbenchKernel& k : nbench_kernels()) {
    uint64_t checksum = k.run(0x5109);
    uint64_t native = nbench_native_ns(k, cm);
    uint64_t ours = nbench_enclave_ns(k, cm, usable_epc);
    // Intel's (early Linux) SDK: the paper's figure shows it tracking their
    // SDK closely, with slightly heavier crossings/runtime; modeled as a
    // small constant factor on the enclave-specific overhead.
    uint64_t intel = native + static_cast<uint64_t>((ours - native) * 1.12);
    std::printf("%-18s %12.0f %12.2f %12.2f %12llx\n", k.name.c_str(),
                bench::us(native), static_cast<double>(intel) / native,
                static_cast<double>(ours) / native,
                static_cast<unsigned long long>(checksum));
    bench::JsonLine("fig9a_nbench")
        .str("kernel", k.name)
        .num("native_ns", native)
        .num("intel_sdk_ns", intel)
        .num("our_sdk_ns", ours)
        .num("checksum", checksum)
        .emit();
  }
  std::printf(
      "\nNote: String Sort's blow-up is EPC/MEE pressure from large,\n"
      "cache-hostile traffic, as in the paper; the other kernels are\n"
      "compute-bound and stay near 1x.\n\n");
  return 0;
}
