// Pre-copy characterization: downtime and total traffic vs. the guest's
// dirty rate. Context for Figs. 10(b)-(d): live migration only has small
// downtime when the dirty set converges; a write-hot guest forces a big
// stop-and-copy (the classic pre-copy failure mode) with or without
// enclaves.
#include "bench_common.h"

int main() {
  using namespace mig;
  bench::print_header("Ablation: pre-copy vs dirty rate",
                      "downtime and traffic as the guest writes faster");

  std::printf("%16s %10s %14s %14s %8s\n", "dirty(pages/s)", "rounds",
              "downtime(ms)", "transfer(MB)", "conv?");
  for (uint64_t rate : {200ull, 1'600ull, 6'000ull, 20'000ull, 200'000ull}) {
    hv::World world(4);
    world.add_machine("src");
    world.add_machine("dst");
    auto channel = world.make_channel();
    hv::DirtyModel dm;
    dm.pages_per_sec = rate;
    hv::Vm src(hv::VmConfig{}, dm);
    hv::Vm dst(hv::VmConfig{}, dm);
    hv::MigrationParams params;
    hv::LiveMigrationEngine engine(world.cost(), params);
    Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "x");
    world.executor().spawn("src", [&](sim::ThreadCtx& c) {
      report = engine.migrate_source(c, src, channel->a());
    });
    world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
      (void)engine.migrate_target(c, dst, channel->b());
    });
    MIG_CHECK(world.executor().run());
    MIG_CHECK(report.ok());
    bool converged = report->rounds < params.max_rounds;
    std::printf("%16llu %10llu %14.2f %14.1f %8s\n",
                static_cast<unsigned long long>(rate),
                static_cast<unsigned long long>(report->rounds),
                bench::ms(report->downtime_ns),
                report->transferred_bytes / 1048576.0,
                converged ? "yes" : "NO");
    bench::JsonLine("ablate_precopy")
        .num("dirty_pages_per_sec", rate)
        .num("rounds", report->rounds)
        .num("downtime_ns", report->downtime_ns)
        .num("transferred_bytes", report->transferred_bytes)
        .num("converged", converged ? 1 : 0)
        .emit();
  }
  std::printf(
      "\nBeyond the link's drain rate the dirty set never converges and the\n"
      "engine falls back to a large stop-and-copy — enclave checkpointing\n"
      "is immaterial to this regime.\n\n");
  return 0;
}
