// Ablation: incremental enclave checkpointing (wire format v3, PR 5).
//
// One ~2 MB enclave with a moderate write working set. The classic row runs
// the full two-phase dump: everything — quiesce, then every checkpointable
// page — happens inside the stop phase. The delta rows take the baseline
// dump while the workers keep running, ship re-dirtied pages in N live
// rounds, and pay only the residual dirty set + thread contexts at the
// quiescent point. The stop-phase time is what the VM's downtime budget
// actually sees, so that is the measured quantity.
//
// Expected trends:
//   * delta stop time lands well under 0.5x the classic full dump (only a
//     handful of residual pages + meta remain at the quiescent point);
//   * more live rounds shrink the residual set further, with diminishing
//     returns once it converges to the per-round write rate;
//   * zero-page elision (the untouched heap tail) and content dedup (the
//     striped working set) cut total wire bytes below the classic dump even
//     though the baseline re-ships pages the deltas later overwrite.
#include "bench_common.h"
#include "migration/session.h"
#include "sdk/chunk_wire.h"
#include "util/serde.h"

namespace {

using namespace mig;

constexpr uint64_t kEcallTouch = 1;

// touch(first, count, fill_base, period): rewrites `count` heap pages
// starting at `first`, page p getting the fill byte (fill_base + p % period).
// A small period produces many identical pages (dedup fodder); a large one
// makes every page unique.
std::shared_ptr<sdk::EnclaveProgram> make_writer_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("delta-writer");
  prog->add_ecall(kEcallTouch, "touch",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t first = r.u64();
    uint64_t count = r.u64();
    uint64_t fill_base = r.u64();
    uint64_t period = r.u64();
    env.work(200 * count);
    for (uint64_t p = first; p < first + count; ++p) {
      uint8_t fill = static_cast<uint8_t>(fill_base + p % period);
      env.write_bytes(env.layout().heap_off + p * sgx::kPageSize,
                      Bytes(sgx::kPageSize, fill));
    }
    return OkStatus();
  });
  return prog;
}

sdk::LayoutParams big_layout() {
  sdk::LayoutParams p;
  p.num_workers = 2;
  p.data_pages = 1;
  p.heap_pages = 512;  // ~2 MB of heap, same enclave as ablate_pipeline
  return p;
}

void touch(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t first,
           uint64_t count, uint64_t fill_base, uint64_t period) {
  Writer w;
  w.u64(first);
  w.u64(count);
  w.u64(fill_base);
  w.u64(period);
  auto r = host.ecall(ctx, 0, kEcallTouch, w.data());
  MIG_CHECK_MSG(r.ok(), r.status().to_string());
}

// The write-moderate workload: 256 of 512 heap pages warm (striped content,
// so the baseline both dedups and elides), 32 pages re-dirtied per live
// round.
constexpr uint64_t kWarmPages = 256;
constexpr uint64_t kWritesPerRound = 32;

struct Out {
  uint64_t stop_ns = 0;
  uint64_t wire_bytes = 0;
  uint64_t rounds = 0;
  uint64_t residual_pages = 0;
  uint64_t elided_bytes = 0;
  uint64_t deduped_bytes = 0;
};

// Classic full two-phase dump: the whole checkpoint is stop-phase work.
Out run_classic() {
  bench::Bed bed;
  guestos::Process& proc = bed.guest.create_process("app");
  sdk::EnclaveHost& host =
      bed.add_enclave(proc, make_writer_program(), big_layout());
  Out out;
  bed.run([&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    bed.provision(ctx, host);
    touch(ctx, host, 0, kWarmPages, 1, 32);

    migration::EnclaveMigrator migrator(bed.world);
    migration::EnclaveMigrateOptions opts;
    uint64_t t0 = ctx.now();
    auto blob = migrator.prepare(ctx, host, opts);
    MIG_CHECK_MSG(blob.ok(), blob.status().to_string());
    out.stop_ns = ctx.now() - t0;
    out.wire_bytes = blob->size();
  });
  return out;
}

// Incremental: baseline + `live_rounds` delta rounds ride the running VM;
// only the final quiescent dump is stop-phase work.
Out run_delta(uint64_t live_rounds) {
  bench::Bed bed;
  guestos::Process& proc = bed.guest.create_process("app");
  sdk::EnclaveHost& host =
      bed.add_enclave(proc, make_writer_program(), big_layout());
  Out out;
  bed.run([&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    bed.provision(ctx, host);
    touch(ctx, host, 0, kWarmPages, 1, 32);

    migration::EnclaveMigrator migrator(bed.world);
    migration::EnclaveMigrateOptions opts;
    auto account = [&](const sdk::DeltaStats& s) {
      out.wire_bytes += s.wire_bytes;
      out.elided_bytes += s.elided_bytes;
      out.deduped_bytes += s.deduped_bytes;
    };

    auto base = migrator.dump_baseline(ctx, host, opts);
    MIG_CHECK_MSG(base.ok(), base.status().to_string());
    account(base->stats);

    for (uint64_t r = 0; r < live_rounds; ++r) {
      // The workload keeps writing between rounds: a moving window of
      // kWritesPerRound pages with round-unique content.
      touch(ctx, host, (r * kWritesPerRound) % kWarmPages, kWritesPerRound,
            100 + r, sgx::kPageSize);
      auto d = migrator.dump_delta(ctx, host, opts, /*final_dump=*/false);
      MIG_CHECK_MSG(d.ok(), d.status().to_string());
      account(d->stats);
    }
    // Writes still land between the last live round and the stop phase —
    // this is the residual set the final dump must capture.
    touch(ctx, host, 0, kWritesPerRound, 200, sgx::kPageSize);

    uint64_t t0 = ctx.now();
    auto fin = migrator.dump_delta(ctx, host, opts, /*final_dump=*/true);
    MIG_CHECK_MSG(fin.ok(), fin.status().to_string());
    out.stop_ns = ctx.now() - t0;
    account(fin->stats);
    out.rounds = live_rounds;
    out.residual_pages = fin->stats.pages_sent;
  });
  return out;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header("Ablation: incremental (wire v3) checkpointing",
                      "stop-phase dump time vs live delta rounds");

  Out classic = run_classic();
  std::printf("%10s %7s %10s %9s %12s %11s %11s %9s\n", "mode", "rounds",
              "stop(ms)", "residual", "wire(KB)", "elided(KB)", "dedup(KB)",
              "vs full");
  std::printf("%10s %7s %10.2f %9s %12llu %11s %11s %9s\n", "classic", "-",
              bench::ms(classic.stop_ns), "-",
              static_cast<unsigned long long>(classic.wire_bytes / 1024), "-",
              "-", "1.00x");
  bench::JsonLine("ablate_delta")
      .str("mode", "classic")
      .num("stop_ns", classic.stop_ns)
      .num("wire_bytes", classic.wire_bytes)
      .num("ratio_x100", 100)
      .emit();

  for (uint64_t rounds : {1, 2, 4}) {
    Out d = run_delta(rounds);
    MIG_CHECK(classic.stop_ns > 0);
    std::printf("%10s %7llu %10.2f %9llu %12llu %11llu %11llu %8.2fx\n",
                "delta", static_cast<unsigned long long>(rounds),
                bench::ms(d.stop_ns),
                static_cast<unsigned long long>(d.residual_pages),
                static_cast<unsigned long long>(d.wire_bytes / 1024),
                static_cast<unsigned long long>(d.elided_bytes / 1024),
                static_cast<unsigned long long>(d.deduped_bytes / 1024),
                static_cast<double>(d.stop_ns) /
                    static_cast<double>(classic.stop_ns));
    bench::JsonLine("ablate_delta")
        .str("mode", "delta")
        .num("rounds", d.rounds)
        .num("stop_ns", d.stop_ns)
        .num("full_stop_ns", classic.stop_ns)
        .num("wire_bytes", d.wire_bytes)
        .num("residual_pages", d.residual_pages)
        .num("elided_bytes", d.elided_bytes)
        .num("deduped_bytes", d.deduped_bytes)
        .num("ratio_x100", d.stop_ns * 100 / classic.stop_ns)
        .emit();
  }
  std::printf(
      "\nThe baseline and live rounds ride the running VM; the stop phase\n"
      "pays only for the residual dirty set + thread contexts, landing well\n"
      "under half the classic full dump. Zero-elision (the untouched heap\n"
      "tail) and content dedup (the striped working set) cut the total wire\n"
      "bytes below the classic dump as well.\n\n");
  return 0;
}
