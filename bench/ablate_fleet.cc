// Fleet evacuation ablation: drain one host of N enclave-carrying VMs at
// several admission-control settings and chart the trade the orchestrator is
// built around. Serial evacuation (concurrency 1) pays every VM's
// attestation round trips, seal/restore compute and control-plane latency
// back to back; concurrent evacuation overlaps all of that — only the shared
// uplink still serializes — so total evacuation time drops steeply while the
// serialized stop windows keep per-VM downtime pinned near the
// single-session floor. The sweet spot the table shows: a concurrency where
// total time is at least halved against serial while p99 downtime stays
// within 2x of the serial floor.
#include "bench_common.h"

#include "fleet/fleet.h"

namespace {

using namespace mig;

constexpr uint64_t kEcallPoke = 1;

std::shared_ptr<sdk::EnclaveProgram> make_prog() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("fleet-guest");
  prog->add_ecall(kEcallPoke, "poke",
                  [](sdk::EnclaveEnv& env, sdk::Frame&) {
                    env.work(10'000);
                    return OkStatus();
                  });
  return prog;
}

struct RunResult {
  fleet::EvacuationReport report;
  uint64_t counter_wait_ns = 0;  // time migrations queued for the signer
};

// One full host drain: `fleet_size` small VMs (one two-worker enclave each)
// at the given admission cap, all other policies at their defaults.
RunResult run_evacuation(size_t fleet_size, uint64_t max_concurrent) {
  hv::World world(8);  // an evacuating host has cores to spare
  hv::Machine& src = world.add_machine("src");
  hv::Machine& dst = world.add_machine("dst");
  crypto::Drbg rng(to_bytes("fleet-bench"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  store::CounterService counters{world.ias(), crypto::Drbg(to_bytes("ctr"))};

  std::vector<std::unique_ptr<hv::Vm>> vms;
  std::vector<std::unique_ptr<guestos::GuestOs>> guests;
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (size_t i = 0; i < fleet_size; ++i) {
    hv::VmConfig c;
    c.name = "vm" + std::to_string(i);
    c.vcpus = 2;
    c.memory_mb = 2;  // container-sized guests: the host NIC is shared
    c.used_fraction = 0.5;
    hv::DirtyModel dm;
    dm.pages_per_sec = 180;
    dm.working_set_pages = 120;
    vms.push_back(std::make_unique<hv::Vm>(c, dm));
    guests.push_back(std::make_unique<guestos::GuestOs>(src, *vms.back()));
    guestos::Process& proc = guests.back()->create_process("app");
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = 2;
    in.layout.data_pages = 1;
    // Distinct heap size per VM -> distinct MRENCLAVE -> distinct rollback
    // counter identity. Tenants sharing one measurement would also share a
    // counter, and one tenant's post-migration advance would invalidate the
    // others' sealed checkpoints mid-flight.
    in.layout.heap_pages = 1 + i;
    in.counter_service_pk = counters.public_key();
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        *guests.back(), proc, std::move(built), world.ias(),
        rng.fork(to_bytes(c.name))));
  }

  fleet::EvacuationPlan plan;
  plan.max_concurrent = max_concurrent;
  plan.counter_service = &counters;  // rollback defense: 2 WAN trips per VM
  fleet::FleetScheduler sched(world, plan);
  for (size_t i = 0; i < fleet_size; ++i) {
    fleet::VmPlan vp;
    vp.name = vms[i]->config().name;
    sched.add_vm(vp, *vms[i], *guests[i], src, dst, {hosts[i].get()});
  }

  RunResult out;
  world.executor().spawn("bench", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      MIG_CHECK(h->create(ctx).ok());
      auto channel = world.make_channel();
      world.executor().spawn("owner",
                             [&owner, ch = channel.get()](sim::ThreadCtx& c) {
                               owner.serve_one(c, ch->b());
                             });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = channel->a();
      sdk::ControlReply r = h->mailbox().post(ctx, cmd);
      MIG_CHECK_MSG(r.status.ok(), r.status.to_string());
    }
    auto report = sched.run(ctx);
    MIG_CHECK_MSG(report.ok(), report.status().to_string());
    out.report = std::move(*report);
  });
  MIG_CHECK_MSG(world.executor().run(),
                "simulation hung:\n" << world.executor().dump_state());
  MIG_CHECK(out.report.migrated == fleet_size);
  MIG_CHECK(out.report.quarantined == 0);
  out.counter_wait_ns = counters.queue_wait_ns();
  return out;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header(
      "Ablation: host evacuation concurrency",
      "total drain time and downtime distribution vs. admission cap");

  constexpr size_t kFleet = 8;
  std::printf("%12s %12s %14s %14s %14s %10s\n", "concurrent", "total(ms)",
              "p50 down(ms)", "p99 down(ms)", "max down(ms)", "speedup");

  uint64_t serial_total_ns = 0;
  uint64_t serial_floor_ns = 0;  // single-session p99 downtime
  bool sweet_spot = false;
  for (uint64_t concurrent : {1ull, 2ull, 4ull, 8ull}) {
    RunResult r = run_evacuation(kFleet, concurrent);
    const fleet::EvacuationReport& rep = r.report;
    if (concurrent == 1) {
      serial_total_ns = rep.total_ns;
      serial_floor_ns = rep.downtime_p99_ns;
    } else if (rep.total_ns * 2 <= serial_total_ns &&
               rep.downtime_p99_ns <= 2 * serial_floor_ns) {
      sweet_spot = true;
    }
    double speedup =
        static_cast<double>(serial_total_ns) / static_cast<double>(rep.total_ns);
    std::printf("%12llu %12.2f %14.2f %14.2f %14.2f %9.2fx\n",
                static_cast<unsigned long long>(concurrent),
                bench::ms(rep.total_ns), bench::ms(rep.downtime_p50_ns),
                bench::ms(rep.downtime_p99_ns), bench::ms(rep.downtime_max_ns),
                speedup);
    bench::JsonLine("ablate_fleet")
        .num("fleet_size", kFleet)
        .num("max_concurrent", concurrent)
        .num("migrated", rep.migrated)
        .num("quarantined", rep.quarantined)
        .num("retries", rep.retries)
        .num("peak_concurrent", rep.peak_concurrent)
        .num("total_ns", rep.total_ns)
        .num("downtime_p50_ns", rep.downtime_p50_ns)
        .num("downtime_p99_ns", rep.downtime_p99_ns)
        .num("downtime_max_ns", rep.downtime_max_ns)
        .num("counter_wait_ns", r.counter_wait_ns)
        .emit();
  }
  // The point of the ablation, enforced: some concurrency level beats serial
  // by >= 2x on total drain time while keeping p99 downtime within 2x of the
  // single-session floor. If a scheduler or arbiter change loses this, the
  // bench itself fails rather than quietly charting a regression.
  MIG_CHECK_MSG(sweet_spot,
                "no concurrency sweet spot: expected some N > 1 with total <= "
                "serial/2 and p99 downtime <= 2x serial floor");
  std::printf(
      "\nConcurrent sessions overlap attestation round trips, seal/restore\n"
      "compute and control latency; the shared NIC still serializes bytes and\n"
      "the stop-window token serializes blackouts, so total time collapses\n"
      "while p99 downtime holds near the single-session floor.\n\n");
  return 0;
}
