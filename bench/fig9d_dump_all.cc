// Figure 9(d): total dumping time — from the guest OS receiving the
// migration notification until ALL enclaves are ready (Fig. 8 steps 2-6) —
// vs. the number of enclaves (1..64).
//
// Expected shape (paper): <=940 us at 8 enclaves, ~1.7 ms at 16, ~6.5 ms at
// 64; superlinear growth once control threads outnumber the 4 VCPUs.
#include "apps/workloads.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  bench::print_header("Figure 9(d)",
                      "suspend-all-enclaves (total dumping) time vs count");

  std::printf("%10s %26s\n", "enclaves", "total dumping time (us)");
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    bench::Bed bed;
    migration::VmMigrationSession session(bed.world, bed.vm, bed.guest,
                                          *bed.source, *bed.target,
                                          migration::VmMigrationSession::Options{});
    for (int i = 0; i < n; ++i) {
      guestos::Process& proc =
          bed.guest.create_process("app" + std::to_string(i));
      const apps::Workload& w =
          *apps::find_workload(i % 2 == 0 ? "libjpeg" : "mcrypt");
      session.manage(bed.add_enclave(proc, w.make_program()));
    }
    uint64_t elapsed = 0;
    bed.run([&](sim::ThreadCtx& ctx) {
      for (auto& h : bed.hosts) {
        MIG_CHECK(h->create(ctx).ok());
        bed.provision(ctx, *h);
      }
      uint64_t t0 = ctx.now();
      auto r = bed.guest.prepare_enclaves_for_migration(ctx);
      MIG_CHECK_MSG(r.ok(), r.status().to_string());
      elapsed = ctx.now() - t0;
    });
    std::printf("%10d %26.1f\n", n, bench::us(elapsed));
    bench::JsonLine("fig9d_dump_all")
        .num("enclaves", n)
        .num("dump_all_ns", elapsed)
        .emit();
  }
  std::printf("\n");
  return 0;
}
