// google-benchmark microbenchmarks of the real primitives underneath the
// simulation: hash/cipher throughput, big-number ops, signatures, and the
// deterministic executor's scheduling overhead. These measure WALL time of
// the implementations themselves (the figure benches report virtual time).
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/bignum.h"
#include "crypto/ciphers.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sim/executor.h"

namespace {

using namespace mig;

void BM_Sha256(benchmark::State& state) {
  Bytes data = crypto::Drbg(to_bytes("s")).generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = crypto::Drbg(to_bytes("k")).generate(32);
  Bytes data = crypto::Drbg(to_bytes("d")).generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(4096);

void BM_ChaCha20(benchmark::State& state) {
  Bytes key = crypto::Drbg(to_bytes("k")).generate(32);
  Bytes nonce(12, 1);
  Bytes data = crypto::Drbg(to_bytes("d")).generate(state.range(0));
  for (auto _ : state) {
    crypto::chacha20_xor(key, nonce, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(4096)->Arg(64 * 1024);

void BM_Rc4(benchmark::State& state) {
  Bytes data = crypto::Drbg(to_bytes("d")).generate(state.range(0));
  for (auto _ : state) {
    crypto::Rc4(to_bytes("key")).xor_stream(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rc4)->Arg(4096);

void BM_DesCbc(benchmark::State& state) {
  Bytes key = hex_decode("0123456789abcdef");
  Bytes data = crypto::Drbg(to_bytes("d")).generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::des_cbc_encrypt(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DesCbc)->Arg(4096);

void BM_Aes128Cbc(benchmark::State& state) {
  Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv(16, 0);
  Bytes data = crypto::Drbg(to_bytes("d")).generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes128_cbc_encrypt(key, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aes128Cbc)->Arg(4096);

void BM_SealOpen(benchmark::State& state) {
  Bytes key = crypto::Drbg(to_bytes("k")).generate(32);
  Bytes data = crypto::Drbg(to_bytes("d")).generate(state.range(0));
  for (auto _ : state) {
    Bytes sealed = crypto::seal(crypto::CipherAlg::kChaCha20, key, data);
    auto opened = crypto::open(key, sealed);
    benchmark::DoNotOptimize(opened.ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(20 * 1024);

void BM_BigNumModExp(benchmark::State& state) {
  crypto::Drbg rng(to_bytes("dh"));
  const auto& g = crypto::DhGroup::oakley2();
  crypto::BigNum e = crypto::BigNum::from_bytes(rng.generate(128)) % g.q;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.g.modexp(e, g.p));
  }
}
BENCHMARK(BM_BigNumModExp);

void BM_SchnorrSignVerify(benchmark::State& state) {
  crypto::Drbg rng(to_bytes("sig"));
  crypto::SigKeyPair kp = crypto::sig_keygen(rng);
  Bytes msg = to_bytes("benchmark message");
  for (auto _ : state) {
    Bytes sig = crypto::sig_sign(kp.sk, msg, rng);
    benchmark::DoNotOptimize(crypto::sig_verify(kp.pk, msg, sig));
  }
}
BENCHMARK(BM_SchnorrSignVerify);

void BM_ExecutorContextSwitch(benchmark::State& state) {
  // Cost of one work()-slice round trip through the scheduler.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Executor exec(2);
    state.ResumeTiming();
    exec.spawn("a", [](sim::ThreadCtx& ctx) {
      for (int i = 0; i < 1000; ++i) ctx.work(1000);
    });
    exec.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExecutorContextSwitch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
