// Figures 10(b), 10(c), 10(d): live migration of a 2 GB / 4-VCPU guest with
// and without enclaves (8..64), comparing total migration time, downtime and
// transferred memory. The enclave-carrying runs use the §VI-D agent so the
// WAN attestation stays off the critical path, as in the paper's optimized
// system.
//
// Expected shape (paper): ~2% total-time overhead up to 32 enclaves, ~5% at
// 64; downtime +~3 ms at 64; transfer grows by the per-enclave footprint.
#include "apps/workloads.h"
#include "bench_common.h"

namespace {

mig::hv::MigrationReport run_plain() {
  using namespace mig;
  hv::World world(4);
  world.add_machine("src");
  world.add_machine("dst");
  auto channel = world.make_channel();
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  hv::Vm dst(hv::VmConfig{}, hv::DirtyModel{});
  hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("src", [&](sim::ThreadCtx& c) {
    report = engine.migrate_source(c, vm, channel->a());
  });
  world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
    (void)engine.migrate_target(c, dst, channel->b());
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK(report.ok());
  return *report;
}

mig::hv::MigrationReport run_with_enclaves(int n) {
  using namespace mig;
  bench::Bed bed;
  migration::VmMigrationSession::Options opts;
  opts.use_agent = true;
  opts.target_host_os = &bed.target_host_os;
  opts.dev_signer = bed.dev_signer;
  migration::VmMigrationSession session(bed.world, bed.vm, bed.guest,
                                        *bed.source, *bed.target, opts);
  for (int i = 0; i < n; ++i) {
    guestos::Process& proc =
        bed.guest.create_process("app" + std::to_string(i));
    const apps::Workload& w =
        *apps::find_workload(i % 2 == 0 ? "libjpeg" : "mcrypt");
    session.manage(bed.add_enclave(proc, w.make_program()));
  }
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  bed.run([&](sim::ThreadCtx& ctx) {
    for (auto& h : bed.hosts) {
      MIG_CHECK(h->create(ctx).ok());
      bed.provision(ctx, *h);
    }
    report = session.run(ctx);
    MIG_CHECK_MSG(report.ok(), report.status().to_string());
  });
  return *report;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header("Figures 10(b)/(c)/(d)",
                      "live migration of a 2 GB guest, w/ vs w/o enclaves");

  hv::MigrationReport base = run_plain();
  auto emit = [](int enclaves, const hv::MigrationReport& r) {
    bench::JsonLine("fig10bcd_live_migration")
        .num("enclaves", enclaves)
        .num("total_ns", r.total_ns)
        .num("downtime_ns", r.downtime_ns)
        .num("transferred_bytes", r.transferred_bytes)
        .num("rounds", r.rounds)
        .num("enclave_restore_ns", r.enclave_restore_ns)
        .emit();
  };
  std::printf("%10s | %12s %9s | %12s %9s | %12s %9s\n", "enclaves",
              "total(ms)", "overhead", "downtime(ms)", "delta",
              "transfer(MB)", "delta");
  std::printf("%10s | %12.0f %9s | %12.2f %9s | %12.1f %9s\n", "none",
              bench::ms(base.total_ns), "--", bench::ms(base.downtime_ns),
              "--", base.transferred_bytes / 1048576.0, "--");
  emit(0, base);
  for (int n : {8, 16, 32, 64}) {
    hv::MigrationReport r = run_with_enclaves(n);
    emit(n, r);
    std::printf("%10d | %12.0f %+8.1f%% | %12.2f %+7.2fms | %12.1f %+7.1fMB\n",
                n, bench::ms(r.total_ns),
                100.0 * (static_cast<double>(r.total_ns) / base.total_ns - 1),
                bench::ms(r.downtime_ns),
                bench::ms(r.downtime_ns) - bench::ms(base.downtime_ns),
                r.transferred_bytes / 1048576.0,
                (static_cast<double>(r.transferred_bytes) -
                 static_cast<double>(base.transferred_bytes)) / 1048576.0);
  }
  std::printf("\n");
  return 0;
}
