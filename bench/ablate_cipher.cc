// Ablation (§VIII-B text): checkpoint cipher choice. The paper reports RC4
// ~200 us vs DES ~300 us for a ~20 KB checkpoint and uses AES-NI for the
// large (Memcached) states. Sweeps the cipher across two state sizes.
#include "apps/workloads.h"
#include "apps/kv.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  bench::print_header("Ablation: checkpoint cipher",
                      "two-phase checkpoint time by cipher and state size");

  const std::vector<crypto::CipherAlg> algs = {
      crypto::CipherAlg::kRc4, crypto::CipherAlg::kDesCbc,
      crypto::CipherAlg::kAes128Cbc, crypto::CipherAlg::kAes128CbcNi,
      crypto::CipherAlg::kChaCha20};

  for (uint64_t mb : {0, 4}) {  // 0 => the small ~20 KB enclave
    std::printf("%s state:\n", mb == 0 ? "~20 KB" : "4 MB");
    std::printf("  %-22s %18s\n", "cipher", "checkpoint (us)");
    for (crypto::CipherAlg alg : algs) {
      bench::Bed bed;
      guestos::Process& proc = bed.guest.create_process("app");
      sdk::EnclaveHost& host =
          mb == 0
              ? bed.add_enclave(proc,
                                apps::find_workload("mcrypt")->make_program())
              : bed.add_enclave(proc, apps::make_kv_program(),
                                apps::kv_layout(mb));
      uint64_t elapsed = 0;
      bed.run([&](sim::ThreadCtx& ctx) {
        MIG_CHECK(host.create(ctx).ok());
        if (mb > 0) {
          Writer fill;
          fill.u64(mb * 1024);
          fill.u64(900);
          MIG_CHECK(host.ecall(ctx, 0, apps::kKvEcallFill, fill.data()).ok());
        }
        uint64_t t0 = ctx.now();
        sdk::ControlCmd cmd;
        cmd.type = sdk::ControlCmd::Type::kPrepareCheckpoint;
        cmd.cipher = alg;
        MIG_CHECK(host.mailbox().post(ctx, cmd).status.ok());
        elapsed = ctx.now() - t0;
        sdk::ControlCmd cancel;
        cancel.type = sdk::ControlCmd::Type::kCancelMigration;
        MIG_CHECK(host.mailbox().post(ctx, cancel).status.ok());
        MIG_CHECK(host.destroy(ctx).ok());
      });
      std::printf("  %-22s %18.1f\n", crypto::cipher_name(alg),
                  bench::us(elapsed));
      bench::JsonLine("ablate_cipher")
          .str("cipher", crypto::cipher_name(alg))
          .num("state_mb", mb)
          .num("checkpoint_ns", elapsed)
          .emit();
    }
  }
  std::printf("\n");
  return 0;
}
