// Ablation: the sealed snapshot store (PR 4 tentpole).
//
// Sweeps enclave state size and sealing-worker count and measures the two
// halves of the cold path in virtual time:
//
//   seal    — snapshot_to_store: SEALGRANT round trip to the counter
//             service, chunked in-enclave sealing, and the disk write that
//             publishes the MGS1 envelope in the content-addressed store;
//   restore — restore_from_store after an abrupt crash: disk read, OPENGRANT
//             (which consumes the epoch), chunk-by-chunk open, CSSA check,
//             worker release.
//
// Expected trends:
//   * both halves scale linearly with state size once the enclave dwarfs the
//     fixed WAN round trip to the counter service;
//   * extra sealing workers help the seal half (chunk sealing is parallel)
//     but plateau at the 4 model CPUs; the restore half is dominated by the
//     serial open+copy and the disk model, so workers barely move it;
//   * small enclaves are WAN-bound: the counter round trips, not the data
//     path, set the floor.
#include "apps/workloads.h"
#include "bench_common.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"

namespace {

mig::sdk::LayoutParams layout_for(uint64_t heap_pages) {
  mig::sdk::LayoutParams p;
  p.num_workers = 2;
  p.data_pages = 1;
  p.heap_pages = heap_pages;
  return p;
}

struct Row {
  uint64_t heap_pages;
  uint64_t seal_workers;
};

struct Sample {
  uint64_t seal_ns = 0;
  uint64_t restore_ns = 0;
  uint64_t snapshot_bytes = 0;
};

// One configuration in a fresh world: provision, seal a snapshot, crash the
// instance, restore from the store's head pointer.
Sample run_config(const Row& row) {
  using namespace mig;
  bench::Bed bed;
  store::CounterService counters(bed.world.ias(),
                                 crypto::Drbg(to_bytes("ctr")));
  store::SealedSnapshotStore snapshots;
  guestos::Process& proc = bed.guest.create_process("app");

  // The shared Bed builder has no counter-service key; the store protocol
  // needs it baked into the image (config blob 3), so build by hand.
  sdk::BuildInput in;
  in.program = apps::find_workload("mcrypt")->make_program();
  in.layout = layout_for(row.heap_pages);
  in.identity_override = bed.dev_identity;
  in.counter_service_pk = counters.public_key();
  sdk::BuildOutput built = sdk::build_enclave_image(
      in, bed.dev_signer, bed.world.ias().service_pk(), bed.rng);
  bed.owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(bed.guest, proc, std::move(built), bed.world.ias(),
                        bed.rng.fork(to_bytes("h")));

  migration::EnclaveMigrateOptions opts;
  opts.counter_service = &counters;
  opts.seal_workers = row.seal_workers;

  Sample out;
  bed.run([&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    bed.provision(ctx, host);

    migration::EnclaveMigrator migrator(bed.world);
    uint64_t t0 = ctx.now();
    auto id = migrator.snapshot_to_store(ctx, host, snapshots, opts);
    MIG_CHECK_MSG(id.ok(), id.status().to_string());
    out.seal_ns = ctx.now() - t0;

    auto blob = snapshots.get(ctx, *id);
    MIG_CHECK(blob.ok());
    out.snapshot_bytes = blob->size();

    host.crash_instance(ctx);
    uint64_t t1 = ctx.now();
    Status st = migrator.restore_from_store(ctx, host, snapshots, {}, opts);
    MIG_CHECK_MSG(st.ok(), st.to_string());
    out.restore_ns = ctx.now() - t1;
  });
  return out;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header("Ablation: sealed snapshot store",
                      "seal/restore time vs state size and sealing workers");

  const Row rows[] = {
      {16, 2},   // 64 KB heap: WAN-bound floor
      {128, 2},  // 512 KB
      {512, 1},  // ~2 MB, serial sealing
      {512, 2},
      {512, 4},
      {512, 8},  // > 4 model CPUs: should plateau
  };

  std::printf("%10s %8s %14s %10s %12s\n", "heap(KB)", "workers",
              "snapshot(KB)", "seal(ms)", "restore(ms)");
  for (const Row& row : rows) {
    Sample s = run_config(row);
    std::printf("%10llu %8llu %14llu %10.2f %12.2f\n",
                static_cast<unsigned long long>(row.heap_pages * 4),
                static_cast<unsigned long long>(row.seal_workers),
                static_cast<unsigned long long>(s.snapshot_bytes / 1024),
                bench::ms(s.seal_ns), bench::ms(s.restore_ns));
    bench::JsonLine("ablate_store")
        .num("heap_kb", row.heap_pages * 4)
        .num("seal_workers", row.seal_workers)
        .num("snapshot_bytes", s.snapshot_bytes)
        .num("seal_ns", s.seal_ns)
        .num("restore_ns", s.restore_ns)
        .emit();
  }
  std::printf(
      "\nBoth halves grow linearly with state size past the counter\n"
      "service's fixed WAN round trips. Parallel sealing speeds the seal\n"
      "half until the 4 model CPUs saturate; the restore half is serial\n"
      "open+copy plus the disk model, so workers barely move it.\n\n");
  return 0;
}
