// Post-copy / hybrid ablation: downtime, total time and traffic vs. the
// guest's dirty rate, for the three flip policies. Context for Figs.
// 10(b)-(d): pre-copy's downtime explodes once the dirty rate outruns the
// link, pure post-copy bounds downtime by the flip frame at every rate (but
// always pays the demand-pull tail), and hybrid tracks pre-copy's floor
// while it converges and flips to post-copy's bounded downtime when it
// cannot.
#include "bench_common.h"

int main() {
  using namespace mig;
  bench::print_header("Ablation: pre-copy vs post-copy vs hybrid",
                      "downtime at each dirty rate under the three policies");

  std::printf("%16s %9s %7s %14s %12s %14s %6s %6s\n", "dirty(pages/s)",
              "mode", "rounds", "downtime(ms)", "pulled(MB)", "transfer(MB)",
              "flip?", "conv?");
  for (uint64_t rate : {200ull, 1'600ull, 6'000ull, 20'000ull, 200'000ull}) {
    for (const char* mode : {"precopy", "postcopy", "hybrid"}) {
      hv::World world(4);
      world.add_machine("src");
      world.add_machine("dst");
      auto channel = world.make_channel();
      hv::DirtyModel dm;
      dm.pages_per_sec = rate;
      hv::Vm src(hv::VmConfig{}, dm);
      hv::Vm dst(hv::VmConfig{}, dm);
      hv::MigrationParams params;
      params.post_copy = std::string_view(mode) == "postcopy";
      params.hybrid = std::string_view(mode) == "hybrid";
      hv::LiveMigrationEngine engine(world.cost(), params);
      Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "x");
      world.executor().spawn("src", [&](sim::ThreadCtx& c) {
        report = engine.migrate_source(c, src, channel->a());
      });
      world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
        (void)engine.migrate_target(c, dst, channel->b());
      });
      MIG_CHECK(world.executor().run());
      MIG_CHECK(report.ok());
      MIG_CHECK(report->success);
      bool converged = report->rounds < params.max_rounds;
      std::printf("%16llu %9s %7llu %14.2f %12.1f %14.1f %6s %6s\n",
                  static_cast<unsigned long long>(rate), mode,
                  static_cast<unsigned long long>(report->rounds),
                  bench::ms(report->downtime_ns),
                  report->postcopy_bytes / 1048576.0,
                  report->transferred_bytes / 1048576.0,
                  report->postcopy_flipped ? "yes" : "no",
                  converged ? "yes" : "NO");
      bench::JsonLine("ablate_postcopy")
          .str("mode", mode)
          .num("dirty_pages_per_sec", rate)
          .num("rounds", report->rounds)
          .num("downtime_ns", report->downtime_ns)
          .num("postcopy_ns", report->postcopy_ns)
          .num("postcopy_pages", report->postcopy_pages)
          .num("postcopy_bytes", report->postcopy_bytes)
          .num("postcopy_batches", report->postcopy_batches)
          .num("transferred_bytes", report->transferred_bytes)
          .num("total_ns", report->total_ns)
          .num("flipped", report->postcopy_flipped)
          .num("converged", converged ? 1 : 0)
          .emit();
    }
  }
  std::printf(
      "\nHybrid = pre-copy's downtime floor while the dirty set converges,\n"
      "post-copy's bounded downtime once it cannot; the price is the pulled\n"
      "tail riding after resume instead of inside the blackout.\n\n");
  return 0;
}
