// Figure 10(a): time to restore all enclaves on the target machine vs. the
// number of enclaves (1..16). Enclaves are rebuilt one by one (EADD/EEXTEND
// cannot run concurrently on one SECS), so the curve is linear. Keys are
// pre-delivered to a target-side agent enclave (§VI-D), so the measured path
// is rebuild + decrypt + memory restore + CSSA pump/verify — as in the paper.
#include "apps/workloads.h"
#include "bench_common.h"

int main() {
  using namespace mig;
  bench::print_header("Figure 10(a)", "restore-all-enclaves time vs count");

  std::printf("%10s %24s %20s\n", "enclaves", "total restore (us)",
              "per-enclave (us)");
  for (int n : {1, 2, 4, 8, 16}) {
    bench::Bed bed;
    migration::VmMigrationSession::Options opts;
    opts.use_agent = true;
    opts.target_host_os = &bed.target_host_os;
    opts.dev_signer = bed.dev_signer;
    migration::VmMigrationSession session(bed.world, bed.vm, bed.guest,
                                          *bed.source, *bed.target, opts);
    for (int i = 0; i < n; ++i) {
      guestos::Process& proc =
          bed.guest.create_process("app" + std::to_string(i));
      const apps::Workload& w =
          *apps::find_workload(i % 2 == 0 ? "libjpeg" : "mcrypt");
      session.manage(bed.add_enclave(proc, w.make_program()));
    }
    Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
    bed.run([&](sim::ThreadCtx& ctx) {
      for (auto& h : bed.hosts) {
        MIG_CHECK(h->create(ctx).ok());
        bed.provision(ctx, *h);
      }
      report = session.run(ctx);
      MIG_CHECK_MSG(report.ok(), report.status().to_string());
    });
    std::printf("%10d %24.1f %20.1f\n", n, bench::us(report->enclave_restore_ns),
                bench::us(report->enclave_restore_ns / n));
    bench::JsonLine("fig10a_restore")
        .num("enclaves", n)
        .num("restore_ns", report->enclave_restore_ns)
        .num("per_enclave_ns", report->enclave_restore_ns / n)
        .emit();
  }
  std::printf("\n");
  return 0;
}
