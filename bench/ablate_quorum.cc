// Quorum counter-service ablation: drain one host of N enclave-carrying VMs
// with the rollback counter served either by the single-signer
// store::CounterService or by a 3-replica quorum::QuorumCounterService, at
// several admission caps. The single signer serializes whole serves behind
// one busy token — every concurrent migration queues for its grant, and the
// queue time (counter_wait_ns) grows with the admission cap. The quorum's
// expensive half (attestation + WAN round trips) runs in per-op PREPARE
// threads that overlap freely; only the cheap COMMIT (one signature) stays
// serialized. The table shows the choke point moving: at high concurrency
// the quorum drains the host no slower than the single signer while the
// single signer's counter queue time keeps climbing.
#include "bench_common.h"

#include "fleet/fleet.h"
#include "quorum/quorum.h"
#include "store/counter_service.h"

namespace {

using namespace mig;

constexpr uint64_t kEcallPoke = 1;

std::shared_ptr<sdk::EnclaveProgram> make_prog() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("quorum-guest");
  prog->add_ecall(kEcallPoke, "poke", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    env.work(10'000);
    return OkStatus();
  });
  return prog;
}

struct RunResult {
  fleet::EvacuationReport report;
  uint64_t counter_wait_ns = 0;  // single signer only; 0 for the quorum
};

// One full host drain against the chosen counter backend.
RunResult run_evacuation(size_t fleet_size, uint64_t max_concurrent,
                         bool quorum_backend) {
  hv::World world(8);
  hv::Machine& src = world.add_machine("src");
  hv::Machine& dst = world.add_machine("dst");
  crypto::Drbg rng(to_bytes("quorum-bench"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  store::CounterService single{world.ias(), crypto::Drbg(to_bytes("ctr"))};
  quorum::QuorumCounterService quorum{world.executor(), world.ias(),
                                      crypto::Drbg(to_bytes("qrm")), 3};
  store::CounterBackend* backend =
      quorum_backend ? static_cast<store::CounterBackend*>(&quorum) : &single;

  std::vector<std::unique_ptr<hv::Vm>> vms;
  std::vector<std::unique_ptr<guestos::GuestOs>> guests;
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (size_t i = 0; i < fleet_size; ++i) {
    hv::VmConfig c;
    c.name = "vm" + std::to_string(i);
    c.vcpus = 2;
    c.memory_mb = 2;
    c.used_fraction = 0.5;
    hv::DirtyModel dm;
    dm.pages_per_sec = 180;
    dm.working_set_pages = 120;
    vms.push_back(std::make_unique<hv::Vm>(c, dm));
    guests.push_back(std::make_unique<guestos::GuestOs>(src, *vms.back()));
    guestos::Process& proc = guests.back()->create_process("app");
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = 2;
    in.layout.data_pages = 1;
    in.layout.heap_pages = 1 + i;  // distinct MRENCLAVE per tenant
    if (quorum_backend)
      in.quorum_membership = quorum.membership_blob();
    else
      in.counter_service_pk = single.public_key();
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        *guests.back(), proc, std::move(built), world.ias(),
        rng.fork(to_bytes(c.name))));
  }

  fleet::EvacuationPlan plan;
  plan.max_concurrent = max_concurrent;
  plan.counter_service = backend;
  fleet::FleetScheduler sched(world, plan);
  for (size_t i = 0; i < fleet_size; ++i) {
    fleet::VmPlan vp;
    vp.name = vms[i]->config().name;
    sched.add_vm(vp, *vms[i], *guests[i], src, dst, {hosts[i].get()});
  }

  RunResult out;
  world.executor().spawn("bench", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      MIG_CHECK(h->create(ctx).ok());
      auto channel = world.make_channel();
      world.executor().spawn("owner",
                             [&owner, ch = channel.get()](sim::ThreadCtx& c) {
                               owner.serve_one(c, ch->b());
                             });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = channel->a();
      sdk::ControlReply r = h->mailbox().post(ctx, cmd);
      MIG_CHECK_MSG(r.status.ok(), r.status.to_string());
    }
    auto report = sched.run(ctx);
    MIG_CHECK_MSG(report.ok(), report.status().to_string());
    out.report = std::move(*report);
  });
  MIG_CHECK_MSG(world.executor().run(),
                "simulation hung:\n" << world.executor().dump_state());
  MIG_CHECK(out.report.migrated == fleet_size);
  MIG_CHECK(out.report.quarantined == 0);
  out.counter_wait_ns = single.queue_wait_ns();
  return out;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header(
      "Ablation: single-signer vs. quorum counter service",
      "host drain time and counter queue wait vs. admission cap");

  constexpr size_t kFleet = 8;
  std::printf("%10s %12s %12s %16s\n", "backend", "concurrent", "total(ms)",
              "ctr wait(ms)");

  uint64_t single_total_at_max = 0;
  uint64_t single_wait_at_max = 0;
  uint64_t quorum_total_at_max = 0;
  for (bool quorum_backend : {false, true}) {
    for (uint64_t concurrent : {1ull, 4ull, 8ull}) {
      RunResult r = run_evacuation(kFleet, concurrent, quorum_backend);
      const fleet::EvacuationReport& rep = r.report;
      const char* backend = quorum_backend ? "quorum3" : "single";
      if (concurrent == kFleet) {
        if (quorum_backend)
          quorum_total_at_max = rep.total_ns;
        else {
          single_total_at_max = rep.total_ns;
          single_wait_at_max = r.counter_wait_ns;
        }
      }
      std::printf("%10s %12llu %12.2f %16.2f\n", backend,
                  static_cast<unsigned long long>(concurrent),
                  bench::ms(rep.total_ns), bench::ms(r.counter_wait_ns));
      bench::JsonLine("ablate_quorum")
          .str("backend", backend)
          .num("fleet_size", kFleet)
          .num("max_concurrent", concurrent)
          .num("migrated", rep.migrated)
          .num("total_ns", rep.total_ns)
          .num("downtime_p99_ns", rep.downtime_p99_ns)
          .num("counter_wait_ns", r.counter_wait_ns)
          .emit();
    }
  }
  // The point of the ablation, enforced: under a full-width drain the single
  // signer makes migrations queue for their grants, and swapping in the
  // quorum removes that serialization without slowing the drain.
  MIG_CHECK_MSG(single_wait_at_max > 0,
                "single signer never queued at full concurrency — the serve "
                "token stopped measuring serialization");
  MIG_CHECK_MSG(quorum_total_at_max <= single_total_at_max,
                "quorum drain slower than the single signer at full "
                "concurrency: the prepare overlap stopped paying for itself");
  std::printf(
      "\nThe single signer's busy token serializes whole serves (attestation\n"
      "+ two WAN trips each); concurrent migrations queue behind it. The\n"
      "quorum overlaps that expensive half in per-op PREPARE threads and\n"
      "serializes only the one-signature COMMIT, so the drain completes no\n"
      "slower while the counter queue disappears.\n\n");
  return 0;
}
