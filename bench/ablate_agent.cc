// Ablation (§VI-D): the agent-enclave optimization. Direct source->target
// key delivery puts the remote attestation (WAN round trips to the
// attestation service) on the restore critical path; the agent moves it
// before the VM switch, leaving only local attestation. Sweeps the WAN
// latency to show when the optimization matters.
#include "apps/workloads.h"
#include "bench_common.h"

namespace {

// One enclave migration; returns the enclave restore time on the target.
uint64_t run_once(bool use_agent) {
  using namespace mig;
  bench::Bed bed;
  migration::VmMigrationSession::Options opts;
  opts.use_agent = use_agent;
  opts.target_host_os = &bed.target_host_os;
  opts.dev_signer = bed.dev_signer;
  migration::VmMigrationSession session(bed.world, bed.vm, bed.guest,
                                        *bed.source, *bed.target, opts);
  guestos::Process& proc = bed.guest.create_process("app");
  session.manage(
      bed.add_enclave(proc, apps::find_workload("mcrypt")->make_program()));
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  bed.run([&](sim::ThreadCtx& ctx) {
    for (auto& h : bed.hosts) {
      MIG_CHECK(h->create(ctx).ok());
      bed.provision(ctx, *h);
    }
    report = session.run(ctx);
    MIG_CHECK_MSG(report.ok(), report.status().to_string());
  });
  return report->enclave_restore_ns;
}

}  // namespace

int main() {
  using namespace mig;
  bench::print_header("Ablation: agent enclave (§VI-D)",
                      "enclave restore latency, direct vs agent key delivery");

  uint64_t direct = run_once(false);
  uint64_t agent = run_once(true);
  bench::JsonLine("ablate_agent")
      .num("direct_restore_ns", direct)
      .num("agent_restore_ns", agent)
      .emit();
  std::printf("%-28s %16.2f ms\n", "direct (WAN attestation)",
              bench::ms(direct));
  std::printf("%-28s %16.2f ms\n", "agent (local attestation)",
              bench::ms(agent));
  std::printf("%-28s %16.1fx\n", "speedup on restore path",
              static_cast<double>(direct) / agent);
  std::printf(
      "\nThe direct path pays the attestation-service round trips after the\n"
      "VM has already moved; the agent pays them concurrently with pre-copy\n"
      "(hidden), leaving only local attestation on the critical path.\n\n");
  return 0;
}
