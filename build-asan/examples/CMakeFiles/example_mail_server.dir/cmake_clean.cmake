file(REMOVE_RECURSE
  "CMakeFiles/example_mail_server.dir/mail_server.cc.o"
  "CMakeFiles/example_mail_server.dir/mail_server.cc.o.d"
  "example_mail_server"
  "example_mail_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mail_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
