# Empty dependencies file for example_mail_server.
# This may be replaced when dependencies are built.
