# Empty compiler generated dependencies file for example_snapshot_audit.
# This may be replaced when dependencies are built.
