file(REMOVE_RECURSE
  "CMakeFiles/example_snapshot_audit.dir/snapshot_audit.cc.o"
  "CMakeFiles/example_snapshot_audit.dir/snapshot_audit.cc.o.d"
  "example_snapshot_audit"
  "example_snapshot_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_snapshot_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
