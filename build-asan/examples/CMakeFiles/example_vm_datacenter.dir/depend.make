# Empty dependencies file for example_vm_datacenter.
# This may be replaced when dependencies are built.
