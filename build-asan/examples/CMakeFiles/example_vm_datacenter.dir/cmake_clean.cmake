file(REMOVE_RECURSE
  "CMakeFiles/example_vm_datacenter.dir/vm_datacenter.cc.o"
  "CMakeFiles/example_vm_datacenter.dir/vm_datacenter.cc.o.d"
  "example_vm_datacenter"
  "example_vm_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vm_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
