# Empty dependencies file for ablate_cipher.
# This may be replaced when dependencies are built.
