file(REMOVE_RECURSE
  "CMakeFiles/ablate_cipher.dir/ablate_cipher.cc.o"
  "CMakeFiles/ablate_cipher.dir/ablate_cipher.cc.o.d"
  "ablate_cipher"
  "ablate_cipher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
