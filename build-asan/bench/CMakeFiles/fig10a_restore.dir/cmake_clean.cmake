file(REMOVE_RECURSE
  "CMakeFiles/fig10a_restore.dir/fig10a_restore.cc.o"
  "CMakeFiles/fig10a_restore.dir/fig10a_restore.cc.o.d"
  "fig10a_restore"
  "fig10a_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
