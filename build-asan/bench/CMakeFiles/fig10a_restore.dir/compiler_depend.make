# Empty compiler generated dependencies file for fig10a_restore.
# This may be replaced when dependencies are built.
