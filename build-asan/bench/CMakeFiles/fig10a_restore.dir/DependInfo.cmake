
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10a_restore.cc" "bench/CMakeFiles/fig10a_restore.dir/fig10a_restore.cc.o" "gcc" "bench/CMakeFiles/fig10a_restore.dir/fig10a_restore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mig_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_attacks.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_migration.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sdk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_guestos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_hv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
