file(REMOVE_RECURSE
  "CMakeFiles/fig9c_two_phase.dir/fig9c_two_phase.cc.o"
  "CMakeFiles/fig9c_two_phase.dir/fig9c_two_phase.cc.o.d"
  "fig9c_two_phase"
  "fig9c_two_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9c_two_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
