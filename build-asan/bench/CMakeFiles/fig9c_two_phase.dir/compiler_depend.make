# Empty compiler generated dependencies file for fig9c_two_phase.
# This may be replaced when dependencies are built.
