# Empty compiler generated dependencies file for ablate_hw_assist.
# This may be replaced when dependencies are built.
