file(REMOVE_RECURSE
  "CMakeFiles/ablate_hw_assist.dir/ablate_hw_assist.cc.o"
  "CMakeFiles/ablate_hw_assist.dir/ablate_hw_assist.cc.o.d"
  "ablate_hw_assist"
  "ablate_hw_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hw_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
