file(REMOVE_RECURSE
  "CMakeFiles/fig9d_dump_all.dir/fig9d_dump_all.cc.o"
  "CMakeFiles/fig9d_dump_all.dir/fig9d_dump_all.cc.o.d"
  "fig9d_dump_all"
  "fig9d_dump_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9d_dump_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
