# Empty compiler generated dependencies file for fig9d_dump_all.
# This may be replaced when dependencies are built.
