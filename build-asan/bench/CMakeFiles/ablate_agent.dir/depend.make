# Empty dependencies file for ablate_agent.
# This may be replaced when dependencies are built.
