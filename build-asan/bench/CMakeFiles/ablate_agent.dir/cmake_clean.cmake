file(REMOVE_RECURSE
  "CMakeFiles/ablate_agent.dir/ablate_agent.cc.o"
  "CMakeFiles/ablate_agent.dir/ablate_agent.cc.o.d"
  "ablate_agent"
  "ablate_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
