file(REMOVE_RECURSE
  "CMakeFiles/ablate_precopy.dir/ablate_precopy.cc.o"
  "CMakeFiles/ablate_precopy.dir/ablate_precopy.cc.o.d"
  "ablate_precopy"
  "ablate_precopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_precopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
