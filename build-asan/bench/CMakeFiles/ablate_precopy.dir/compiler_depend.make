# Empty compiler generated dependencies file for ablate_precopy.
# This may be replaced when dependencies are built.
