# Empty dependencies file for fig9a_nbench.
# This may be replaced when dependencies are built.
