file(REMOVE_RECURSE
  "CMakeFiles/fig9a_nbench.dir/fig9a_nbench.cc.o"
  "CMakeFiles/fig9a_nbench.dir/fig9a_nbench.cc.o.d"
  "fig9a_nbench"
  "fig9a_nbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_nbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
