file(REMOVE_RECURSE
  "CMakeFiles/fig11_memcached.dir/fig11_memcached.cc.o"
  "CMakeFiles/fig11_memcached.dir/fig11_memcached.cc.o.d"
  "fig11_memcached"
  "fig11_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
