# Empty compiler generated dependencies file for fig11_memcached.
# This may be replaced when dependencies are built.
