# Empty dependencies file for fig9b_migration_support.
# This may be replaced when dependencies are built.
