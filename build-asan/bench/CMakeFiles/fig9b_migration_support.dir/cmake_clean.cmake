file(REMOVE_RECURSE
  "CMakeFiles/fig9b_migration_support.dir/fig9b_migration_support.cc.o"
  "CMakeFiles/fig9b_migration_support.dir/fig9b_migration_support.cc.o.d"
  "fig9b_migration_support"
  "fig9b_migration_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_migration_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
