file(REMOVE_RECURSE
  "CMakeFiles/fig10bcd_live_migration.dir/fig10bcd_live_migration.cc.o"
  "CMakeFiles/fig10bcd_live_migration.dir/fig10bcd_live_migration.cc.o.d"
  "fig10bcd_live_migration"
  "fig10bcd_live_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10bcd_live_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
