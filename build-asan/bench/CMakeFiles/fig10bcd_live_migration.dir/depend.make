# Empty dependencies file for fig10bcd_live_migration.
# This may be replaced when dependencies are built.
