# Empty compiler generated dependencies file for mig_sgx.
# This may be replaced when dependencies are built.
