
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/attestation.cc" "src/CMakeFiles/mig_sgx.dir/sgx/attestation.cc.o" "gcc" "src/CMakeFiles/mig_sgx.dir/sgx/attestation.cc.o.d"
  "/root/repo/src/sgx/hardware.cc" "src/CMakeFiles/mig_sgx.dir/sgx/hardware.cc.o" "gcc" "src/CMakeFiles/mig_sgx.dir/sgx/hardware.cc.o.d"
  "/root/repo/src/sgx/hardware_ext.cc" "src/CMakeFiles/mig_sgx.dir/sgx/hardware_ext.cc.o" "gcc" "src/CMakeFiles/mig_sgx.dir/sgx/hardware_ext.cc.o.d"
  "/root/repo/src/sgx/image.cc" "src/CMakeFiles/mig_sgx.dir/sgx/image.cc.o" "gcc" "src/CMakeFiles/mig_sgx.dir/sgx/image.cc.o.d"
  "/root/repo/src/sgx/module.cc" "src/CMakeFiles/mig_sgx.dir/sgx/module.cc.o" "gcc" "src/CMakeFiles/mig_sgx.dir/sgx/module.cc.o.d"
  "/root/repo/src/sgx/types.cc" "src/CMakeFiles/mig_sgx.dir/sgx/types.cc.o" "gcc" "src/CMakeFiles/mig_sgx.dir/sgx/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mig_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
