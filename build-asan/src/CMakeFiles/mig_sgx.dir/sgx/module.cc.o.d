src/CMakeFiles/mig_sgx.dir/sgx/module.cc.o: /root/repo/src/sgx/module.cc \
 /usr/include/stdc-predef.h
