file(REMOVE_RECURSE
  "libmig_sgx.a"
)
