file(REMOVE_RECURSE
  "CMakeFiles/mig_sgx.dir/sgx/attestation.cc.o"
  "CMakeFiles/mig_sgx.dir/sgx/attestation.cc.o.d"
  "CMakeFiles/mig_sgx.dir/sgx/hardware.cc.o"
  "CMakeFiles/mig_sgx.dir/sgx/hardware.cc.o.d"
  "CMakeFiles/mig_sgx.dir/sgx/hardware_ext.cc.o"
  "CMakeFiles/mig_sgx.dir/sgx/hardware_ext.cc.o.d"
  "CMakeFiles/mig_sgx.dir/sgx/image.cc.o"
  "CMakeFiles/mig_sgx.dir/sgx/image.cc.o.d"
  "CMakeFiles/mig_sgx.dir/sgx/module.cc.o"
  "CMakeFiles/mig_sgx.dir/sgx/module.cc.o.d"
  "CMakeFiles/mig_sgx.dir/sgx/types.cc.o"
  "CMakeFiles/mig_sgx.dir/sgx/types.cc.o.d"
  "libmig_sgx.a"
  "libmig_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
