file(REMOVE_RECURSE
  "CMakeFiles/mig_sim.dir/sim/executor.cc.o"
  "CMakeFiles/mig_sim.dir/sim/executor.cc.o.d"
  "CMakeFiles/mig_sim.dir/sim/fault.cc.o"
  "CMakeFiles/mig_sim.dir/sim/fault.cc.o.d"
  "CMakeFiles/mig_sim.dir/sim/network.cc.o"
  "CMakeFiles/mig_sim.dir/sim/network.cc.o.d"
  "libmig_sim.a"
  "libmig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
