# Empty compiler generated dependencies file for mig_sim.
# This may be replaced when dependencies are built.
