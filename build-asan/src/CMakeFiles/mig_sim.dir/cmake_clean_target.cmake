file(REMOVE_RECURSE
  "libmig_sim.a"
)
