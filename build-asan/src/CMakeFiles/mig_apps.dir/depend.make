# Empty dependencies file for mig_apps.
# This may be replaced when dependencies are built.
