src/CMakeFiles/mig_apps.dir/apps/module.cc.o: \
 /root/repo/src/apps/module.cc /usr/include/stdc-predef.h
