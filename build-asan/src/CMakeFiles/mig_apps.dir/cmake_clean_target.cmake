file(REMOVE_RECURSE
  "libmig_apps.a"
)
