file(REMOVE_RECURSE
  "CMakeFiles/mig_apps.dir/apps/bank.cc.o"
  "CMakeFiles/mig_apps.dir/apps/bank.cc.o.d"
  "CMakeFiles/mig_apps.dir/apps/kv.cc.o"
  "CMakeFiles/mig_apps.dir/apps/kv.cc.o.d"
  "CMakeFiles/mig_apps.dir/apps/mailserver.cc.o"
  "CMakeFiles/mig_apps.dir/apps/mailserver.cc.o.d"
  "CMakeFiles/mig_apps.dir/apps/module.cc.o"
  "CMakeFiles/mig_apps.dir/apps/module.cc.o.d"
  "CMakeFiles/mig_apps.dir/apps/nbench.cc.o"
  "CMakeFiles/mig_apps.dir/apps/nbench.cc.o.d"
  "CMakeFiles/mig_apps.dir/apps/workloads.cc.o"
  "CMakeFiles/mig_apps.dir/apps/workloads.cc.o.d"
  "libmig_apps.a"
  "libmig_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
