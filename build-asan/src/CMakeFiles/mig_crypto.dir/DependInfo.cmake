
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cc" "src/CMakeFiles/mig_crypto.dir/crypto/aead.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/aead.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "src/CMakeFiles/mig_crypto.dir/crypto/aes128.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/bignum.cc" "src/CMakeFiles/mig_crypto.dir/crypto/bignum.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/bignum.cc.o.d"
  "/root/repo/src/crypto/chacha20.cc" "src/CMakeFiles/mig_crypto.dir/crypto/chacha20.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/chacha20.cc.o.d"
  "/root/repo/src/crypto/des.cc" "src/CMakeFiles/mig_crypto.dir/crypto/des.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/des.cc.o.d"
  "/root/repo/src/crypto/dh.cc" "src/CMakeFiles/mig_crypto.dir/crypto/dh.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/dh.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/mig_crypto.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/module.cc" "src/CMakeFiles/mig_crypto.dir/crypto/module.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/module.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/mig_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/mig_crypto.dir/crypto/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
