file(REMOVE_RECURSE
  "CMakeFiles/mig_crypto.dir/crypto/aead.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/aead.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/aes128.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/aes128.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/bignum.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/bignum.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/chacha20.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/chacha20.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/des.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/des.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/dh.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/dh.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/module.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/module.cc.o.d"
  "CMakeFiles/mig_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/mig_crypto.dir/crypto/sha256.cc.o.d"
  "libmig_crypto.a"
  "libmig_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
