src/CMakeFiles/mig_crypto.dir/crypto/module.cc.o: \
 /root/repo/src/crypto/module.cc /usr/include/stdc-predef.h
