# Empty dependencies file for mig_crypto.
# This may be replaced when dependencies are built.
