file(REMOVE_RECURSE
  "libmig_crypto.a"
)
