file(REMOVE_RECURSE
  "libmig_guestos.a"
)
