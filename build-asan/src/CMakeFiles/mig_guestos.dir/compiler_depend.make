# Empty compiler generated dependencies file for mig_guestos.
# This may be replaced when dependencies are built.
