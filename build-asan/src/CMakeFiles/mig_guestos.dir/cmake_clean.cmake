file(REMOVE_RECURSE
  "CMakeFiles/mig_guestos.dir/guestos/guest_os.cc.o"
  "CMakeFiles/mig_guestos.dir/guestos/guest_os.cc.o.d"
  "CMakeFiles/mig_guestos.dir/guestos/module.cc.o"
  "CMakeFiles/mig_guestos.dir/guestos/module.cc.o.d"
  "CMakeFiles/mig_guestos.dir/guestos/sgx_driver.cc.o"
  "CMakeFiles/mig_guestos.dir/guestos/sgx_driver.cc.o.d"
  "libmig_guestos.a"
  "libmig_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
