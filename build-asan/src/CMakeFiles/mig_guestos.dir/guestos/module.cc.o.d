src/CMakeFiles/mig_guestos.dir/guestos/module.cc.o: \
 /root/repo/src/guestos/module.cc /usr/include/stdc-predef.h
