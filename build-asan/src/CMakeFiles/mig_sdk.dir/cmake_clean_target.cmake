file(REMOVE_RECURSE
  "libmig_sdk.a"
)
