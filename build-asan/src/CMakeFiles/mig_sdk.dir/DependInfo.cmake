
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdk/builder.cc" "src/CMakeFiles/mig_sdk.dir/sdk/builder.cc.o" "gcc" "src/CMakeFiles/mig_sdk.dir/sdk/builder.cc.o.d"
  "/root/repo/src/sdk/control.cc" "src/CMakeFiles/mig_sdk.dir/sdk/control.cc.o" "gcc" "src/CMakeFiles/mig_sdk.dir/sdk/control.cc.o.d"
  "/root/repo/src/sdk/enclave_env.cc" "src/CMakeFiles/mig_sdk.dir/sdk/enclave_env.cc.o" "gcc" "src/CMakeFiles/mig_sdk.dir/sdk/enclave_env.cc.o.d"
  "/root/repo/src/sdk/enclave_libc.cc" "src/CMakeFiles/mig_sdk.dir/sdk/enclave_libc.cc.o" "gcc" "src/CMakeFiles/mig_sdk.dir/sdk/enclave_libc.cc.o.d"
  "/root/repo/src/sdk/host.cc" "src/CMakeFiles/mig_sdk.dir/sdk/host.cc.o" "gcc" "src/CMakeFiles/mig_sdk.dir/sdk/host.cc.o.d"
  "/root/repo/src/sdk/module.cc" "src/CMakeFiles/mig_sdk.dir/sdk/module.cc.o" "gcc" "src/CMakeFiles/mig_sdk.dir/sdk/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mig_guestos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_hv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
