src/CMakeFiles/mig_sdk.dir/sdk/module.cc.o: /root/repo/src/sdk/module.cc \
 /usr/include/stdc-predef.h
