# Empty dependencies file for mig_sdk.
# This may be replaced when dependencies are built.
