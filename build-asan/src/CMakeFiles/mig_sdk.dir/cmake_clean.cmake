file(REMOVE_RECURSE
  "CMakeFiles/mig_sdk.dir/sdk/builder.cc.o"
  "CMakeFiles/mig_sdk.dir/sdk/builder.cc.o.d"
  "CMakeFiles/mig_sdk.dir/sdk/control.cc.o"
  "CMakeFiles/mig_sdk.dir/sdk/control.cc.o.d"
  "CMakeFiles/mig_sdk.dir/sdk/enclave_env.cc.o"
  "CMakeFiles/mig_sdk.dir/sdk/enclave_env.cc.o.d"
  "CMakeFiles/mig_sdk.dir/sdk/enclave_libc.cc.o"
  "CMakeFiles/mig_sdk.dir/sdk/enclave_libc.cc.o.d"
  "CMakeFiles/mig_sdk.dir/sdk/host.cc.o"
  "CMakeFiles/mig_sdk.dir/sdk/host.cc.o.d"
  "CMakeFiles/mig_sdk.dir/sdk/module.cc.o"
  "CMakeFiles/mig_sdk.dir/sdk/module.cc.o.d"
  "libmig_sdk.a"
  "libmig_sdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_sdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
