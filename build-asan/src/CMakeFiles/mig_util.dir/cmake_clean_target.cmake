file(REMOVE_RECURSE
  "libmig_util.a"
)
