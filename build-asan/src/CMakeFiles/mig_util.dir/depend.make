# Empty dependencies file for mig_util.
# This may be replaced when dependencies are built.
