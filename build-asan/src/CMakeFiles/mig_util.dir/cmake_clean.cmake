file(REMOVE_RECURSE
  "CMakeFiles/mig_util.dir/util/bytes.cc.o"
  "CMakeFiles/mig_util.dir/util/bytes.cc.o.d"
  "CMakeFiles/mig_util.dir/util/check.cc.o"
  "CMakeFiles/mig_util.dir/util/check.cc.o.d"
  "CMakeFiles/mig_util.dir/util/status.cc.o"
  "CMakeFiles/mig_util.dir/util/status.cc.o.d"
  "libmig_util.a"
  "libmig_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
