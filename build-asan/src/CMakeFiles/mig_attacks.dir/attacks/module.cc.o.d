src/CMakeFiles/mig_attacks.dir/attacks/module.cc.o: \
 /root/repo/src/attacks/module.cc /usr/include/stdc-predef.h
