file(REMOVE_RECURSE
  "libmig_attacks.a"
)
