file(REMOVE_RECURSE
  "CMakeFiles/mig_attacks.dir/attacks/attacks.cc.o"
  "CMakeFiles/mig_attacks.dir/attacks/attacks.cc.o.d"
  "CMakeFiles/mig_attacks.dir/attacks/module.cc.o"
  "CMakeFiles/mig_attacks.dir/attacks/module.cc.o.d"
  "libmig_attacks.a"
  "libmig_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
