# Empty compiler generated dependencies file for mig_attacks.
# This may be replaced when dependencies are built.
