# Empty compiler generated dependencies file for mig_migration.
# This may be replaced when dependencies are built.
