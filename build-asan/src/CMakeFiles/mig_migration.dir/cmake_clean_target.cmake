file(REMOVE_RECURSE
  "libmig_migration.a"
)
