src/CMakeFiles/mig_migration.dir/migration/module.cc.o: \
 /root/repo/src/migration/module.cc /usr/include/stdc-predef.h
