file(REMOVE_RECURSE
  "CMakeFiles/mig_migration.dir/migration/module.cc.o"
  "CMakeFiles/mig_migration.dir/migration/module.cc.o.d"
  "CMakeFiles/mig_migration.dir/migration/owner.cc.o"
  "CMakeFiles/mig_migration.dir/migration/owner.cc.o.d"
  "CMakeFiles/mig_migration.dir/migration/session.cc.o"
  "CMakeFiles/mig_migration.dir/migration/session.cc.o.d"
  "libmig_migration.a"
  "libmig_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
