file(REMOVE_RECURSE
  "CMakeFiles/mig_hv.dir/hv/hypervisor.cc.o"
  "CMakeFiles/mig_hv.dir/hv/hypervisor.cc.o.d"
  "CMakeFiles/mig_hv.dir/hv/live_migration.cc.o"
  "CMakeFiles/mig_hv.dir/hv/live_migration.cc.o.d"
  "CMakeFiles/mig_hv.dir/hv/machine.cc.o"
  "CMakeFiles/mig_hv.dir/hv/machine.cc.o.d"
  "CMakeFiles/mig_hv.dir/hv/module.cc.o"
  "CMakeFiles/mig_hv.dir/hv/module.cc.o.d"
  "libmig_hv.a"
  "libmig_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
