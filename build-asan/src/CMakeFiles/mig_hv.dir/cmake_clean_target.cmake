file(REMOVE_RECURSE
  "libmig_hv.a"
)
