# Empty compiler generated dependencies file for mig_hv.
# This may be replaced when dependencies are built.
