
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/hypervisor.cc" "src/CMakeFiles/mig_hv.dir/hv/hypervisor.cc.o" "gcc" "src/CMakeFiles/mig_hv.dir/hv/hypervisor.cc.o.d"
  "/root/repo/src/hv/live_migration.cc" "src/CMakeFiles/mig_hv.dir/hv/live_migration.cc.o" "gcc" "src/CMakeFiles/mig_hv.dir/hv/live_migration.cc.o.d"
  "/root/repo/src/hv/machine.cc" "src/CMakeFiles/mig_hv.dir/hv/machine.cc.o" "gcc" "src/CMakeFiles/mig_hv.dir/hv/machine.cc.o.d"
  "/root/repo/src/hv/module.cc" "src/CMakeFiles/mig_hv.dir/hv/module.cc.o" "gcc" "src/CMakeFiles/mig_hv.dir/hv/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mig_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
