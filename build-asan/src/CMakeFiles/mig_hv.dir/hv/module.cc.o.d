src/CMakeFiles/mig_hv.dir/hv/module.cc.o: /root/repo/src/hv/module.cc \
 /usr/include/stdc-predef.h
