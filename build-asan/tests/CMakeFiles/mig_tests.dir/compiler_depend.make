# Empty compiler generated dependencies file for mig_tests.
# This may be replaced when dependencies are built.
