
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/mig_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/attacks_test.cc" "tests/CMakeFiles/mig_tests.dir/attacks_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/attacks_test.cc.o.d"
  "/root/repo/tests/crypto_edge_test.cc" "tests/CMakeFiles/mig_tests.dir/crypto_edge_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/crypto_edge_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/mig_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/mig_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/figures_test.cc" "tests/CMakeFiles/mig_tests.dir/figures_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/figures_test.cc.o.d"
  "/root/repo/tests/guestos_test.cc" "tests/CMakeFiles/mig_tests.dir/guestos_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/guestos_test.cc.o.d"
  "/root/repo/tests/hv_test.cc" "tests/CMakeFiles/mig_tests.dir/hv_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/hv_test.cc.o.d"
  "/root/repo/tests/libc_test.cc" "tests/CMakeFiles/mig_tests.dir/libc_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/libc_test.cc.o.d"
  "/root/repo/tests/migration_test.cc" "tests/CMakeFiles/mig_tests.dir/migration_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/migration_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mig_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sdk_test.cc" "tests/CMakeFiles/mig_tests.dir/sdk_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/sdk_test.cc.o.d"
  "/root/repo/tests/sgx_edge_test.cc" "tests/CMakeFiles/mig_tests.dir/sgx_edge_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/sgx_edge_test.cc.o.d"
  "/root/repo/tests/sgx_hardware_test.cc" "tests/CMakeFiles/mig_tests.dir/sgx_hardware_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/sgx_hardware_test.cc.o.d"
  "/root/repo/tests/sidechannel_test.cc" "tests/CMakeFiles/mig_tests.dir/sidechannel_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/sidechannel_test.cc.o.d"
  "/root/repo/tests/sim_executor_test.cc" "tests/CMakeFiles/mig_tests.dir/sim_executor_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/sim_executor_test.cc.o.d"
  "/root/repo/tests/sim_network_test.cc" "tests/CMakeFiles/mig_tests.dir/sim_network_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/sim_network_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/mig_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/vm_migration_test.cc" "tests/CMakeFiles/mig_tests.dir/vm_migration_test.cc.o" "gcc" "tests/CMakeFiles/mig_tests.dir/vm_migration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mig_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_attacks.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_migration.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sdk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_guestos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_hv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/mig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
