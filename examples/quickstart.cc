// Quickstart: build an enclave application with the SDK, run it, and
// live-migrate it from one SGX machine to another.
//
//   $ ./example_quickstart
//
// Walks through the whole stack: world/machines, a guest VM with its OS, an
// enclave program (a secure counter), owner provisioning, and the paper's
// §III migration pipeline — two-phase checkpoint, owner-free remote
// attestation, key transfer, self-destroy, restore, CSSA verification.
#include <cstdio>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

using namespace mig;

namespace {

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallGet = 2;

// A minimal enclave program: a counter nobody outside the enclave can see.
std::shared_ptr<sdk::EnclaveProgram> make_counter() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("quickstart-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

}  // namespace

int main() {
  std::printf("== quickstart: secure enclave migration ==\n\n");

  // A world with two SGX machines and the attestation service.
  hv::World world(/*cpus_per_machine=*/4);
  hv::Machine& source = world.add_machine("source-host");
  hv::Machine& target = world.add_machine("target-host");

  // A guest VM on the source, with a process hosting our enclave.
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  guestos::Process& proc = guest.create_process("counter-app");

  // Build the enclave image: the SDK inserts the control thread, the
  // two-phase stubs and the embedded identity keys automatically.
  crypto::Drbg rng(to_bytes("quickstart"));
  crypto::Drbg signer_rng(to_bytes("developer"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(signer_rng);
  sdk::BuildInput in;
  in.program = make_counter();
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  std::printf("built enclave image: %llu pages, MRENCLAVE %s...\n",
              static_cast<unsigned long long>(built.image.pages.size()),
              hex_encode(ByteSpan(built.image.measure()).first(8)).c_str());

  // The owner enrolls the enclave so it can be provisioned at launch.
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  owner.enroll(built.image.measure(), built.owner);

  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("host")));

  world.executor().spawn("main", [&](sim::ThreadCtx& ctx) {
    // Create + provision.
    MIG_CHECK(host.create(ctx).ok());
    auto channel = world.make_channel();
    world.executor().spawn("owner", [&, ch = channel.get()](sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    sdk::ControlCmd prov;
    prov.type = sdk::ControlCmd::Type::kProvision;
    prov.channel = channel->a();
    MIG_CHECK(host.mailbox().post(ctx, prov).status.ok());
    std::printf("enclave created on %s and provisioned by its owner\n",
                source.name().c_str());

    // Use it.
    Writer w;
    w.u64(41);
    MIG_CHECK(host.ecall(ctx, 0, kEcallAdd, w.data()).ok());
    Writer w2;
    w2.u64(1);
    MIG_CHECK(host.ecall(ctx, 0, kEcallAdd, w2.data()).ok());

    // Migrate: checkpoint inside the enclave, move, attest, restore.
    std::printf("migrating to %s...\n", target.name().c_str());
    uint64_t t0 = ctx.now();
    migration::EnclaveMigrator migrator(world);
    migration::EnclaveMigrateOptions opts;
    auto blob = migrator.prepare(ctx, host, opts);
    MIG_CHECK_MSG(blob.ok(), blob.status().to_string());
    std::printf("  sealed checkpoint: %zu bytes (ciphertext)\n", blob->size());
    auto source_inst = host.detach_instance();
    guest.set_migration_target(target);
    MIG_CHECK(guest.resume_enclaves_after_migration(ctx).ok());
    MIG_CHECK(migrator.restore(ctx, host, source, source_inst,
                               std::move(*blob), opts).ok());
    std::printf("  done in %.2f ms (virtual time)\n",
                (ctx.now() - t0) / 1e6);

    // The counter survived; the source enclave is gone.
    auto got = host.ecall(ctx, 0, kEcallGet, {});
    MIG_CHECK(got.ok());
    Reader r(*got);
    std::printf("counter on %s after migration: %llu (expected 42)\n",
                host.instance()->machine->name().c_str(),
                static_cast<unsigned long long>(r.u64()));
  });
  MIG_CHECK(world.executor().run());
  std::printf("\nquickstart finished.\n");
  return 0;
}
