// Owner-keyed checkpoint/resume with auditing (§V-C).
//
// Live migration needs no owner, but snapshots do: the control thread must
// fetch Kencrypt from the enclave owner, so every checkpoint and every
// resume lands in the owner's audit log — and the owner can refuse a resume
// that smells like a rollback.
#include <cstdio>

#include "apps/kv.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "util/serde.h"

using namespace mig;
using namespace mig::apps;

int main() {
  std::printf("== owner-audited checkpoint/resume (§V-C) ==\n\n");

  hv::World world(4);
  hv::Machine& machine = world.add_machine("host");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(machine, vm);
  guestos::Process& proc = guest.create_process("kv");
  crypto::Drbg rng(to_bytes("snapshot-example"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  sdk::BuildInput in;
  in.program = make_kv_program();
  in.layout = kv_layout(/*value_mb=*/1);
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("h")));

  auto with_owner = [&](sim::ThreadCtx& ctx, sdk::ControlCmd cmd) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    cmd.channel = ch->a();
    return host.mailbox().post(ctx, cmd);
  };

  world.executor().spawn("demo", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    sdk::ControlCmd prov;
    prov.type = sdk::ControlCmd::Type::kProvision;
    MIG_CHECK(with_owner(ctx, prov).status.ok());

    Writer fill;
    fill.u64(500);
    fill.u64(400);
    MIG_CHECK(host.ecall(ctx, 0, kKvEcallFill, fill.data()).ok());
    std::printf("KV store filled with 500 items\n");

    // Legal snapshot: the control thread fetches Kencrypt from the owner.
    sdk::ControlCmd ckpt;
    ckpt.type = sdk::ControlCmd::Type::kOwnerCheckpoint;
    sdk::ControlReply snap = with_owner(ctx, ckpt);
    MIG_CHECK_MSG(snap.status.ok(), snap.status.to_string());
    host.finish_migration(ctx, {});
    std::printf("snapshot taken: %zu bytes (owner issued Kencrypt)\n",
                snap.blob.size());

    // Execution continues past the snapshot...
    Writer more;
    more.u64(77);
    more.u64(400);
    MIG_CHECK(host.ecall(ctx, 0, kKvEcallSet, more.data()).ok());

    // ...and a legal, owner-approved resume restores the snapshot state.
    sdk::ControlCmd restore;
    restore.type = sdk::ControlCmd::Type::kOwnerRestore;
    restore.blob = snap.blob;
    sdk::ControlReply restored = with_owner(ctx, restore);
    MIG_CHECK_MSG(restored.status.ok(), restored.status.to_string());
    for (const sdk::PumpPlan& p : restored.pumps)
      MIG_CHECK(host.pump_cssa(ctx, p.worker_idx, p.pumps).ok());
    sdk::ControlCmd finish;
    finish.type = sdk::ControlCmd::Type::kFinishRestore;
    MIG_CHECK(host.mailbox().post(ctx, finish).status.ok());
    host.finish_migration(ctx, restored.pumps);
    auto stats = host.ecall(ctx, 0, kKvEcallStats, {});
    MIG_CHECK(stats.ok());
    Reader r(*stats);
    std::printf("restored to snapshot: %llu items (the later set is gone — "
                "and the owner knows)\n",
                static_cast<unsigned long long>(r.u64()));

    // The operator turns rollback-happy; the owner's policy says no.
    owner.set_allow_restore(false);
    sdk::ControlCmd again;
    again.type = sdk::ControlCmd::Type::kOwnerRestore;
    again.blob = snap.blob;
    sdk::ControlReply refused = with_owner(ctx, again);
    std::printf("second restore attempt: %s\n",
                refused.status.to_string().c_str());
  });
  MIG_CHECK(world.executor().run());

  std::printf("\nowner audit log:\n");
  for (const auto& entry : owner.audit_log()) {
    std::printf("  t=%8.2f ms  %-10s mrenclave=%s...\n", entry.at_ns / 1e6,
                entry.verb.c_str(),
                hex_encode(ByteSpan(entry.mrenclave).first(6)).c_str());
  }
  std::printf(
      "\nEvery snapshot key issuance is logged; a refused rollback never\n"
      "yields a key, so the stale state stays sealed (P-4).\n");
  return 0;
}
