// The fork attack of §V-A (Fig. 6), and why it fails against this system.
//
// A mail server runs in an enclave. The client: (1) creates a draft to
// {Alice, Bob, Eve}; (2) deletes Eve; (3) sends. A malicious operator
// migrates the enclave after (1) and tries to keep BOTH instances alive so
// the forked one sends the mail with Eve still on the list. Self-destroy +
// the single-key rule kill the fork: the source instance can never execute
// again once the migration key has been delivered.
#include <cstdio>

#include "apps/mailserver.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "util/serde.h"

using namespace mig;
using namespace mig::apps;

int main() {
  std::printf("== fork attack on a mail-server enclave (Fig. 6) ==\n\n");

  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  guestos::Process& proc = guest.create_process("mail");
  crypto::Drbg rng(to_bytes("mail-example"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  sdk::BuildInput in;
  in.program = make_mail_program();
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("h")));

  constexpr uint64_t kAlice = 1, kBob = 2, kEve = 666;
  sim::ThreadId forked_sender = sim::kInvalidThread;

  world.executor().spawn("demo", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    auto ch = world.make_channel();
    world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd prov;
    prov.type = sdk::ControlCmd::Type::kProvision;
    prov.channel = ch->a();
    MIG_CHECK(host.mailbox().post(ctx, prov).status.ok());

    // Op-1: create the draft with Eve among the recipients.
    Writer create;
    create.u64(3);
    create.u64(kAlice);
    create.u64(kBob);
    create.u64(kEve);
    MIG_CHECK(host.ecall(ctx, 0, kMailEcallCreate, create.data()).ok());
    std::printf("op-1: draft created, recipients {Alice, Bob, Eve}\n");

    // The malicious operator migrates NOW and keeps the source alive.
    migration::EnclaveMigrator migrator(world);
    migration::EnclaveMigrateOptions opts;
    opts.leave_source_alive = true;
    auto blob = migrator.prepare(ctx, host, opts);
    MIG_CHECK(blob.ok());
    auto source_inst = host.detach_instance();
    sdk::EnclaveInstance* source_raw = source_inst.get();
    guest.set_migration_target(target);
    MIG_CHECK(guest.resume_enclaves_after_migration(ctx).ok());
    MIG_CHECK(migrator.restore(ctx, host, source, source_inst,
                               std::move(*blob), opts).ok());
    std::printf("operator: migrated the enclave after op-1 and kept the "
                "source instance around\n");

    // Op-2 goes to the (legitimate) target instance.
    Writer del;
    del.u64(kEve);
    MIG_CHECK(host.ecall(ctx, 0, kMailEcallDelete, del.data()).ok());
    std::printf("op-2: Eve removed from the recipients (target instance)\n");

    // The operator now "resumes" the source instance and replays op-3 there,
    // hoping to send the un-edited draft. Self-destroy stops it cold. (The
    // target instance is set aside for the attack attempt; a real operator
    // would drive the source EPC directly.)
    auto legit_target = host.detach_instance();
    host.adopt_instance(std::unique_ptr<sdk::EnclaveInstance>(source_raw));
    (void)legit_target.release();  // parked for the demo's remainder
    forked_sender = world.executor().spawn(
        "forked-send",
        [&](sim::ThreadCtx& wctx) {
          auto r = host.ecall(wctx, 0, kMailEcallSend, {});
          std::printf("forked send returned?! %s\n", r.status().to_string().c_str());
        },
        /*daemon=*/true);
  });
  MIG_CHECK(world.executor().run());

  std::printf("op-3 on the forked source instance: %s\n",
              world.executor().finished(forked_sender)
                  ? "<<< SENT (attack succeeded)"
                  : "never completes — worker spins forever (self-destroy)");
  std::printf(
      "\nThe key step of the attack — resuming the source after migration —\n"
      "is impossible: once Kmigrate left the enclave, its global flag stays\n"
      "set forever and a second key delivery is refused (P-4, P-5).\n");
  return 0;
}
