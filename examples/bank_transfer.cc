// The data-consistency attack of §IV-A (Fig. 3), end to end.
//
// A bank enclave holds two accounts with an invariant A+B = 5000. A worker
// transfers 5000 from A to B; mid-transfer, a MALICIOUS guest OS claims to
// have stopped all threads while the checkpoint is taken. Run both the
// strawman (trust the OS) and the paper's two-phase checkpointing and watch
// the invariant break / hold.
#include <atomic>
#include <cstdio>

#include "apps/bank.h"
#include "attacks/malicious_os.h"
#include "migration/session.h"
#include "util/serde.h"

using namespace mig;
using namespace mig::apps;

namespace {

struct Scenario {
  uint64_t a = 0, b = 0;
  bool transfer_completed = false;
};

Scenario run(bool use_two_phase) {
  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  attacks::MaliciousGuestOs guest(source, vm);  // the OS lies!
  guestos::Process& proc = guest.create_process("bank");

  std::atomic<bool> debited{false};
  auto prog = make_bank_program([&] { debited = true; }, 4'000'000);
  crypto::Drbg rng(to_bytes("bank-example"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  sdk::BuildInput in;
  in.program = prog;
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("h")));

  Scenario out;
  world.executor().spawn("demo", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host.create(ctx).ok());
    auto ch = world.make_channel();
    world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd prov;
    prov.type = sdk::ControlCmd::Type::kProvision;
    prov.channel = ch->a();
    MIG_CHECK(host.mailbox().post(ctx, prov).status.ok());

    Writer init;
    init.u64(5000);
    init.u64(0);
    MIG_CHECK(host.ecall(ctx, 0, kBankEcallInit, init.data()).ok());

    sim::Event done(world.executor());
    proc.spawn_thread(
        "worker",
        [&](sim::ThreadCtx& wctx) {
          Writer w;
          w.u64(5000);
          if (host.ecall(wctx, 0, kBankEcallTransfer, w.data()).ok()) {
            out.transfer_completed = true;
          }
          done.set(wctx);
        },
        /*daemon=*/true);
    ctx.spin_until([&] { return debited.load(); });

    Result<Bytes> blob = Error(ErrorCode::kInternal, "unset");
    migration::EnclaveMigrator migrator(world);
    if (use_two_phase) {
      blob = migrator.prepare(ctx, host, {});
    } else {
      blob = attacks::naive_checkpoint(ctx, guest, proc, host);
    }
    MIG_CHECK_MSG(blob.ok(), blob.status().to_string());

    auto inst = host.detach_instance();
    guest.set_migration_target(target);
    MIG_CHECK(guest.resume_enclaves_after_migration(ctx).ok());
    MIG_CHECK(migrator.restore(ctx, host, source, inst,
                               std::move(*blob), {}).ok());
    if (use_two_phase) done.wait(ctx);  // in-flight transfer finishes there

    auto got = host.ecall(ctx, 1, kBankEcallBalances, {});
    MIG_CHECK(got.ok());
    Reader r(*got);
    out.a = r.u64();
    out.b = r.u64();
  });
  MIG_CHECK(world.executor().run());
  return out;
}

}  // namespace

int main() {
  std::printf("== data-consistency attack (Fig. 3) ==\n\n");
  std::printf("invariant: A + B == 5000; a worker transfers 5000 from A to B\n");
  std::printf("the guest OS is malicious: stop_other_threads() lies\n\n");

  Scenario naive = run(/*use_two_phase=*/false);
  std::printf("strawman (trusts the OS):   A=%llu B=%llu  sum=%llu  %s\n",
              (unsigned long long)naive.a, (unsigned long long)naive.b,
              (unsigned long long)(naive.a + naive.b),
              naive.a + naive.b == 5000 ? "(invariant held)"
                                        : "<<< INVARIANT BROKEN");

  Scenario defended = run(/*use_two_phase=*/true);
  std::printf("two-phase checkpointing:    A=%llu B=%llu  sum=%llu  %s\n",
              (unsigned long long)defended.a, (unsigned long long)defended.b,
              (unsigned long long)(defended.a + defended.b),
              defended.a + defended.b == 5000 ? "(invariant held)"
                                              : "<<< INVARIANT BROKEN");
  std::printf(
      "\nThe two-phase protocol never trusted the OS: the checkpoint waited\n"
      "for the quiescent point, and the interrupted transfer migrated WITH\n"
      "its execution context and completed on the target.\n");
  return 0;
}
