// Datacenter scenario: live-migrate a 2 GB guest VM that hosts many
// SGX-enclave applications (the paper's headline experiment, Figs. 10(b-d)).
// The enclaves keep serving requests right up to the switch and continue on
// the target; the migration report shows where the time went.
//
//   $ ./example_vm_datacenter [num_enclaves]
#include <cstdio>
#include <cstdlib>

#include "apps/workloads.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "util/serde.h"

using namespace mig;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("== live migration of a 2 GB VM with %d enclaves ==\n\n", n);

  hv::World world(4);
  hv::Machine& source = world.add_machine("rack1-host07");
  hv::Machine& target = world.add_machine("rack2-host12");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  hv::Vm agent_vm(hv::VmConfig{.name = "target-host-env"}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  guestos::GuestOs target_host_os(target, agent_vm);

  crypto::Drbg rng(to_bytes("datacenter"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  crypto::SigKeyPair dev_identity = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  migration::VmMigrationSession::Options opts;
  opts.use_agent = true;  // hide attestation latency behind pre-copy
  opts.target_host_os = &target_host_os;
  opts.dev_signer = dev_signer;
  migration::VmMigrationSession session(world, vm, guest, source, target,
                                        opts);

  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (int i = 0; i < n; ++i) {
    guestos::Process& proc = guest.create_process("svc" + std::to_string(i));
    const apps::Workload& w =
        *apps::find_workload(i % 2 == 0 ? "libjpeg" : "mcrypt");
    sdk::BuildInput in;
    in.program = w.make_program();
    sdk::LayoutParams lp;
    lp.num_workers = 2;
    lp.data_pages = 1;
    lp.heap_pages = 1;
    in.layout = lp;
    in.identity_override = dev_identity;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("h"))));
    session.manage(*hosts.back());
  }

  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("orchestrator", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      MIG_CHECK(h->create(ctx).ok());
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd prov;
      prov.type = sdk::ControlCmd::Type::kProvision;
      prov.channel = ch->a();
      MIG_CHECK(h->mailbox().post(ctx, prov).status.ok());
    }
    std::printf("%d enclaves provisioned and serving on %s\n", n,
                source.name().c_str());

    // Background load on a few enclaves during the migration.
    for (int i = 0; i < std::min(n, 4); ++i) {
      sdk::EnclaveHost* h = hosts[i].get();
      world.executor().spawn(
          "load" + std::to_string(i),
          [h](sim::ThreadCtx& c) {
            for (int k = 0; k < 10'000; ++k) {
              Writer args;
              args.u64(4096);
              if (!h->ecall(c, 0, apps::kWorkloadEcallProcess, args.data())
                       .ok())
                return;
              c.sleep(2'000'000);
            }
          },
          /*daemon=*/true);
    }

    std::printf("starting pre-copy live migration to %s...\n\n",
                target.name().c_str());
    report = session.run(ctx);
    MIG_CHECK_MSG(report.ok(), report.status().to_string());

    // Post-migration health check: every enclave still answers.
    for (auto& h : hosts) {
      Writer args;
      args.u64(4096);
      MIG_CHECK(h->ecall(ctx, 0, apps::kWorkloadEcallProcess, args.data()).ok());
    }
  });
  MIG_CHECK(world.executor().run());

  const hv::MigrationReport& r = *report;
  std::printf("migration report:\n");
  std::printf("  total time          %10.1f ms\n", r.total_ns / 1e6);
  std::printf("  downtime            %10.2f ms\n", r.downtime_ns / 1e6);
  std::printf("  transferred         %10.1f MB over %llu rounds\n",
              r.transferred_bytes / 1048576.0,
              static_cast<unsigned long long>(r.rounds));
  std::printf("  enclave suspend     %10.2f ms (Fig. 9(d) path)\n",
              r.enclave_prepare_ns / 1e6);
  std::printf("  enclave restore     %10.2f ms (Fig. 10(a) path)\n",
              r.enclave_restore_ns / 1e6);
  std::printf("  enclave extra bytes %10.1f MB in VM memory\n",
              r.enclave_extra_bytes / 1048576.0);
  std::printf("\nall %d enclaves are serving on %s.\n", n,
              target.name().c_str());
  return 0;
}
