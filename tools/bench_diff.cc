// Perf regression gate: compares a fresh BENCH_RESULTS.json against the
// checked-in bench/BENCH_BASELINE.json.
//
//   mig_bench_diff [--tolerance-pct N] [--tolerance <key>=<pct>]...
//                  [--update-baseline] <baseline.json> <results.json>
//
// Both files are mig_bench_collect aggregates:
//   { "benches": [ { "binary": "...", "rows": [ {...}, ... ] } ] }
//
// Benches are matched by binary name and rows by index (the benches are
// deterministic, so row order is part of the contract). Within a row:
//  * the key set must match exactly — a bench that gains/loses a metric is a
//    schema change and needs a baseline update;
//  * string/bool values must match exactly;
//  * numeric keys ending in `_ns` are timings and get a tolerance band
//    (default --tolerance-pct, overridable per key with --tolerance
//    key=pct) — small cost-model shifts pass, a 2x downtime regression
//    fails;
//  * every other number (page counts, byte totals, parameters) must match
//    exactly — the simulator is deterministic, so any drift there is a
//    behavior change, not noise.
//
// --update-baseline copies the results file over the baseline and exits 0;
// that is the one deliberate way to move the trend line.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using mig::obs::Json;
using mig::Result;

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return mig::Error(mig::ErrorCode::kNotFound, "cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Options {
  double default_pct = 30.0;
  std::map<std::string, double> per_key_pct;
  bool update_baseline = false;
  std::string baseline_path;
  std::string results_path;
};

// binary name -> rows
using BenchMap = std::map<std::string, const std::vector<Json>*>;

Result<BenchMap> index_benches(const Json& doc, const std::string& which) {
  const Json* benches = doc.get("benches");
  if (benches == nullptr || !benches->is_array())
    return mig::Error(mig::ErrorCode::kInvalidArgument,
                      which + ": no \"benches\" array");
  BenchMap out;
  for (const Json& b : benches->items()) {
    const Json* binary = b.get("binary");
    const Json* rows = b.get("rows");
    if (binary == nullptr || !binary->is_string() || rows == nullptr ||
        !rows->is_array())
      return mig::Error(mig::ErrorCode::kInvalidArgument,
                        which + ": malformed bench entry");
    out[binary->as_string()] = &rows->items();
  }
  return out;
}

class Reporter {
 public:
  void violation(const std::string& where, const std::string& msg) {
    std::fprintf(stderr, "FAIL %s: %s\n", where.c_str(), msg.c_str());
    ++violations_;
  }
  int violations() const { return violations_; }
  int metrics_checked = 0;

 private:
  int violations_ = 0;
};

std::string num_str(const Json& v) {
  if (v.is_integer()) return std::to_string(v.as_u64());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v.as_double());
  return buf;
}

void compare_value(const Options& opt, const std::string& where,
                   const std::string& key, const Json& base, const Json& cur,
                   Reporter* rep) {
  ++rep->metrics_checked;
  if (base.type() != cur.type() &&
      !(base.is_number() && cur.is_number())) {
    rep->violation(where, key + ": type changed");
    return;
  }
  if (base.is_string()) {
    if (base.as_string() != cur.as_string())
      rep->violation(where, key + ": \"" + base.as_string() + "\" -> \"" +
                                cur.as_string() + "\"");
    return;
  }
  if (base.is_bool()) {
    if (base.as_bool() != cur.as_bool())
      rep->violation(where, key + ": bool flipped");
    return;
  }
  if (!base.is_number()) return;  // null/array/object: benches don't emit these

  double b = base.as_double();
  double c = cur.as_double();
  if (b == c) return;
  // Only timings get slack; everything else in a deterministic simulator is
  // exact by construction.
  bool is_timing = key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0;
  if (!is_timing) {
    rep->violation(where,
                   key + ": " + num_str(base) + " -> " + num_str(cur) +
                       " (non-timing metrics must match exactly)");
    return;
  }
  auto it = opt.per_key_pct.find(key);
  double pct = it != opt.per_key_pct.end() ? it->second : opt.default_pct;
  double drift = std::fabs(c - b);
  if (b == 0.0 || drift * 100.0 > pct * b) {
    double rel = b == 0.0 ? 0.0 : 100.0 * drift / b;
    char msg[256];
    std::snprintf(msg, sizeof(msg),
                  "%s: %s -> %s (%.1f%% drift, tolerance %.1f%%)", key.c_str(),
                  num_str(base).c_str(), num_str(cur).c_str(), rel, pct);
    rep->violation(where, msg);
  }
}

void compare_row(const Options& opt, const std::string& where,
                 const Json& base, const Json& cur, Reporter* rep) {
  if (!base.is_object() || !cur.is_object()) {
    rep->violation(where, "row is not an object");
    return;
  }
  for (const auto& [key, bval] : base.fields()) {
    const Json* cval = cur.get(key);
    if (cval == nullptr) {
      rep->violation(where, key + ": metric disappeared");
      continue;
    }
    compare_value(opt, where, key, bval, *cval, rep);
  }
  for (const auto& [key, cval] : cur.fields()) {
    (void)cval;
    if (!base.has(key))
      rep->violation(where, key + ": new metric not in baseline "
                                "(run --update-baseline)");
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tolerance-pct N] [--tolerance <key>=<pct>]...\n"
               "          [--update-baseline] <baseline.json> <results.json>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--update-baseline") {
      opt.update_baseline = true;
    } else if (arg == "--tolerance-pct") {
      if (++i >= argc) return usage(argv[0]);
      opt.default_pct = std::atof(argv[i]);
    } else if (arg == "--tolerance") {
      if (++i >= argc) return usage(argv[0]);
      std::string kv = argv[i];
      size_t eq = kv.find('=');
      if (eq == std::string::npos) return usage(argv[0]);
      opt.per_key_pct[kv.substr(0, eq)] = std::atof(kv.c_str() + eq + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.size() != 2) return usage(argv[0]);
  opt.baseline_path = positional[0];
  opt.results_path = positional[1];

  Result<std::string> results_text = read_file(opt.results_path);
  if (!results_text.ok()) {
    std::fprintf(stderr, "%s\n", results_text.status().to_string().c_str());
    return 2;
  }

  if (opt.update_baseline) {
    std::ofstream out(opt.baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.baseline_path.c_str());
      return 2;
    }
    out << *results_text;
    std::printf("baseline updated: %s <- %s\n", opt.baseline_path.c_str(),
                opt.results_path.c_str());
    return 0;
  }

  Result<std::string> baseline_text = read_file(opt.baseline_path);
  if (!baseline_text.ok()) {
    std::fprintf(stderr,
                 "%s\n(no baseline yet? seed one with --update-baseline)\n",
                 baseline_text.status().to_string().c_str());
    return 2;
  }

  Result<Json> baseline = Json::parse(*baseline_text);
  Result<Json> results = Json::parse(*results_text);
  if (!baseline.ok() || !results.ok()) {
    std::fprintf(stderr, "parse failure: %s\n",
                 (!baseline.ok() ? baseline : results).status().to_string().c_str());
    return 2;
  }
  Result<BenchMap> base_map = index_benches(*baseline, "baseline");
  Result<BenchMap> cur_map = index_benches(*results, "results");
  if (!base_map.ok() || !cur_map.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!base_map.ok() ? base_map.status() : cur_map.status())
                     .to_string()
                     .c_str());
    return 2;
  }

  Reporter rep;
  for (const auto& [binary, base_rows] : *base_map) {
    auto it = cur_map->find(binary);
    if (it == cur_map->end()) {
      rep.violation(binary, "bench missing from results");
      continue;
    }
    const std::vector<Json>& cur_rows = *it->second;
    if (base_rows->size() != cur_rows.size()) {
      rep.violation(binary, "row count " + std::to_string(base_rows->size()) +
                                " -> " + std::to_string(cur_rows.size()));
      continue;
    }
    for (size_t r = 0; r < cur_rows.size(); ++r) {
      const Json* bench_name = (*base_rows)[r].get("bench");
      std::string where =
          binary + "[" + std::to_string(r) + "]" +
          (bench_name != nullptr && bench_name->is_string()
               ? " (" + bench_name->as_string() + ")"
               : "");
      compare_row(opt, where, (*base_rows)[r], cur_rows[r], &rep);
    }
  }
  for (const auto& [binary, rows] : *cur_map) {
    (void)rows;
    if (base_map->find(binary) == base_map->end())
      rep.violation(binary,
                    "new bench not in baseline (run --update-baseline)");
  }

  if (rep.violations() != 0) {
    std::fprintf(stderr, "bench regression gate: %d violation(s)\n",
                 rep.violations());
    return 1;
  }
  std::printf(
      "bench regression gate: OK — %zu bench(es), %d metric(s) within "
      "tolerance (timings ±%.0f%%, everything else exact)\n",
      base_map->size(), rep.metrics_checked, opt.default_pct);
  return 0;
}
