// Markdown link lint for the repo's documentation set.
//
//   mig_doc_lint README.md DESIGN.md docs/trace-schema.md ...
//
// For every inline link `[text](target)` in the given files it checks that
// the target resolves: relative file targets must exist on disk (relative to
// the linking file's directory), and `#anchor` fragments — both same-file
// and `other.md#anchor` — must match a heading in the target file under
// GitHub's slug rules (lowercase, punctuation stripped, spaces to hyphens).
// External schemes (http/https/mailto) are skipped. Fenced code blocks are
// ignored on both sides: links inside them are not checked and headings
// inside them do not exist.
//
// Exit 0 iff every link in every file resolves; problems print one line
// each to stderr. The `doc_lint` ctest target runs this over the top-level
// docs so a renamed section or moved file fails CI instead of shipping a
// dead link.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Problem {
  std::string file;
  size_t line;
  std::string what;
};

std::vector<Problem> g_problems;

void fail(const std::string& file, size_t line, const std::string& what) {
  g_problems.push_back({file, line, what});
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// GitHub's heading-to-anchor slug: strip formatting backticks, lowercase,
// drop everything but alphanumerics/spaces/hyphens/underscores, then turn
// spaces into hyphens.
std::string slugify(const std::string& heading) {
  std::string slug;
  for (char c : heading) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      slug.push_back(static_cast<char>(std::tolower(u)));
    } else if (c == ' ' || c == '-' || c == '_') {
      slug.push_back(c == ' ' ? '-' : c);
    }
    // backticks, dots, parens, etc. vanish
  }
  return slug;
}

// All heading anchors in a markdown document, fenced blocks excluded.
// Duplicate headings get GitHub's -1/-2... suffixes.
std::set<std::string> collect_anchors(const std::string& text) {
  std::set<std::string> anchors;
  std::map<std::string, int> seen;
  std::istringstream in(text);
  std::string line;
  bool in_fence = false;
  while (std::getline(in, line)) {
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    size_t hashes = 0;
    while (hashes < line.size() && line[hashes] == '#') ++hashes;
    if (hashes == 0 || hashes > 6 || hashes >= line.size() ||
        line[hashes] != ' ')
      continue;
    std::string slug = slugify(line.substr(hashes + 1));
    int n = seen[slug]++;
    anchors.insert(n == 0 ? slug : slug + "-" + std::to_string(n));
  }
  return anchors;
}

std::string dirname_of(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Lexically resolves `target` against `base_dir`, folding "..". Good enough
// for repo-relative doc links; no symlink chasing.
std::string join_path(const std::string& base_dir, const std::string& target) {
  std::vector<std::string> parts;
  auto push_parts = [&](const std::string& p) {
    std::istringstream in(p);
    std::string seg;
    while (std::getline(in, seg, '/')) {
      if (seg.empty() || seg == ".") continue;
      if (seg == "..") {
        if (!parts.empty()) parts.pop_back();
      } else {
        parts.push_back(seg);
      }
    }
  };
  push_parts(base_dir);
  push_parts(target);
  std::string joined = (!base_dir.empty() && base_dir[0] == '/') ? "/" : "";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) joined.push_back('/');
    joined += parts[i];
  }
  return joined;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

void check_document(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    fail(path, 0, "cannot open");
    return;
  }
  std::set<std::string> own_anchors = collect_anchors(text);
  std::map<std::string, std::set<std::string>> anchor_cache;
  const std::string base_dir = dirname_of(path);

  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  bool in_fence = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    // Scan for [text](target); nested brackets in link text are rare enough
    // in these docs that a flat scan is fine.
    for (size_t pos = 0; (pos = line.find('[', pos)) != std::string::npos;
         ++pos) {
      size_t close = line.find(']', pos);
      if (close == std::string::npos || close + 1 >= line.size() ||
          line[close + 1] != '(')
        continue;
      size_t end = line.find(')', close + 2);
      if (end == std::string::npos) continue;
      std::string target = line.substr(close + 2, end - close - 2);
      pos = end;
      if (target.empty()) {
        fail(path, lineno, "empty link target");
        continue;
      }
      if (is_external(target)) continue;

      std::string file_part = target;
      std::string anchor;
      if (size_t hash = target.find('#'); hash != std::string::npos) {
        file_part = target.substr(0, hash);
        anchor = target.substr(hash + 1);
      }

      std::string resolved = path;  // same-file anchor by default
      if (!file_part.empty()) {
        resolved = join_path(base_dir, file_part);
        std::ifstream probe(resolved, std::ios::binary);
        if (!probe) {
          fail(path, lineno, "broken link: " + target + " (no such file " +
                                 resolved + ")");
          continue;
        }
      }
      if (anchor.empty()) continue;

      const std::set<std::string>* anchors = &own_anchors;
      if (!file_part.empty()) {
        auto it = anchor_cache.find(resolved);
        if (it == anchor_cache.end()) {
          std::string other;
          if (!read_file(resolved, &other)) {
            fail(path, lineno, "unreadable link target: " + resolved);
            continue;
          }
          it = anchor_cache.emplace(resolved, collect_anchors(other)).first;
        }
        anchors = &it->second;
      }
      if (anchors->count(anchor) == 0)
        fail(path, lineno,
             "broken anchor: " + target + " (no heading slugs to '" + anchor +
                 "' in " + resolved + ")");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.md>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) check_document(argv[i]);
  for (const Problem& p : g_problems)
    std::fprintf(stderr, "%s:%zu: %s\n", p.file.c_str(), p.line, p.what.c_str());
  if (g_problems.empty()) std::printf("%d file(s): all links OK\n", argc - 1);
  return g_problems.empty() ? 0 : 1;
}
