// Aggregates the benches' machine-readable output into one results file.
//
//   mig_bench_collect <out.json> <bench-binary>...
//
// Runs each bench binary, scrapes its stdout for `BENCH_JSON {...}` lines
// (see bench/bench_common.h), sanity-checks each payload is one flat JSON
// object with a "bench" key, and writes everything to <out.json> as
//
//   { "benches": [ { "binary": "ablate_delta", "rows": [ {...}, ... ] } ] }
//
// Payloads are spliced through verbatim — the benches emit integral
// nanoseconds only, so the aggregate is byte-stable across runs. Exit 0 iff
// every binary ran to exit 0 and produced at least one row; the
// `bench_collect` ctest leg runs this over the full bench set so a bench
// that crashes or silently stops emitting rows fails CI.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct BenchRun {
  std::string binary;  // basename of the executable
  std::vector<std::string> rows;
};

std::string basename_of(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// One flat JSON object: brace-balanced with quote awareness, no nesting
// needed beyond what the benches emit. Guards against a torn line, not
// against adversarial input.
bool looks_like_row(const std::string& s) {
  if (s.size() < 2 || s.front() != '{' || s.back() != '}') return false;
  if (s.find("\"bench\":") == std::string::npos) return false;
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0 && i + 1 != s.size()) return false;
    }
  }
  return depth == 0 && !in_str;
}

// Runs `path`, collects its BENCH_JSON payloads. Returns false on spawn
// failure, nonzero exit, a malformed payload, or zero rows.
bool run_bench(const std::string& path, BenchRun* out) {
  out->binary = basename_of(path);
  std::string cmd = path + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    std::fprintf(stderr, "%s: cannot spawn\n", path.c_str());
    return false;
  }
  const std::string prefix = "BENCH_JSON ";
  std::string line;
  bool ok = true;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe)) {
    line += buf;
    if (line.empty() || line.back() != '\n') continue;  // torn long line
    line.pop_back();
    if (line.rfind(prefix, 0) == 0) {
      std::string row = line.substr(prefix.size());
      if (!looks_like_row(row)) {
        std::fprintf(stderr, "%s: malformed row: %s\n", out->binary.c_str(),
                     row.c_str());
        ok = false;
      } else {
        out->rows.push_back(std::move(row));
      }
    }
    line.clear();
  }
  int rc = pclose(pipe);
  if (rc != 0) {
    std::fprintf(stderr, "%s: exit status %d\n", out->binary.c_str(), rc);
    return false;
  }
  if (out->rows.empty()) {
    std::fprintf(stderr, "%s: no BENCH_JSON rows\n", out->binary.c_str());
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <out.json> <bench-binary>...\n", argv[0]);
    return 2;
  }
  std::vector<BenchRun> runs;
  bool all_ok = true;
  for (int i = 2; i < argc; ++i) {
    BenchRun run;
    if (!run_bench(argv[i], &run)) all_ok = false;
    runs.push_back(std::move(run));
  }

  std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 2;
  }
  out << "{\n  \"benches\": [";
  for (size_t b = 0; b < runs.size(); ++b) {
    out << (b ? ",\n" : "\n") << "    {\n      \"binary\": \""
        << runs[b].binary << "\",\n      \"rows\": [";
    for (size_t r = 0; r < runs[b].rows.size(); ++r)
      out << (r ? ",\n" : "\n") << "        " << runs[b].rows[r];
    out << "\n      ]\n    }";
  }
  out << "\n  ]\n}\n";

  size_t total = 0;
  for (const BenchRun& run : runs) total += run.rows.size();
  std::printf("%zu bench(es), %zu row(s) -> %s\n", runs.size(), total,
              argv[1]);
  return all_ok ? 0 : 1;
}
