// Offline auditor for the quorum counter service's Merkle logs.
//
//   mig_counter_audit --emit  <clean|crash|byzantine|torn> <out-file>
//   mig_counter_audit --verify <out-file> [--expect-fork]
//
// --emit runs a deterministic simulated migration workload against three
// replicas (with the named fault injected) and dumps every replica's
// exported audit log:
//
//   counter-audit v1
//   replica <id> size <n> root <hex32>
//   leaf <hex>            (n lines, oldest first)
//
// --verify replays the dump with no network, no keys and no replicas and
// proves the advance history is linear:
//
//   1. every leaf parses as a canonical audit entry — except that a replica
//      whose final leaf is unparseable is treated as a torn write (crash
//      mid-append): the tail is dropped with a note and the prefix audited;
//   2. recomputing the Merkle tree over the (surviving) leaves reproduces
//      the root the replica published under its signature — a mismatch
//      means the replica signed a history it does not hold (equivocation);
//   3. within each log, per identity, counters never move backwards and
//      every mutating op advances by exactly one — no rollback;
//   4. across replicas, the per-identity sequence of mutating ops on any
//      replica is a prefix of the longest such sequence — no forks: the
//      replicas tell one linear story, shorter only where one crashed.
//
// Exit code 0 = history linear (torn tails allowed, with a note); 1 = fork,
// rollback or equivocation detected. --expect-fork inverts the verdict for
// the byzantine fixture: detection is the passing outcome.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "quorum/quorum.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "store/snapshot_store.h"
#include "util/serde.h"

namespace mig {
namespace {

constexpr uint64_t kEcallAdd = 1;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("audit-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  return prog;
}

std::string hex(ByteSpan b) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t v : b) {
    out.push_back(kHex[v >> 4]);
    out.push_back(kHex[v & 0xf]);
  }
  return out;
}

bool unhex(const std::string& s, Bytes& out) {
  if (s.size() % 2 != 0) return false;
  out.clear();
  out.reserve(s.size() / 2);
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (size_t i = 0; i < s.size(); i += 2) {
    int hi = nib(s[i]), lo = nib(s[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return true;
}

// ---- --emit: run a faulted workload, dump the logs ---------------------------

int emit(const char* scenario, const char* out_path) {
  hv::World world(4);
  hv::Machine& source = world.add_machine("src");
  hv::Machine& target = world.add_machine("dst");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("counter-audit"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  quorum::QuorumCounterService counters(world.executor(), world.ias(),
                                        crypto::Drbg(to_bytes("qrm")), 3);
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator(world);

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  in.quorum_membership = counters.membership_blob();
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  auto host = std::make_unique<sdk::EnclaveHost>(
      guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("host")));

  migration::EnclaveMigrateOptions opts;
  opts.counter_service = &counters;

  const bool byzantine = std::strcmp(scenario, "byzantine") == 0;
  const bool crash = std::strcmp(scenario, "crash") == 0;
  const bool torn = std::strcmp(scenario, "torn") == 0;

  bool ok = false;
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host->create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(host->mailbox().post(ctx, cmd).status.ok());
    }
    Writer w;
    w.u64(42);
    MIG_CHECK(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    // Workload: seal (SEALGRANT), cold restore (OPENGRANT), then a second
    // seal/restore pair — four audited ops on every healthy replica.
    auto id = migrator.snapshot_to_store(ctx, *host, snapshots, opts);
    MIG_CHECK_MSG(id.ok(), id.status().to_string());
    MIG_CHECK(host->destroy(ctx).ok());
    guest.set_migration_target(target);
    MIG_CHECK(guest.resume_enclaves_after_migration(ctx).ok());
    MIG_CHECK(
        migrator.restore_from_store(ctx, *host, snapshots, *id, opts).ok());

    if (byzantine) counters.replica(2).set_equivocate(true);
    if (crash) counters.replica(1).set_crash_at_commit(true);

    auto id2 = migrator.snapshot_to_store(ctx, *host, snapshots, opts);
    MIG_CHECK_MSG(id2.ok(), id2.status().to_string());
    host->crash_instance(ctx);
    MIG_CHECK(
        migrator.restore_from_store(ctx, *host, snapshots, *id2, opts).ok());
    ok = true;
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK(ok);

  if (torn) counters.replica(0).set_torn_log_tail(true);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  out << "counter-audit v1\n";
  for (size_t i = 0; i < counters.num_replicas(); ++i) {
    auto log = counters.replica(i).export_log();
    out << "replica " << log.replica_id << " size " << log.leaves.size()
        << " root " << hex(ByteSpan(log.signed_root)) << "\n";
    for (const Bytes& leaf : log.leaves) out << "leaf " << hex(leaf) << "\n";
  }
  out.close();
  std::printf("counter-audit: wrote %s logs for %zu replicas to %s\n",
              scenario, counters.num_replicas(), out_path);
  return 0;
}

// ---- --verify: replay the dump, prove linearity ------------------------------

struct ParsedLog {
  uint64_t replica_id = 0;
  crypto::Digest signed_root{};
  std::vector<Bytes> leaves;
  std::vector<store::CounterAuditEntry> entries;  // parsed, post torn-drop
  bool torn = false;
};

int verify(const char* path, bool expect_fork) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  std::string line;
  if (!std::getline(in, line) || line != "counter-audit v1") {
    std::fprintf(stderr, "%s: not a counter-audit dump\n", path);
    return 1;
  }
  std::vector<ParsedLog> logs;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "replica") {
      ParsedLog log;
      std::string size_kw, root_kw, root_hex;
      uint64_t declared = 0;
      ls >> log.replica_id >> size_kw >> declared >> root_kw >> root_hex;
      Bytes root;
      if (size_kw != "size" || root_kw != "root" || !unhex(root_hex, root) ||
          root.size() != 32) {
        std::fprintf(stderr, "%s: malformed replica header: %s\n", path,
                     line.c_str());
        return 1;
      }
      std::copy(root.begin(), root.end(), log.signed_root.begin());
      logs.push_back(std::move(log));
    } else if (kind == "leaf") {
      if (logs.empty()) {
        std::fprintf(stderr, "%s: leaf before any replica header\n", path);
        return 1;
      }
      std::string leaf_hex;
      ls >> leaf_hex;
      Bytes leaf;
      if (!unhex(leaf_hex, leaf)) {
        std::fprintf(stderr, "%s: undecodable leaf line\n", path);
        return 1;
      }
      logs.back().leaves.push_back(std::move(leaf));
    } else {
      std::fprintf(stderr, "%s: unknown line kind '%s'\n", path,
                   kind.c_str());
      return 1;
    }
  }

  bool forked = false;
  auto fork = [&](const std::string& why) {
    std::fprintf(stderr, "FORK: %s\n", why.c_str());
    forked = true;
  };

  for (ParsedLog& log : logs) {
    // 1. Parse leaves; an unparseable FINAL leaf is a torn write.
    for (size_t i = 0; i < log.leaves.size(); ++i) {
      auto entry = quorum::parse_audit_leaf(log.leaves[i]);
      if (entry.ok()) {
        log.entries.push_back(*entry);
        continue;
      }
      if (i + 1 == log.leaves.size()) {
        log.torn = true;
        log.leaves.pop_back();
        std::printf(
            "note: replica %llu has a torn tail entry; dropped, auditing "
            "the prefix\n",
            static_cast<unsigned long long>(log.replica_id));
        break;
      }
      fork("replica " + std::to_string(log.replica_id) +
           " holds an unparseable mid-log entry " + std::to_string(i));
      break;
    }
    // 2. Recompute the root. A torn log cannot match the root the replica
    //    signed before the crash — the prefix's self-consistency and the
    //    cross-replica checks below still hold it to the shared history.
    if (!log.torn) {
      crypto::MerkleTree tree;
      for (const Bytes& leaf : log.leaves) tree.append(leaf);
      if (tree.root() != log.signed_root)
        fork("replica " + std::to_string(log.replica_id) +
             " published a signed root that does not match its own log "
             "(equivocation)");
    }
    // 3. In-log linearity: per identity, counters never go back, and every
    //    mutating op advances by exactly one.
    std::map<Bytes, uint64_t> last;
    for (const auto& e : log.entries) {
      Bytes id = crypto::digest_bytes(e.mrenclave);
      auto it = last.find(id);
      bool mutating = e.verb != "SEALGRANT";
      if (it == last.end()) {
        last[id] = e.counter;
        continue;
      }
      if (e.counter < it->second)
        fork("replica " + std::to_string(log.replica_id) +
             " log rolls a counter back: " + std::to_string(it->second) +
             " -> " + std::to_string(e.counter));
      else if (mutating && e.counter != it->second + 1)
        fork("replica " + std::to_string(log.replica_id) +
             " log skips counter values: " + std::to_string(it->second) +
             " -> " + std::to_string(e.counter));
      it->second = e.counter;
    }
  }

  // 4. Cross-replica: for each identity, every replica's mutating history
  //    must be a prefix of the longest one — one linear story, shorter only
  //    where a replica crashed.
  using MutSeq = std::vector<std::pair<uint64_t, std::string>>;
  std::map<Bytes, std::vector<std::pair<uint64_t, MutSeq>>> per_identity;
  for (const ParsedLog& log : logs) {
    std::map<Bytes, MutSeq> mine;
    for (const auto& e : log.entries)
      if (e.verb != "SEALGRANT")
        mine[crypto::digest_bytes(e.mrenclave)].push_back(
            {e.counter, e.verb});
    for (auto& [id, seq] : mine)
      per_identity[id].push_back({log.replica_id, seq});
  }
  for (auto& [id, histories] : per_identity) {
    const MutSeq* longest = nullptr;
    for (auto& [rid, seq] : histories)
      if (longest == nullptr || seq.size() > longest->size()) longest = &seq;
    for (auto& [rid, seq] : histories) {
      for (size_t i = 0; i < seq.size(); ++i) {
        if (i < longest->size() && seq[i] == (*longest)[i]) continue;
        fork("replica " + std::to_string(rid) +
             " diverges from the quorum history at op " + std::to_string(i) +
             " (counter " + std::to_string(seq[i].first) + ", " +
             seq[i].second + ")");
        break;
      }
    }
  }

  if (expect_fork) {
    if (forked) {
      std::printf("counter-audit: fork detected, as expected\n");
      return 0;
    }
    std::fprintf(stderr, "expected a fork, but the history verified clean\n");
    return 1;
  }
  if (forked) return 1;
  uint64_t entries = 0;
  for (const ParsedLog& log : logs) entries += log.entries.size();
  std::printf(
      "counter-audit: %zu replica logs, %llu entries — advance history is "
      "linear (no forks, no rollback)\n",
      logs.size(), static_cast<unsigned long long>(entries));
  return 0;
}

}  // namespace
}  // namespace mig

int main(int argc, char** argv) {
  bool expect_fork = false;
  const char* mode = nullptr;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit") == 0 ||
        std::strcmp(argv[i], "--verify") == 0) {
      mode = argv[i];
    } else if (std::strcmp(argv[i], "--expect-fork") == 0) {
      expect_fork = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (mode != nullptr && std::strcmp(mode, "--emit") == 0 &&
      positional.size() == 2) {
    const char* scenario = positional[0];
    if (std::strcmp(scenario, "clean") != 0 &&
        std::strcmp(scenario, "crash") != 0 &&
        std::strcmp(scenario, "byzantine") != 0 &&
        std::strcmp(scenario, "torn") != 0) {
      std::fprintf(stderr, "unknown scenario '%s'\n", scenario);
      return 2;
    }
    return mig::emit(scenario, positional[1]);
  }
  if (mode != nullptr && std::strcmp(mode, "--verify") == 0 &&
      positional.size() == 1) {
    return mig::verify(positional[0], expect_fork);
  }
  std::fprintf(stderr,
               "usage: mig_counter_audit --emit "
               "<clean|crash|byzantine|torn> <out>\n"
               "       mig_counter_audit --verify <out> [--expect-fork]\n");
  return 2;
}
