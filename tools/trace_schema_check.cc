// Schema checker for the observability layer's JSON emissions. Validates
// Chrome trace-event files (TraceRecorder::chrome_json) and metrics dumps
// (MetricsRegistry::json) beyond "it parses": required keys, value types,
// per-thread span balance, monotone virtual clocks, histogram invariants.
// The `obs_trace_schema` ctest target runs it on files produced by
// mig_trace_migration; it is also usable standalone:
//
//   mig_schema_check trace.json metrics.json ...
//
// File kind is auto-detected from the top-level keys. Exit 0 iff every file
// passes; failures print one line each to stderr.
//
// With `--names <doc.md>` (docs/trace-schema.md in the tree), every span,
// instant, counter, gauge, and histogram name found in the inputs must be
// backtick-quoted somewhere in that markdown file — the documented name set
// IS the schema, and an undocumented emission fails the check. That keeps
// the reference honest: add an instrumentation point, add its row.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using mig::obs::Json;

// Collects problems instead of stopping at the first, so one run shows
// everything wrong with a file.
struct Report {
  std::string file;
  std::vector<std::string> problems;
  void fail(const std::string& what) { problems.push_back(what); }
};

bool is_u64(const Json* j) { return j != nullptr && j->is_integer(); }

// The documented name set: every token that appears between backticks in the
// reference markdown. "`a` / `b`" documents both; slashes inside one span of
// backticks (`ctl.provision`) are part of the name only if no split applies.
struct DocumentedNames {
  bool loaded = false;
  std::set<std::string> names;

  bool contains(const std::string& n) const { return names.count(n) != 0; }

  bool load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    size_t pos = 0;
    while ((pos = text.find('`', pos)) != std::string::npos) {
      size_t end = text.find('`', pos + 1);
      if (end == std::string::npos) break;
      names.insert(text.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
    loaded = true;
    return true;
  }
};

DocumentedNames g_doc;

void require_documented(const std::string& kind, const std::string& name,
                        Report& rep) {
  if (!g_doc.loaded || g_doc.contains(name)) return;
  rep.fail(kind + " '" + name + "' is not documented in the trace-schema "
           "reference — add it to docs/trace-schema.md");
}

void check_trace(const Json& root, Report& rep) {
  const Json* events = root.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    rep.fail("missing traceEvents array");
    return;
  }
  std::map<uint64_t, std::vector<std::string>> stacks;
  std::map<uint64_t, double> last_ts;
  size_t idx = 0;
  for (const Json& e : events->items()) {
    std::string at = "event #" + std::to_string(idx++);
    if (!e.is_object()) {
      rep.fail(at + ": not an object");
      continue;
    }
    const Json* ph = e.get("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1) {
      rep.fail(at + ": bad ph");
      continue;
    }
    char kind = ph->as_string()[0];
    if (kind != 'M' && kind != 'B' && kind != 'E' && kind != 'i') {
      rep.fail(at + ": unknown ph '" + ph->as_string() + "'");
      continue;
    }
    if (!is_u64(e.get("pid"))) rep.fail(at + ": missing integer pid");
    if (!is_u64(e.get("tid"))) {
      rep.fail(at + ": missing integer tid");
      continue;
    }
    uint64_t tid = e.get("tid")->as_u64();
    const Json* name = e.get("name");
    const Json* args = e.get("args");
    if (args != nullptr && !args->is_object())
      rep.fail(at + ": args is not an object");

    if (kind == 'M') {
      if (name == nullptr || name->as_string() != "thread_name") {
        rep.fail(at + ": metadata event is not thread_name");
      } else if (args == nullptr || args->get("name") == nullptr ||
                 !args->get("name")->is_string()) {
        rep.fail(at + ": thread_name without args.name");
      }
      continue;
    }
    const Json* ts = e.get("ts");
    if (ts == nullptr || !ts->is_number()) {
      rep.fail(at + ": missing ts");
      continue;
    }
    auto last = last_ts.find(tid);
    if (last != last_ts.end() && ts->as_double() < last->second)
      rep.fail(at + ": virtual clock went backwards on tid " +
               std::to_string(tid));
    last_ts[tid] = ts->as_double();

    if (kind == 'i') {
      const Json* scope = e.get("s");
      if (scope == nullptr || scope->as_string() != "t")
        rep.fail(at + ": instant without thread scope");
    }
    if ((kind == 'B' || kind == 'i') &&
        (name == nullptr || !name->is_string() || name->as_string().empty())) {
      rep.fail(at + ": unnamed " + std::string(1, kind) + " event");
    } else if (kind == 'B' || kind == 'i') {
      require_documented(kind == 'B' ? "span" : "instant", name->as_string(),
                         rep);
    }
    if (kind == 'B') {
      stacks[tid].push_back(name != nullptr ? name->as_string() : "");
    } else if (kind == 'E') {
      auto& stack = stacks[tid];
      if (stack.empty()) {
        rep.fail(at + ": unmatched E on tid " + std::to_string(tid));
      } else {
        // The exporter back-fills each E's name from its B.
        if (name != nullptr && name->is_string() && !name->as_string().empty()
            && name->as_string() != stack.back())
          rep.fail(at + ": E named '" + name->as_string() +
                   "' closes span '" + stack.back() + "'");
        stack.pop_back();
      }
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty())
      rep.fail("tid " + std::to_string(tid) + ": " +
               std::to_string(stack.size()) + " unclosed span(s), top '" +
               stack.back() + "'");
  }
}

void check_metrics(const Json& root, Report& rep) {
  for (const char* section : {"counters", "gauges"}) {
    const Json* m = root.get(section);
    if (m == nullptr || !m->is_object()) {
      rep.fail(std::string("missing ") + section + " object");
      continue;
    }
    for (const auto& [key, value] : m->fields()) {
      if (!value.is_integer())
        rep.fail(std::string(section) + "." + key + ": not a u64");
      require_documented(section, key, rep);
    }
  }
  const Json* hists = root.get("histograms");
  if (hists == nullptr || !hists->is_object()) {
    rep.fail("missing histograms object");
    return;
  }
  for (const auto& [key, h] : hists->fields()) {
    require_documented("histogram", key, rep);
    for (const char* field : {"count", "sum", "min", "max"}) {
      if (!is_u64(h.get(field)))
        rep.fail("histograms." + key + ": missing u64 " + field);
    }
    const Json* buckets = h.get("buckets");
    if (buckets == nullptr || !buckets->is_object()) {
      rep.fail("histograms." + key + ": missing buckets");
      continue;
    }
    uint64_t total = 0;
    for (const auto& [bkey, bval] : buckets->fields()) {
      char* endp = nullptr;
      unsigned long idx = std::strtoul(bkey.c_str(), &endp, 10);
      if (endp == bkey.c_str() || *endp != '\0' ||
          idx >= mig::obs::MetricsRegistry::kBuckets)
        rep.fail("histograms." + key + ": bad bucket index '" + bkey + "'");
      if (!bval.is_integer() || bval.as_u64() == 0)
        rep.fail("histograms." + key + ": bucket " + bkey +
                 " is empty or non-integral");
      else
        total += bval.as_u64();
    }
    if (is_u64(h.get("count")) && total != h.get("count")->as_u64())
      rep.fail("histograms." + key + ": bucket counts sum to " +
               std::to_string(total) + ", count says " +
               std::to_string(h.get("count")->as_u64()));
  }
}

bool check_file(const std::string& path) {
  Report rep{path, {}};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto root = Json::parse(buf.str());
  if (!root.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 root.status().to_string().c_str());
    return false;
  }
  if (root->has("traceEvents")) {
    check_trace(*root, rep);
  } else if (root->has("counters")) {
    check_metrics(*root, rep);
  } else {
    rep.fail("neither a trace (traceEvents) nor a metrics (counters) file");
  }
  for (const std::string& p : rep.problems)
    std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
  if (rep.problems.empty())
    std::printf("%s: OK\n", path.c_str());
  return rep.problems.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--names") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--names needs a markdown file\n");
        return 2;
      }
      if (!g_doc.load(argv[++i])) {
        std::fprintf(stderr, "%s: cannot open names reference\n", argv[i]);
        return 2;
      }
      continue;
    }
    files.push_back(std::move(arg));
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--names trace-schema.md] "
                 "<trace.json|metrics.json>...\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (const std::string& f : files) ok &= check_file(f);
  return ok ? 0 : 1;
}
