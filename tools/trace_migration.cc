// Runs one deterministic, fully instrumented migration scenario and writes
// the Chrome trace and the metrics dump to disk:
//
//   mig_trace_migration [--scenario precopy|postcopy|store|fleet]
//                       [trace.json [metrics.json]]
//
// Scenarios:
//   precopy  (default) — a live pre-copy VM migration of two enclaves with a
//            running workload (Fig. 8 pipeline): pre-copy rounds, two-phase
//            checkpoints, key handshake, restore, CSSA replay.
//   postcopy — a pure post-copy VM migration (stop-and-flip + demand pull):
//            exercises the `postcopy.*` span/instant/counter names.
//   store    — a cold migration through the sealed snapshot store
//            (snapshot_to_store, planned shutdown, restore_from_store):
//            exercises the `store.*` names and the counter service.
//   fleet    — a concurrent host evacuation (three enclave VMs, admission
//            cap two, one transient fault forcing a retry): exercises the
//            `fleet.*` span/instant/gauge names over the shared uplink.
//   quorum   — a cold round trip plus a live migration against three counter
//            replicas, one of which crashes mid-ADVANCE: exercises the
//            `quorum.*` span/instant/counter/gauge names.
//
// Open trace.json at ui.perfetto.dev (or chrome://tracing) to see the run as
// a per-sim-thread timeline. Every scenario is seeded, so repeated runs emit
// byte-identical files — the `obs_trace_emit*` / `obs_trace_schema*` ctest
// pairs rely on that, and the schema checker enforces that every name these
// scenarios emit is registered in docs/trace-schema.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "migration/session.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "quorum/quorum.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"
#include "util/check.h"
#include "util/serde.h"

namespace {

using namespace mig;

constexpr uint64_t kEcallAdd = 1;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("traced-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + r.u64());
    return OkStatus();
  });
  return prog;
}

bool write_file(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

// ---- precopy: the original instrumented live migration ---------------------

int run_precopy() {
  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("trace-tool"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  guestos::Process& proc = guest.create_process("app");
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (int i = 0; i < 2; ++i) {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(),
        rng.fork(to_bytes("host"))));
  }

  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      MIG_CHECK(h->create(ctx).ok());
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(h->mailbox().post(ctx, cmd).status.ok());
    }
    // A live workload so the timeline shows application ecalls interleaving
    // with the migration machinery.
    proc.spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
      for (int i = 0; i < 200; ++i) {
        Writer w;
        w.u64(1);
        if (!hosts[0]->ecall(wctx, 0, kEcallAdd, w.data()).ok()) break;
        wctx.sleep(1'000'000);
      }
    });

    migration::VmMigrationSession session(
        world, vm, guest, source, target,
        migration::VmMigrationSession::Options{});
    for (auto& h : hosts) session.manage(*h);
    ctx.sleep(5'000'000);
    report = session.run(ctx);
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK_MSG(report.ok(), report.status().to_string());
  std::printf(
      "precopy migration ok: downtime %llu ns, %llu bytes, %llu rounds\n",
      static_cast<unsigned long long>(report->downtime_ns),
      static_cast<unsigned long long>(report->transferred_bytes),
      static_cast<unsigned long long>(report->rounds));
  return 0;
}

// ---- postcopy: stop-and-flip + demand pull ---------------------------------

int run_postcopy() {
  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{1'600, 40'000});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("trace-postcopy"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  store::CounterService counters(world.ias(), crypto::Drbg(to_bytes("ctr")));

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  in.layout.heap_pages = 4;
  in.counter_service_pk = counters.public_key();
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  auto host = std::make_unique<sdk::EnclaveHost>(
      guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("host")));

  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host->create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(host->mailbox().post(ctx, cmd).status.ok());
    }
    proc.spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
      for (int i = 0; i < 2000; ++i) {
        Writer w;
        w.u64(1);
        if (!host->ecall(wctx, 0, kEcallAdd, w.data()).ok()) break;
        wctx.sleep(1'000'000);
      }
    });

    migration::VmMigrationSession::Options opts;
    opts.post_copy = true;
    migration::VmMigrationSession session(world, vm, guest, source, target,
                                          opts);
    session.manage(*host);
    ctx.sleep(10'000'000);
    report = session.run(ctx);
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK_MSG(report.ok(), report.status().to_string());
  MIG_CHECK_MSG(report->postcopy_flipped == 1, "post-copy did not flip");
  std::printf(
      "postcopy migration ok: downtime %llu ns, %llu tail pages in %llu "
      "batches\n",
      static_cast<unsigned long long>(report->downtime_ns),
      static_cast<unsigned long long>(report->postcopy_pages),
      static_cast<unsigned long long>(report->postcopy_batches));
  return 0;
}

// ---- store: cold migration through the sealed snapshot store ---------------

int run_store() {
  hv::World world(4);
  hv::Machine& source = world.add_machine("src");
  hv::Machine& target = world.add_machine("dst");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("trace-store"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  store::CounterService counters(world.ias(), crypto::Drbg(to_bytes("ctr")));
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator(world);

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  in.counter_service_pk = counters.public_key();
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  auto host = std::make_unique<sdk::EnclaveHost>(
      guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("host")));

  migration::EnclaveMigrateOptions opts;
  opts.counter_service = &counters;

  bool ok = false;
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host->create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(host->mailbox().post(ctx, cmd).status.ok());
    }
    Writer w;
    w.u64(42);
    MIG_CHECK(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    auto id = migrator.snapshot_to_store(ctx, *host, snapshots, opts);
    MIG_CHECK_MSG(id.ok(), id.status().to_string());

    // Planned shutdown on the source, cold restore on the target machine:
    // the sealed snapshot is the only thing that travels.
    MIG_CHECK(host->destroy(ctx).ok());
    guest.set_migration_target(target);
    MIG_CHECK(guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore_from_store(ctx, *host, snapshots, *id, opts);
    MIG_CHECK_MSG(st.ok(), st.to_string());

    // The restored enclave is live again and seals a fresh snapshot at its
    // advanced epoch — the rollback-defense half of the store round trip.
    Writer w2;
    w2.u64(1);
    MIG_CHECK(host->ecall(ctx, 0, kEcallAdd, w2.data()).ok());
    auto id2 = migrator.snapshot_to_store(ctx, *host, snapshots, opts);
    MIG_CHECK_MSG(id2.ok(), id2.status().to_string());
    ok = true;
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK(ok);
  std::printf("store cold migration ok: %llu object(s) in the store\n",
              static_cast<unsigned long long>(snapshots.object_count()));
  return 0;
}

// ---- quorum: replicated counter service with a mid-commit crash -------------

int run_quorum() {
  hv::World world(4);
  hv::Machine& source = world.add_machine("src");
  hv::Machine& target = world.add_machine("dst");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("trace-quorum"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  quorum::QuorumCounterService counters(world.executor(), world.ias(),
                                        crypto::Drbg(to_bytes("qrm")), 3);
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator(world);

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  in.quorum_membership = counters.membership_blob();
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  auto host = std::make_unique<sdk::EnclaveHost>(
      guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("host")));

  migration::EnclaveMigrateOptions opts;
  opts.counter_service = &counters;

  bool ok = false;
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host->create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(host->mailbox().post(ctx, cmd).status.ok());
    }
    Writer w;
    w.u64(42);
    MIG_CHECK(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    // Cold round trip: SEALGRANT then OPENGRANT, all three replicas healthy.
    auto id = migrator.snapshot_to_store(ctx, *host, snapshots, opts);
    MIG_CHECK_MSG(id.ok(), id.status().to_string());
    host->crash_instance(ctx);
    MIG_CHECK(
        migrator.restore_from_store(ctx, *host, snapshots, *id, opts).ok());

    // Live migration with one replica dying at the ADVANCE commit: the
    // remaining f+1 grant, the migration completes, and the crash lands in
    // the flight recorder naming the replica.
    counters.replica(1).set_crash_at_commit(true);
    auto blob = migrator.prepare(ctx, *host, opts);
    MIG_CHECK_MSG(blob.ok(), blob.status().to_string());
    auto inst = host->detach_instance();
    guest.set_migration_target(target);
    MIG_CHECK(guest.resume_enclaves_after_migration(ctx).ok());
    Status st =
        migrator.restore(ctx, *host, source, inst, std::move(*blob), opts);
    MIG_CHECK_MSG(st.ok(), st.to_string());
    ok = true;
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK(ok);
  MIG_CHECK_MSG(obs::flightrec().contains("crashed mid-ADVANCE"),
                "crash flight record missing");
  std::printf(
      "quorum migration ok: 2 of 3 replicas granted, crash flight-recorded\n");
  return 0;
}

}  // namespace

// ---- fleet: a concurrent host evacuation ------------------------------------

int run_fleet() {
  hv::World world(4);
  hv::Machine& source = world.add_machine("src");
  hv::Machine& target = world.add_machine("dst");
  crypto::Drbg rng(to_bytes("trace-fleet"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  constexpr size_t kVms = 3;
  std::vector<std::unique_ptr<hv::Vm>> vms;
  std::vector<std::unique_ptr<guestos::GuestOs>> guests;
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (size_t i = 0; i < kVms; ++i) {
    hv::VmConfig c;
    c.name = "vm" + std::to_string(i);
    c.vcpus = 2;
    c.memory_mb = 2;
    c.used_fraction = 0.5;
    vms.push_back(std::make_unique<hv::Vm>(c, hv::DirtyModel{200, 100}));
    guests.push_back(std::make_unique<guestos::GuestOs>(source, *vms.back()));
    guestos::Process& proc = guests.back()->create_process("app");
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    in.layout.heap_pages = 1 + i;  // distinct MRENCLAVE per VM
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        *guests.back(), proc, std::move(built), world.ias(),
        rng.fork(to_bytes(c.name))));
  }

  fleet::EvacuationPlan plan;
  plan.max_concurrent = 2;
  fleet::FleetScheduler sched(world, plan);
  int faulted_channels = 0;
  for (size_t i = 0; i < kVms; ++i) {
    fleet::VmPlan vp;
    vp.name = vms[i]->config().name;
    std::function<void(sim::Channel&)> hook;
    if (i == 1) {
      // One transient fault: vm1's first attempt dies mid-pre-copy, the
      // scheduler backs off and the retry lands — `fleet.retry` shows up in
      // the trace without any quarantine.
      hook = [&faulted_channels](sim::Channel& ch) {
        if (faulted_channels++ == 0)
          sim::FaultPlan().sever_at_message(2).install(ch.a_to_b());
      };
    }
    sched.add_vm(vp, *vms[i], *guests[i], source, target, {hosts[i].get()},
                 hook);
  }

  fleet::EvacuationReport report;
  bool ok = false;
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      MIG_CHECK(h->create(ctx).ok());
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(h->mailbox().post(ctx, cmd).status.ok());
    }
    auto r = sched.run(ctx);
    MIG_CHECK_MSG(r.ok(), r.status().to_string());
    report = std::move(*r);
    ok = true;
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK(ok);
  MIG_CHECK_MSG(report.migrated == kVms, "not every VM drained");
  MIG_CHECK_MSG(report.retries == 1, "expected exactly one retry");
  std::printf(
      "fleet evacuation ok: %llu VMs drained in %llu ns (peak %llu "
      "concurrent, %llu retries)\n",
      static_cast<unsigned long long>(report.migrated),
      static_cast<unsigned long long>(report.total_ns),
      static_cast<unsigned long long>(report.peak_concurrent),
      static_cast<unsigned long long>(report.retries));
  return 0;
}

int main(int argc, char** argv) {
  const char* scenario = "precopy";
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const char* trace_path =
      positional.size() > 0 ? positional[0] : "migration_trace.json";
  const char* metrics_path =
      positional.size() > 1 ? positional[1] : "migration_metrics.json";

  obs::ScopedObservation capture;

  int rc;
  if (std::strcmp(scenario, "precopy") == 0) {
    rc = run_precopy();
  } else if (std::strcmp(scenario, "postcopy") == 0) {
    rc = run_postcopy();
  } else if (std::strcmp(scenario, "store") == 0) {
    rc = run_store();
  } else if (std::strcmp(scenario, "fleet") == 0) {
    rc = run_fleet();
  } else if (std::strcmp(scenario, "quorum") == 0) {
    rc = run_quorum();
  } else {
    std::fprintf(
        stderr, "unknown scenario '%s' (precopy|postcopy|store|fleet|quorum)\n",
        scenario);
    return 2;
  }
  if (rc != 0) return rc;

  if (!write_file(trace_path, obs::trace().chrome_json()) ||
      !write_file(metrics_path, obs::metrics().json())) {
    std::fprintf(stderr, "failed to write output files\n");
    return 1;
  }
  std::printf("trace:   %s (load in ui.perfetto.dev)\nmetrics: %s\n",
              trace_path, metrics_path);
  return 0;
}
