// Runs one deterministic, fully instrumented VM migration (two enclaves,
// live workload, Fig. 8 pipeline) and writes the Chrome trace and the
// metrics dump to disk:
//
//   mig_trace_migration [trace.json [metrics.json]]
//
// Open trace.json at ui.perfetto.dev (or chrome://tracing) to see the whole
// migration as a per-sim-thread timeline: pre-copy rounds, the two-phase
// checkpoints, the key handshake, restore and CSSA replay. The simulation is
// seeded, so repeated runs emit byte-identical files — the `obs_trace_emit` /
// `obs_trace_schema` ctest pair relies on that.
#include <cstdio>
#include <fstream>

#include "migration/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/serde.h"

namespace {

using namespace mig;

constexpr uint64_t kEcallAdd = 1;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("traced-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + r.u64());
    return OkStatus();
  });
  return prog;
}

bool write_file(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "migration_trace.json";
  const char* metrics_path = argc > 2 ? argv[2] : "migration_metrics.json";

  obs::ScopedObservation capture;

  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("trace-tool"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  guestos::Process& proc = guest.create_process("app");
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (int i = 0; i < 2; ++i) {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(),
        rng.fork(to_bytes("host"))));
  }

  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      MIG_CHECK(h->create(ctx).ok());
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      MIG_CHECK(h->mailbox().post(ctx, cmd).status.ok());
    }
    // A live workload so the timeline shows application ecalls interleaving
    // with the migration machinery.
    proc.spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
      for (int i = 0; i < 200; ++i) {
        Writer w;
        w.u64(1);
        if (!hosts[0]->ecall(wctx, 0, kEcallAdd, w.data()).ok()) break;
        wctx.sleep(1'000'000);
      }
    });

    migration::VmMigrationSession session(
        world, vm, guest, source, target,
        migration::VmMigrationSession::Options{});
    for (auto& h : hosts) session.manage(*h);
    ctx.sleep(5'000'000);
    report = session.run(ctx);
  });
  MIG_CHECK(world.executor().run());
  MIG_CHECK_MSG(report.ok(), report.status().to_string());

  if (!write_file(trace_path, obs::trace().chrome_json()) ||
      !write_file(metrics_path, obs::metrics().json())) {
    std::fprintf(stderr, "failed to write output files\n");
    return 1;
  }
  std::printf(
      "migration ok: downtime %llu ns, %llu bytes, %llu rounds\n"
      "trace:   %s (load in ui.perfetto.dev)\n"
      "metrics: %s\n",
      static_cast<unsigned long long>(report->downtime_ns),
      static_cast<unsigned long long>(report->transferred_bytes),
      static_cast<unsigned long long>(report->rounds), trace_path,
      metrics_path);
  return 0;
}
