// Sealed snapshot store (store/): cold migration, crash recovery, and the
// monotonic-counter rollback defense.
//
//  * Cold migration: snapshot to the store, tear the enclave down, restore
//    on a different machine — state survives, and the whole run is
//    deterministic under identical seeds (bit-equal final state AND equal
//    virtual end time).
//  * Crash recovery: after an abrupt EPC wipe, only the identity survives;
//    the head pointer in the store gets the enclave back.
//  * Rollback defense: OPENGRANT consumes the counter epoch, so the same
//    snapshot never opens twice, pre-migration snapshots die when a live
//    migration commits, and a stale fork fences itself on its next counter
//    interaction.
//  * Envelope tampering: every mutated field is rejected cleanly, and inner
//    corruption is reported with the failing chunk index.
#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/chunk_wire.h"
#include "sdk/host.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"
#include "util/serde.h"

namespace mig {
namespace {

constexpr uint64_t kEcallBump = 1;  // args: u64 delta, u64 steps
constexpr uint64_t kEcallSum = 2;

std::shared_ptr<sdk::EnclaveProgram> make_prog() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("store-counter");
  prog->add_ecall(kEcallBump, "bump", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t steps = r.u64();
    while (f.pc() < steps) {
      env.work(100'000);
      f.step();
    }
    uint64_t off = env.layout().data_off;
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallSum, "sum", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

struct StoreBed {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Machine* target = &world.add_machine("dst");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*source, vm};
  guestos::Process* process = &guest.create_process("app");
  crypto::Drbg rng{to_bytes("store")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  store::CounterService counters{world.ias(), crypto::Drbg(to_bytes("ctr"))};
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator{world};

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t workers) {
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = workers;
    in.counter_service_pk = counters.public_key();
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(guest, *process,
                                              std::move(built), world.ias(),
                                              rng.fork(to_bytes("h")));
  }

  migration::EnclaveMigrateOptions opts() {
    migration::EnclaveMigrateOptions o;
    o.counter_service = &counters;
    return o;
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [this, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  Status bump(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t delta) {
    Writer w;
    w.u64(delta);
    w.u64(2);
    return host.ecall(ctx, 0, kEcallBump, w.data()).status();
  }

  uint64_t sum(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto got = host.ecall(ctx, 0, kEcallSum, {});
    if (!got.ok()) return ~0ull;
    Reader r(*got);
    return r.u64();
  }

  // Live migration of `host` to the machine the guest is NOT currently on,
  // with the rollback defense armed (kAdvanceCounter fires on commit).
  Status live_migrate(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                      hv::Machine& from, hv::Machine& to) {
    auto blob = migrator.prepare(ctx, host, opts());
    MIG_RETURN_IF_ERROR(blob.status());
    auto inst = host.detach_instance();
    guest.set_migration_target(to);
    MIG_RETURN_IF_ERROR(guest.resume_enclaves_after_migration(ctx).status());
    return migrator.restore(ctx, host, from, inst, std::move(*blob), opts());
  }
};

// ---- cold migration round trip ----------------------------------------------

struct ColdRun {
  uint64_t sum = 0;
  uint64_t end_ns = 0;
  uint64_t counter = 0;
  bool on_target = false;
};

ColdRun run_cold_migration() {
  StoreBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  ColdRun out;
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 5).ok());
    ASSERT_TRUE(bed.bump(ctx, *host, 7).ok());

    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    EXPECT_EQ(bed.snapshots.object_count(), 1u);

    // Planned shutdown on the source, restore on the target machine: the
    // snapshot is the only thing that travels.
    ASSERT_TRUE(host->destroy(ctx).ok());
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    auto st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots, *id,
                                              bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();

    out.on_target = host->instance() != nullptr &&
                    host->instance()->machine == bed.target;
    EXPECT_EQ(bed.sum(ctx, *host), 12u);
    // The restored enclave is fully live: it keeps working and can seal a
    // fresh snapshot at its new epoch.
    ASSERT_TRUE(bed.bump(ctx, *host, 1).ok());
    out.sum = bed.sum(ctx, *host);
    auto id2 = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                              bed.opts());
    EXPECT_TRUE(id2.ok()) << id2.status().to_string();
    out.end_ns = ctx.now();
  });
  EXPECT_TRUE(bed.world.executor().run());
  out.counter = bed.counters.counter(mre);
  return out;
}

TEST(StoreColdMigration, RoundTripRestoresStateOnTargetMachine) {
  ColdRun r = run_cold_migration();
  EXPECT_TRUE(r.on_target);
  EXPECT_EQ(r.sum, 13u);
  // Snapshot at c=1, OPENGRANT consumed it (-> 2), second snapshot at 2.
  EXPECT_EQ(r.counter, 2u);
}

TEST(StoreColdMigration, DeterministicUnderIdenticalSeeds) {
  ColdRun a = run_cold_migration();
  ColdRun b = run_cold_migration();
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.counter, b.counter);
  EXPECT_EQ(a.end_ns, b.end_ns);  // identical virtual-time trajectory
}

// ---- crash recovery ----------------------------------------------------------

struct CrashRun {
  uint64_t sum = 0;
  uint64_t end_ns = 0;
  std::vector<std::string> verbs;
};

CrashRun run_crash_recovery() {
  StoreBed bed;
  auto host = bed.make_host(2);
  CrashRun out;
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 10).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    // Work after the snapshot is honestly lost by a crash.
    ASSERT_TRUE(bed.bump(ctx, *host, 5).ok());

    host->crash_instance(ctx);
    EXPECT_EQ(host->instance(), nullptr);
    EXPECT_TRUE(host->instance_lost());
    EXPECT_EQ(host->ecall(ctx, 0, kEcallSum, {}).status().code(),
              ErrorCode::kAborted);

    // Empty id = crash recovery: only the identity survived; the store's
    // head pointer finds the latest committed snapshot.
    auto st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots, {},
                                              bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_EQ(bed.sum(ctx, *host), 10u);  // post-snapshot bump is gone
    ASSERT_TRUE(bed.bump(ctx, *host, 1).ok());
    out.sum = bed.sum(ctx, *host);
    out.end_ns = ctx.now();
  });
  EXPECT_TRUE(bed.world.executor().run());
  for (const auto& e : bed.counters.audit_log()) out.verbs.push_back(e.verb);
  return out;
}

TEST(StoreCrashRecovery, HeadPointerRestoreAfterAbruptEpcWipe) {
  CrashRun r = run_crash_recovery();
  EXPECT_EQ(r.sum, 11u);
  EXPECT_EQ(r.verbs, (std::vector<std::string>{"SEALGRANT", "OPENGRANT"}));
}

TEST(StoreCrashRecovery, DeterministicUnderIdenticalSeeds) {
  CrashRun a = run_crash_recovery();
  CrashRun b = run_crash_recovery();
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

// ---- rollback defense --------------------------------------------------------

TEST(StoreRollback, PreMigrationSnapshotDiesWhenLiveMigrationCommits) {
  StoreBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 42).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    EXPECT_EQ(bed.counters.counter(mre), 1u);  // SEALGRANT does not advance

    // Committed live migration with the rollback defense armed: the restore
    // path posts kAdvanceCounter, killing every pre-migration snapshot.
    auto mig = bed.live_migrate(ctx, *host, *bed.source, *bed.target);
    ASSERT_TRUE(mig.ok()) << mig.to_string();
    EXPECT_EQ(bed.counters.counter(mre), 2u);
    EXPECT_EQ(bed.sum(ctx, *host), 42u);

    // The rollback attempt: kill the live instance and try to resurrect the
    // pre-migration snapshot. The counter service refuses the OPENGRANT.
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    EXPECT_EQ(st.code(), ErrorCode::kPermissionDenied) << st.to_string();
    EXPECT_NE(st.message().find("refused"), std::string::npos)
        << st.message();
    // The failed restore leaves no half-bound instance behind.
    EXPECT_EQ(host->instance(), nullptr);
    // The refusal did not advance anything.
    EXPECT_EQ(bed.counters.counter(mre), 2u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(StoreRollback, SameSnapshotNeverOpensTwice) {
  StoreBed bed;
  auto host = bed.make_host(2);
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 3).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());

    host->crash_instance(ctx);
    ASSERT_TRUE(bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts()).ok());
    EXPECT_EQ(bed.sum(ctx, *host), 3u);

    // Second open of the very same envelope: the OPENGRANT consumed the
    // epoch, so a replayed restore is refused.
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    EXPECT_EQ(st.code(), ErrorCode::kPermissionDenied) << st.to_string();
  });
  ASSERT_TRUE(bed.world.executor().run());
}

// ---- envelope tampering ------------------------------------------------------

TEST(StoreEnvelope, EveryTamperedFieldIsRejectedCleanly) {
  StoreBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 9).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    auto blob = bed.snapshots.get(ctx, *id);
    ASSERT_TRUE(blob.ok());
    auto envelope = sdk::parse_snapshot_envelope(*blob);
    ASSERT_TRUE(envelope.ok());
    EXPECT_EQ(envelope->counter, 1u);

    // Posts kStoreRestore with `bad` against the still-live enclave (the
    // restore fails before touching memory, so the instance stays intact).
    // `reaches_service` = whether the envelope survives the in-enclave
    // checks; only then is a serving helper spawned (otherwise it would
    // park on recv forever, since the enclave never sends a request).
    auto attempt = [&](Bytes bad, bool reaches_service) -> Status {
      auto ch = bed.world.make_channel();
      if (reaches_service) {
        bed.world.executor().spawn("ctr", [&, c = ch.get()](sim::ThreadCtx& t) {
          bed.counters.serve_one(t, c->a());
        });
      }
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kStoreRestore;
      cmd.channel = ch->b();
      cmd.blob = std::move(bad);
      return host->mailbox().post(ctx, cmd).status;
    };

    // Truncation: defensive parse, never reaches the counter service.
    {
      Bytes bad(blob->begin(), blob->begin() + 7);
      Status st = attempt(bad, /*reaches_service=*/false);
      EXPECT_FALSE(st.ok());
      EXPECT_NE(st.message().find("snapshot rejected"), std::string::npos)
          << st.message();
      EXPECT_EQ(bed.counters.counter(mre), 1u);
    }
    // Foreign identity: rejected in-enclave before any grant is consumed.
    {
      sdk::SnapshotEnvelope e = *envelope;
      e.mrenclave[0] ^= 1;
      Status st = attempt(sdk::encode_snapshot_envelope(e),
                          /*reaches_service=*/false);
      EXPECT_EQ(st.code(), ErrorCode::kAuthFailure) << st.to_string();
      EXPECT_EQ(bed.counters.counter(mre), 1u);
    }
    // Wrong counter: the service refuses the OPENGRANT without advancing.
    {
      sdk::SnapshotEnvelope e = *envelope;
      e.counter += 1;
      Status st = attempt(sdk::encode_snapshot_envelope(e),
                          /*reaches_service=*/true);
      EXPECT_EQ(st.code(), ErrorCode::kPermissionDenied) << st.to_string();
      EXPECT_EQ(bed.counters.counter(mre), 1u);
    }
    // Corrupt payload: the OPENGRANT goes through (fail-closed: the epoch is
    // burned), but the per-chunk MAC rejects it — naming EXACTLY the chunk
    // that failed, so an operator can tell a bit-rotted object from a
    // wholesale substitution. Corrupt a known chunk (the last) rather than a
    // blind byte so the index in the message is predictable.
    {
      sdk::SnapshotEnvelope e = *envelope;
      auto parsed = sdk::parse_chunked_checkpoint(e.inner);
      ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
      size_t victim = parsed->sealed_chunks.size() - 1;
      Bytes& sealed = parsed->sealed_chunks[victim];
      sealed[sealed.size() / 2] ^= 1;
      e.inner = sdk::encode_chunked_checkpoint(parsed->header,
                                               parsed->sealed_chunks,
                                               parsed->root);
      Status st = attempt(sdk::encode_snapshot_envelope(e),
                          /*reaches_service=*/true);
      EXPECT_EQ(st.code(), ErrorCode::kIntegrityViolation) << st.to_string();
      EXPECT_NE(st.message().find("chunk " + std::to_string(victim) + " of " +
                                  std::to_string(parsed->header.chunk_count)),
                std::string::npos)
          << st.message();
      EXPECT_EQ(bed.counters.counter(mre), 2u);
    }
    // The enclave itself kept running through all four rejections...
    EXPECT_EQ(bed.sum(ctx, *host), 9u);
    // ...but the burned epoch means it is now a stale fork: its next counter
    // interaction fences it (at-most-one-live-lease). From here on any
    // entered worker spins forever — the paper's self-destroy mechanism —
    // so the mailbox reply is the last word we get from it.
    auto id2 = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                              bed.opts());
    EXPECT_EQ(id2.status().code(), ErrorCode::kAborted)
        << id2.status().to_string();
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(StoreSnapshot, EnclaveKeepsRunningWhileSnapshotIsTaken) {
  StoreBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 4).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    // No parking, no self-destroy, no counter advance: snapshots are reads.
    ASSERT_TRUE(bed.bump(ctx, *host, 4).ok());
    EXPECT_EQ(bed.sum(ctx, *host), 8u);
    EXPECT_EQ(bed.counters.counter(mre), 1u);
    // Content addressing: a second snapshot of changed state is a new
    // object; the head pointer moved with it.
    auto id2 = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                              bed.opts());
    ASSERT_TRUE(id2.ok());
    EXPECT_NE(*id, *id2);
    EXPECT_EQ(bed.snapshots.object_count(), 2u);
    auto head = bed.snapshots.head(ctx, Bytes(mre.begin(), mre.end()));
    ASSERT_TRUE(head.ok());
    EXPECT_EQ(*head, *id2);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

}  // namespace
}  // namespace mig
