// Incremental checkpoint (wire format v3) tests: baseline + delta + final
// round trips across machines, zero-elision and content-dedup accounting,
// stale/reordered/tampered container rejection, the session-level
// incremental VM migration, and a seeded property sweep asserting the
// target can never accept state that differs from the source's quiescent
// state no matter how worker writes, delta rounds, aborts and retries
// interleave.
#include <gtest/gtest.h>

#include <random>

#include "migration/session.h"
#include "sdk/chunk_wire.h"
#include "util/serde.h"

namespace mig::migration {
namespace {

using sdk::ControlCmd;

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallGet = 3;
constexpr uint64_t kEcallFillHeap = 4;

// Counter in the data page plus a heap-page filler (for elision/dedup
// scenarios: pages sharing a fill byte have identical content).
std::shared_ptr<sdk::EnclaveProgram> make_delta_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("delta-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.work(200);
    env.write_u64(off, env.read_u64(off) + delta);
    Writer w;
    w.u64(env.read_u64(off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallFillHeap, "fill_heap",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t page = r.u64();
    uint8_t fill = static_cast<uint8_t>(r.u64());
    env.work(500);
    env.write_bytes(env.layout().heap_off + page * sgx::kPageSize,
                    Bytes(sgx::kPageSize, fill));
    return OkStatus();
  });
  return prog;
}

struct DeltaBed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  guestos::GuestOs guest;
  guestos::Process* process;
  crypto::Drbg rng{to_bytes("delta-bed")};
  crypto::SigKeyPair dev_signer;
  EnclaveOwner owner;

  DeltaBed()
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        guest(*source, vm),
        process(&guest.create_process("app")),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))) {
    crypto::Drbg srng(to_bytes("dev-signer"));
    dev_signer = crypto::sig_keygen(srng);
  }

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t heap_pages = 4) {
    sdk::BuildInput in;
    in.program = make_delta_program();
    in.layout.num_workers = 2;
    in.layout.heap_pages = heap_pages;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(
        guest, *process, std::move(built), world.ias(),
        rng.fork(to_bytes("host")));
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

uint64_t add(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t delta) {
  Writer w;
  w.u64(delta);
  auto r = host.ecall(ctx, 0, kEcallAdd, w.data());
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  if (!r.ok()) return 0;
  Reader rd(*r);
  return rd.u64();
}

void fill_heap(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t page,
               uint8_t fill) {
  Writer w;
  w.u64(page);
  w.u64(fill);
  ASSERT_TRUE(host.ecall(ctx, 1, kEcallFillHeap, w.data()).ok());
}

// ---- source-side dump behavior ---------------------------------------------

TEST(DeltaCheckpoint, RoundTripPreservesStateAcrossMachines) {
  DeltaBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 1234);

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    std::vector<Bytes> segments;

    auto base = migrator.dump_baseline(ctx, *host, opts);
    ASSERT_TRUE(base.ok()) << base.status().to_string();
    EXPECT_GT(base->stats.pages_sent, 0u);
    // Baseline covers every checkpointable page: meta + data + heap.
    EXPECT_EQ(base->stats.pages_scanned, base->stats.pages_sent);
    segments.push_back(std::move(base->segment));

    // The workers keep running between dumps; their writes re-dirty pages.
    add(ctx, *host, 100);
    auto d1 = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/false);
    ASSERT_TRUE(d1.ok()) << d1.status().to_string();
    EXPECT_FALSE(d1->segment.empty());
    EXPECT_GT(d1->stats.pages_sent, 0u);
    // The delta re-ships only what moved, never the whole page set.
    EXPECT_LT(d1->stats.pages_sent, base->stats.pages_sent);
    segments.push_back(std::move(d1->segment));

    add(ctx, *host, 6);
    auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok()) << fin.status().to_string();
    EXPECT_LT(fin->stats.pages_sent, base->stats.pages_sent);
    segments.push_back(std::move(fin->segment));

    Bytes container = sdk::encode_delta_container(segments);
    ASSERT_TRUE(sdk::is_delta_checkpoint(container));

    auto source_inst = host->detach_instance();
    sgx::EnclaveId source_eid = source_inst->eid;
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                 std::move(container), opts);
    ASSERT_TRUE(st.ok()) << st.to_string();

    EXPECT_EQ(host->instance()->machine, bed.target);
    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 1340u);
    EXPECT_FALSE(bed.source->hw().enclave_exists(source_eid));
  });
}

TEST(DeltaCheckpoint, QuietDeltaShipsNothing) {
  DeltaBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    ASSERT_TRUE(migrator.dump_baseline(ctx, *host, opts).ok());
    // Nothing was written since the baseline: no segment at all goes on the
    // wire (and the chain/segment counter stay untouched).
    auto quiet = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/false);
    ASSERT_TRUE(quiet.ok()) << quiet.status().to_string();
    EXPECT_TRUE(quiet->segment.empty());
    EXPECT_EQ(quiet->stats.pages_sent, 0u);
    EXPECT_EQ(quiet->stats.wire_bytes, 0u);
    // Cleanup so the executor can drain: cancel the session.
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
  });
}

TEST(DeltaCheckpoint, ZeroElisionAndDedupShrinkTheWire) {
  DeltaBed bed;
  auto host = bed.make_host(/*heap_pages=*/8);
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;

    // The heap starts zeroed: the baseline elides all 8 heap pages.
    auto base = migrator.dump_baseline(ctx, *host, opts);
    ASSERT_TRUE(base.ok()) << base.status().to_string();
    EXPECT_GE(base->stats.pages_zero, 8u);
    EXPECT_GE(base->stats.elided_bytes, 8 * sgx::kPageSize);

    // Two heap pages get identical content: the first ships as data, the
    // second as a 32-byte dup reference.
    fill_heap(ctx, *host, 0, 0x7f);
    fill_heap(ctx, *host, 1, 0x7f);
    auto d1 = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/false);
    ASSERT_TRUE(d1.ok()) << d1.status().to_string();
    EXPECT_GE(d1->stats.pages_deduped, 1u);
    EXPECT_GE(d1->stats.deduped_bytes, sgx::kPageSize);

    // Dedup and elision must reconstruct correctly on the target.
    add(ctx, *host, 42);
    std::vector<Bytes> segments;
    segments.push_back(std::move(base->segment));
    segments.push_back(std::move(d1->segment));
    auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok());
    segments.push_back(std::move(fin->segment));

    auto source_inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    ASSERT_TRUE(migrator.restore(ctx, *host, *bed.source, source_inst,
                                 sdk::encode_delta_container(segments), opts)
                    .ok());
    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok());
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 42u);
  });
}

TEST(DeltaCheckpoint, DeltaWithoutBaselineIsRefused) {
  DeltaBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kDumpDelta;
    sdk::ControlReply reply = host->mailbox().post(ctx, cmd);
    EXPECT_EQ(reply.status.code(), ErrorCode::kFailedPrecondition);
  });
}

// ---- target-side rejection --------------------------------------------------

// Builds an honest three-segment incremental checkpoint, lets `mutate`
// corrupt the segment list, and returns the target-side restore status.
Status restore_mutated(
    const std::function<void(std::vector<Bytes>&)>& mutate) {
  DeltaBed bed;
  auto host = bed.make_host();
  Status restore_status = OkStatus();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 11);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    std::vector<Bytes> segments;
    auto base = migrator.dump_baseline(ctx, *host, opts);
    ASSERT_TRUE(base.ok());
    segments.push_back(std::move(base->segment));
    add(ctx, *host, 22);
    auto d1 = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/false);
    ASSERT_TRUE(d1.ok());
    segments.push_back(std::move(d1->segment));
    auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok());
    segments.push_back(std::move(fin->segment));

    mutate(segments);
    Bytes container = sdk::encode_delta_container(segments);

    auto source_inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    restore_status = migrator.restore(ctx, *host, *bed.source, source_inst,
                                      std::move(container), opts);
  });
  return restore_status;
}

TEST(DeltaCheckpoint, ReorderedSegmentsAreRejected) {
  Status st = restore_mutated([](std::vector<Bytes>& segs) {
    std::swap(segs[0], segs[1]);
  });
  EXPECT_FALSE(st.ok());
}

TEST(DeltaCheckpoint, ReplayedSegmentIsRejected) {
  Status st = restore_mutated([](std::vector<Bytes>& segs) {
    segs.insert(segs.begin() + 1, segs[1]);  // delta round played twice
  });
  EXPECT_FALSE(st.ok());
}

TEST(DeltaCheckpoint, TruncatedContainerIsRejected) {
  Status st = restore_mutated([](std::vector<Bytes>& segs) {
    segs.pop_back();  // the final (quiescent) segment never arrives
  });
  EXPECT_FALSE(st.ok());
}

TEST(DeltaCheckpoint, TamperedRecordIsRejected) {
  Status st = restore_mutated([](std::vector<Bytes>& segs) {
    segs[0][segs[0].size() / 2] ^= 0x20;
  });
  EXPECT_FALSE(st.ok());
}

// ---- session-level incremental migration ------------------------------------

TEST(DeltaSession, IncrementalVmMigrationEndToEnd) {
  DeltaBed bed;
  auto host = bed.make_host();
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  uint64_t final_counter = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);

    // A live workload dirtying enclave pages throughout pre-copy.
    bed.process->spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
      for (int i = 0; i < 2000; ++i) {
        Writer w;
        w.u64(1);
        if (!host->ecall(wctx, 0, kEcallAdd, w.data()).ok()) break;
        wctx.sleep(1'000'000);
      }
    });

    VmMigrationSession::Options opts;
    opts.incremental = true;
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, opts);
    session.manage(*host);
    ctx.sleep(10'000'000);
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();

    EXPECT_EQ(host->instance()->machine, bed.target);
    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    final_counter = rd.u64();
  });
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  // The baseline rode a running-VM round; the stop-phase residual is small.
  EXPECT_GE(report->delta_rounds, 1u);
  EXPECT_GT(report->delta_wire_bytes, 0u);
  EXPECT_GT(report->delta_residual_pages, 0u);
  EXPECT_GT(final_counter, 10u);
}

// ---- property sweep ---------------------------------------------------------

// Random interleavings of worker writes, delta rounds, retried (no-op)
// rounds, and abort+restart must never let the target accept a checkpoint
// that differs from the source's quiescent state. 10 seeds, fully
// deterministic in virtual time.
TEST(DeltaProperty, InterleavingsNeverDivergeFromQuiescentState) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 prng(seed);
    DeltaBed bed;
    auto host = bed.make_host();
    bed.run([&](sim::ThreadCtx& ctx) {
      ASSERT_TRUE(host->create(ctx).ok());
      bed.provision(ctx, *host);
      EnclaveMigrator migrator(bed.world);
      EnclaveMigrateOptions opts;

      uint64_t expected = 0;
      std::vector<Bytes> segments;
      auto baseline = [&]() {
        segments.clear();
        auto base = migrator.dump_baseline(ctx, *host, opts);
        ASSERT_TRUE(base.ok()) << base.status().to_string();
        segments.push_back(std::move(base->segment));
      };
      baseline();

      uint64_t ops = 4 + prng() % 8;
      for (uint64_t i = 0; i < ops; ++i) {
        switch (prng() % 4) {
          case 0: {  // worker writes
            uint64_t d = 1 + prng() % 1000;
            expected += d;
            add(ctx, *host, d);
            if (prng() % 2 == 0)
              fill_heap(ctx, *host, prng() % 4,
                        static_cast<uint8_t>(prng() % 256));
            break;
          }
          case 1: {  // delta round
            auto d = migrator.dump_delta(ctx, *host, opts, false);
            ASSERT_TRUE(d.ok()) << d.status().to_string();
            if (!d->segment.empty())
              segments.push_back(std::move(d->segment));
            break;
          }
          case 2: {  // "retry": an immediate re-dump ships nothing new twice
            auto d1 = migrator.dump_delta(ctx, *host, opts, false);
            ASSERT_TRUE(d1.ok());
            if (!d1->segment.empty())
              segments.push_back(std::move(d1->segment));
            auto d2 = migrator.dump_delta(ctx, *host, opts, false);
            ASSERT_TRUE(d2.ok());
            EXPECT_TRUE(d2->segment.empty())
                << "re-dump with no writes in between shipped pages";
            break;
          }
          case 3: {  // abort + restart: cancel kills the session, re-baseline
            ControlCmd cancel;
            cancel.type = ControlCmd::Type::kCancelMigration;
            ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
            host->finish_migration(ctx, {});
            baseline();
            break;
          }
        }
      }

      auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
      ASSERT_TRUE(fin.ok()) << fin.status().to_string();
      segments.push_back(std::move(fin->segment));

      auto source_inst = host->detach_instance();
      bed.guest.set_migration_target(*bed.target);
      ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
      Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                   sdk::encode_delta_container(segments),
                                   opts);
      ASSERT_TRUE(st.ok()) << st.to_string();
      auto got = host->ecall(ctx, 0, kEcallGet, {});
      ASSERT_TRUE(got.ok()) << got.status().to_string();
      Reader rd(*got);
      // The restored counter is exactly the source's quiescent value.
      EXPECT_EQ(rd.u64(), expected);
    });
  }
}

// ---- defensive decoder hardening (MGS1 / MGV3 / MGC2) -------------------------
// Pure wire-level negatives: hostile blobs must be refused by the parse
// alone, before any key material or enclave state is involved. Each test
// first round-trips a well-formed blob as a positive control so a framing
// mistake in the hand-built hostile variant cannot pass as a rejection.

TEST(ChunkWireNegative, ZeroLengthBlobIsRefusedByEveryDecoder) {
  Bytes empty;
  EXPECT_FALSE(sdk::is_chunked_checkpoint(empty));
  EXPECT_FALSE(sdk::is_snapshot_envelope(empty));
  EXPECT_FALSE(sdk::is_delta_segment(empty));
  EXPECT_FALSE(sdk::is_delta_checkpoint(empty));
  EXPECT_FALSE(sdk::is_page_frame(empty));
  EXPECT_FALSE(sdk::parse_chunked_checkpoint(empty).ok());
  EXPECT_FALSE(sdk::parse_snapshot_envelope(empty).ok());
  EXPECT_FALSE(sdk::parse_delta_segment(empty).ok());
  EXPECT_FALSE(sdk::parse_delta_container(empty).ok());
  EXPECT_FALSE(sdk::parse_page_request(empty).ok());
  EXPECT_FALSE(sdk::parse_page_reply(empty).ok());
}

TEST(ChunkWireNegative, DuplicateChunkIndexIsRefused) {
  sdk::ChunkedHeader h;
  h.chunk_bytes = 16;
  h.chunk_count = 2;
  h.total_bytes = 32;
  std::vector<Bytes> chunks = {to_bytes("sealed-chunk-zero"),
                               to_bytes("sealed-chunk-one!")};
  Bytes root(32, 0xab);
  ASSERT_TRUE(sdk::parse_chunked_checkpoint(
                  sdk::encode_chunked_checkpoint(h, chunks, root))
                  .ok());

  // Same layout, but the second record claims index 0 again: a spliced blob
  // trying to make one ciphertext count twice.
  Writer w;
  w.raw(to_bytes("MGC2"));
  w.u8(static_cast<uint8_t>(h.alg));
  w.u64(h.chunk_bytes);
  w.u64(h.chunk_count);
  w.u64(h.total_bytes);
  w.u64(0);
  w.bytes(chunks[0]);
  w.u64(0);  // duplicate index, should be 1
  w.bytes(chunks[1]);
  w.raw(root);
  auto dup = sdk::parse_chunked_checkpoint(w.data());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), ErrorCode::kIntegrityViolation);
  EXPECT_NE(dup.status().message().find("bad chunk record 1"),
            std::string::npos)
      << dup.status().message();
}

TEST(ChunkWireNegative, SegmentCountOffByOneIsRefusedBothWays) {
  Bytes s0 = to_bytes("segment-zero-bytes");
  Bytes s1 = to_bytes("segment-one-bytes!");
  ASSERT_TRUE(
      sdk::parse_delta_container(sdk::encode_delta_container({s0, s1})).ok());

  // Header promises one segment MORE than the body carries.
  Writer over;
  over.raw(to_bytes("MGV3"));
  over.u64(3);
  over.bytes(s0);
  over.bytes(s1);
  auto o = sdk::parse_delta_container(over.data());
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.status().code(), ErrorCode::kIntegrityViolation);
  EXPECT_NE(o.status().message().find("truncated at segment 2"),
            std::string::npos)
      << o.status().message();

  // Header promises one segment LESS: the extra one is trailing garbage a
  // lazy parser would silently drop (and with it, the final segment).
  Writer under;
  under.raw(to_bytes("MGV3"));
  under.u64(1);
  under.bytes(s0);
  under.bytes(s1);
  EXPECT_FALSE(sdk::parse_delta_container(under.data()).ok());

  // Zero segments is not a checkpoint at all.
  Writer zero;
  zero.raw(to_bytes("MGV3"));
  zero.u64(0);
  auto z = sdk::parse_delta_container(zero.data());
  ASSERT_FALSE(z.ok());
  EXPECT_NE(z.status().message().find("absurd segment count"),
            std::string::npos)
      << z.status().message();
}

TEST(ChunkWireNegative, SnapshotEnvelopeNegatives) {
  sdk::SnapshotEnvelope env;
  env.mrenclave = Bytes(32, 0x5c);
  env.counter = 7;
  env.inner = to_bytes("sealed-checkpoint-bytes");
  Bytes good = sdk::encode_snapshot_envelope(env);
  ASSERT_TRUE(sdk::parse_snapshot_envelope(good).ok());

  // Counter 0 is never granted by the counter service, so an envelope
  // claiming it is hostile by construction (the encoder refuses to even
  // build one — hand-craft it).
  Writer w;
  w.raw(to_bytes("MGS1"));
  w.raw(env.mrenclave);
  w.u64(0);
  w.bytes(env.inner);
  auto zero = sdk::parse_snapshot_envelope(w.data());
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("counter 0"), std::string::npos)
      << zero.status().message();

  Bytes none;
  Writer e;
  e.raw(to_bytes("MGS1"));
  e.raw(env.mrenclave);
  e.u64(7);
  e.bytes(none);
  auto empty_inner = sdk::parse_snapshot_envelope(e.data());
  ASSERT_FALSE(empty_inner.ok());
  EXPECT_NE(empty_inner.status().message().find("empty sealed payload"),
            std::string::npos)
      << empty_inner.status().message();

  Bytes cut = good;
  cut.pop_back();
  EXPECT_FALSE(sdk::parse_snapshot_envelope(cut).ok());
  Bytes extra = good;
  extra.push_back(0);
  EXPECT_FALSE(sdk::parse_snapshot_envelope(extra).ok());
}

}  // namespace
}  // namespace mig::migration
