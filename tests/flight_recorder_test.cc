// Flight recorder tests: the bounded ring keeps the newest records and
// counts evictions, dumps are deterministic JSON, and — the point of the
// subsystem — a fault-injected migration abort leaves records that name the
// failing phase, byte-identically across identical seeds. Also the satellite
// guarantee: traces captured across abort paths stay well-formed (balanced
// B/E spans, per-thread monotone clocks) even when FaultPlan cancellation
// unwinds the protocol mid-flight.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "migration/session.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "util/serde.h"

namespace mig {
namespace {

// Wire tags of the migration protocol (mirrors live_migration.cc).
constexpr uint8_t kTagStop = 3;

bool frame_has_tag(const Bytes& m, uint8_t tag) {
  return m.size() == 17 && m[0] == tag;
}

// ---------------------------------------------------------------------------
// Ring mechanics.

TEST(FlightRecorderRing, KeepsNewestRecordsAndCountsDropped) {
  obs::FlightRecorder& fr = obs::flightrec();
  fr.clear();
  const size_t n = obs::FlightRecorder::kCapacity + 72;
  for (size_t i = 0; i < n; ++i) {
    fr.record(/*ts_ns=*/i * 10, /*tid=*/7, "test", "event",
              "i=" + std::to_string(i));
  }
  EXPECT_EQ(fr.size(), obs::FlightRecorder::kCapacity);
  EXPECT_EQ(fr.total_recorded(), n);
  EXPECT_EQ(fr.dropped(), 72u);

  std::vector<obs::FlightRecorder::Record> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), obs::FlightRecorder::kCapacity);
  // Oldest retained record is #72; seq and ts must be ordered oldest-first.
  EXPECT_EQ(snap.front().seq, 72u);
  EXPECT_EQ(snap.front().detail, "i=72");
  EXPECT_EQ(snap.back().seq, n - 1);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, snap[i - 1].seq + 1);
    EXPECT_GT(snap[i].ts_ns, snap[i - 1].ts_ns);
  }
  // contains() only sees retained records: #0..#71 were evicted.
  EXPECT_TRUE(fr.contains("i=72"));
  EXPECT_TRUE(fr.contains("i=199"));
  EXPECT_FALSE(fr.contains("i=71"));

  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorderRing, DumpIsParseableJsonWithEscaping) {
  obs::FlightRecorder& fr = obs::flightrec();
  fr.clear();
  fr.record(1000, 3, "hv.source", "abort", "phase=\"stop\"\nline2");
  fr.record(2000, 4, "sdk.control", "cmd_failed");
  auto j = obs::Json::parse(fr.dump());
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  EXPECT_EQ(j->get("dropped")->as_u64(), 0u);
  const obs::Json* recs = j->get("records");
  ASSERT_NE(recs, nullptr);
  ASSERT_EQ(recs->items().size(), 2u);
  const obs::Json& r0 = recs->items()[0];
  EXPECT_EQ(r0.get("seq")->as_u64(), 0u);
  EXPECT_EQ(r0.get("ts_ns")->as_u64(), 1000u);
  EXPECT_EQ(r0.get("tid")->as_u64(), 3u);
  EXPECT_EQ(r0.get("where")->as_string(), "hv.source");
  EXPECT_EQ(r0.get("what")->as_string(), "abort");
  EXPECT_EQ(r0.get("detail")->as_string(), "phase=\"stop\"\nline2");
  EXPECT_EQ(recs->items()[1].get("detail")->as_string(), "");
  fr.clear();
}

// ---------------------------------------------------------------------------
// Fault-injected aborts name the failing phase, deterministically.

struct EngineRun {
  Result<hv::MigrationReport> source = Error(ErrorCode::kInternal, "unset");
  Result<hv::MigrationReport> target = Error(ErrorCode::kInternal, "unset");
  std::string flight_dump;
};

EngineRun run_engine(const std::function<void(sim::Channel&)>& inject) {
  obs::flightrec().clear();
  hv::World world(4);
  world.add_machine("src");
  world.add_machine("dst");
  auto channel = world.make_channel();
  if (inject) inject(*channel);
  hv::VmConfig cfg;
  cfg.memory_mb = 64;
  hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
  EngineRun out;
  world.executor().spawn("src", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    out.source = engine.migrate_source(c, vm, channel->a());
  });
  world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    out.target = engine.migrate_target(c, vm, channel->b());
  });
  EXPECT_TRUE(world.executor().run());
  out.flight_dump = obs::flightrec().dump();
  return out;
}

TEST(FlightRecorderAbort, CleanMigrationRecordsNothing) {
  EngineRun r = run_engine(nullptr);
  ASSERT_TRUE(r.source.ok()) << r.source.status().to_string();
  EXPECT_EQ(obs::flightrec().size(), 0u)
      << "clean run polluted the ring: " << r.flight_dump;
}

TEST(FlightRecorderAbort, SeverMidPrecopyNamesThePrecopyPhase) {
  sim::FaultPlan plan;
  plan.sever_at_message(2);  // round 0 lands; round 1 kills the link
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
  ASSERT_FALSE(r.source.ok());
  const obs::FlightRecorder& fr = obs::flightrec();
  EXPECT_GT(fr.size(), 0u) << "abort left no forensics";
  EXPECT_TRUE(fr.contains("hv.source")) << r.flight_dump;
  EXPECT_TRUE(fr.contains("phase=precopy")) << r.flight_dump;
  EXPECT_TRUE(fr.contains("hv.target")) << r.flight_dump;
  EXPECT_FALSE(fr.contains("phase=stop_and_copy")) << r.flight_dump;
}

TEST(FlightRecorderAbort, SeverAtStopNamesTheStopAndCopyPhase) {
  sim::FaultPlan plan;
  plan.sever_when([](const Bytes& m) { return frame_has_tag(m, kTagStop); });
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
  ASSERT_FALSE(r.source.ok());
  EXPECT_TRUE(obs::flightrec().contains("phase=stop_and_copy"))
      << r.flight_dump;
}

TEST(FlightRecorderAbort, IdenticalSeedsProduceByteIdenticalDumps) {
  auto sever_run = [] {
    sim::FaultPlan plan;
    plan.sever_at_message(2);
    return run_engine(
        [&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
  };
  EngineRun first = sever_run();
  EngineRun second = sever_run();
  ASSERT_FALSE(first.flight_dump.empty());
  EXPECT_EQ(first.flight_dump, second.flight_dump);
}

// ---------------------------------------------------------------------------
// Control-thread command failures land in the recorder.

constexpr uint64_t kEcallAdd = 1;

std::shared_ptr<sdk::EnclaveProgram> make_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("flightrec-prog");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + r.u64());
    return OkStatus();
  });
  return prog;
}

TEST(FlightRecorderControl, FailedCommandIsRecordedWithItsStatus) {
  obs::flightrec().clear();
  hv::World world(4);
  hv::Machine& m = world.add_machine("host");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(m, vm);
  crypto::Drbg rng(to_bytes("flightrec-bed"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_program();
  in.layout.num_workers = 2;
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("host")));

  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host.create(ctx).ok());
    // kFinishRestore with no restore in progress must fail — and the failure
    // must leave a record naming the command and the status.
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kFinishRestore;
    auto reply = host.mailbox().post(ctx, cmd);
    EXPECT_FALSE(reply.status.ok());
  });
  ASSERT_TRUE(world.executor().run());
  EXPECT_TRUE(obs::flightrec().contains("sdk.control"))
      << obs::flightrec().dump();
  EXPECT_TRUE(obs::flightrec().contains("ctl.finish_restore"))
      << obs::flightrec().dump();
  EXPECT_TRUE(obs::flightrec().contains("no restore in progress"))
      << obs::flightrec().dump();
}

// ---------------------------------------------------------------------------
// Satellite: traces captured across abort paths stay well-formed.

// Stack discipline per tid: every 'E' closes an open 'B', timestamps never
// go backwards on a thread, no span left open at the end of the capture.
void check_span_nesting(const std::string& chrome_json) {
  auto j = obs::Json::parse(chrome_json);
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  ASSERT_NE(j->get("traceEvents"), nullptr);
  std::map<uint64_t, std::vector<std::string>> stacks;
  std::map<uint64_t, double> last_ts;
  for (const obs::Json& e : j->get("traceEvents")->items()) {
    const std::string& ph = e.get("ph")->as_string();
    if (ph == "M") continue;
    uint64_t tid = e.get("tid")->as_u64();
    double ts = e.get("ts")->as_double();
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "clock went backwards on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(e.get("name")->as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "unmatched E on tid " << tid;
      EXPECT_EQ(e.get("name")->as_string(), stacks[tid].back());
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed span(s) on tid "
                               << tid << " (top: " << stack.back() << ")";
  }
}

TEST(FlightRecorderAbort, AbortedTracesStayBalancedWithMonotoneClocks) {
  // Three distinct cancellation points; each aborted capture must still be a
  // structurally valid trace (RAII spans unwind even on error paths).
  struct Case {
    const char* name;
    std::function<void(sim::FaultPlan&)> arm;
  };
  const Case cases[] = {
      {"sever mid-precopy", [](sim::FaultPlan& p) { p.sever_at_message(2); }},
      {"sever at stop",
       [](sim::FaultPlan& p) {
         p.sever_when([](const Bytes& m) { return frame_has_tag(m, kTagStop); });
       }},
      {"corrupt first frame",
       [](sim::FaultPlan& p) { p.corrupt_message(1); }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    obs::ScopedObservation capture;
    sim::FaultPlan plan;
    c.arm(plan);
    EngineRun r = run_engine(
        [&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
    EXPECT_FALSE(r.source.ok()) << "fault did not cancel the migration";
    check_span_nesting(obs::trace().chrome_json());
  }
}

}  // namespace
}  // namespace mig
