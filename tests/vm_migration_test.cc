// Full-stack VM migration tests: pre-copy + Fig. 8 enclave pipeline +
// per-enclave restore, with applications continuing across the move.
#include <gtest/gtest.h>

#include "migration/session.h"
#include "util/serde.h"

namespace mig::migration {
namespace {

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallGet = 3;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("vm-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + delta);
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

struct VmBed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  guestos::GuestOs guest;
  crypto::Drbg rng{to_bytes("vm-bed")};
  crypto::SigKeyPair dev_signer;
  EnclaveOwner owner;
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;

  VmBed()
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        guest(*source, vm),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))) {
    crypto::Drbg srng(to_bytes("dev"));
    dev_signer = crypto::sig_keygen(srng);
  }

  sdk::EnclaveHost& add_enclave(guestos::Process& proc) {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(),
        rng.fork(to_bytes("host"))));
    return *hosts.back();
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

TEST(VmMigration, FullPipelineWithEnclavesAndLiveWorkload) {
  VmBed bed;
  guestos::Process& proc = bed.guest.create_process("app");
  sdk::EnclaveHost& enc1 = bed.add_enclave(proc);
  sdk::EnclaveHost& enc2 = bed.add_enclave(proc);

  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  uint64_t final_counter = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(enc1.create(ctx).ok());
    ASSERT_TRUE(enc2.create(ctx).ok());
    bed.provision(ctx, enc1);
    bed.provision(ctx, enc2);

    // An application thread continuously bumping the counter — it will be
    // mid-flight when the migration happens and must carry on afterwards.
    proc.spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
      for (int i = 0; i < 2000; ++i) {
        Writer w;
        w.u64(1);
        auto r = enc1.ecall(wctx, 0, kEcallAdd, w.data());
        if (!r.ok()) break;
        wctx.sleep(1'000'000);
      }
    });

    VmMigrationSession::Options opts;
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, opts);
    session.manage(enc1);
    session.manage(enc2);
    ctx.sleep(10'000'000);  // let the workload run 10 ms
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();

    // Both enclaves now live on the target, state intact and usable.
    EXPECT_EQ(enc1.instance()->machine, bed.target);
    EXPECT_EQ(enc2.instance()->machine, bed.target);
    Writer w;
    w.u64(100);
    auto r2 = enc2.ecall(ctx, 0, kEcallAdd, w.data());
    ASSERT_TRUE(r2.ok());
    Reader rd2(*r2);
    EXPECT_EQ(rd2.u64(), 100u);
    auto r1 = enc1.ecall(ctx, 1, kEcallGet, {});
    ASSERT_TRUE(r1.ok());
    Reader rd1(*r1);
    final_counter = rd1.u64();
  });
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  EXPECT_GT(report->enclave_prepare_ns, 0u);
  EXPECT_GT(report->enclave_restore_ns, 0u);
  EXPECT_GT(report->enclave_extra_bytes, 0u);
  EXPECT_GT(report->downtime_ns, 1e6);
  EXPECT_LT(report->downtime_ns, 50e6);
  // The pump thread kept incrementing across the migration.
  EXPECT_GT(final_counter, 10u);
}

TEST(VmMigration, AgentOptimizationEndToEnd) {
  VmBed bed;
  hv::Vm target_host_vm(hv::VmConfig{.name = "target-host"}, hv::DirtyModel{});
  guestos::GuestOs target_host_os(*bed.target, target_host_vm);
  guestos::Process& proc = bed.guest.create_process("app");
  sdk::EnclaveHost& enc = bed.add_enclave(proc);

  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(enc.create(ctx).ok());
    bed.provision(ctx, enc);
    Writer w;
    w.u64(55);
    ASSERT_TRUE(enc.ecall(ctx, 0, kEcallAdd, w.data()).ok());

    VmMigrationSession::Options opts;
    opts.use_agent = true;
    opts.target_host_os = &target_host_os;
    opts.dev_signer = bed.dev_signer;
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, opts);
    session.manage(enc);
    auto report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();

    auto got = enc.ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok());
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 55u);
  });
}

TEST(VmMigration, EnclavesAddMeasurableOverhead) {
  // The Fig. 10(b)/(c)/(d) substrate: migrating the same VM with enclaves
  // costs more time, downtime and traffic than without.
  auto run_plain = [] {
    hv::World world(4);
    world.add_machine("src");
    world.add_machine("dst");
    auto channel = world.make_channel();
    hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
    hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
    Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "x");
    world.executor().spawn("src", [&](sim::ThreadCtx& c) {
      report = engine.migrate_source(c, vm, channel->a());
    });
    world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
      hv::Vm dst(hv::VmConfig{}, hv::DirtyModel{});
      (void)engine.migrate_target(c, dst, channel->b());
    });
    EXPECT_TRUE(world.executor().run());
    return *report;
  };
  hv::MigrationReport plain = run_plain();

  VmBed bed;
  guestos::Process& proc = bed.guest.create_process("app");
  std::vector<sdk::EnclaveHost*> encs;
  for (int i = 0; i < 4; ++i) encs.push_back(&bed.add_enclave(proc));
  Result<hv::MigrationReport> with_enc = Error(ErrorCode::kInternal, "x");
  bed.run([&](sim::ThreadCtx& ctx) {
    for (auto* e : encs) {
      ASSERT_TRUE(e->create(ctx).ok());
      bed.provision(ctx, *e);
    }
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, VmMigrationSession::Options{});
    for (auto* e : encs) session.manage(*e);
    with_enc = session.run(ctx);
  });
  ASSERT_TRUE(with_enc.ok());
  EXPECT_GT(with_enc->total_ns, plain.total_ns);
  EXPECT_GT(with_enc->transferred_bytes, plain.transferred_bytes);
  // Overhead stays small (paper: ~2% at this enclave count).
  EXPECT_LT(with_enc->total_ns, plain.total_ns * 1.2);
}

}  // namespace
}  // namespace mig::migration
