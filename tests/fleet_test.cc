// Fleet-scale host evacuation tests: shared-uplink weighted fairness,
// admission control, priority + deadline preemption, retry/quarantine with
// the fail-closed store-restorability guarantee, and determinism under seed.
#include <gtest/gtest.h>

#include "fleet/fleet.h"
#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "sim/cost_model.h"
#include "sim/fault.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"
#include "util/serde.h"

namespace mig::fleet {
namespace {

// ---- shared-uplink fairness property ----------------------------------------

// Closed-loop sender: sends on the shaped a->b pipe and receives its own
// deliveries (send_sized never blocks; recv paces the loop at arrival times).
// A window of 2 keeps the link saturated across the propagation latency.
struct FairnessRun {
  uint64_t a_msgs = 0;
  uint64_t b_msgs = 0;
  uint64_t a_bytes = 0;
  uint64_t b_bytes = 0;
};

FairnessRun run_fairness(uint64_t weight_a, uint64_t weight_b,
                         uint64_t horizon_ns) {
  hv::World world(4);
  sim::SharedLink link(world.cost().net_ns_per_byte_x100);
  int fa = link.add_flow(weight_a);
  int fb = link.add_flow(weight_b);
  auto ca = world.make_channel();
  auto cb = world.make_channel();
  ca->a_to_b().attach_shared_link(&link, fa);
  cb->a_to_b().attach_shared_link(&link, fb);
  const uint64_t kMsgBytes = 256 * 1024;
  FairnessRun out;
  auto sender = [&](sim::Channel& ch, uint64_t& count) {
    return [&ch, &count, horizon_ns, kMsgBytes](sim::ThreadCtx& ctx) {
      sim::Channel::End tx = ch.a();
      sim::Channel::End rx = ch.b();
      tx.send_sized(ctx, to_bytes("m"), kMsgBytes);
      tx.send_sized(ctx, to_bytes("m"), kMsgBytes);
      for (;;) {
        rx.recv(ctx);
        ++count;
        if (ctx.now() >= horizon_ns) break;
        tx.send_sized(ctx, to_bytes("m"), kMsgBytes);
      }
    };
  };
  world.executor().spawn("flow-a", sender(*ca, out.a_msgs));
  world.executor().spawn("flow-b", sender(*cb, out.b_msgs));
  EXPECT_TRUE(world.executor().run());
  out.a_bytes = link.bytes_for(fa);
  out.b_bytes = link.bytes_for(fb);
  return out;
}

TEST(FleetSharedLink, WeightedSharesUnderContention) {
  // 3:1 weights, both flows saturating one link for ~600 ms.
  const uint64_t kHorizon = 600'000'000;
  FairnessRun r = run_fairness(3, 1, kHorizon);
  ASSERT_GT(r.b_msgs, 0u);
  double ratio = static_cast<double>(r.a_msgs) / r.b_msgs;
  // Weighted share honored within tolerance (ideal 3.0).
  EXPECT_GT(ratio, 2.2) << r.a_msgs << ":" << r.b_msgs;
  EXPECT_LT(ratio, 3.8) << r.a_msgs << ":" << r.b_msgs;
  // Work conservation: the contended link still moves ~all the bytes one
  // uncontended link would (each 256 KB message occupies ~7.9 ms of wire).
  const uint64_t kMsgWireNs =
      sim::per_byte_x100(sim::CostModel{}.net_ns_per_byte_x100, 256 * 1024);
  uint64_t ideal_slots = kHorizon / kMsgWireNs;
  EXPECT_GT(r.a_msgs + r.b_msgs, ideal_slots * 85 / 100);
  EXPECT_LE(r.a_msgs + r.b_msgs, ideal_slots + 4);
}

TEST(FleetSharedLink, EqualWeightsSplitEvenly) {
  FairnessRun r = run_fairness(1, 1, 400'000'000);
  ASSERT_GT(r.b_msgs, 0u);
  double ratio = static_cast<double>(r.a_msgs) / r.b_msgs;
  EXPECT_GT(ratio, 0.8) << r.a_msgs << ":" << r.b_msgs;
  EXPECT_LT(ratio, 1.25) << r.a_msgs << ":" << r.b_msgs;
}

TEST(FleetSharedLink, DeterministicUnderSeed) {
  FairnessRun r1 = run_fairness(3, 1, 300'000'000);
  FairnessRun r2 = run_fairness(3, 1, 300'000'000);
  EXPECT_EQ(r1.a_msgs, r2.a_msgs);
  EXPECT_EQ(r1.b_msgs, r2.b_msgs);
  EXPECT_EQ(r1.a_bytes, r2.a_bytes);
  EXPECT_EQ(r1.b_bytes, r2.b_bytes);
}

TEST(FleetSharedLink, SingleFlowPaysNoSharingTax) {
  // An uncontended flow on a shared link finishes exactly when a private
  // pipe would: the arbiter collapses to plain serialization.
  auto elapsed = [](bool shared) {
    hv::World world(4);
    sim::SharedLink link(world.cost().net_ns_per_byte_x100);
    auto ch = world.make_channel();
    if (shared) ch->a_to_b().attach_shared_link(&link, link.add_flow(2));
    uint64_t end_ns = 0;
    world.executor().spawn("flow", [&](sim::ThreadCtx& ctx) {
      sim::Channel::End tx = ch->a();
      sim::Channel::End rx = ch->b();
      for (int i = 0; i < 20; ++i) tx.send_sized(ctx, to_bytes("m"), 64 * 1024);
      for (int i = 0; i < 20; ++i) rx.recv(ctx);
      end_ns = ctx.now();
    });
    EXPECT_TRUE(world.executor().run());
    return end_ns;
  };
  EXPECT_EQ(elapsed(true), elapsed(false));
}

TEST(FleetSharedLink, ReleasedFlowSharesRedistribute) {
  // Two equal flows split the link; after one releases, the survivor's
  // pacing gate advances at the full link rate again. Drives the arbiter
  // directly: grants are a pure function of virtual time and call order.
  sim::SharedLink link(sim::CostModel{}.net_ns_per_byte_x100);
  int a = link.add_flow(1);
  int b = link.add_flow(1);
  constexpr uint64_t kMsg = 64 * 1024;
  const uint64_t tx = sim::per_byte_x100(link.rate_x100(), kMsg);

  auto ga1 = link.admit(a, kMsg, 0);
  (void)link.admit(b, kMsg, 0);
  auto ga2 = link.admit(a, kMsg, ga1.end_ns);
  // Contended: a owes b half the link, so its second start is paced out to
  // twice its own transmission time.
  EXPECT_EQ(ga2.start_ns, 2 * tx);

  link.release(b);
  auto ga3 = link.admit(a, kMsg, ga2.end_ns);
  auto ga4 = link.admit(a, kMsg, ga3.end_ns);
  // The last pre-release gate still delays ga3 (pacing debt is honored),
  // but from there on the survivor owns the wire: back-to-back, no gaps.
  EXPECT_EQ(ga3.start_ns, 4 * tx);
  EXPECT_EQ(ga4.start_ns, ga3.end_ns);
}

TEST(FleetSharedLink, UrgentLanePreemptsBulkBacklog) {
  // A stop-window (urgent) grant does not queue behind already-granted bulk
  // slots: it models packet-level priority queuing, serializing only against
  // other urgent traffic. Bulk admitted afterwards queues behind it.
  sim::SharedLink link(sim::CostModel{}.net_ns_per_byte_x100);
  int bulk = link.add_flow(1);
  int vip = link.add_flow(1);
  constexpr uint64_t kSmall = 64 * 1024;

  auto gb = link.admit(bulk, 8 * 1024 * 1024, 0);  // wire busy for a while
  auto gv1 = link.admit(vip, kSmall, 1'000, /*urgent=*/true);
  EXPECT_EQ(gv1.start_ns, 1'000u);  // immediate, mid-bulk
  EXPECT_LT(gv1.end_ns, gb.end_ns);
  auto gv2 = link.admit(vip, kSmall, 1'000, /*urgent=*/true);
  EXPECT_EQ(gv2.start_ns, gv1.end_ns);  // urgent serializes with urgent
  // Bulk keeps its granted schedule; new bulk lands after everything.
  auto gb2 = link.admit(bulk, kSmall, gb.end_ns);
  EXPECT_GE(gb2.start_ns, gb.end_ns);
}

// ---- evacuation scheduler ---------------------------------------------------

hv::VmConfig small_vm(const std::string& name) {
  hv::VmConfig c;
  c.name = name;
  c.vcpus = 2;
  c.memory_mb = 8;  // 2048 pages, half used: ~4 MB of round-0 wire
  c.used_fraction = 0.5;
  return c;
}

hv::DirtyModel small_dirty() {
  hv::DirtyModel d;
  d.pages_per_sec = 2'000;
  d.working_set_pages = 400;
  return d;
}

// A host with N plain (enclave-free) VMs awaiting evacuation.
struct PlainFleet {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Machine* target = &world.add_machine("dst");
  std::vector<std::unique_ptr<hv::Vm>> vms;
  std::vector<std::unique_ptr<guestos::GuestOs>> guests;

  void make_vms(size_t n, uint64_t memory_mb = 8) {
    for (size_t i = 0; i < n; ++i) {
      hv::VmConfig c = small_vm("vm" + std::to_string(vms.size()));
      c.memory_mb = memory_mb;
      vms.push_back(std::make_unique<hv::Vm>(c, small_dirty()));
      guests.push_back(std::make_unique<guestos::GuestOs>(*source, *vms.back()));
    }
  }

  Result<EvacuationReport> evacuate(FleetScheduler& sched) {
    Result<EvacuationReport> report = Error(ErrorCode::kInternal, "unset");
    world.executor().spawn("evacuate",
                           [&](sim::ThreadCtx& ctx) { report = sched.run(ctx); });
    EXPECT_TRUE(world.executor().run());
    return report;
  }
};

TEST(FleetEvacuation, DrainsAllVmsUnderAdmissionControl) {
  PlainFleet fleet;
  fleet.make_vms(6);
  EvacuationPlan plan;
  plan.max_concurrent = 3;
  FleetScheduler sched(fleet.world, plan);
  const Mode modes[] = {Mode::kPreCopy, Mode::kHybrid, Mode::kPostCopy};
  for (size_t i = 0; i < fleet.vms.size(); ++i) {
    VmPlan vp;
    vp.name = fleet.vms[i]->config().name;
    vp.mode = modes[i % 3];
    sched.add_vm(vp, *fleet.vms[i], *fleet.guests[i], *fleet.source,
                 *fleet.target);
  }
  auto report = fleet.evacuate(sched);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->migrated, 6u);
  EXPECT_EQ(report->quarantined, 0u);
  EXPECT_EQ(report->peak_concurrent, 3u);  // admission cap honored and used
  EXPECT_EQ(report->vms.size(), 6u);
  for (const VmOutcome& v : report->vms) {
    EXPECT_EQ(v.state, VmOutcome::State::kMigrated) << v.name;
    EXPECT_EQ(v.attempts, 1u) << v.name;
    EXPECT_TRUE(v.report.success) << v.name;
  }
  EXPECT_GT(report->downtime_p99_ns, 0u);
  EXPECT_GE(report->downtime_max_ns, report->downtime_p99_ns);
  EXPECT_GE(report->downtime_p99_ns, report->downtime_p50_ns);
  EXPECT_GT(report->total_ns, 0u);
}

TEST(FleetEvacuation, PriorityOrdersAdmission) {
  PlainFleet fleet;
  fleet.make_vms(3);
  EvacuationPlan plan;
  plan.max_concurrent = 1;  // serial: admission order fully visible
  FleetScheduler sched(fleet.world, plan);
  const uint64_t priorities[] = {0, 9, 5};  // registration order != priority
  for (size_t i = 0; i < fleet.vms.size(); ++i) {
    VmPlan vp;
    vp.name = fleet.vms[i]->config().name;
    vp.priority = priorities[i];
    sched.add_vm(vp, *fleet.vms[i], *fleet.guests[i], *fleet.source,
                 *fleet.target);
  }
  auto report = fleet.evacuate(sched);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->peak_concurrent, 1u);
  // vms[] is registration order; admission (== wait) order is by priority.
  const VmOutcome& p0 = report->vms[0];
  const VmOutcome& p9 = report->vms[1];
  const VmOutcome& p5 = report->vms[2];
  EXPECT_EQ(p9.wait_ns, 0u);
  EXPECT_GT(p5.wait_ns, p9.wait_ns);
  EXPECT_GT(p0.wait_ns, p5.wait_ns);
}

TEST(FleetEvacuation, DeadlineVmPreemptsLowerPriorityPrecopy) {
  PlainFleet fleet;
  // One fat low-priority VM (many pre-copy rounds) + one deadline-critical
  // small VM admitted alongside it.
  fleet.make_vms(1, /*memory_mb=*/64);
  fleet.make_vms(1, /*memory_mb=*/8);
  // Rebuild names for clarity.
  EvacuationPlan plan;
  plan.max_concurrent = 2;
  FleetScheduler sched(fleet.world, plan);
  VmPlan fat;
  fat.name = "fat";
  fat.priority = 0;
  fat.weight = 1;
  sched.add_vm(fat, *fleet.vms[0], *fleet.guests[0], *fleet.source,
               *fleet.target);
  VmPlan critical;
  critical.name = "critical";
  critical.priority = 10;
  critical.weight = 4;
  critical.deadline_ns = 30'000'000'000;  // 30 s: generous, must be met
  sched.add_vm(critical, *fleet.vms[1], *fleet.guests[1], *fleet.source,
               *fleet.target);
  auto report = fleet.evacuate(sched);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->migrated, 2u);
  // The critical VM's stop window paused the fat VM's pre-copy.
  EXPECT_GE(report->preemptions, 1u);
  EXPECT_EQ(report->deadlines_missed, 0u);
  EXPECT_TRUE(report->vms[1].deadline_met);
}

TEST(FleetEvacuation, RetryRecoversFromTransientFault) {
  PlainFleet fleet;
  fleet.make_vms(1);
  EvacuationPlan plan;
  FleetScheduler sched(fleet.world, plan);
  VmPlan vp;
  vp.name = "flaky";
  vp.max_attempts = 3;
  vp.retry_backoff_ns = 100'000'000;
  int attempt_channels = 0;
  sched.add_vm(vp, *fleet.vms[0], *fleet.guests[0], *fleet.source,
               *fleet.target, {},
               [&attempt_channels](sim::Channel& ch) {
                 // First attempt only: the link dies under round 0.
                 if (attempt_channels++ == 0) {
                   sim::FaultPlan().sever_at_message(1).install(ch.a_to_b());
                 }
               });
  auto report = fleet.evacuate(sched);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->migrated, 1u);
  EXPECT_EQ(report->retries, 1u);
  EXPECT_EQ(report->vms[0].attempts, 2u);
  EXPECT_EQ(report->vms[0].state, VmOutcome::State::kMigrated);
}

TEST(FleetEvacuation, ExhaustedRetriesQuarantineFailClosed) {
  PlainFleet fleet;
  fleet.make_vms(2);
  EvacuationPlan plan;
  plan.max_concurrent = 2;
  FleetScheduler sched(fleet.world, plan);
  VmPlan healthy;
  healthy.name = "healthy";
  sched.add_vm(healthy, *fleet.vms[0], *fleet.guests[0], *fleet.source,
               *fleet.target);
  VmPlan doomed;
  doomed.name = "doomed";
  doomed.max_attempts = 2;
  doomed.retry_backoff_ns = 100'000'000;
  sched.add_vm(doomed, *fleet.vms[1], *fleet.guests[1], *fleet.source,
               *fleet.target, {},
               [](sim::Channel& ch) {
                 // Every attempt: the link dies immediately.
                 sim::FaultPlan().sever_at_message(1).install(ch.a_to_b());
               });
  auto report = fleet.evacuate(sched);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->migrated, 1u);
  EXPECT_EQ(report->quarantined, 1u);
  ASSERT_EQ(report->quarantined_names().size(), 1u);
  EXPECT_EQ(report->quarantined_names()[0], "doomed");
  const VmOutcome& q = report->vms[1];
  EXPECT_EQ(q.attempts, 2u);
  EXPECT_FALSE(q.last_error.empty());
  // Fail closed = the VM never left: it is still running on the source.
  EXPECT_TRUE(fleet.vms[1]->running());
}

TEST(FleetEvacuation, DeterministicUnderSeed) {
  auto run_once = [] {
    PlainFleet fleet;
    fleet.make_vms(4);
    EvacuationPlan plan;
    plan.max_concurrent = 2;
    FleetScheduler sched(fleet.world, plan);
    for (size_t i = 0; i < fleet.vms.size(); ++i) {
      VmPlan vp;
      vp.name = fleet.vms[i]->config().name;
      vp.weight = 1 + i % 2;
      sched.add_vm(vp, *fleet.vms[i], *fleet.guests[i], *fleet.source,
                   *fleet.target);
    }
    auto report = fleet.evacuate(sched);
    EXPECT_TRUE(report.ok());
    return *report;
  };
  EvacuationReport r1 = run_once();
  EvacuationReport r2 = run_once();
  EXPECT_EQ(r1.total_ns, r2.total_ns);
  EXPECT_EQ(r1.downtime_p99_ns, r2.downtime_p99_ns);
  ASSERT_EQ(r1.vms.size(), r2.vms.size());
  for (size_t i = 0; i < r1.vms.size(); ++i) {
    EXPECT_EQ(r1.vms[i].wait_ns, r2.vms[i].wait_ns) << i;
    EXPECT_EQ(r1.vms[i].total_ns, r2.vms[i].total_ns) << i;
    EXPECT_EQ(r1.vms[i].downtime_ns, r2.vms[i].downtime_ns) << i;
    EXPECT_EQ(r1.vms[i].report.transferred_bytes,
              r2.vms[i].report.transferred_bytes)
        << i;
  }
}

// ---- quarantine keeps the store restorable ----------------------------------

constexpr uint64_t kEcallBump = 1;
constexpr uint64_t kEcallSum = 2;

std::shared_ptr<sdk::EnclaveProgram> make_prog(const char* name) {
  auto prog = std::make_shared<sdk::EnclaveProgram>(name);
  prog->add_ecall(kEcallBump, "bump", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    env.work(1000);
    uint64_t off = env.layout().data_off;
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallSum, "sum", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

// Two enclave-carrying VMs on one host, with counter service + store armed.
struct EnclaveFleet {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Machine* target = &world.add_machine("dst");
  crypto::Drbg rng{to_bytes("fleet-enc")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  store::CounterService counters{world.ias(), crypto::Drbg(to_bytes("ctr"))};
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator{world};

  std::vector<std::unique_ptr<hv::Vm>> vms;
  std::vector<std::unique_ptr<guestos::GuestOs>> guests;
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;

  // One VM + one enclave; distinct worker counts give the two enclaves
  // distinct measurements, so each has its own counter identity.
  void add_enclave_vm(const char* name, uint64_t workers) {
    vms.push_back(
        std::make_unique<hv::Vm>(small_vm(name), small_dirty()));
    guests.push_back(std::make_unique<guestos::GuestOs>(*source, *vms.back()));
    guestos::Process& proc = guests.back()->create_process("app");
    sdk::BuildInput in;
    in.program = make_prog(name);
    in.layout.num_workers = workers;
    in.counter_service_pk = counters.public_key();
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        *guests.back(), proc, std::move(built), world.ias(),
        rng.fork(to_bytes(name))));
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [this, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  migration::EnclaveMigrateOptions opts() {
    migration::EnclaveMigrateOptions o;
    o.counter_service = &counters;
    return o;
  }

  uint64_t sum(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto got = host.ecall(ctx, 0, kEcallSum, {});
    if (!got.ok()) return ~0ull;
    Reader r(*got);
    return r.u64();
  }
};

TEST(FleetQuarantine, SnapshotStaysRestorableAndCounterNeverAdvances) {
  EnclaveFleet fleet;
  fleet.add_enclave_vm("clean", 1);
  fleet.add_enclave_vm("cursed", 2);
  crypto::Digest clean_mre = fleet.hosts[0]->image().measure();
  crypto::Digest cursed_mre = fleet.hosts[1]->image().measure();

  bool checked = false;
  fleet.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    for (auto& h : fleet.hosts) {
      ASSERT_TRUE(h->create(ctx).ok());
      fleet.provision(ctx, *h);
    }
    Writer w;
    w.u64(41);
    ASSERT_TRUE(fleet.hosts[1]->ecall(ctx, 0, kEcallBump, w.data()).ok());

    // Pre-evacuation safety snapshot of the cursed VM's enclave.
    auto snap = fleet.migrator.snapshot_to_store(ctx, *fleet.hosts[1],
                                                 fleet.snapshots, fleet.opts());
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    uint64_t cursed_ctr_before = fleet.counters.counter(cursed_mre);
    uint64_t clean_ctr_before = fleet.counters.counter(clean_mre);

    EvacuationPlan plan;
    plan.max_concurrent = 2;
    plan.counter_service = &fleet.counters;
    FleetScheduler sched(fleet.world, plan);
    VmPlan clean;
    clean.name = "clean";
    sched.add_vm(clean, *fleet.vms[0], *fleet.guests[0], *fleet.source,
                 *fleet.target, {fleet.hosts[0].get()});
    VmPlan cursed;
    cursed.name = "cursed";
    cursed.max_attempts = 2;
    cursed.retry_backoff_ns = 100'000'000;
    sched.add_vm(cursed, *fleet.vms[1], *fleet.guests[1], *fleet.source,
                 *fleet.target, {fleet.hosts[1].get()},
                 [](sim::Channel& ch) {
                   sim::FaultPlan().sever_at_message(1).install(ch.a_to_b());
                 });
    auto report = sched.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report->migrated, 1u);
    EXPECT_EQ(report->quarantined, 1u);
    EXPECT_EQ(report->quarantined_names(), std::vector<std::string>{"cursed"});

    // The clean VM committed: its enclave is on the target and its counter
    // ADVANCEd (pre-migration snapshots of it are dead).
    EXPECT_EQ(fleet.hosts[0]->instance()->machine, fleet.target);
    EXPECT_GT(fleet.counters.counter(clean_mre), clean_ctr_before);

    // The quarantined VM failed CLOSED: no attempt advanced its counter, so
    // the pre-evacuation snapshot is still the restorable head.
    EXPECT_EQ(fleet.counters.counter(cursed_mre), cursed_ctr_before);
    EXPECT_EQ(fleet.hosts[1]->instance()->machine, fleet.source);

    // Prove restorability: the host dies (maintenance went ahead anyway) and
    // the enclave comes back from the store on the target, state intact.
    ASSERT_TRUE(fleet.hosts[1]->destroy(ctx).ok());
    fleet.guests[1]->set_migration_target(*fleet.target);
    ASSERT_TRUE(fleet.guests[1]->resume_enclaves_after_migration(ctx).ok());
    auto st = fleet.migrator.restore_from_store(ctx, *fleet.hosts[1],
                                                fleet.snapshots, *snap,
                                                fleet.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_EQ(fleet.sum(ctx, *fleet.hosts[1]), 41u);
    checked = true;
  });
  ASSERT_TRUE(fleet.world.executor().run());
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace mig::fleet
